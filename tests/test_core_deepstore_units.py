"""Unit-level tests for DeepStoreSystem internals and QueryLatency."""

import pytest

from repro.core import DeepStoreSystem, QueryLatency
from repro.energy import EnergyBreakdown
from repro.ssd.ftl import DatabaseMetadata
from repro.workloads import get_app

from tests.conftest import make_db


def make_latency(**overrides):
    defaults = dict(
        app="x", level="channel", n_features=1000, accel_count=32,
        compute_spf=2e-6, io_spf=1e-6, bus_weight_spf=0.0,
        engine_seconds=1e-5, setup_seconds=2e-5, scan_seconds=1e-3,
        merge_seconds=5e-6, energy=EnergyBreakdown(compute_j=0.5),
        base_power_w=20.0,
    )
    defaults.update(overrides)
    return QueryLatency(**defaults)


class TestQueryLatency:
    def test_total_is_component_sum(self):
        lat = make_latency()
        assert lat.total_seconds == pytest.approx(1e-5 + 2e-5 + 1e-3 + 5e-6)

    def test_seconds_per_feature(self):
        lat = make_latency()
        assert lat.seconds_per_feature == pytest.approx(lat.total_seconds / 1000)

    @pytest.mark.parametrize(
        "compute,io,bus,expected",
        [
            (5e-6, 1e-6, 0.0, "compute"),
            (1e-6, 5e-6, 0.0, "flash"),
            (1e-6, 1e-6, 9e-6, "weight-broadcast"),
        ],
    )
    def test_bound_classification(self, compute, io, bus, expected):
        lat = make_latency(compute_spf=compute, io_spf=io, bus_weight_spf=bus)
        assert lat.bound == expected

    def test_power_includes_base(self):
        lat = make_latency()
        assert lat.power_w == pytest.approx(
            lat.accelerator_power_w + 20.0
        )
        assert lat.accelerator_power_w == pytest.approx(0.5 / lat.total_seconds)


class TestIoRates:
    def test_packed_vs_aligned_features(self, ssd):
        # a 2 KB feature (8/page) costs 1/8 page; a 44 KB feature costs 3
        system = DeepStoreSystem.at_level("channel")
        packed = ssd.ftl.create_database(2048, 100_000)
        aligned = ssd.ftl.create_database(44 * 1024, 10_000)
        page_time = 16384 / 800e6 + 0.2e-6
        assert system.io_seconds_per_feature(packed) == pytest.approx(
            page_time / 8, rel=0.01
        )
        assert system.io_seconds_per_feature(aligned) == pytest.approx(
            3 * page_time, rel=0.01
        )

    def test_ssd_level_feed_is_dram_bound(self, ssd):
        # aggregating 32 channels gives 25.6 GB/s, but the single
        # SSD-level accelerator sits behind the 20 GB/s DRAM — the feed
        # rate is the DRAM limit, not channels/32
        meta = ssd.ftl.create_database(2048, 100_000)
        ssd_level = DeepStoreSystem.at_level("ssd").io_seconds_per_feature(meta)
        pages_per_feature = 1 / 8
        dram_limit = 16384 / 20e9
        assert ssd_level == pytest.approx(pages_per_feature * dram_limit, rel=0.01)
        channel = DeepStoreSystem.at_level("channel").io_seconds_per_feature(meta)
        assert 20 < channel / ssd_level < 32  # between DRAM and channel ratios

    def test_bus_weight_only_at_chip_level(self, ssd):
        app = get_app("mir")
        graph = app.build_scn()
        chip = DeepStoreSystem.at_level("chip")
        channel = DeepStoreSystem.at_level("channel")
        assert chip.bus_weight_seconds_per_feature(graph, app.feature_bytes) > 0
        assert channel.bus_weight_seconds_per_feature(graph, app.feature_bytes) == 0

    def test_chip_bus_weight_scales_inverse_window(self, ssd):
        # features too large for the rebroadcast window shrink it,
        # raising the per-feature bus cost; sub-window sizes all cap at
        # the lockstep window of 24
        chip = DeepStoreSystem.at_level("chip")
        graph = get_app("estp").build_scn()
        small = chip.bus_weight_seconds_per_feature(graph, 800)
        capped = chip.bus_weight_seconds_per_feature(graph, 16 * 1024)
        huge = chip.bus_weight_seconds_per_feature(graph, 44 * 1024)
        assert small == pytest.approx(capped)
        assert huge > capped


class TestSystemBehaviour:
    def test_accelerator_cache_reused(self, ssd):
        app = get_app("tir")
        system = DeepStoreSystem.at_level("channel")
        graph = app.build_scn()
        assert system.accelerator_for(graph) is system.accelerator_for(graph)

    def test_engine_overheads_negligible_at_scale(self, ssd):
        app = get_app("tir")
        meta = make_db(ssd, app.feature_bytes, gigabytes=5.0)
        lat = DeepStoreSystem.at_level("channel").query_latency(app, meta)
        assert (lat.engine_seconds + lat.merge_seconds) < 0.01 * lat.total_seconds

    def test_setup_amortizes_with_db_size(self, ssd):
        app = get_app("estp")
        system = DeepStoreSystem.at_level("channel")
        small = system.query_latency(app, make_db(ssd, app.feature_bytes, 0.1))
        large = system.query_latency(app, make_db(ssd, app.feature_bytes, 10.0))
        assert small.setup_seconds == pytest.approx(large.setup_seconds)
        assert small.setup_seconds / small.total_seconds > \
            large.setup_seconds / large.total_seconds

    def test_scan_power_w(self, ssd):
        app = get_app("mir")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        power = DeepStoreSystem.at_level("channel").scan_power_w(app, meta)
        assert 20.0 < power < 100.0  # base + accelerators, under the slot

    def test_latency_for_without_appspec(self, ssd):
        graph = get_app("tir").build_scn()
        meta = make_db(ssd, 2048, gigabytes=1.0)
        lat = DeepStoreSystem.at_level("channel").latency_for(
            graph, meta, feature_bytes=2048, name="custom"
        )
        assert lat.app == "custom"
        assert lat.total_seconds > 0

    def test_sliced_metadata_scales_linearly(self, ssd):
        app = get_app("tir")
        system = DeepStoreSystem.at_level("channel")
        full = make_db(ssd, app.feature_bytes, gigabytes=2.0)
        half = DatabaseMetadata(
            db_id=full.db_id, feature_bytes=full.feature_bytes,
            feature_count=full.feature_count // 2, page_bytes=full.page_bytes,
        )
        half.extents = full.extents
        t_full = system.query_latency(app, full).scan_seconds
        t_half = system.query_latency(app, half).scan_seconds
        assert t_full == pytest.approx(2 * t_half, rel=0.01)


class TestAsciiSeries:
    def test_shape(self):
        from repro.analysis.reporting import ascii_series

        out = ascii_series([1, 2, 4, 8])
        assert len(out) == 4
        assert out[0] != out[-1]

    def test_flat_series(self):
        from repro.analysis.reporting import ascii_series

        out = ascii_series([5, 5, 5])
        assert len(set(out)) == 1

    def test_label(self):
        from repro.analysis.reporting import ascii_series

        assert ascii_series([1, 2], label="fc").startswith("fc ")

    def test_empty_rejected(self):
        from repro.analysis.reporting import ascii_series

        with pytest.raises(ValueError):
            ascii_series([])
