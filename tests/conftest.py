"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline import GpuSsdSystem
from repro.core.deepstore import DeepStoreSystem
from repro.ssd import Ssd, SsdConfig
from repro.workloads import ALL_APPS, get_app


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def ssd() -> Ssd:
    return Ssd()


@pytest.fixture
def ssd_config() -> SsdConfig:
    return SsdConfig()


@pytest.fixture
def baseline() -> GpuSsdSystem:
    return GpuSsdSystem()


@pytest.fixture(params=list(ALL_APPS.keys()))
def app(request):
    """Parameterized over all five Table-1 applications."""
    return get_app(request.param)


@pytest.fixture
def tir_app():
    return get_app("tir")


@pytest.fixture
def channel_system() -> DeepStoreSystem:
    return DeepStoreSystem.at_level("channel")


def make_db(ssd: Ssd, feature_bytes: int, gigabytes: float = 25.0):
    """A paper-scale feature database (25 GB by default, §6.1)."""
    count = int(gigabytes * 1e9 / feature_bytes)
    return ssd.ftl.create_database(feature_bytes, count)
