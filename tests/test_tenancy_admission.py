"""Weighted-fair admission: unit + property suites (ISSUE satellite).

Hypothesis drives :class:`WeightedFairQueue` with arbitrary
interleavings of per-tenant offers and DRR pops, pinning the three
fairness-layer invariants the tenancy plane's correctness rests on:

* **per-tenant conservation** — every tenant's ledger satisfies
  ``offered == admitted + rejected`` and ``admitted == popped +
  evicted + expired + depth`` bit-exactly after every operation,
  independently of every other tenant;
* **no starvation** — a continuously backlogged tenant is always
  served within a bounded number of dispatches (the bound follows
  from the smallest weight's credit accrual rate);
* **weight-proportional service** — two continuously backlogged
  tenants are served in the ratio of their weights, within one
  deficit quantum plus one batch.

Plus the single-tenant degeneracy check (the scheduler disappears) and
the :class:`Autoscaler` decision-kernel unit tests.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.admission import AdmissionQueue, QueuedQuery
from repro.tenancy.admission import TenantQueueSpec, WeightedFairQueue
from repro.tenancy.autoscale import Autoscaler, AutoscalerConfig
from repro.tenancy.spec import (
    BurstSpec,
    ShardFailureSpec,
    TenancyConfig,
    TenantSpec,
)


def _q(qid, now, compat="tir", priority=0):
    return QueuedQuery(qid=qid, arrival_s=now, priority=priority,
                       compat=compat)


class TestWeightedFairQueueUnit:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            WeightedFairQueue([])
        with pytest.raises(ValueError, match="quantum"):
            WeightedFairQueue([TenantQueueSpec("a")], quantum=0.0)
        with pytest.raises(ValueError, match="duplicate"):
            WeightedFairQueue(
                [TenantQueueSpec("a"), TenantQueueSpec("a")]
            )
        with pytest.raises(ValueError, match="weight"):
            TenantQueueSpec("a", weight=0.0)
        with pytest.raises(KeyError):
            WeightedFairQueue([TenantQueueSpec("a")]).offer(
                "b", _q(0, 0.0), 0.0
            )

    def test_idle_returns_empty(self):
        wfq = WeightedFairQueue([TenantQueueSpec("a")])
        assert wfq.pop_batch(0.0, 4) == ("", [])
        assert wfq.depth == 0

    def test_per_tenant_bounds_are_independent(self):
        wfq = WeightedFairQueue([
            TenantQueueSpec("a", bound=2),
            TenantQueueSpec("b", bound=2),
        ])
        for i in range(4):
            assert wfq.offer("a", _q(i, 0.0), 0.0) == (i < 2)
        # a's overflow never touches b's slots
        assert wfq.offer("b", _q(10, 0.0), 0.0)
        assert wfq.depth_of("a") == 2
        assert wfq.depth_of("b") == 1
        assert wfq.counters("a").rejected == 2
        assert wfq.counters("b").rejected == 0
        assert wfq.conserved()

    def test_batch_stays_within_one_tenant(self):
        wfq = WeightedFairQueue([
            TenantQueueSpec("a"), TenantQueueSpec("b"),
        ])
        for i in range(3):
            wfq.offer("a", _q(i, 0.0), 0.0)
            wfq.offer("b", _q(10 + i, 0.0), 0.0)
        tenant, batch = wfq.pop_batch(0.0, 8)
        assert tenant in ("a", "b")
        assert len(batch) == 3  # same-compat prefix of one tenant only
        assert {q.qid // 10 for q in batch} == {0 if tenant == "a" else 1}

    def test_take_shed_labels_tenants(self):
        wfq = WeightedFairQueue([
            TenantQueueSpec("a", bound=1), TenantQueueSpec("b", bound=1),
        ])
        wfq.offer("a", _q(0, 0.0), 0.0)
        wfq.offer("a", _q(1, 0.0), 0.0)  # rejected
        wfq.offer("b", _q(2, 0.0), 0.0)
        shed = wfq.take_shed()
        assert [(t, q.qid, r) for t, q, r in shed] == [("a", 1, "rejected")]

    def test_deadline_tenant_expires_in_place(self):
        wfq = WeightedFairQueue([
            TenantQueueSpec("a", policy="deadline", deadline_s=1.0),
        ])
        wfq.offer("a", _q(0, 0.0), 0.0)
        assert wfq.pop_batch(5.0, 4) == ("", [])
        assert wfq.counters("a").expired == 1
        assert wfq.conserved()


class TestSingleTenantDegeneracy:
    """With one tenant the scheduler must vanish: same pops, same
    ledger, batch for batch, as a bare AdmissionQueue."""

    def test_matches_bare_queue(self):
        wfq = WeightedFairQueue(
            [TenantQueueSpec("solo", weight=2.5, bound=4)], quantum=0.7
        )
        bare = AdmissionQueue(4)
        ops = [
            ("offer", 0), ("offer", 1), ("pop", 2), ("offer", 2),
            ("offer", 3), ("offer", 4), ("offer", 5), ("pop", 3),
            ("pop", 8), ("pop", 1),
        ]
        now = 0.0
        for kind, arg in ops:
            now += 0.25
            if kind == "offer":
                assert (
                    wfq.offer("solo", _q(arg, now), now)
                    == bare.offer(_q(arg, now), now)
                )
            else:
                tenant, batch = wfq.pop_batch(now, arg)
                expect = bare.pop_batch(now, arg)
                assert [q.qid for q in batch] == [q.qid for q in expect]
        c, b = wfq.counters("solo"), bare.counters
        assert (c.offered, c.admitted, c.rejected, c.popped) == (
            b.offered, b.admitted, b.rejected, b.popped
        )


# -- property suites ----------------------------------------------------

TENANTS = ("a", "b", "c")
offer_ops = st.tuples(
    st.just("offer"), st.sampled_from(TENANTS),
    st.sampled_from(["tir", "mir"]),
)
pop_ops = st.tuples(
    st.just("pop"), st.integers(min_value=1, max_value=4), st.just(""),
)
op_lists = st.lists(st.one_of(offer_ops, pop_ops), min_size=1,
                    max_size=80)
weight_lists = st.lists(
    st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    min_size=3, max_size=3,
)
policy_lists = st.lists(
    st.sampled_from(["reject", "drop-oldest", "deadline"]),
    min_size=3, max_size=3,
)


@settings(max_examples=100, deadline=None)
@given(ops=op_lists, weights=weight_lists, policies=policy_lists,
       bound=st.integers(min_value=1, max_value=6),
       quantum=st.floats(min_value=0.125, max_value=2.0,
                         allow_nan=False))
def test_per_tenant_conservation_under_interleaving(
    ops, weights, policies, bound, quantum
):
    wfq = WeightedFairQueue(
        [
            TenantQueueSpec(
                name, weight=w, bound=bound, policy=p,
                deadline_s=0.8 if p == "deadline" else None,
            )
            for name, w, p in zip(TENANTS, weights, policies)
        ],
        quantum=quantum,
    )
    now = 0.0
    for i, (kind, arg, compat) in enumerate(ops):
        now += 0.1
        if kind == "offer":
            wfq.offer(arg, _q(i, now, compat=compat), now)
        else:
            tenant, batch = wfq.pop_batch(now, arg)
            if batch:
                # one tenant, one compat key per dispatched batch
                assert len({q.compat for q in batch}) == 1
            else:
                assert tenant == "" and wfq.depth == 0
        wfq.take_shed()
        for name in TENANTS:
            assert wfq.depth_of(name) <= bound
        assert wfq.conserved(), wfq.ledger()
    # final ledger identities, bit-exact per tenant
    for name, row in wfq.ledger().items():
        assert row["offered"] == row["admitted"] + row["rejected"]
        assert row["admitted"] == (
            row["popped"] + row["evicted"] + row["expired"] + row["depth"]
        )


@settings(max_examples=60, deadline=None)
@given(weights=st.lists(
           st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
           min_size=3, max_size=3),
       quantum=st.floats(min_value=0.25, max_value=1.0, allow_nan=False))
def test_drr_never_starves_backlogged_tenant(weights, quantum):
    wfq = WeightedFairQueue(
        [
            TenantQueueSpec(name, weight=w, bound=64)
            for name, w in zip(TENANTS, weights)
        ],
        quantum=quantum,
    )
    qid = 0
    for name in TENANTS:  # keep everyone permanently backlogged
        for _ in range(8):
            wfq.offer(name, _q(qid, 0.0), 0.0)
            qid += 1
    # a backlogged tenant accrues min_w * quantum credit per round; a
    # round costs at most sum(w*q + 2) dispatches (each visitor spends
    # its whole quantum while it holds the turn)
    rounds_needed = int(1.0 / (min(weights) * quantum)) + 2
    round_cost = sum(int(w * quantum) + 2 for w in weights)
    bound = rounds_needed * round_cost
    last_served = {name: 0 for name in TENANTS}
    for step in range(1, bound + bound // 2 + 2):
        tenant, batch = wfq.pop_batch(0.0, 1)
        assert batch, "backlogged scheduler must always dispatch"
        last_served[tenant] = step
        wfq.offer(tenant, _q(qid, 0.0), 0.0)  # top the queue back up
        qid += 1
        for name in TENANTS:
            assert step - last_served[name] <= bound, (
                f"{name} starved for {step - last_served[name]} "
                f"dispatches (bound {bound})"
            )


@settings(max_examples=60, deadline=None)
@given(wa=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
       wb=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
       quantum=st.floats(min_value=0.25, max_value=1.0,
                         allow_nan=False))
def test_weight_proportional_within_one_quantum(wa, wb, quantum):
    wfq = WeightedFairQueue(
        [
            TenantQueueSpec("a", weight=wa, bound=256),
            TenantQueueSpec("b", weight=wb, bound=256),
        ],
        quantum=quantum,
    )
    qid = 0
    for name in ("a", "b"):
        for _ in range(128):
            wfq.offer(name, _q(qid, 0.0), 0.0)
            qid += 1
    served = {"a": 0, "b": 0}
    n_pops = 200
    for _ in range(n_pops):
        tenant, batch = wfq.pop_batch(0.0, 1)
        served[tenant] += len(batch)
        wfq.offer(tenant, _q(qid, 0.0), 0.0)
        qid += 1
    # both continuously backlogged: visit counts differ by at most one
    # round, deficits live in (-1, 1 + w*q), so cross-multiplied service
    # counts agree within one quantum's worth of credit per tenant
    slack = (wa + wb) * (2.0 + max(wa, wb) * quantum)
    assert abs(served["a"] * wb - served["b"] * wa) <= slack * max(wa, wb), (
        f"served={served} weights=({wa}, {wb}) quantum={quantum}"
    )


# -- autoscaler decision kernel -----------------------------------------

class TestAutoscaler:
    CFG = AutoscalerConfig(
        min_backends=1, max_backends=3, window_s=100.0,
        scale_up_threshold=2.0, scale_down_threshold=0.5,
        evaluate_interval_s=10.0, cooldown_s=30.0, actuation_s=5.0,
    )

    def test_validation(self):
        with pytest.raises(ValueError, match="min_backends"):
            AutoscalerConfig(min_backends=0)
        with pytest.raises(ValueError, match="max_backends"):
            AutoscalerConfig(min_backends=3, max_backends=2)
        with pytest.raises(ValueError, match="flap"):
            AutoscalerConfig(scale_up_threshold=1.0,
                             scale_down_threshold=1.0)
        with pytest.raises(ValueError):
            Autoscaler(self.CFG, initial_backends=9)

    def test_scale_up_on_any_tenant_burning(self):
        scaler = Autoscaler(self.CFG, 1)
        action = scaler.evaluate(10.0, {"a": 0.1, "b": 5.0})
        assert action is not None and action.kind == "scale_up"
        assert action.trigger_tenant == "b"
        assert action.backends_after == 2
        assert action.effective_s == 15.0
        assert scaler.target == 2

    def test_scale_down_needs_all_quiet(self):
        scaler = Autoscaler(self.CFG, 2)
        assert scaler.evaluate(10.0, {"a": 0.1, "b": 0.9}) is None
        action = scaler.evaluate(50.0, {"a": 0.1, "b": 0.2})
        assert action is not None and action.kind == "scale_down"
        assert action.backends_after == 1

    def test_cooldown_suppresses_consecutive_actions(self):
        scaler = Autoscaler(self.CFG, 1)
        assert scaler.evaluate(10.0, {"a": 9.0}) is not None
        assert scaler.evaluate(20.0, {"a": 9.0}) is None  # inside cooldown
        assert scaler.evaluate(41.0, {"a": 9.0}) is not None

    def test_bounds_are_hard(self):
        scaler = Autoscaler(self.CFG, 3)
        assert scaler.evaluate(10.0, {"a": 99.0}) is None  # at max
        scaler = Autoscaler(self.CFG, 1)
        assert scaler.evaluate(10.0, {"a": 0.0}) is None  # at min

    def test_disabled_never_acts(self):
        cfg = AutoscalerConfig(enabled=False)
        scaler = Autoscaler(cfg, 1)
        assert scaler.evaluate(10.0, {"a": 99.0}) is None
        assert scaler.actions == []


# -- spec validation ----------------------------------------------------

class TestSpecValidation:
    def test_defaults_valid(self):
        TenantSpec(name="t")
        TenancyConfig(tenants=(TenantSpec(name="t"),))

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "t", "weight": 0.0},
        {"name": "t", "base_qps": -1.0},
        {"name": "t", "amplitude": 1.0},
        {"name": "t", "phase": 1.0},
        {"name": "t", "apps": ()},
        {"name": "t", "apps": (("nosuch", 1.0),)},
        {"name": "t", "apps": (("tir", 0.5),)},
        {"name": "t", "apps": (("tir", 0.5), ("mir", 0.2))},
        {"name": "t", "write_fraction": 1.0},
        {"name": "t", "deadline_class": "asap"},
        {"name": "t", "queue_bound": 0},
        {"name": "t", "zipf_alpha": -0.1},
    ])
    def test_bad_tenant_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"start_fraction": 1.0, "duration_fraction": 0.1},
        {"start_fraction": 0.9, "duration_fraction": 0.2},
        {"start_fraction": 0.1, "duration_fraction": 0.0},
        {"start_fraction": 0.1, "duration_fraction": 0.1,
         "multiplier": 1.0},
    ])
    def test_bad_burst_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BurstSpec(**kwargs)

    def test_bad_scenarios_rejected(self):
        t = TenantSpec(name="t")
        with pytest.raises(ValueError, match="at least one tenant"):
            TenancyConfig(tenants=())
        with pytest.raises(ValueError, match="duplicate"):
            TenancyConfig(tenants=(t, TenantSpec(name="t")))
        with pytest.raises(ValueError, match="initial_backends"):
            TenancyConfig(tenants=(t,), initial_backends=9)
        with pytest.raises(ValueError, match="replica"):
            TenancyConfig(
                tenants=(t,), n_replicas=2,
                failure=ShardFailureSpec(shard=0, replica=5),
            )
        with pytest.raises(ValueError, match="n_replicas >= 2"):
            TenancyConfig(
                tenants=(t,), n_replicas=1,
                failure=ShardFailureSpec(shard=0, replica=0),
            )
        with pytest.raises(ValueError, match="heal_fraction"):
            ShardFailureSpec(at_fraction=0.5, heal_fraction=0.4)

    def test_deadline_class_presets(self):
        interactive = TenantSpec(name="t", deadline_class="interactive")
        assert interactive.queue_policy == "deadline"
        assert interactive.queue_deadline_s == pytest.approx(
            2.0 * interactive.latency_slo_s
        )
        batch = TenantSpec(name="b", deadline_class="batch")
        assert batch.queue_policy == "reject"
        assert batch.queue_deadline_s is None
        assert batch.latency_slo_s > interactive.latency_slo_s

    def test_lookup_helpers(self):
        cfg = TenancyConfig(tenants=(
            TenantSpec(name="x", apps=(("tir", 0.5), ("mir", 0.5))),
            TenantSpec(name="y", apps=(("tir", 1.0),)),
        ))
        assert cfg.tenant("x").name == "x"
        with pytest.raises(KeyError):
            cfg.tenant("zzz")
        assert cfg.distinct_apps() == ("tir", "mir")
