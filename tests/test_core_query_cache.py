"""Tests for the similarity query cache (Algorithm 1) and its simulator."""

import numpy as np
import pytest

from repro.core.query_cache import (
    CacheTimingModel,
    EmbeddingComparator,
    QueryCache,
    QueryCacheSimulator,
)
from repro.workloads import QueryStream


def make_cache(capacity=8, threshold=0.10, qcn_accuracy=0.98):
    return QueryCache(
        capacity=capacity,
        comparator=EmbeddingComparator(),
        qcn_accuracy=qcn_accuracy,
        threshold=threshold,
    )


def insert(cache, qfv, k=4):
    cache.insert(qfv, np.zeros(k), np.arange(k))


class TestEmbeddingComparator:
    def test_identical_queries_score_near_one(self, rng):
        q = rng.normal(0, 1, 64).astype(np.float32)
        assert EmbeddingComparator().score(q, q) > 0.9

    def test_unrelated_queries_score_near_zero(self, rng):
        c = EmbeddingComparator()
        a = rng.normal(0, 1, 256).astype(np.float32)
        b = rng.normal(0, 1, 256).astype(np.float32)
        assert c.score(a, b) < 0.1

    def test_score_decreases_with_noise(self, rng):
        c = EmbeddingComparator()
        base = rng.normal(0, 1, 256).astype(np.float32)
        scores = [
            c.score(base, base + rng.normal(0, sigma, 256).astype(np.float32))
            for sigma in (0.05, 0.3, 1.0)
        ]
        assert scores[0] > scores[1] > scores[2]

    def test_vectorized_matches_scalar(self, rng):
        c = EmbeddingComparator()
        q = rng.normal(0, 1, 32).astype(np.float32)
        entries = rng.normal(0, 1, (5, 32)).astype(np.float32)
        many = c.score_many(q, entries)
        for i in range(5):
            assert many[i] == pytest.approx(c.score(q, entries[i]), rel=1e-6)


class TestAlgorithm1:
    def test_miss_on_empty_cache(self, rng):
        cache = make_cache()
        result = cache.lookup(rng.normal(0, 1, 16).astype(np.float32))
        assert not result.hit
        assert cache.misses == 1

    def test_hit_on_same_query(self, rng):
        cache = make_cache(threshold=0.10)
        q = rng.normal(0, 1, 64).astype(np.float32)
        insert(cache, q)
        result = cache.lookup(q)
        assert result.hit
        assert result.best_score > 0.9

    def test_hit_on_paraphrase(self, rng):
        cache = make_cache(threshold=0.10)
        q = rng.normal(0, 1, 256).astype(np.float32)
        insert(cache, q)
        paraphrase = q + rng.normal(0, 0.05, 256).astype(np.float32)
        assert cache.lookup(paraphrase).hit

    def test_miss_on_unrelated(self, rng):
        cache = make_cache(threshold=0.10)
        insert(cache, rng.normal(0, 1, 256).astype(np.float32))
        assert not cache.lookup(rng.normal(0, 1, 256).astype(np.float32)).hit

    def test_zero_threshold_never_hits(self, rng):
        # 1 - score*acc is always > 0 for acc < 1 (paper Fig. 13 at 0%)
        cache = make_cache(threshold=0.0, qcn_accuracy=0.98)
        q = rng.normal(0, 1, 64).astype(np.float32)
        insert(cache, q)
        assert not cache.lookup(q).hit

    def test_higher_threshold_hits_more(self, rng):
        hits = {}
        for threshold in (0.05, 0.20):
            cache = make_cache(threshold=threshold, capacity=64)
            base = rng.normal(0, 1, 128).astype(np.float32)
            insert(cache, base)
            n_hit = 0
            local = np.random.default_rng(0)
            for _ in range(100):
                probe = base + local.normal(0, 0.35, 128).astype(np.float32)
                if cache.lookup(probe).hit:
                    n_hit += 1
            hits[threshold] = n_hit
        assert hits[0.20] >= hits[0.05]

    def test_accuracy_scales_score(self, rng):
        q = rng.normal(0, 1, 64).astype(np.float32)
        strict = make_cache(threshold=0.05, qcn_accuracy=0.90)
        insert(strict, q)
        assert not strict.lookup(q).hit  # 1 - 0.9x < 0.05 impossible
        lenient = make_cache(threshold=0.15, qcn_accuracy=0.90)
        insert(lenient, q)
        assert lenient.lookup(q).hit

    def test_best_entry_selected(self, rng):
        cache = make_cache(capacity=4, threshold=0.2)
        near = rng.normal(0, 1, 64).astype(np.float32)
        far = rng.normal(0, 1, 64).astype(np.float32)
        cache.insert(far, np.zeros(2), np.array([0, 1]))
        cache.insert(near, np.ones(2), np.array([2, 3]))
        result = cache.lookup(near + rng.normal(0, 0.02, 64).astype(np.float32))
        assert result.hit
        assert list(result.entry.topk_feature_ids) == [2, 3]


class TestLru:
    def test_eviction_order(self, rng):
        cache = make_cache(capacity=2, threshold=0.10)
        a = rng.normal(0, 1, 64).astype(np.float32)
        b = rng.normal(0, 1, 64).astype(np.float32)
        c = rng.normal(0, 1, 64).astype(np.float32)
        insert(cache, a)
        insert(cache, b)
        cache.lookup(a)  # promote a
        insert(cache, c)  # evicts b
        assert cache.lookup(a).hit
        assert not cache.lookup(b).hit
        assert cache.lookup(c).hit

    def test_capacity_respected(self, rng):
        cache = make_cache(capacity=3)
        for _ in range(10):
            insert(cache, rng.normal(0, 1, 16).astype(np.float32))
        assert len(cache) == 3

    def test_nbytes_counts_entries(self, rng):
        cache = make_cache(capacity=4)
        insert(cache, rng.normal(0, 1, 512).astype(np.float32), k=10)
        # qfv 2 KB + 10 scores + 10 ids + 10 object ids + valid
        assert cache.nbytes() >= 512 * 4 + 10 * (4 + 8 + 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_cache(capacity=0)
        with pytest.raises(ValueError):
            make_cache(threshold=1.5)
        with pytest.raises(ValueError):
            make_cache(qcn_accuracy=0.0)


class TestCacheSimulator:
    def run_sim(self, distribution, threshold=0.10, n_intents=200, n_queries=600,
                capacity=64, alpha=0.7):
        stream = QueryStream(
            dim=128, n_intents=n_intents, distribution=distribution,
            alpha=alpha, paraphrase_noise=0.1, seed=3,
        )
        cache = make_cache(capacity=capacity, threshold=threshold)
        timing = CacheTimingModel(
            lookup_seconds_per_entry=0.3e-6,
            hit_seconds=100e-6,
            miss_seconds=30e-3,
        )
        sim = QueryCacheSimulator(cache, timing)
        return sim.run(stream.generate(n_queries), warmup=100)

    def test_zipf_hits_more_than_uniform(self):
        zipf = self.run_sim("zipf")
        uniform = self.run_sim("uniform")
        assert zipf.miss_rate < uniform.miss_rate

    def test_speedup_grows_with_hit_rate(self):
        zipf = self.run_sim("zipf")
        uniform = self.run_sim("uniform")
        baseline = 30e-3
        assert zipf.speedup_over(baseline) > uniform.speedup_over(baseline) > 1.0

    def test_bigger_cache_fewer_misses_under_locality(self):
        small = self.run_sim("zipf", capacity=16)
        large = self.run_sim("zipf", capacity=256)
        assert large.miss_rate <= small.miss_rate

    def test_threshold_sweep_monotone(self):
        rates = [
            self.run_sim("zipf", threshold=t).miss_rate
            for t in (0.02, 0.10, 0.20)
        ]
        assert rates[0] >= rates[1] >= rates[2]

    def test_mean_time_between_hit_and_miss_cost(self):
        report = self.run_sim("zipf")
        assert 100e-6 < report.mean_seconds < 30e-3 + 1e-3

    def test_timing_model(self):
        timing = CacheTimingModel(1e-6, 1e-4, 1e-2)
        assert timing.query_seconds(True, 100) == pytest.approx(1e-4 + 1e-4)
        assert timing.query_seconds(False, 100) > 1e-2


class TestEpochTags:
    """Tag-filtered lookups and mutation invalidation."""

    def test_tagged_lookup_ignores_other_tags(self):
        cache = make_cache()
        qfv = np.ones(16, dtype=np.float32)
        cache.insert(qfv, np.zeros(4), np.arange(4), tag=(1, 0))
        assert cache.lookup(qfv, tag=(1, 0)).hit
        assert not cache.lookup(qfv, tag=(1, 1)).hit  # later epoch
        assert not cache.lookup(qfv, tag=(2, 0)).hit  # other database

    def test_untagged_lookup_scans_everything(self):
        cache = make_cache()
        qfv = np.ones(16, dtype=np.float32)
        cache.insert(qfv, np.zeros(4), np.arange(4), tag=(1, 0))
        assert cache.lookup(qfv).hit

    def test_invalidate_tag_prefix(self):
        cache = make_cache(capacity=16)
        a = np.ones(16, dtype=np.float32)
        b = -np.ones(16, dtype=np.float32)
        cache.insert(a, np.zeros(4), np.arange(4), tag=(1, 0))
        cache.insert(b, np.zeros(4), np.arange(4), tag=(2, 0))
        assert cache.invalidate_tag_prefix((1,)) == 1
        assert cache.invalidations == 1
        assert len(cache) == 1
        assert not cache.lookup(a, tag=(1, 0)).hit
        assert cache.lookup(b, tag=(2, 0)).hit

    def test_entries_scanned_counts_only_matching_tag(self):
        cache = make_cache(capacity=16)
        rng = np.random.default_rng(0)
        for i in range(5):
            cache.insert(rng.normal(0, 1, 16), np.zeros(4), np.arange(4), tag=(1, 0))
        cache.insert(rng.normal(0, 1, 16), np.zeros(4), np.arange(4), tag=(2, 0))
        probe = rng.normal(0, 1, 16).astype(np.float32)
        assert cache.lookup(probe, tag=(1, 0)).entries_scanned == 5
