"""End-to-end server tests: determinism, conservation, cache, faults."""

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.serving import (
    QueryServer,
    ServingConfig,
    poisson_arrivals,
    sweep_offered_load,
)
from repro.workloads import QueryStream

FEATURES = 50_000   # small database: fast scans, fast tests


def small_config(**kw):
    kw.setdefault("app", "tir")
    kw.setdefault("features", FEATURES)
    kw.setdefault("queue_bound", 16)
    return ServingConfig(**kw)


def run_at(config, fraction, n=80, seed=11, stream=None):
    server = QueryServer(config)
    qps = server.saturation_qps() * fraction
    return server.run(
        poisson_arrivals(n, qps, seed=seed, stream=stream,
                         compat=config.app)
    )


class TestDeterminism:
    def test_bit_identical_runs(self):
        a = run_at(small_config(), 1.2)
        b = run_at(small_config(), 1.2)
        assert a.as_dict() == b.as_dict()

    def test_bit_identical_sweep(self):
        kw = dict(n_queries=60, seed=3,
                  load_fractions=(0.5, 1.0, 1.5))
        a = sweep_offered_load(small_config(), **kw)
        b = sweep_offered_load(small_config(), **kw)
        assert a.as_dict() == b.as_dict()


class TestConservation:
    @pytest.mark.parametrize("policy,deadline", [
        ("reject", None),
        ("drop-oldest", None),
        ("deadline", 0.5),
    ])
    def test_every_arrival_accounted(self, policy, deadline):
        config = small_config(policy=policy, deadline_s=deadline)
        for fraction in (0.5, 1.5, 3.0):
            result = run_at(config, fraction)
            assert result.conserved
            assert result.arrived == 80

    def test_underload_sheds_nothing(self):
        result = run_at(small_config(), 0.3)
        assert result.shed == 0
        assert result.goodput_fraction == 1.0

    def test_overload_sheds(self):
        result = run_at(small_config(queue_bound=4), 3.0)
        assert result.shed > 0
        assert result.conserved


class TestCurveShape:
    def test_monotone_throughput_and_tail(self):
        curve = sweep_offered_load(
            small_config(), n_queries=80, seed=11,
            load_fractions=(0.25, 0.75, 1.25, 2.0),
        )
        assert curve.achieved_monotone(slack=curve.saturation_qps * 1e-6)
        assert curve.p99_monotone(slack=1e-9)

    def test_knee_is_past_underload(self):
        curve = sweep_offered_load(
            small_config(), n_queries=80, seed=11,
            load_fractions=(0.25, 0.5, 2.0, 3.0),
        )
        assert curve.knee_index() >= 2

    def test_batching_kicks_in_under_overload(self):
        under = run_at(small_config(max_batch=8), 0.25)
        over = run_at(small_config(max_batch=8), 3.0)
        assert over.mean_batch > under.mean_batch
        assert over.mean_batch > 1.0


class TestQueryCache:
    def _stream(self):
        return QueryStream(dim=32, n_intents=10, distribution="zipf",
                           alpha=0.9, paraphrase_noise=0.05, seed=2)

    def test_hits_bypass_queue(self):
        config = small_config(cache_entries=128, queue_bound=4)
        result = run_at(config, 3.0, n=120, stream=self._stream())
        assert result.cache_hits > 0
        assert result.hit_rate > 0.1
        # hits complete without admission: completed exceeds what the
        # scan path alone could have served
        assert result.completed == result.cache_hits + (
            result.admitted - (result.evicted + result.expired)
        )

    def test_cache_raises_goodput_under_overload(self):
        plain = run_at(small_config(queue_bound=4), 3.0, n=120,
                       stream=self._stream())
        cached = run_at(small_config(queue_bound=4, cache_entries=128),
                        3.0, n=120, stream=self._stream())
        assert cached.goodput_fraction > plain.goodput_fraction


class TestDegradedMode:
    def test_failed_accels_lower_saturation(self):
        healthy = QueryServer(small_config()).saturation_qps()
        degraded = QueryServer(
            small_config(failed_accels=(0, 1))
        ).saturation_qps()
        assert degraded < healthy

    def test_degraded_curve_still_conserves(self):
        curve = sweep_offered_load(
            small_config(failed_accels=(0,)), n_queries=60, seed=5,
            load_fractions=(0.5, 1.5),
        )
        assert all(p.conserved for p in curve.points)


class TestDeadlinePolicy:
    def test_wait_bounded_by_deadline(self):
        deadline = 0.25
        config = small_config(policy="deadline", deadline_s=deadline,
                              queue_bound=64)
        result = run_at(config, 4.0, n=150)
        assert result.expired > 0
        # a served query waited at most the deadline; its latency is
        # bounded by deadline + the largest batch service time
        server = QueryServer(config)
        bound = deadline + server.cost.service_seconds(config.max_batch)
        assert result.max_latency_s <= bound + 1e-9


class TestObservability:
    def test_metrics_and_tracer_populated(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        config = small_config(queue_bound=4)
        server = QueryServer(config, metrics=metrics, tracer=tracer)
        qps = server.saturation_qps() * 3.0
        result = server.run(poisson_arrivals(100, qps, seed=11))

        snap = metrics.snapshot()
        assert snap["serving.arrived"] == 100
        assert snap["serving.completed"] == result.completed
        assert snap["serving.shed"] == result.shed
        assert snap["serving.latency_s"]["count"] == result.completed

        assert tracer.count("serving.queue") > 0   # depth instants
        assert tracer.count("serving.shed") == result.shed
        batches = list(tracer.spans_in("serving.batch"))
        assert sum(s.args["n"] for s in batches) == result.completed

    def test_runs_without_instruments(self):
        result = run_at(small_config(), 1.0)
        assert result.completed > 0


class TestValidation:
    def test_empty_arrivals_rejected(self):
        with pytest.raises(ValueError):
            QueryServer(small_config()).run([])

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ServingConfig(features=0)
        with pytest.raises(ValueError):
            ServingConfig(n_servers=0)
        with pytest.raises(ValueError):
            ServingConfig(cache_entries=-1)

    def test_multi_server_scales_throughput(self):
        one = QueryServer(small_config(n_servers=1)).saturation_qps()
        two = QueryServer(small_config(n_servers=2)).saturation_qps()
        assert two == pytest.approx(2 * one, rel=1e-9)
