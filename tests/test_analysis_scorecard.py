"""Tests for the reproduction scorecard."""

import json

import pytest

from repro.analysis.scorecard import (
    PAPER_ENERGY,
    PAPER_SPEEDUP,
    ScorecardCell,
    build_scorecard,
)


class TestCellVerdicts:
    def test_within(self):
        cell = ScorecardCell("speedup", "tir", "channel", 10.0, 11.0, 2.5)
        assert cell.verdict == "within"
        assert cell.ratio == pytest.approx(1.1)

    def test_shape(self):
        cell = ScorecardCell("speedup", "tir", "channel", 10.0, 5.0, 2.5)
        assert cell.verdict == "shape"

    def test_off(self):
        cell = ScorecardCell("speedup", "tir", "channel", 10.0, 2.0, 2.5)
        assert cell.verdict == "off"

    def test_na_match(self):
        cell = ScorecardCell("speedup", "reid", "chip", None, None, 2.5)
        assert cell.verdict == "match"
        assert cell.ratio is None

    def test_mismatch(self):
        cell = ScorecardCell("speedup", "reid", "chip", None, 3.0, 2.5)
        assert cell.verdict == "mismatch"


class TestPaperTables:
    def test_tables_cover_all_cells(self):
        for table in (PAPER_SPEEDUP, PAPER_ENERGY):
            assert set(table) == {"reid", "mir", "estp", "tir", "textqa"}
            for row in table.values():
                assert set(row) == {"ssd", "channel", "chip"}
        assert PAPER_SPEEDUP["reid"]["chip"] is None
        assert PAPER_SPEEDUP["textqa"]["channel"] == pytest.approx(17.74)


class TestBuildScorecard:
    @pytest.fixture(scope="class")
    def card(self):
        return build_scorecard(gigabytes=2.0)

    def test_full_grid(self, card):
        # 5 apps x 3 levels x 2 experiments
        assert len(card.cells) == 30

    def test_no_mismatches(self, card):
        assert card.counts["mismatch"] == 0

    def test_structural_claims_hold(self, card):
        assert card.structural_ok, card.structural
        assert set(card.structural) >= {
            "io_fraction_band", "volta_compute_faster", "reid_worst_channel",
            "textqa_best_channel", "ssd_level_below_1x",
        }

    def test_majority_within_tolerance(self, card):
        counts = card.counts
        assert counts["within"] + counts["shape"] >= 24

    def test_json_roundtrip(self, card):
        payload = json.loads(card.to_json())
        assert len(payload["cells"]) == 30
        assert payload["counts"] == card.counts
        assert payload["structural"] == card.structural

    def test_render_contains_totals(self, card):
        text = card.render()
        assert "Reproduction scorecard" in text
        assert "totals:" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            build_scorecard(tolerance=0.5)
