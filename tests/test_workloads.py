"""Tests for the application catalog, feature DBs, and query streams."""

import numpy as np
import pytest

from repro.workloads import (
    ALL_APPS,
    FeatureDatasetSpec,
    QueryStream,
    ZipfSampler,
    get_app,
    make_clustered_features,
    plant_neighbors,
)
from repro.workloads.features import iter_feature_chunks


class TestTable1Calibration:
    """Every application must match its published Table-1 row."""

    def test_feature_size(self, app):
        assert app.feature_bytes == pytest.approx(app.table1.feature_kb * 1024, rel=0.05)

    def test_layer_counts_exact(self, app):
        counts = app.build_scn().count_layers()
        assert counts["conv"] == app.table1.conv_layers
        assert counts["fc"] == app.table1.fc_layers
        assert counts["elementwise"] == app.table1.elementwise_layers

    def test_total_flops_within_10pct(self, app):
        flops = app.build_scn().total_flops()
        assert flops == pytest.approx(app.table1.total_flops, rel=0.10)

    def test_weight_bytes_within_10pct(self, app):
        wb = app.build_scn().weight_bytes()
        assert wb == pytest.approx(app.table1.weight_bytes, rel=0.10)

    def test_scn_outputs_scalar_score(self, app, rng):
        g = app.build_scn()
        n = 3
        q = rng.normal(0, 1, (n, *app.feature_shape)).astype(np.float32)
        d = rng.normal(0, 1, (n, *app.feature_shape)).astype(np.float32)
        out = g.forward({g.input_ids[0]: q, g.input_ids[1]: d})
        assert out.shape == (n, 1)
        assert np.all((out >= 0) & (out <= 1))

    def test_qcn_structure_mirrors_scn(self, app):
        qcn = app.build_qcn()
        assert qcn.count_layers() == app.build_scn().count_layers()
        assert qcn.name.endswith("-qcn")

    def test_lookup(self):
        assert get_app("TIR").name == "tir"
        with pytest.raises(KeyError):
            get_app("nope")

    def test_catalog_complete(self):
        assert set(ALL_APPS) == {"reid", "mir", "estp", "tir", "textqa"}


class TestFeatureDatasets:
    def test_deterministic(self):
        spec = FeatureDatasetSpec(n_features=500, dim=32, seed=9)
        f1, l1 = make_clustered_features(spec)
        f2, l2 = make_clustered_features(spec)
        np.testing.assert_array_equal(f1, f2)
        np.testing.assert_array_equal(l1, l2)

    def test_clustering_structure(self):
        spec = FeatureDatasetSpec(n_features=2000, dim=64, n_intents=8,
                                  noise=0.2, seed=1)
        features, labels = make_clustered_features(spec)
        centroids = spec.centroids()
        # features sit closer to their own centroid than to others
        own = np.linalg.norm(features - centroids[labels], axis=1)
        other = np.linalg.norm(features - centroids[(labels + 1) % 8], axis=1)
        assert (own < other).mean() > 0.97

    def test_chunked_iteration_deterministic(self):
        spec = FeatureDatasetSpec(n_features=1000, dim=16, seed=3)
        a = np.concatenate([c for c, _ in iter_feature_chunks(spec, chunk=128)])
        b = np.concatenate([c for c, _ in iter_feature_chunks(spec, chunk=128)])
        np.testing.assert_array_equal(a, b)
        assert len(a) == 1000

    def test_plant_neighbors(self, rng):
        features = rng.normal(0, 1, (100, 16)).astype(np.float32)
        query = rng.normal(0, 1, 16).astype(np.float32)
        planted_features, idx = plant_neighbors(features, query, k=5, seed=0)
        assert len(idx) == 5
        dist = np.linalg.norm(planted_features[idx] - query, axis=1)
        assert dist.max() < 1.0

    def test_plant_validation(self, rng):
        features = rng.normal(0, 1, (10, 4)).astype(np.float32)
        with pytest.raises(ValueError):
            plant_neighbors(features, features[0], k=11)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FeatureDatasetSpec(n_features=0, dim=4)
        with pytest.raises(ValueError):
            FeatureDatasetSpec(n_features=10, dim=4, noise=-1)


class TestZipfSampler:
    def test_skew_increases_with_alpha(self):
        flat = ZipfSampler(100, 0.0).probabilities
        skewed = ZipfSampler(100, 0.7).probabilities
        very = ZipfSampler(100, 1.2).probabilities
        assert flat[0] == pytest.approx(0.01)
        assert skewed[0] < very[0]
        assert skewed[0] > flat[0]

    def test_probabilities_sum_to_one(self):
        assert ZipfSampler(500, 0.7).probabilities.sum() == pytest.approx(1.0)

    def test_sampling_respects_skew(self):
        s = ZipfSampler(50, 1.0, seed=0)
        draws = s.sample(20000)
        counts = np.bincount(draws, minlength=50)
        assert counts[0] > counts[25] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.7)
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.1)


class TestQueryStream:
    def test_deterministic(self):
        s = QueryStream(dim=16, n_intents=10, seed=4)
        a = s.generate(50)
        b = s.generate(50)
        for x, y in zip(a, b):
            assert x.intent == y.intent
            np.testing.assert_array_equal(x.qfv, y.qfv)

    def test_same_intent_queries_are_similar(self):
        s = QueryStream(dim=64, n_intents=4, paraphrase_noise=0.1, seed=0)
        records = s.generate(400)
        by_intent = {}
        for r in records:
            by_intent.setdefault(r.intent, []).append(r.qfv)
        centroids = s.centroids()
        for intent, qfvs in by_intent.items():
            stack = np.stack(qfvs)
            assert np.linalg.norm(stack - centroids[intent], axis=1).mean() < 2.0

    def test_zipf_concentrates_popular_intents(self):
        s = QueryStream(dim=8, n_intents=100, distribution="zipf", alpha=1.0, seed=1)
        records = s.generate(5000)
        intents = np.array([r.intent for r in records])
        top10_share = np.isin(intents, np.arange(10)).mean()
        assert top10_share > 0.3

    def test_uniform_spreads(self):
        s = QueryStream(dim=8, n_intents=100, distribution="uniform", seed=1)
        intents = np.array([r.intent for r in s.generate(5000)])
        assert np.isin(intents, np.arange(10)).mean() < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryStream(dim=8, n_intents=4, distribution="pareto")
        with pytest.raises(ValueError):
            QueryStream(dim=8, n_intents=4).generate(0)

    def test_intent_probabilities(self):
        uniform = QueryStream(dim=8, n_intents=10).intent_probabilities()
        assert np.allclose(uniform, 0.1)
        zipf = QueryStream(
            dim=8, n_intents=10, distribution="zipf", alpha=0.7
        ).intent_probabilities()
        assert zipf[0] > zipf[-1]


class TestPretrained:
    def test_trained_scn_separates_pairs(self, rng):
        from repro.nn.training import make_pair_dataset
        from repro.workloads.pretrained import train_scn

        app = get_app("textqa")
        graph = train_scn(app, seed=0, n_pairs=4000)
        q, f, y = make_pair_dataset(rng, app.feature_floats, 400)
        scores = graph.forward({0: q, 1: f}).reshape(-1)
        acc = ((scores > 0.5) == (y > 0.5)).mean()
        assert acc > 0.85

    def test_cache_returns_same_object(self):
        from repro.workloads.pretrained import train_scn

        app = get_app("textqa")
        assert train_scn(app, seed=0) is train_scn(app, seed=0)
