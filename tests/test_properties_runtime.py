"""Property-based tests over the runtime pieces (cache, commands, FTL)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.commands import Command, OPCODES
from repro.core.query_cache import EmbeddingComparator, QueryCache
from repro.ssd.ftl import BlockFtl
from repro.ssd.geometry import SsdGeometry


class TestCommandProperties:
    @given(
        st.sampled_from(sorted(OPCODES)),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                 max_size=7),
        st.binary(max_size=256),
    )
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_roundtrip(self, opcode, cid, params, payload):
        cmd = Command(opcode, cid, tuple(params), payload)
        decoded = Command.decode(cmd.encode())
        assert decoded.opcode == opcode
        assert decoded.command_id == cid
        assert decoded.params[: len(params)] == tuple(params)
        assert all(p == 0 for p in decoded.params[len(params):])
        assert decoded.payload == payload
        assert decoded.total_bytes == cmd.total_bytes


class TestCacheProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.integers(min_value=0, max_value=5),
                 min_size=1, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_cache_never_exceeds_capacity_and_counts_balance(
        self, capacity, intent_sequence
    ):
        rng = np.random.default_rng(7)
        centroids = rng.normal(0, 1, (6, 64)).astype(np.float32)
        cache = QueryCache(
            capacity=capacity,
            comparator=EmbeddingComparator(),
            qcn_accuracy=0.98,
            threshold=0.10,
        )
        for intent in intent_sequence:
            qfv = centroids[intent] + rng.normal(0, 0.02, 64).astype(np.float32)
            result = cache.lookup(qfv)
            if not result.hit:
                cache.insert(qfv, [1.0], [intent])
            assert len(cache) <= capacity
        assert cache.hits + cache.misses == len(intent_sequence)
        assert 0.0 <= cache.miss_rate <= 1.0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_repeat_of_cached_query_always_hits(self, seed):
        rng = np.random.default_rng(seed)
        cache = QueryCache(
            capacity=4, comparator=EmbeddingComparator(),
            qcn_accuracy=0.98, threshold=0.10,
        )
        qfv = rng.normal(0, 1, 32).astype(np.float32)
        cache.insert(qfv, [1.0], [0])
        assert cache.lookup(qfv).hit


class TestFtlProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=64, max_value=65536),
                      st.integers(min_value=1, max_value=5000)),
            min_size=1, max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_databases_never_overlap(self, specs):
        ftl = BlockFtl(SsdGeometry())
        metas = [ftl.create_database(fb, count) for fb, count in specs]
        ranges = sorted(
            (m.extents[0].start_ppn, m.extents[0].end_ppn) for m in metas
        )
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 <= s2

    @given(st.integers(min_value=1, max_value=100_000),
           st.integers(min_value=64, max_value=65536))
    @settings(max_examples=40, deadline=None)
    def test_page_count_covers_payload(self, count, feature_bytes):
        ftl = BlockFtl(SsdGeometry())
        meta = ftl.create_database(feature_bytes, count)
        assert meta.stored_bytes >= 0
        if meta.page_aligned:
            assert meta.stored_bytes >= feature_bytes * count
        else:
            # packed layout wastes at most one partial feature slot/page
            assert meta.total_pages * meta.features_per_page >= count
        # every feature has a resolvable physical span
        first = meta.feature_page_span(0)
        last = meta.feature_page_span(count - 1)
        assert 0 <= first[0] <= last[0] < meta.total_pages
