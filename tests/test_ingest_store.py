"""Unit tests for the epoch-versioned mutable feature store."""

import numpy as np
import pytest

from repro.ingest.store import (
    IngestError,
    MutableFeatureStore,
    oracle_replay,
    oracle_topk,
)


@pytest.fixture
def store(rng):
    return MutableFeatureStore(
        rng.normal(0, 1, (32, 8)).astype(np.float32)
    )


class TestMutations:
    def test_insert_assigns_stable_sequential_ids(self, store):
        first = store.insert(np.ones((3, 8), dtype=np.float32))
        second = store.insert(np.ones((2, 8), dtype=np.float32))
        assert first.tolist() == [32, 33, 34]
        assert second.tolist() == [35, 36]
        assert store.n_rows == 37

    def test_each_mutation_advances_the_epoch(self, store):
        assert store.epoch == 0
        store.insert(np.ones((1, 8), dtype=np.float32))
        assert store.epoch == 1
        store.delete([0])
        assert store.epoch == 2

    def test_update_is_tombstone_plus_fresh_id(self, store):
        new_id = store.update(5, np.full(8, 2.0, dtype=np.float32))
        assert new_id == 32
        assert not store.is_visible(5)
        assert store.is_visible(new_id)
        np.testing.assert_array_equal(
            store.rows(np.array([new_id]))[0], np.full(8, 2.0, dtype=np.float32)
        )

    def test_rows_preserved_verbatim(self, store, rng):
        added = rng.normal(0, 1, (4, 8)).astype(np.float32)
        ids = store.insert(added)
        np.testing.assert_array_equal(store.rows(ids), added)

    def test_invalid_mutations_rejected(self, store):
        with pytest.raises(IngestError):
            store.insert(np.ones((1, 4), dtype=np.float32))  # wrong dim
        with pytest.raises(IngestError):
            store.delete([])
        with pytest.raises(IngestError):
            store.delete([99])
        with pytest.raises(IngestError):
            store.delete([3, 3])
        store.delete([3])
        with pytest.raises(IngestError):
            store.delete([3])  # double delete


class TestSnapshots:
    def test_snapshot_is_stable_under_later_mutations(self, store):
        snap = store.snapshot()
        before = store.visible_ids(snap).tolist()
        store.insert(np.ones((5, 8), dtype=np.float32))
        store.delete([0, 1, 2])
        assert store.visible_ids(snap).tolist() == before

    def test_snapshot_excludes_later_inserts(self, store):
        snap = store.snapshot()
        ids = store.insert(np.ones((2, 8), dtype=np.float32))
        assert not store.is_visible(int(ids[0]), snap)
        assert store.is_visible(int(ids[0]))

    def test_snapshot_keeps_rows_deleted_after_it(self, store):
        snap = store.snapshot()
        store.delete([7])
        assert store.is_visible(7, snap)
        assert not store.is_visible(7)

    def test_snapshot_at_reconstructs_history(self, store):
        store.insert(np.ones((2, 8), dtype=np.float32))  # epoch 1
        store.delete([0])  # epoch 2
        past = store.snapshot_at(1)
        assert past.n_rows == 34
        assert store.is_visible(0, past)
        with pytest.raises(IngestError):
            store.snapshot_at(99)

    def test_update_between_snapshots_shows_neither_version(self, store):
        store.delete([4])  # epoch 1 (the delete half of an update)
        mid = store.snapshot()
        new_id = store.insert(np.ones((1, 8), dtype=np.float32))[0]  # epoch 2
        assert not store.is_visible(4, mid)
        assert not store.is_visible(int(new_id), mid)


class TestDeltaAndCompaction:
    def test_base_rows_start_clustered(self, store):
        assert store.delta_fraction() == 0.0

    def test_inserts_grow_the_delta(self, store):
        store.insert(np.ones((8, 8), dtype=np.float32))
        assert store.delta_fraction() == pytest.approx(8 / 40)

    def test_compaction_absorbs_the_delta_and_reclaims(self, store):
        store.insert(np.ones((8, 8), dtype=np.float32))
        store.delete([0, 1])
        assert store.physical_rows == 40
        snap = store.snapshot()
        reclaimed = store.mark_compacted(snap)
        assert reclaimed == 2
        assert store.physical_rows == 38
        assert store.delta_fraction() == 0.0

    def test_rows_mutated_after_snapshot_stay_in_next_delta(self, store):
        snap = store.snapshot()
        later = store.insert(np.ones((4, 8), dtype=np.float32))
        store.mark_compacted(snap)
        delta = set(store.delta_ids().tolist())
        assert delta == set(int(i) for i in later)


class TestOracle:
    def test_replay_matches_store_at_every_epoch(self, store, rng):
        store.insert(rng.normal(0, 1, (5, 8)).astype(np.float32))
        store.delete([1, 33])
        store.update(2, np.ones(8, dtype=np.float32))
        base = store.features()[:32]
        for epoch in range(store.epoch + 1):
            snap = store.snapshot_at(epoch)
            _, visible = oracle_replay(base, store.log, epoch)
            assert visible == store.visible_ids(snap).tolist(), f"epoch {epoch}"

    def test_oracle_topk_uses_canonical_tiebreak(self):
        scores = np.array([1.0, 2.0, 2.0, 0.5])
        top = oracle_topk(np.zeros((4, 2)), [0, 1, 2, 3], scores, 2)
        assert top == [(2.0, 1), (2.0, 2)]
