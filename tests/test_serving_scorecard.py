"""Perf-gate comparator tests: flatten, tolerance band, drift detection."""

import copy

import pytest

from repro.serving import Drift, compare_scorecards, flatten


SAMPLE = {
    "saturation_qps": 25.0,
    "points": [
        {"offered_qps": 6.25, "p99_ms": 40.0},
        {"offered_qps": 12.5, "p99_ms": 55.0},
    ],
    "app": "tir",
    "counts": {"queries": 240},
}


class TestFlatten:
    def test_dotted_keys_and_indices(self):
        flat = flatten(SAMPLE)
        assert flat["saturation_qps"] == 25.0
        assert flat["points[0].offered_qps"] == 6.25
        assert flat["points[1].p99_ms"] == 55.0
        assert flat["app"] == "tir"
        assert flat["counts.queries"] == 240

    def test_only_scalar_leaves(self):
        for value in flatten(SAMPLE).values():
            assert not isinstance(value, (dict, list, tuple))

    def test_scalar_roundtrip(self):
        assert flatten(3.5, "x") == {"x": 3.5}


class TestCompare:
    def test_identical_passes(self):
        assert compare_scorecards(SAMPLE, copy.deepcopy(SAMPLE)) == []

    def test_within_tolerance_passes(self):
        current = copy.deepcopy(SAMPLE)
        current["saturation_qps"] = 25.0 * 1.09   # +9% < 10%
        assert compare_scorecards(SAMPLE, current, tolerance=0.10) == []

    def test_beyond_tolerance_fails(self):
        current = copy.deepcopy(SAMPLE)
        current["saturation_qps"] = 25.0 * 1.2    # +20% > 10%
        drifts = compare_scorecards(SAMPLE, current, tolerance=0.10)
        assert [d.key for d in drifts] == ["saturation_qps"]
        assert drifts[0].status == "regressed"
        assert drifts[0].ratio == pytest.approx(1.2)

    def test_nested_leaf_drift_detected(self):
        current = copy.deepcopy(SAMPLE)
        current["points"][1]["p99_ms"] = 55.0 * 0.8   # -20%
        drifts = compare_scorecards(SAMPLE, current)
        assert [d.key for d in drifts] == ["points[1].p99_ms"]

    def test_atol_shields_near_zero_leaves(self):
        base = {"shed_rate": 0.0}
        current = {"shed_rate": 1e-12}   # infinite relative drift
        assert compare_scorecards(base, current) == []

    def test_non_numeric_must_match_exactly(self):
        current = copy.deepcopy(SAMPLE)
        current["app"] = "reid"
        drifts = compare_scorecards(SAMPLE, current)
        assert drifts[0].status == "changed"

    def test_missing_and_unexpected_keys(self):
        current = copy.deepcopy(SAMPLE)
        del current["counts"]
        current["extra"] = 1
        statuses = {d.key: d.status for d in
                    compare_scorecards(SAMPLE, current)}
        assert statuses["counts.queries"] == "missing"
        assert statuses["extra"] == "unexpected"

    def test_worst_drift_sorts_first(self):
        current = copy.deepcopy(SAMPLE)
        current["saturation_qps"] = 25.0 * 1.15     # +15%
        current["points"][0]["p99_ms"] = 40.0 * 3.0  # 3x
        drifts = compare_scorecards(SAMPLE, current)
        assert drifts[0].key == "points[0].p99_ms"

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            compare_scorecards(SAMPLE, SAMPLE, tolerance=-0.1)

    def test_drift_to_dict_roundtrip(self):
        d = Drift("k", 2.0, 3.0, "regressed")
        assert d.to_dict() == {
            "key": "k", "baseline": 2.0, "current": 3.0,
            "ratio": 1.5, "status": "regressed",
        }


class TestBuiltScorecard:
    def test_scorecard_deterministic_and_complete(self):
        from repro.serving import build_serving_scorecard

        a = build_serving_scorecard(features=60_000, n_queries=60)
        b = build_serving_scorecard(features=60_000, n_queries=60)
        assert a == b                       # bit-identical rebuild
        assert compare_scorecards(a, b) == []
        flat = flatten(a)
        assert "saturation_qps" in flat
        assert "cached.hit_rate" in flat
        assert "degraded.load_factor" in flat
        assert any(k.startswith("points[") for k in flat)
