"""Tests for SSD geometry and addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.ssd import PhysicalPageAddress, SsdGeometry


class TestCapacities:
    def test_paper_defaults(self):
        geo = SsdGeometry()
        assert geo.channels == 32
        assert geo.chips_per_channel == 4
        assert geo.planes_per_chip == 8
        assert geo.page_bytes == 16 * 1024
        assert geo.planes_per_channel == 32
        assert geo.total_planes == 1024
        # 32ch * 4chips * 8planes * 512blocks * 128pages * 16KB = 1 TiB
        assert geo.capacity_bytes == 1024**4

    def test_block_bytes(self):
        assert SsdGeometry().block_bytes == 128 * 16 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            SsdGeometry(channels=0)
        with pytest.raises(ValueError):
            SsdGeometry(page_bytes=-1)


class TestAddressing:
    def test_sequential_ppns_stripe_across_channels(self):
        geo = SsdGeometry()
        channels = [geo.ppn_to_address(i).channel for i in range(64)]
        assert channels == list(range(32)) * 2

    def test_then_chips(self):
        geo = SsdGeometry()
        # after one full sweep of channels, the chip advances
        assert geo.ppn_to_address(0).chip == 0
        assert geo.ppn_to_address(32).chip == 1

    def test_roundtrip_specific(self):
        geo = SsdGeometry()
        addr = PhysicalPageAddress(channel=5, chip=2, plane=3, block=100, page=77)
        assert geo.ppn_to_address(geo.address_to_ppn(addr)) == addr

    @given(st.integers(min_value=0))
    def test_roundtrip_all(self, ppn):
        geo = SsdGeometry(channels=4, chips_per_channel=2, planes_per_chip=2,
                          blocks_per_plane=8, pages_per_block=4)
        ppn = ppn % geo.total_pages
        assert geo.address_to_ppn(geo.ppn_to_address(ppn)) == ppn

    def test_out_of_range_ppn(self):
        geo = SsdGeometry()
        with pytest.raises(ValueError):
            geo.ppn_to_address(geo.total_pages)
        with pytest.raises(ValueError):
            geo.ppn_to_address(-1)

    def test_out_of_range_address(self):
        geo = SsdGeometry()
        with pytest.raises(ValueError):
            geo.address_to_ppn(PhysicalPageAddress(32, 0, 0, 0, 0))

    def test_pages_for_bytes(self):
        geo = SsdGeometry()
        assert geo.pages_for_bytes(0) == 0
        assert geo.pages_for_bytes(1) == 1
        assert geo.pages_for_bytes(16 * 1024) == 1
        assert geo.pages_for_bytes(16 * 1024 + 1) == 2
        with pytest.raises(ValueError):
            geo.pages_for_bytes(-1)

    def test_scaled_changes_only_channels(self):
        geo = SsdGeometry().scaled(8)
        assert geo.channels == 8
        assert geo.chips_per_channel == 4
