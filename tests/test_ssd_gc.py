"""Tests for the page-mapped write path (GC + wear leveling)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ssd.gc import GcError, PageMappedFtl
from repro.ssd.geometry import SsdGeometry


def make_ftl(blocks=16, pages=32, op=0.2, **kw):
    logical = int(blocks * pages * (1 - op))
    logical = min(logical, blocks * pages - 2 * pages)
    return PageMappedFtl(blocks, pages, logical, **kw)


class TestBasicWritePath:
    def test_write_then_lookup(self):
        ftl = make_ftl()
        ftl.write(5)
        assert ftl.lookup(5) is not None
        assert ftl.lookup(6) is None

    def test_overwrite_moves_page(self):
        ftl = make_ftl()
        ftl.write(5)
        first = ftl.lookup(5)
        ftl.write(5)
        second = ftl.lookup(5)
        assert first != second  # out-of-place update

    def test_trim(self):
        ftl = make_ftl()
        ftl.write(3)
        ftl.trim(3)
        assert ftl.lookup(3) is None

    def test_lpn_bounds(self):
        ftl = make_ftl()
        with pytest.raises(GcError):
            ftl.write(ftl.logical_pages)
        with pytest.raises(GcError):
            ftl.lookup(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PageMappedFtl(2, 32, 10)
        with pytest.raises(ValueError):
            PageMappedFtl(8, 32, 8 * 32)  # no over-provisioning

    def test_for_geometry(self):
        ftl = PageMappedFtl.for_geometry(SsdGeometry())
        assert ftl.logical_pages > 0
        assert ftl.free_blocks > 0


class TestGarbageCollection:
    def fill_and_churn(self, ftl, churn_writes, seed=0):
        rng = np.random.default_rng(seed)
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn)
        for _ in range(churn_writes):
            ftl.write(int(rng.integers(0, ftl.logical_pages)))
        return ftl

    def test_sequential_overwrite_low_amplification(self):
        ftl = make_ftl(op=0.2)
        for _ in range(4):
            for lpn in range(ftl.logical_pages):
                ftl.write(lpn)
        # sequential churn invalidates whole blocks: near-free GC
        assert ftl.stats.write_amplification < 1.3

    def test_random_churn_triggers_gc(self):
        ftl = self.fill_and_churn(make_ftl(op=0.25), churn_writes=4000)
        assert ftl.stats.gc_invocations > 0
        assert ftl.stats.erases > 0
        assert ftl.stats.write_amplification > 1.0

    def test_less_overprovisioning_more_amplification(self):
        tight = self.fill_and_churn(make_ftl(op=0.15), 4000)
        roomy = self.fill_and_churn(make_ftl(op=0.45), 4000)
        assert tight.stats.write_amplification > roomy.stats.write_amplification

    def test_mapping_survives_gc(self):
        ftl = make_ftl(blocks=8, pages=16, op=0.3)
        rng = np.random.default_rng(1)
        shadow = {}
        for i in range(3000):
            lpn = int(rng.integers(0, ftl.logical_pages))
            ftl.write(lpn)
            shadow[lpn] = i
        # every written lpn still resolves to exactly one live location
        locations = {}
        for lpn in shadow:
            loc = ftl.lookup(lpn)
            assert loc is not None
            assert loc not in locations.values(), "two LPNs share a slot"
            locations[lpn] = loc

    def test_free_blocks_maintained(self):
        ftl = self.fill_and_churn(make_ftl(op=0.25), 5000)
        assert ftl.free_blocks >= 1

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_never_loses_data_under_churn(self, seed):
        ftl = make_ftl(blocks=8, pages=8, op=0.3)
        rng = np.random.default_rng(seed)
        live = set()
        for _ in range(500):
            lpn = int(rng.integers(0, ftl.logical_pages))
            ftl.write(lpn)
            live.add(lpn)
        for lpn in live:
            assert ftl.lookup(lpn) is not None


class TestWearLeveling:
    def test_wear_spreads(self):
        ftl = make_ftl(blocks=12, pages=16, op=0.3, wear_weight=0.2)
        rng = np.random.default_rng(2)
        # skewed workload: 80% of writes to 20% of the space
        hot = int(ftl.logical_pages * 0.2)
        for _ in range(20_000):
            if rng.random() < 0.8:
                ftl.write(int(rng.integers(0, hot)))
            else:
                ftl.write(int(rng.integers(hot, ftl.logical_pages)))
        assert ftl.stats.erases > 20
        assert ftl.wear_imbalance() < 2.5

    def test_wear_weight_improves_balance(self):
        def imbalance(weight):
            ftl = make_ftl(blocks=12, pages=16, op=0.3, wear_weight=weight)
            rng = np.random.default_rng(3)
            hot = int(ftl.logical_pages * 0.1)
            for _ in range(15_000):
                lpn = int(rng.integers(0, hot if rng.random() < 0.9
                                       else ftl.logical_pages))
                ftl.write(lpn)
            return ftl.wear_imbalance()

        assert imbalance(0.3) <= imbalance(0.0) + 0.3

    def test_erase_counts_accessible(self):
        ftl = make_ftl()
        assert len(ftl.erase_counts()) == 16
        assert ftl.wear_imbalance() == 1.0  # nothing erased yet
