"""Tests for the vendor NVMe command layer."""

import numpy as np
import pytest

from repro.core.api import DeepStoreDevice
from repro.core.commands import (
    HEADER_BYTES,
    OP_APPEND_DB,
    OP_GET_RESULT,
    OP_LOAD_MODEL,
    OP_QUERY,
    OP_READ_DB,
    OP_SET_QC,
    OP_WRITE_DB,
    Command,
    CommandError,
    CommandTransport,
    decode_result_payload,
    encode_query,
)
from repro.nn import graph_to_bytes
from repro.workloads import get_app


@pytest.fixture
def transport():
    return CommandTransport(DeepStoreDevice())


def write_db(transport, features):
    completion = transport.submit(
        Command(OP_WRITE_DB, transport.next_cid(), (features.shape[1],),
                features.astype(np.float32).tobytes())
    )
    assert completion.ok
    return completion.result[0]


class TestEncoding:
    def test_header_is_64_bytes(self):
        assert HEADER_BYTES == 64
        cmd = Command(OP_READ_DB, 1, (2, 3, 4))
        assert len(cmd.encode()) == 64

    def test_roundtrip(self):
        cmd = Command(OP_QUERY, 7, (10, 1, 2, 0, 100, 1), b"\x01\x02")
        decoded = Command.decode(cmd.encode())
        assert decoded.opcode == OP_QUERY
        assert decoded.command_id == 7
        assert decoded.params[:6] == (10, 1, 2, 0, 100, 1)
        assert decoded.payload == b"\x01\x02"
        assert decoded.name == "QUERY"

    def test_bad_opcode(self):
        with pytest.raises(CommandError):
            Command(0x42, 1, ())

    def test_too_many_params(self):
        with pytest.raises(CommandError):
            Command(OP_READ_DB, 1, tuple(range(8)))

    def test_short_blob(self):
        with pytest.raises(CommandError):
            Command.decode(b"short")

    def test_encode_query_level_validation(self):
        with pytest.raises(CommandError):
            encode_query(1, np.zeros(4, np.float32), 5, 1, 1,
                         accel_level="rack")


class TestTransport:
    def test_write_then_read(self, transport, rng):
        features = rng.normal(0, 1, (64, 16)).astype(np.float32)
        db_id = write_db(transport, features)
        completion = transport.submit(
            Command(OP_READ_DB, transport.next_cid(), (db_id, 8, 4))
        )
        assert completion.ok
        out = np.frombuffer(completion.payload, dtype=np.float32).reshape(4, 16)
        np.testing.assert_array_equal(out, features[8:12])

    def test_append(self, transport, rng):
        features = rng.normal(0, 1, (10, 8)).astype(np.float32)
        db_id = write_db(transport, features)
        more = rng.normal(0, 1, (5, 8)).astype(np.float32)
        completion = transport.submit(
            Command(OP_APPEND_DB, transport.next_cid(), (db_id, 8),
                    more.tobytes())
        )
        assert completion.ok
        assert transport.device.database_metadata(db_id).feature_count == 15

    def test_full_query_flow(self, transport, rng):
        app = get_app("tir")
        features = rng.normal(0, 1, (2048, 512)).astype(np.float32)
        db_id = write_db(transport, features)

        model_blob = graph_to_bytes(app.build_scn(seed=1))
        load = transport.submit(
            Command(OP_LOAD_MODEL, transport.next_cid(), (), model_blob)
        )
        assert load.ok
        model_id = load.result[0]

        qfv = rng.normal(0, 1, 512).astype(np.float32)
        query = transport.submit(
            encode_query(transport.next_cid(), qfv, k=5,
                         model_id=model_id, db_id=db_id)
        )
        assert query.ok
        query_id = query.result[0]

        result = transport.submit(
            Command(OP_GET_RESULT, transport.next_cid(), (query_id,))
        )
        assert result.ok
        unpacked = decode_result_payload(result)
        assert len(unpacked["feature_ids"]) == 5
        assert unpacked["latency_us"] > 0
        assert list(unpacked["scores"]) == sorted(unpacked["scores"],
                                                  reverse=True)

    def test_set_qc(self, transport):
        completion = transport.submit(
            Command(OP_SET_QC, transport.next_cid(), (100, 64, 980))
        )
        assert completion.ok
        cache = transport.device.query_cache
        assert cache is not None
        assert cache.threshold == pytest.approx(0.10)
        assert cache.capacity == 64
        assert cache.qcn_accuracy == pytest.approx(0.98)

    def test_error_surfaces_as_status(self, transport):
        completion = transport.submit(
            Command(OP_READ_DB, transport.next_cid(), (99, 0, 1))
        )
        assert not completion.ok
        assert b"unknown database" in completion.payload

    def test_submit_bytes(self, transport, rng):
        features = rng.normal(0, 1, (4, 8)).astype(np.float32)
        blob = Command(OP_WRITE_DB, transport.next_cid(), (8,),
                       features.tobytes()).encode()
        completion = transport.submit_bytes(blob)
        assert completion.ok

    def test_accounting(self, transport, rng):
        features = rng.normal(0, 1, (4, 8)).astype(np.float32)
        write_db(transport, features)
        assert transport.commands_processed == 1
        assert transport.bytes_transferred >= 64 + features.nbytes
        assert transport.transfer_seconds(3_200_000_000) == pytest.approx(1.0)
