"""Tests for query-trace capture, serialization, and replay."""

import numpy as np
import pytest

from repro.workloads import QueryStream
from repro.workloads.traces import QueryTrace, capture_trace, replay_trace


def make_stream(**kw):
    defaults = dict(dim=32, n_intents=16, seed=2)
    defaults.update(kw)
    return QueryStream(**defaults)


class TestCapture:
    def test_arrivals_monotone(self):
        trace = capture_trace(make_stream(), 200, offered_qps=100.0, seed=1)
        arrivals = [q.arrival_s for q in trace.queries]
        assert arrivals == sorted(arrivals)
        assert len(trace) == 200

    def test_offered_rate_approximate(self):
        trace = capture_trace(make_stream(), 2000, offered_qps=50.0, seed=1)
        assert trace.offered_qps == pytest.approx(50.0, rel=0.15)

    def test_queries_follow_stream(self):
        stream = make_stream()
        trace = capture_trace(stream, 50, offered_qps=10.0, seed=3)
        direct = stream.generate(50)
        for traced, record in zip(trace.queries, direct):
            assert traced.intent == record.intent
            np.testing.assert_array_equal(traced.qfv, record.qfv)

    def test_validation(self):
        with pytest.raises(ValueError):
            capture_trace(make_stream(), 10, offered_qps=0.0)


class TestSerialization:
    def test_roundtrip(self):
        trace = capture_trace(make_stream(), 64, offered_qps=20.0, app="tir")
        restored = QueryTrace.from_bytes(trace.to_bytes())
        assert restored.app == "tir"
        assert len(restored) == 64
        for a, b in zip(trace.queries, restored.queries):
            assert a.arrival_s == pytest.approx(b.arrival_s)
            assert a.intent == b.intent
            np.testing.assert_array_equal(a.qfv, b.qfv)

    def test_empty_trace(self):
        trace = QueryTrace(app="x")
        assert len(QueryTrace.from_bytes(trace.to_bytes())) == 0
        assert trace.duration_s == 0.0


class TestReplay:
    def test_underloaded_latency_equals_service(self):
        trace = capture_trace(make_stream(), 100, offered_qps=10.0, seed=4)
        dist = replay_trace(trace, lambda q: 0.001)
        assert dist.mean_s == pytest.approx(0.001, rel=0.05)
        assert dist.utilization < 0.1
        assert not dist.saturated

    def test_overloaded_queue_grows(self):
        trace = capture_trace(make_stream(), 200, offered_qps=100.0, seed=4)
        dist = replay_trace(trace, lambda q: 0.05)  # 20 qps capacity
        assert dist.saturated
        assert dist.p99_s > dist.p50_s > 0.05
        # the backlog grows roughly linearly under 5x overload
        assert dist.latencies_s[-1] > dist.latencies_s[10]

    def test_near_saturation_tail_inflates(self):
        trace = capture_trace(make_stream(), 2000, offered_qps=90.0, seed=5)
        light = replay_trace(trace, lambda q: 0.002)  # rho ~ 0.18
        heavy = replay_trace(trace, lambda q: 0.0105)  # rho ~ 0.95
        assert heavy.p99_s / heavy.p50_s > light.p99_s / light.p50_s

    def test_multiple_servers_reduce_latency(self):
        trace = capture_trace(make_stream(), 400, offered_qps=100.0, seed=6)
        one = replay_trace(trace, lambda q: 0.015, servers=1)
        four = replay_trace(trace, lambda q: 0.015, servers=4)
        assert four.mean_s < one.mean_s
        assert not four.saturated

    def test_stateful_service_function(self):
        # a cache-like service: first query per intent is slow
        trace = capture_trace(make_stream(n_intents=4), 100,
                              offered_qps=5.0, seed=7)
        seen = set()

        def service(query):
            if query.intent in seen:
                return 0.0001
            seen.add(query.intent)
            return 0.01

        dist = replay_trace(trace, service)
        assert dist.mean_s < 0.002  # most queries hit

    def test_validation(self):
        trace = capture_trace(make_stream(), 10, offered_qps=10.0)
        with pytest.raises(ValueError):
            replay_trace(trace, lambda q: 0.01, servers=0)
        with pytest.raises(ValueError):
            replay_trace(trace, lambda q: -1.0)

    def test_empty(self):
        dist = replay_trace(QueryTrace(app="x"), lambda q: 1.0)
        assert dist.mean_s == 0.0
        assert dist.percentile(99) == 0.0
