"""Tests for latency breakdowns, utilization timelines, and profiles."""

import pytest

from repro.core.event_query import EventQuerySimulator
from repro.obs import (
    MetricsRegistry,
    Tracer,
    profile_resources,
    query_breakdown,
    utilization_timelines,
)
from repro.obs.export import LatencyBreakdown
from repro.ssd import Ssd
from repro.workloads import get_app


@pytest.fixture(scope="module")
def traced_run():
    """One traced + metered event-driven query on a small database."""
    ssd = Ssd()
    app = get_app("tir")
    meta = ssd.ftl.create_database(app.feature_bytes, 20_000)
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = EventQuerySimulator().run(
        app, meta, max_pages_per_channel=32, tracer=tracer, metrics=metrics
    )
    return result, tracer, metrics


class TestLatencyBreakdown:
    def test_components_sum_exactly(self, traced_run):
        """Acceptance criterion: breakdown sums to end-to-end latency."""
        result, _, _ = traced_run
        breakdown = query_breakdown(result)
        # same floats the simulator added -> exact equality, not approx
        assert breakdown.component_sum == breakdown.total_seconds
        assert breakdown.total_seconds == result.total_seconds

    def test_overhead_components_match_result(self, traced_run):
        result, _, _ = traced_run
        comp = query_breakdown(result).components
        assert comp["flash scan (overlapped I/O+compute)"] == result.scan_seconds
        assert comp["engine dispatch"] == result.dispatch_seconds
        assert comp["top-K merge"] == result.merge_seconds
        assert comp["accelerator setup"] == result.setup_seconds

    def test_fractions(self):
        b = LatencyBreakdown(total_seconds=4.0, components={"a": 1.0, "b": 3.0})
        assert b.fraction("a") == 0.25
        assert b.fraction("missing") == 0.0
        d = b.as_dict()
        assert d["fractions"]["b"] == 0.75

    def test_zero_total_fraction(self):
        assert LatencyBreakdown(total_seconds=0.0).fraction("x") == 0.0

    def test_table_renders(self, traced_run):
        result, _, _ = traced_run
        text = query_breakdown(result).table().render()
        assert "flash scan" in text
        assert "100.0%" in text


class TestUtilizationTimelines:
    def test_fractions_in_unit_interval(self, traced_run):
        _, tracer, _ = traced_run
        lines = utilization_timelines(tracer, bins=16)
        assert lines  # resource tracks exist
        for name, series in lines.items():
            assert len(series) == 16
            assert all(0.0 <= f <= 1.0 for f in series)

    def test_phase_tracks_excluded(self, traced_run):
        _, tracer, _ = traced_run
        lines = utilization_timelines(tracer, bins=8)
        assert not any(name.startswith("engine/") for name in lines)

    def test_known_occupancy(self):
        t = Tracer()
        track = t.track("ch", "bus")
        t.complete(track, "xfer", 0.0, 1.0, cat="ssd.bus")  # busy [0, 1]
        series = utilization_timelines(t, bins=4, end=2.0)["ch/bus"]
        assert series == pytest.approx([1.0, 1.0, 0.0, 0.0])

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            utilization_timelines(Tracer(), bins=0)

    def test_empty_tracer_yields_nothing(self):
        assert utilization_timelines(Tracer()) == {}


class TestProfileResources:
    def test_sorted_busiest_first(self, traced_run):
        _, tracer, _ = traced_run
        usages = profile_resources(tracer)
        busy = [u.busy_seconds for u in usages]
        assert busy == sorted(busy, reverse=True)
        for u in usages:
            assert 0.0 <= u.utilization <= 1.0
            assert u.idle_seconds >= 0.0
            assert u.spans > 0

    def test_top_limits_output(self, traced_run):
        _, tracer, _ = traced_run
        assert len(profile_resources(tracer, top=2)) == 2

    def test_idle_gap_walk(self):
        t = Tracer()
        track = t.track("ch", "accel")
        t.complete(track, "a", 1.0, 1.0, cat="accel.compute")  # [1, 2]
        t.complete(track, "b", 4.0, 1.0, cat="accel.compute")  # [4, 5]
        (usage,) = profile_resources(t, end=6.0)
        # gaps: [0,1], [2,4], [5,6] -> longest 2.0
        assert usage.idle_gaps == 3
        assert usage.longest_idle_gap_s == pytest.approx(2.0)
        assert usage.busy_seconds == pytest.approx(2.0)
        assert usage.utilization == pytest.approx(2.0 / 6.0)
        d = usage.as_dict()
        assert d["idle_gaps"] == 3

    def test_metrics_snapshot_has_engine_and_ssd(self, traced_run):
        _, _, metrics = traced_run
        snap = metrics.snapshot()
        assert snap["engine.queries"] == 1
        assert snap["ssd.pages_delivered"] > 0
        assert snap["ssd.page_delivery_s"]["count"] == snap["ssd.pages_delivered"]
