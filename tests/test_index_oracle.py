"""Differential recall oracle: the index layer changes nothing it shouldn't.

Two contracts, pinned bit for bit:

* at ``nprobe = n_lists`` the IVF probe degenerates to the exhaustive
  scan — identical ids, scores, latency breakdown *and* transfer
  seconds at every accelerator level;
* with ``index_mode="off"`` (or simply no index built) the device is
  the seed reproduction, and the five pre-index legs of the combined
  perf-gate scorecard are byte-identical to the checked-in baseline.
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.api import DeepStoreApiError
from repro.index import IndexedDevice
from repro.ingest import LifecycleDevice
from repro.serving import QueryServer, ServingConfig
from repro.workloads import get_app

APP = get_app("textqa")
DIM = APP.feature_floats
GRAPH = APP.build_scn(seed=1)
N = 256
N_LISTS = 8
K = 7


def _make(level="channel", index_mode="ivf", seed=5):
    rng = np.random.default_rng(seed)
    device = IndexedDevice(level=level, index_mode=index_mode)
    db = device.write_db(rng.normal(0, 1, (N, DIM)).astype(np.float32))
    model = device.load_graph(GRAPH)
    return device, db, model, rng


def _probes(rng, n=3):
    return rng.normal(0, 1, (n, DIM)).astype(np.float32)


def _assert_bit_identical(routed, base):
    assert routed.feature_ids.tolist() == base.feature_ids.tolist()
    np.testing.assert_array_equal(routed.scores, base.scores)
    assert routed.latency == base.latency
    assert routed.latency.total_seconds == base.latency.total_seconds
    assert routed.transfer_seconds == base.transfer_seconds
    assert routed.object_ids.tolist() == base.object_ids.tolist()
    assert routed.cache_hit == base.cache_hit


class TestFullProbeOracle:
    """nprobe = n_lists == the exhaustive scan, per accelerator level."""

    @pytest.mark.parametrize("level", ["ssd", "channel", "chip"])
    def test_bit_identical_ids_scores_and_seconds(self, level):
        device, db, model, rng = _make(level=level)
        device.build_index(db, model, N_LISTS, iterations=4, seed=2)
        for probe in _probes(rng):
            routed = device.get_results(
                device.query(probe, K, model, db, nprobe=N_LISTS)
            )
            device.index_mode = "off"
            base = device.get_results(device.query(probe, K, model, db))
            device.index_mode = "ivf"
            _assert_bit_identical(routed, base)
            # routing is skipped entirely at full probe
            assert routed.routing_seconds == 0.0
            assert routed.nprobe == N_LISTS
            assert routed.probed_rows == N
            # the seed path never carries index annotations
            assert base.routing_seconds == 0.0
            assert base.nprobe == 0

    def test_bit_identical_on_subranges(self):
        device, db, model, rng = _make()
        device.build_index(db, model, N_LISTS, iterations=4, seed=2)
        probe = _probes(rng, 1)[0]
        for start, end in [(0, N), (10, 200), (64, 65)]:
            routed = device.get_results(
                device.query(probe, K, model, db, start, end, nprobe=N_LISTS)
            )
            device.index_mode = "off"
            base = device.get_results(
                device.query(probe, K, model, db, start, end)
            )
            device.index_mode = "ivf"
            _assert_bit_identical(routed, base)

    def test_oversized_nprobe_clamps_to_full_probe(self):
        device, db, model, rng = _make()
        device.build_index(db, model, N_LISTS, iterations=4, seed=2)
        probe = _probes(rng, 1)[0]
        big = device.get_results(device.query(probe, K, model, db, nprobe=999))
        full = device.get_results(
            device.query(probe, K, model, db, nprobe=N_LISTS)
        )
        _assert_bit_identical(big, full)
        assert big.nprobe == N_LISTS


class TestOffModeParity:
    """index_mode='off' is the seed path, even with an index built."""

    def test_off_mode_matches_plain_lifecycle_device(self):
        plain = LifecycleDevice()
        rng = np.random.default_rng(5)
        db_p = plain.write_db(rng.normal(0, 1, (N, DIM)).astype(np.float32))
        model_p = plain.load_graph(GRAPH)

        off, db_o, model_o, rng_o = _make(index_mode="off")
        off.build_index(db_o, model_o, N_LISTS, iterations=4, seed=2)

        for probe in _probes(np.random.default_rng(17)):
            base = plain.get_results(plain.query(probe, K, model_p, db_p))
            got = off.get_results(off.query(probe, K, model_o, db_o))
            _assert_bit_identical(got, base)
            assert got.routing_seconds == 0.0
            assert got.nprobe == 0

    def test_unindexed_device_delegates(self):
        device, db, model, rng = _make()  # ivf mode, but no index built
        probe = _probes(rng, 1)[0]
        result = device.get_results(device.query(probe, K, model, db))
        assert result.routing_seconds == 0.0
        assert result.nprobe == 0
        assert result.probed_rows == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(DeepStoreApiError, match="index_mode"):
            IndexedDevice(index_mode="fancy")


class TestCombinedScorecardDifferential:
    """The base reproduction's perf-gate legs are untouched."""

    def test_pre_index_legs_match_checked_in_baseline(self):
        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        import perf_gate

        baseline = json.loads(
            (Path(perf_gate.__file__).resolve().parent
             / "results" / "baseline_scorecard.json").read_text()
        )
        from repro.analysis.scorecard import build_scorecard
        from repro.cluster import build_cluster_scorecard
        from repro.ingest import build_ingest_scorecard
        from repro.recovery.scorecard import build_recovery_scorecard
        from repro.serving.scorecard import build_serving_scorecard

        legs = {
            "repro": json.loads(build_scorecard().to_json()),
            "serving": build_serving_scorecard(),
            "cluster": build_cluster_scorecard(),
            "ingest": build_ingest_scorecard(),
            "recovery": build_recovery_scorecard(),
        }
        for name, card in legs.items():
            assert (
                json.dumps(card, indent=2, sort_keys=True)
                == json.dumps(baseline[name], indent=2, sort_keys=True)
            ), f"leg {name!r} drifted from the checked-in baseline"
        # the index and tenancy legs are additive: two extra keys,
        # nothing else
        assert set(baseline) == set(legs) | {"index", "tenancy"}


class TestServingIndexKnob:
    """ServingConfig grows index knobs; the default is byte-inert."""

    def _config(self, **kw):
        kw.setdefault("app", "tir")
        kw.setdefault("features", 50_000)
        kw.setdefault("queue_bound", 16)
        return ServingConfig(**kw)

    def test_default_config_is_unindexed(self):
        server = QueryServer(self._config())
        assert not server.config.indexed
        assert server.routing_seconds_per_query == 0.0

    def test_indexed_serving_raises_saturation_qps(self):
        base = QueryServer(self._config()).saturation_qps()
        indexed = QueryServer(
            self._config(index_lists=32, index_nprobe=4)
        ).saturation_qps()
        assert indexed > base

    def test_full_probe_serving_adds_no_routing(self):
        server = QueryServer(self._config(index_lists=8, index_nprobe=8))
        assert server.config.indexed
        assert server.routing_seconds_per_query == 0.0

    def test_index_knob_validation(self):
        with pytest.raises(ValueError, match="index_nprobe"):
            self._config(index_lists=8, index_nprobe=9)
        with pytest.raises(ValueError, match="index_nprobe"):
            self._config(index_lists=8, index_nprobe=0)
        with pytest.raises(ValueError, match="index_nprobe"):
            self._config(index_lists=0, index_nprobe=2)
        with pytest.raises(ValueError, match="index_lists"):
            self._config(index_lists=-1)
