"""The multi-tenant plane end to end: parity, the production day, and
the scorecard fragment.

The headline check is **single-tenant parity**: one tenant on one
backend with the autoscaler off must reproduce the single-tenant
:class:`~repro.serving.server.QueryServer` batch for batch — identical
admission counts and bit-identical latency aggregates — because the
tenancy plane prices batches through the very same cost models.  The
rest exercises the scaled-down production day: conservation under
burst + failure + ingest, the degraded-window pricing, the autoscaler
reacting to a scripted overload, and the JSON scorecard shape the perf
gate consumes.
"""

import pytest

from repro.serving.arrivals import ArrivalEvent
from repro.serving.server import QueryServer, ServingConfig
from repro.tenancy.day import (
    ProductionDayReport,
    default_production_config,
    run_production_day,
)
from repro.tenancy.server import MultiTenantServer
from repro.tenancy.spec import (
    AutoscalerConfig,
    BurstSpec,
    TenancyConfig,
    TenantSpec,
)
from repro.tenancy.trace import generate_day

#: a compressed day: long enough for diurnal shape + a burst window,
#: short enough for test wall-clock
SMALL_DAY_S = 4000.0


def small_production_config(**overrides):
    """The canonical production day, shrunk for tests."""
    kwargs = dict(seed=3, day_s=SMALL_DAY_S, features=2_000_000)
    kwargs.update(overrides)
    return default_production_config(**kwargs)


class TestSingleTenantParity:
    """One tenant, one backend, autoscaler off == QueryServer."""

    def test_aggregates_bit_identical(self):
        spec = TenantSpec(
            name="solo",
            base_qps=8.0,   # ~1.5x saturation at 8M rows: real queueing
            amplitude=0.0,
            apps=(("tir", 1.0),),
            deadline_class="standard",  # reject policy, like the server
            queue_bound=8,
        )
        config = TenancyConfig(
            tenants=(spec,),
            day_s=400.0,
            seed=5,
            features=8_000_000,
            n_shards=1,
            n_replicas=1,
            max_batch=4,
            initial_backends=1,
            autoscaler=AutoscalerConfig(enabled=False),
        )
        trace = generate_day(config)
        assert trace, "need a nonempty day"
        plane = MultiTenantServer(config)
        day = plane.run(trace, autoscale=False)
        solo = day.tenants["solo"]

        server = QueryServer(ServingConfig(
            app="tir",
            features=8_000_000,
            queue_bound=8,
            policy="reject",
            max_batch=4,
            n_servers=1,
        ))
        result = server.run([
            ArrivalEvent(
                time_s=a.time_s, intent=a.intent, priority=0,
                compat="tir", kind="query",
            )
            for a in trace
        ])

        assert solo.offered == result.arrived
        assert solo.admitted == result.admitted
        assert solo.completed == result.completed
        assert solo.rejected == result.rejected
        assert solo.evicted == result.evicted
        assert solo.expired == result.expired
        # bit-identical aggregates: same batches at the same times
        assert solo.mean_latency_s == result.mean_latency_s
        assert solo.p50_s == result.p50_s
        assert solo.p99_s == result.p99_s
        assert solo.p999_s == result.p999_s
        assert solo.max_latency_s == result.max_latency_s
        assert solo.mean_wait_s == result.mean_wait_s
        assert day.mean_batch == result.mean_batch
        assert solo.conserved and result.conserved
        # the load level genuinely exercised admission control
        assert solo.rejected > 0
        assert solo.completed > 0


class TestProductionDay:
    @pytest.fixture(scope="class")
    def report(self) -> ProductionDayReport:
        return run_production_day(small_production_config())

    def test_every_tenant_conserved(self, report):
        day = report.result
        assert day.conserved
        for name, t in day.tenants.items():
            assert t.offered > 0, name
            assert t.completed > 0, name
            assert 0.0 < t.goodput_fraction <= 1.0
            assert t.offered == t.admitted + t.rejected
        # ingest really flowed and was completed
        ingest = day.tenants["ingestpipe"]
        assert ingest.writes_offered > 0
        assert ingest.writes_completed > 0

    def test_isolation_pair_present_and_directional(self, report):
        assert report.aggressor == "search"
        ratios = report.isolation_ratios()
        assert set(ratios) == {"analytics", "ingestpipe"}
        # victims are never *faster* with the aggressor around (equal
        # is possible when the p99 sample lands outside the burst)
        assert all(r >= 0.99 for r in ratios.values()), ratios
        # paired runs kept victim arrivals byte-identical
        for name in ratios:
            with_r = report.with_aggressor_fixed.tenants[name]
            solo_r = report.without_aggressor.tenants[name]
            assert with_r.offered == solo_r.offered

    def test_action_log_is_a_consistent_chain(self, report):
        day = report.result
        backends = small_production_config().initial_backends
        for action in day.actions:
            assert action.backends_before == backends
            assert abs(action.backends_after - backends) == 1
            backends = action.backends_after
            assert action.effective_s > action.at_s
        assert day.peak_backends >= day.final_backends
        assert day.final_backends == backends

    def test_report_dict_shape(self, report):
        d = report.as_dict()
        assert set(d) == {"day", "aggressor", "isolation_p99_ratio"}
        day = d["day"]
        for key in (
            "tenants", "scale_ups", "scale_downs", "alerts",
            "first_alert_s", "peak_backends", "final_backends",
            "rebalances", "rebalance_rows_moved", "mean_batch",
            "utilization", "conserved",
        ):
            assert key in day
        assert day["conserved"] == 1
        for row in day["tenants"].values():
            assert row["conserved"] == 1

    def test_determinism(self, report):
        again = run_production_day(small_production_config())
        assert again.as_dict() == report.as_dict()


class TestDegradedWindow:
    def test_failure_prices_the_detection_ladder(self):
        config = small_production_config()
        plane = MultiTenantServer(config)
        assert config.failure is not None
        for app, healthy in plane._healthy.items():
            degraded = plane._degraded[app]
            assert (
                degraded.cost.service_seconds(4)
                > healthy.cost.service_seconds(4)
            ), app

    def test_failure_day_is_slower_than_clean_day(self):
        config = small_production_config()
        clean = TenancyConfig(
            tenants=config.tenants, day_s=config.day_s, seed=config.seed,
            features=config.features, n_shards=config.n_shards,
            n_replicas=config.n_replicas, max_batch=config.max_batch,
            initial_backends=config.initial_backends,
            autoscaler=config.autoscaler, failure=None,
            skew_threshold=config.skew_threshold,
            min_inserts=config.min_inserts,
        )
        trace = generate_day(config)
        with_fail = MultiTenantServer(config).run(trace, autoscale=False)
        without = MultiTenantServer(clean).run(trace, autoscale=False)
        total_with = sum(
            t.mean_latency_s * t.completed
            for t in with_fail.tenants.values()
        )
        total_without = sum(
            t.mean_latency_s * t.completed
            for t in without.tenants.values()
        )
        assert total_with > total_without


class TestAutoscalerOnPlane:
    def test_scripted_overload_triggers_scale_up(self):
        day_s = 3000.0
        config = TenancyConfig(
            tenants=(
                TenantSpec(
                    name="hot",
                    base_qps=2.0,
                    amplitude=0.0,
                    apps=(("tir", 1.0),),
                    deadline_class="interactive",
                    queue_bound=64,
                    bursts=(BurstSpec(
                        start_fraction=0.3,
                        duration_fraction=0.3,
                        multiplier=6.0,
                    ),),
                ),
            ),
            day_s=day_s,
            seed=1,
            features=4_000_000,
            n_shards=1,
            n_replicas=1,
            max_batch=8,
            initial_backends=1,
            autoscaler=AutoscalerConfig(
                min_backends=1,
                max_backends=3,
                window_s=day_s / 20.0,
                scale_up_threshold=3.0,
                scale_down_threshold=0.5,
                evaluate_interval_s=day_s / 60.0,
                cooldown_s=day_s / 20.0,
                actuation_s=10.0,
            ),
        )
        report = run_production_day(config, isolation=False)
        day = report.result
        ups = [a for a in day.actions if a.kind == "scale_up"]
        assert ups, "sustained 2x overload must trip the burn scaler"
        assert ups[0].trigger_tenant == "hot"
        assert ups[0].trigger_burn > 3.0
        assert day.peak_backends > 1
        assert day.conserved

    def test_autoscale_off_pins_capacity(self):
        config = small_production_config()
        trace = generate_day(config)
        day = MultiTenantServer(config).run(trace, autoscale=False)
        assert day.actions == []
        assert day.peak_backends == config.initial_backends
        assert day.final_backends == config.initial_backends


class TestScorecardFragment:
    def test_scorecard_flattens_for_the_gate(self):
        from repro.serving.scorecard import flatten

        report = run_production_day(
            small_production_config(), isolation=True
        )
        card = dict(report.as_dict())
        card["seed"] = 3
        leaves = flatten(card)
        assert len(leaves) > 40
        assert all(
            isinstance(v, (int, float, str)) for v in leaves.values()
        )
