"""Tests for NN IR operators: shapes, accounting, forward semantics."""

import numpy as np
import pytest

from repro.nn.layers import (
    Activation,
    Concat,
    Conv2D,
    Dense,
    Dot,
    Elementwise,
    Flatten,
    Input,
    ScoreHead,
    OP_REGISTRY,
)


class TestInput:
    def test_shape(self):
        op = Input((3, 4))
        assert op.output_shape() == (3, 4)
        assert op.size == 12

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Input(())
        with pytest.raises(ValueError):
            Input((0, 4))

    def test_cannot_execute(self):
        with pytest.raises(RuntimeError):
            Input((2,)).forward({})


class TestDense:
    def test_shape_and_accounting(self):
        op = Dense(128, 64)
        assert op.output_shape((128,)) == (64,)
        assert op.macs((128,)) == 128 * 64
        assert op.flops((128,)) == 2 * 128 * 64
        assert op.weight_params() == 128 * 64 + 64
        assert op.weight_bytes() == 4 * (128 * 64 + 64)

    def test_no_bias_accounting(self):
        assert Dense(10, 5, bias=False).weight_params() == 50

    def test_flattens_structured_input(self):
        assert Dense(24, 4).output_shape((2, 3, 4)) == (4,)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Dense(10, 5).output_shape((11,))

    def test_forward_matches_numpy(self):
        rng = np.random.default_rng(0)
        op = Dense(6, 3)
        params = op.init_params(rng)
        x = rng.normal(0, 1, (4, 6)).astype(np.float32)
        np.testing.assert_allclose(
            op.forward(params, x), x @ params["W"] + params["b"], rtol=1e-6
        )

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 5)


class TestConv2D:
    def test_output_shape_same_padding(self):
        op = Conv2D(3, 8, kernel=3, padding=1)
        assert op.output_shape((3, 16, 16)) == (8, 16, 16)

    def test_output_shape_stride(self):
        op = Conv2D(3, 8, kernel=3, stride=2, padding=1)
        assert op.output_shape((3, 16, 16)) == (8, 8, 8)

    def test_macs(self):
        op = Conv2D(3, 8, kernel=3, padding=1)
        # 16*16 pixels * 8 out channels * 3*3*3 reduction
        assert op.macs((3, 16, 16)) == 16 * 16 * 8 * 27
        assert op.flops((3, 16, 16)) == 2 * op.macs((3, 16, 16))

    def test_weight_params(self):
        assert Conv2D(3, 8, kernel=3).weight_params() == 8 * 3 * 9 + 8

    def test_forward_matches_direct_convolution(self):
        rng = np.random.default_rng(1)
        op = Conv2D(2, 3, kernel=3, stride=1, padding=1)
        params = op.init_params(rng)
        x = rng.normal(0, 1, (2, 2, 5, 5)).astype(np.float32)
        y = op.forward(params, x)
        # direct computation at one output location
        n, oc, i, j = 1, 2, 2, 3
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        patch = xp[n, :, i : i + 3, j : j + 3]
        expected = float(np.sum(patch * params["W"][oc]) + params["b"][oc])
        assert y[n, oc, i, j] == pytest.approx(expected, rel=1e-5)

    def test_bad_channel_count(self):
        with pytest.raises(ValueError):
            Conv2D(3, 8, kernel=3).output_shape((4, 8, 8))

    def test_kernel_too_large(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel=9).output_shape((1, 4, 4))


class TestActivation:
    @pytest.mark.parametrize("kind", ["relu", "sigmoid", "tanh", "identity"])
    def test_shape_preserved(self, kind):
        assert Activation(kind).output_shape((3, 4)) == (3, 4)

    def test_relu(self):
        x = np.array([[-1.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(
            Activation("relu").forward({}, x), [[0.0, 2.0]]
        )

    def test_sigmoid_bounds(self):
        x = np.array([[-100.0, 0.0, 100.0]], dtype=np.float32)
        y = Activation("sigmoid").forward({}, x)
        assert 0.0 <= y.min() and y.max() <= 1.0
        assert y[0, 1] == pytest.approx(0.5)

    def test_identity_free(self):
        assert Activation("identity").flops((100,)) == 0
        assert Activation("relu").flops((100,)) == 100

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Activation("swish")


class TestElementwise:
    @pytest.mark.parametrize(
        "kind,expected",
        [
            ("add", [[3.0, -1.0]]),
            ("sub", [[-1.0, 5.0]]),
            ("mul", [[2.0, -6.0]]),
            ("absdiff", [[1.0, 5.0]]),
        ],
    )
    def test_semantics(self, kind, expected):
        a = np.array([[1.0, 2.0]], dtype=np.float32)
        b = np.array([[2.0, -3.0]], dtype=np.float32)
        np.testing.assert_allclose(Elementwise(kind).forward({}, a, b), expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Elementwise("add").output_shape((3,), (4,))

    def test_flops_one_per_element(self):
        assert Elementwise("mul").flops((4, 5), (4, 5)) == 20


class TestDot:
    def test_scalar_output(self):
        a = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        b = np.array([[4.0, 5.0, 6.0]], dtype=np.float32)
        assert Dot().forward({}, a, b)[0, 0] == pytest.approx(32.0)

    def test_shape(self):
        assert Dot().output_shape((6,), (2, 3)) == (1,)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            Dot().output_shape((3,), (4,))

    def test_macs(self):
        assert Dot().macs((8,), (8,)) == 8


class TestConcatFlatten:
    def test_concat(self):
        a = np.ones((2, 3), dtype=np.float32)
        b = np.zeros((2, 2), dtype=np.float32)
        out = Concat().forward({}, a, b)
        assert out.shape == (2, 5)
        assert Concat().output_shape((3,), (2,)) == (5,)

    def test_flatten(self):
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        out = Flatten().forward({}, x)
        assert out.shape == (2, 12)
        assert Flatten().output_shape((3, 4)) == (12,)


class TestScoreHead:
    def test_sigmoid_diff_is_match_probability(self):
        x = np.array([[0.0, 2.0], [2.0, 0.0]], dtype=np.float32)
        y = ScoreHead("sigmoid_diff").forward({}, x)
        assert y.shape == (2, 1)
        assert y[0, 0] > 0.5 > y[1, 0]

    def test_sigmoid(self):
        x = np.array([[0.0]], dtype=np.float32)
        assert ScoreHead("sigmoid").forward({}, x)[0, 0] == pytest.approx(0.5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ScoreHead("sigmoid_diff").output_shape((3,))
        with pytest.raises(ValueError):
            ScoreHead("sigmoid").output_shape((2,))
        assert ScoreHead("sigmoid_diff").output_shape((2,)) == (1,)

    def test_no_parameters(self):
        assert ScoreHead("sigmoid").weight_params() == 0


def test_registry_covers_all_ops():
    for name in (
        "Input", "Dense", "Conv2D", "Activation", "Elementwise", "Dot",
        "Concat", "Flatten", "ScoreHead",
    ):
        assert name in OP_REGISTRY
