"""Tests for the metrics registry primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.faults.injector import ReliabilityCounters
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 50.0) == 3.0
        assert percentile(values, 100.0) == 5.0
        assert percentile(values, 1.0) == 1.0

    def test_always_an_observed_value(self):
        values = [0.3, 0.1, 0.9]
        for q in (10.0, 33.0, 66.0, 99.0):
            assert percentile(values, q) in values

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestGauge:
    def test_set_tracks_peak(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.peak == 3.0

    def test_add(self):
        g = Gauge("depth")
        g.add(2.0)
        g.add(-1.5)
        assert g.value == pytest.approx(0.5)
        assert g.peak == 2.0


class TestHistogram:
    def test_exact_min_max_mean(self):
        h = Histogram("lat", bounds=[1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.min == 0.5
        assert h.max == 500.0
        assert h.mean == pytest.approx(138.875)

    def test_quantile_is_bucket_upper_edge(self):
        h = Histogram("lat", bounds=[1.0, 10.0, 100.0])
        for v in (0.5, 0.6, 0.7, 50.0):
            h.observe(v)
        # p50 rank lands in the first bucket, whose upper edge is 1.0
        assert h.p50 == 1.0
        # p99 rank lands in the (10, 100] bucket -> edge 100, clamped to max
        assert h.p99 == 50.0

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("lat", bounds=[100.0])
        h.observe(3.0)
        assert h.p50 == 3.0  # edge 100 clamped down to the observed max

    def test_overflow_bucket(self):
        h = Histogram("lat", bounds=[1.0])
        h.observe(99.0)
        assert h.counts[-1] == 1
        assert h.p99 == 99.0  # overflow resolves to the exact max

    def test_empty_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(50.0)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=[2.0, 1.0])

    def test_as_dict_empty_and_filled(self):
        h = Histogram("lat", bounds=[1.0])
        assert h.as_dict() == {"count": 0}
        h.observe(0.5)
        d = h.as_dict()
        assert d["count"] == 1
        assert d["min"] == d["max"] == 0.5

    @given(st.lists(st.floats(min_value=1e-7, max_value=9.0), min_size=1,
                    max_size=60))
    def test_default_buckets_bound_true_quantile(self, values):
        """Bucketed p50 is sandwiched: >= true nearest-rank, <= max."""
        h = Histogram("lat")
        for v in values:
            h.observe(v)
        true_p50 = percentile(values, 50.0)
        assert h.p50 >= true_p50 - 1e-12
        assert h.p50 <= max(values)


class TestMetricsRegistry:
    def test_get_or_create_shares_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert len(reg) == 1
        assert "a.b" in reg

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=[1.0]).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == {"value": 1.5, "peak": 1.5}
        assert snap["h"]["count"] == 1

    def test_histogram_bounds_only_apply_on_creation(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=[1.0, 2.0])
        assert reg.histogram("h") is h
        assert reg.histogram("h", bounds=[9.0]) is h  # later bounds ignored


class TestReliabilityCountersOnRegistry:
    def test_standalone_behaviour_unchanged(self):
        counts = ReliabilityCounters()
        counts.page_reads += 1
        counts.retry_passes += 3
        assert counts.page_reads == 1
        assert counts.as_dict()["retry_passes"] == 3
        assert counts == counts

    def test_shared_registry_exposes_fault_counters(self):
        reg = MetricsRegistry()
        counts = ReliabilityCounters(registry=reg)
        counts.page_reads += 2
        counts.failed_reads = 1
        assert reg.counter("faults.page_reads").value == 2
        assert reg.snapshot()["faults.failed_reads"] == 1

    def test_injector_wires_metrics_registry(self):
        reg = MetricsRegistry()
        plan = FaultPlan(read_retry_rate=1.0, read_retry_max=2)
        injector = FaultInjector(plan=plan, seed=7, metrics=reg)
        assert injector.counts.registry is reg
        from repro.ssd.geometry import PhysicalPageAddress

        addr = PhysicalPageAddress(0, 0, 0, 0, 0)
        retries = injector.page_read_retries(addr)
        assert retries >= 1  # rate 1.0 always faults
        assert reg.counter("faults.page_reads").value == 1
        assert reg.counter("faults.retry_passes").value == retries

    def test_observed_retry_rate(self):
        counts = ReliabilityCounters()
        assert counts.observed_retry_rate == 0.0
        counts.page_reads = 4
        counts.pages_with_retry = 1
        assert counts.observed_retry_rate == 0.25


class TestTimeSeries:
    def test_samples_and_last(self):
        from repro.obs.metrics import TimeSeries

        ts = TimeSeries("qps", window_s=1.0)
        assert ts.last() is None
        ts.sample(0.5, 10.0)
        ts.sample(1.5, 20.0)
        assert ts.last() == 20.0
        assert ts.samples == [(0.5, 10.0), (1.5, 20.0)]

    def test_window_is_half_open(self):
        from repro.obs.metrics import TimeSeries

        ts = TimeSeries("g", window_s=1.0)
        for t, v in ((0.5, 1.0), (1.5, 2.0), (2.5, 3.0)):
            ts.sample(t, v)
        # (0.5, 1.5]: the trailing-edge sample at exactly 0.5 is OUT,
        # the leading-edge sample at exactly 1.5 is IN
        assert ts.window(1.5) == [2.0]
        # adjacent windows never double-count the boundary sample
        assert ts.window(0.5) == [1.0]

    def test_empty_window_stats(self):
        from repro.obs.metrics import TimeSeries

        ts = TimeSeries("g", window_s=0.1)
        assert ts.window(5.0) == []
        assert ts.window_stats(5.0) == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0
        }
        ts.sample(1.0, 7.0)
        assert ts.window_stats(9.0)["count"] == 0  # sample aged out

    def test_window_stats(self):
        from repro.obs.metrics import TimeSeries

        ts = TimeSeries("g", window_s=1.0)
        for t, v in ((0.2, 1.0), (0.6, 3.0), (0.9, 2.0)):
            ts.sample(t, v)
        stats = ts.window_stats(1.0)
        assert stats == {"count": 3, "mean": 2.0, "min": 1.0, "max": 3.0}

    def test_time_must_not_regress(self):
        from repro.obs.metrics import TimeSeries

        ts = TimeSeries("g", window_s=1.0)
        ts.sample(1.0, 1.0)
        ts.sample(1.0, 2.0)  # equal times fine (FIFO same-time events)
        with pytest.raises(ValueError):
            ts.sample(0.5, 3.0)

    def test_window_must_be_positive(self):
        from repro.obs.metrics import TimeSeries

        with pytest.raises(ValueError):
            TimeSeries("g", window_s=0.0)

    def test_registry_requires_window_at_creation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.timeseries("fresh")
        ts = reg.timeseries("fresh", window_s=0.5)
        assert reg.timeseries("fresh") is ts  # later callers may omit

    def test_registry_rejects_kind_mismatch(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.timeseries("x", window_s=1.0)

    def test_snapshot_includes_timeseries(self):
        reg = MetricsRegistry()
        ts = reg.timeseries("load", window_s=1.0)
        ts.sample(0.1, 4.0)
        snap = reg.snapshot()
        assert snap["load"] == {"window_s": 1.0, "samples": 1, "last": 4.0}
