"""Tests for the block FTL, database metadata, and DRAM model."""

import pytest
from hypothesis import given, strategies as st

from repro.ssd import BlockFtl, DatabaseMetadata, FtlError, SsdDram, SsdGeometry
from repro.ssd.dram import DramError


class TestDatabaseLayout:
    def test_page_aligned_large_features(self):
        meta = DatabaseMetadata(db_id=1, feature_bytes=44 * 1024, feature_count=10)
        assert meta.page_aligned
        assert meta.pages_per_feature == 3  # 44KB in 16KB pages
        assert meta.total_pages == 30
        assert meta.stored_bytes == 30 * 16384

    def test_packed_small_features(self):
        meta = DatabaseMetadata(db_id=1, feature_bytes=800, feature_count=100)
        assert not meta.page_aligned
        assert meta.features_per_page == 20
        assert meta.total_pages == 5

    def test_exact_page_feature(self):
        meta = DatabaseMetadata(db_id=1, feature_bytes=16 * 1024, feature_count=7)
        assert meta.page_aligned
        assert meta.pages_per_feature == 1
        assert meta.total_pages == 7

    def test_feature_page_span_aligned(self):
        meta = DatabaseMetadata(db_id=1, feature_bytes=44 * 1024, feature_count=10)
        assert meta.feature_page_span(0) == (0, 3)
        assert meta.feature_page_span(2) == (6, 3)

    def test_feature_page_span_packed(self):
        meta = DatabaseMetadata(db_id=1, feature_bytes=2048, feature_count=100)
        assert meta.feature_page_span(0) == (0, 1)
        assert meta.feature_page_span(9) == (1, 1)  # 8 features/page

    def test_span_out_of_range(self):
        meta = DatabaseMetadata(db_id=1, feature_bytes=2048, feature_count=10)
        with pytest.raises(FtlError):
            meta.feature_page_span(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            DatabaseMetadata(db_id=1, feature_bytes=0, feature_count=1)


class TestBlockFtl:
    def test_create_database_allocates_extent(self):
        ftl = BlockFtl(SsdGeometry())
        meta = ftl.create_database(2048, 1000)
        assert len(meta.extents) == 1
        assert meta.extents[0].start_ppn == BlockFtl.RESERVED_PAGES
        assert meta.extents[0].num_pages == meta.total_pages

    def test_databases_do_not_overlap(self):
        ftl = BlockFtl(SsdGeometry())
        a = ftl.create_database(2048, 1000)
        b = ftl.create_database(2048, 1000)
        assert b.extents[0].start_ppn >= a.extents[0].end_ppn

    def test_db_ids_unique(self):
        ftl = BlockFtl(SsdGeometry())
        ids = {ftl.create_database(2048, 10).db_id for _ in range(5)}
        assert len(ids) == 5

    def test_out_of_space(self):
        geo = SsdGeometry(channels=2, chips_per_channel=1, planes_per_chip=1,
                          blocks_per_plane=2, pages_per_block=64)
        ftl = BlockFtl(geo)
        with pytest.raises(FtlError):
            ftl.create_database(16 * 1024, geo.total_pages + 1)

    def test_append_extends_pages(self):
        ftl = BlockFtl(SsdGeometry())
        meta = ftl.create_database(16 * 1024, 100)
        ftl.append(meta.db_id, 50)
        assert meta.feature_count == 150
        assert meta.total_pages == 150
        assert len(meta.extents) == 2

    def test_subpage_append_buffers(self):
        ftl = BlockFtl(SsdGeometry())
        meta = ftl.create_database(2048, 5)  # one page, 3 slots free
        ftl.append(meta.db_id, 2)  # fits the current tail page
        assert meta.feature_count == 7
        assert meta.total_pages == 1
        assert ftl.buffered_features(meta.db_id) == 2
        ftl.append(meta.db_id, 4)  # overflows into a new page
        assert ftl.buffered_features(meta.db_id) == 0
        assert meta.total_pages == 2
        assert len(meta.extents) == 2

    def test_unknown_db(self):
        ftl = BlockFtl(SsdGeometry())
        with pytest.raises(FtlError):
            ftl.get(42)
        with pytest.raises(FtlError):
            ftl.append(42, 1)

    def test_metadata_cache_bytes(self):
        ftl = BlockFtl(SsdGeometry())
        for _ in range(20):
            ftl.create_database(2048, 10)
        # 32 bytes per database (paper §4.7.2)
        assert ftl.metadata_cache_bytes == 20 * 32

    def test_page_offset_to_ppn_through_extents(self):
        ftl = BlockFtl(SsdGeometry())
        meta = ftl.create_database(16 * 1024, 10)
        ftl.create_database(16 * 1024, 5)  # intervening allocation
        ftl.append(meta.db_id, 10)
        first = meta.page_offset_to_ppn(0)
        last = meta.page_offset_to_ppn(19)
        assert first == meta.extents[0].start_ppn
        assert last == meta.extents[1].start_ppn + 9
        with pytest.raises(FtlError):
            meta.page_offset_to_ppn(20)

    def test_all_ppns_count(self):
        ftl = BlockFtl(SsdGeometry())
        meta = ftl.create_database(2048, 1000)
        assert len(list(meta.all_ppns())) == meta.total_pages

    @given(st.integers(min_value=1, max_value=65536),
           st.integers(min_value=1, max_value=2000))
    def test_stored_bytes_cover_payload(self, feature_bytes, count):
        meta = DatabaseMetadata(db_id=1, feature_bytes=feature_bytes,
                                feature_count=count)
        assert meta.stored_bytes >= feature_bytes * count * (
            1 if meta.page_aligned else 0.5
        )
        # packing never wastes more than one page per feature/page group
        if meta.page_aligned:
            assert meta.total_pages == count * meta.pages_per_feature


class TestSsdDram:
    def test_allocate_and_free(self):
        dram = SsdDram(1024, 1e9)
        dram.allocate("a", 512)
        assert dram.free_bytes == 512
        dram.allocate("a", 256)  # resize
        assert dram.free_bytes == 768
        dram.free("a")
        assert dram.free_bytes == 1024

    def test_over_allocation(self):
        dram = SsdDram(1024, 1e9)
        with pytest.raises(DramError):
            dram.allocate("x", 2048)

    def test_free_unknown(self):
        with pytest.raises(DramError):
            SsdDram(1024, 1e9).free("nope")

    def test_transfer_seconds(self):
        dram = SsdDram(1024, 20e9)
        assert dram.transfer_seconds(20_000_000_000) == pytest.approx(1.0)
        assert dram.transfer_seconds(1e9, sharers=2) == pytest.approx(0.1)
        assert dram.bytes_transferred == 20_000_000_000 + 1e9

    def test_transfer_event_requires_sim(self):
        with pytest.raises(DramError):
            SsdDram(1024, 1e9).transfer_event(100, lambda: None)

    def test_validation(self):
        with pytest.raises(ValueError):
            SsdDram(0, 1e9)
        with pytest.raises(DramError):
            SsdDram(1024, 1e9).transfer_seconds(-1)
