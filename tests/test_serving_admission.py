"""Admission-queue unit tests: bound, policies, batching, conservation."""

import pytest

from repro.serving import POLICIES, AdmissionQueue, QueuedQuery


def q(qid, t=0.0, priority=0, compat="a"):
    return QueuedQuery(qid=qid, arrival_s=t, priority=priority, compat=compat)


class TestConstruction:
    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            AdmissionQueue(4, policy="fifo-ish")

    def test_deadline_policy_needs_deadline(self):
        with pytest.raises(ValueError):
            AdmissionQueue(4, policy="deadline")

    def test_deadline_only_for_deadline_policy(self):
        with pytest.raises(ValueError):
            AdmissionQueue(4, policy="reject", deadline_s=1.0)

    def test_policies_constant(self):
        assert POLICIES == ("reject", "drop-oldest", "deadline")


class TestRejectPolicy:
    def test_bound_enforced(self):
        queue = AdmissionQueue(3)
        results = [queue.offer(q(i, t=i * 0.1), now=i * 0.1)
                   for i in range(5)]
        assert results == [True, True, True, False, False]
        assert queue.depth == 3
        assert queue.counters.rejected == 2
        assert queue.counters.conserved(queue.depth)

    def test_rejected_newcomers_logged(self):
        queue = AdmissionQueue(1)
        queue.offer(q(0), now=0.0)
        queue.offer(q(1), now=0.1)
        shed = queue.take_shed()
        assert [(s.qid, reason) for s, reason in shed] == [(1, "rejected")]
        assert queue.take_shed() == []  # drained


class TestDropOldestPolicy:
    def test_evicts_oldest_of_least_important_class(self):
        queue = AdmissionQueue(2, policy="drop-oldest")
        queue.offer(q(0, priority=1), now=0.0)
        queue.offer(q(1, priority=1), now=0.1)
        assert queue.offer(q(2, priority=0), now=0.2)
        shed = queue.take_shed()
        assert [(s.qid, r) for s, r in shed] == [(0, "evicted")]
        assert queue.counters.evicted == 1
        assert queue.counters.conserved(queue.depth)

    def test_never_evicts_more_important_class(self):
        queue = AdmissionQueue(2, policy="drop-oldest")
        queue.offer(q(0, priority=0), now=0.0)
        queue.offer(q(1, priority=0), now=0.1)
        # newcomer is class 1: both residents are class 0 — reject it
        assert not queue.offer(q(2, priority=1), now=0.2)
        assert queue.counters.rejected == 1
        assert queue.counters.evicted == 0
        assert {x.qid for c in queue._classes.values() for x in c} == {0, 1}

    def test_same_class_evicts_oldest(self):
        queue = AdmissionQueue(2, policy="drop-oldest")
        queue.offer(q(0), now=0.0)
        queue.offer(q(1), now=0.1)
        assert queue.offer(q(2), now=0.2)
        assert queue.pop(0.3).qid == 1


class TestDeadlinePolicy:
    def test_expires_overdue_queries(self):
        queue = AdmissionQueue(8, policy="deadline", deadline_s=1.0)
        queue.offer(q(0, t=0.0), now=0.0)
        queue.offer(q(1, t=0.9), now=0.9)
        popped = queue.pop(now=1.5)   # q0 is 1.5s old -> expired
        assert popped.qid == 1
        assert queue.counters.expired == 1
        assert [(s.qid, r) for s, r in queue.take_shed()] == [
            (0, "expired")
        ]
        assert queue.counters.conserved(queue.depth)

    def test_fresh_queries_survive(self):
        queue = AdmissionQueue(8, policy="deadline", deadline_s=2.0)
        queue.offer(q(0, t=0.0), now=0.0)
        assert queue.pop(now=1.0).qid == 0
        assert queue.counters.expired == 0


class TestPopOrder:
    def test_priority_classes_pop_lowest_first(self):
        queue = AdmissionQueue(8)
        queue.offer(q(0, priority=2), now=0.0)
        queue.offer(q(1, priority=0), now=0.1)
        queue.offer(q(2, priority=1), now=0.2)
        assert [queue.pop(1.0).qid for _ in range(3)] == [1, 2, 0]

    def test_fifo_within_class(self):
        queue = AdmissionQueue(8)
        for i in range(5):
            queue.offer(q(i), now=i * 0.01)
        assert [queue.pop(1.0).qid for _ in range(5)] == list(range(5))

    def test_pop_empty(self):
        assert AdmissionQueue(4).pop(0.0) is None
        assert AdmissionQueue(4).pop_batch(0.0, 4) == []


class TestPopBatch:
    def test_coalesces_compatible_prefix(self):
        queue = AdmissionQueue(8)
        for i, compat in enumerate(["a", "a", "a", "b", "a"]):
            queue.offer(q(i, compat=compat), now=i * 0.01)
        batch = queue.pop_batch(1.0, max_batch=8)
        # only the contiguous same-compat prefix: the "b" at index 3
        # fences off the trailing "a"
        assert [x.qid for x in batch] == [0, 1, 2]
        assert [x.qid for x in queue.pop_batch(1.0, 8)] == [3]
        assert [x.qid for x in queue.pop_batch(1.0, 8)] == [4]

    def test_respects_max_batch(self):
        queue = AdmissionQueue(16)
        for i in range(6):
            queue.offer(q(i), now=0.0)
        assert len(queue.pop_batch(1.0, max_batch=4)) == 4
        assert len(queue.pop_batch(1.0, max_batch=4)) == 2

    def test_does_not_cross_priority_classes(self):
        queue = AdmissionQueue(8)
        queue.offer(q(0, priority=0, compat="a"), now=0.0)
        queue.offer(q(1, priority=1, compat="a"), now=0.1)
        batch = queue.pop_batch(1.0, max_batch=8)
        assert [x.qid for x in batch] == [0]

    def test_counts_every_pop(self):
        queue = AdmissionQueue(8)
        for i in range(4):
            queue.offer(q(i), now=0.0)
        queue.pop_batch(1.0, max_batch=3)
        queue.pop_batch(1.0, max_batch=3)
        assert queue.counters.popped == 4
        assert queue.counters.conserved(queue.depth)

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            AdmissionQueue(4).pop_batch(0.0, 0)
