"""Tests for the design-space exploration (Fig. 6 / Table 3)."""

import pytest

from repro.core.dse import (
    DesignPoint,
    explore_pe_scaling,
    search_configurations,
    validate_placement_power,
)
from repro.core.placement import CHANNEL_LEVEL, CHIP_LEVEL, SSD_LEVEL


class TestPeScaling:
    def test_fc_curve_saturates(self):
        # paper Fig. 6: "no performance gain beyond 512 PEs" for FC —
        # growth from 512 to 32K PEs is small compared to 128 -> 512
        points = {p.num_pes: p.speedup for p in explore_pe_scaling("fc")}
        early_gain = points[512] / points[128]
        late_gain = points[32768] / points[512]
        assert late_gain < early_gain
        assert late_gain < 1.7

    def test_conv_curve_saturates_later(self):
        points = {p.num_pes: p.speedup for p in explore_pe_scaling("conv")}
        assert points[1024] / points[128] > 1.5  # still gaining at 1K
        assert points[32768] / points[16384] < 1.05  # flat at the end

    def test_speedup_monotone_nondecreasing(self):
        for layer in ("fc", "conv"):
            speedups = [p.speedup for p in explore_pe_scaling(layer)]
            assert all(b >= a * 0.999 for a, b in zip(speedups, speedups[1:]))

    def test_first_point_is_baseline(self):
        points = explore_pe_scaling("fc")
        assert points[0].speedup == pytest.approx(1.0)

    def test_custom_dims(self):
        points = explore_pe_scaling(dims=(64, 64, 64), pe_counts=(64, 256))
        assert len(points) == 2
        assert all(isinstance(p, DesignPoint) for p in points)

    def test_validation(self):
        with pytest.raises(ValueError):
            explore_pe_scaling("pool")


class TestConfigSearch:
    def test_feasible_configs_exist_within_channel_budget(self, ssd_config):
        candidates = search_configurations("channel", power_budget_w=1.71)
        feasible = [c for c in candidates if c.feasible]
        assert feasible, "no configuration fits the channel power budget"
        # feasible candidates sort first
        assert candidates[0].feasible

    def test_bigger_budget_admits_more(self):
        small = [c for c in search_configurations("x", 0.5) if c.feasible]
        large = [c for c in search_configurations("x", 55.0) if c.feasible]
        assert len(large) >= len(small)

    def test_validation(self):
        with pytest.raises(ValueError):
            search_configurations("x", power_budget_w=0)


class TestPlacementPower:
    def test_channel_accels_within_budget(self, ssd_config):
        # Table-3 channel design: 1.71 W per accelerator.  ReId streams
        # weights from the (shared, device-level) DRAM, so its DRAM term
        # is excluded from the per-accelerator envelope.
        powers = validate_placement_power(CHANNEL_LEVEL)
        for app_name, power in powers.items():
            if app_name == "reid":
                continue
            assert power < 2.2, f"{app_name}: {power:.2f} W"

    def test_chip_accels_within_budget(self):
        powers = validate_placement_power(CHIP_LEVEL)
        for app_name, power in powers.items():
            assert power < 0.6, f"{app_name}: {power:.2f} W"

    def test_ssd_level_within_budget(self):
        powers = validate_placement_power(SSD_LEVEL)
        for app_name, power in powers.items():
            assert power < 55.0, f"{app_name}: {power:.2f} W"

    def test_chip_skips_reid(self):
        assert "reid" not in validate_placement_power(CHIP_LEVEL)
