"""Tests for the write-path timing (writeDB / appendDB / GC cost)."""

import numpy as np
import pytest

from repro.core.api import DeepStoreDevice
from repro.ssd.gc import PageMappedFtl
from repro.ssd.timing import FlashTiming


class TestFlashWriteTiming:
    def test_program_erase_defaults(self):
        t = FlashTiming()
        assert t.program_latency_s == pytest.approx(600e-6)
        assert t.erase_latency_s == pytest.approx(3e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashTiming(program_latency_s=0)
        with pytest.raises(ValueError):
            FlashTiming(erase_latency_s=-1)


class TestDatabaseWriteSeconds:
    def test_large_db_is_external_link_bound(self, ssd):
        # 8 GB payload: internal write rate (32 channels in parallel)
        # exceeds the 3.2 GB/s host link, so ingest time ~ payload / link
        meta = ssd.ftl.create_database(16 * 1024, 500_000)
        seconds = ssd.database_write_seconds(meta)
        external = meta.stored_bytes / 3.2e9
        assert seconds == pytest.approx(external, rel=0.05)

    def test_scales_linearly(self, ssd):
        small = ssd.ftl.create_database(2048, 100_000)
        large = ssd.ftl.create_database(2048, 400_000)
        assert ssd.database_write_seconds(large) == pytest.approx(
            4 * ssd.database_write_seconds(small), rel=0.05
        )

    def test_write_slower_than_read(self, ssd):
        # sequential ingest can't beat a sequential external read
        meta = ssd.ftl.create_database(2048, 200_000)
        assert ssd.database_write_seconds(meta) >= ssd.host_read_seconds(
            meta.stored_bytes
        ) * 0.99

    def test_gc_seconds(self, ssd):
        t = ssd.gc_seconds(relocations=3200, erases=32)
        per_reloc = 53e-6 + 600e-6
        assert t == pytest.approx((3200 * per_reloc + 32 * 3e-3) / 32)
        with pytest.raises(ValueError):
            ssd.gc_seconds(-1, 0)

    def test_gc_cost_from_real_churn(self, ssd):
        # couple the functional GC to the timing model
        ftl = PageMappedFtl(16, 32, int(16 * 32 * 0.75))
        rng = np.random.default_rng(0)
        for _ in range(5000):
            ftl.write(int(rng.integers(0, ftl.logical_pages)))
        seconds = ssd.gc_seconds(ftl.stats.relocations, ftl.stats.erases)
        assert seconds > 0


class TestDeviceIngestAccounting:
    def test_write_db_records_ingest_time(self, rng):
        device = DeepStoreDevice()
        features = rng.normal(0, 1, (4096, 512)).astype(np.float32)
        db = device.write_db(features)
        meta = device.database_metadata(db)
        assert device.ingest_seconds(db) == pytest.approx(
            device.ssd.database_write_seconds(meta)
        )

    def test_append_accumulates(self, rng):
        device = DeepStoreDevice()
        features = rng.normal(0, 1, (2048, 512)).astype(np.float32)
        db = device.write_db(features)
        before = device.ingest_seconds(db)
        device.append_db(db, features)
        assert device.ingest_seconds(db) > before

    def test_unknown_db(self):
        device = DeepStoreDevice()
        with pytest.raises(Exception):
            device.ingest_seconds(42)

    def test_write_once_query_many_economics(self, rng):
        # the paper's §4.7.2 premise: one ingest amortizes over many
        # queries — a query is much cheaper than the ingest
        from repro.nn import graph_to_bytes
        from repro.workloads import get_app

        app = get_app("tir")
        device = DeepStoreDevice()
        features = rng.normal(0, 1, (8192, 512)).astype(np.float32)
        db = device.write_db(features)
        model = device.load_model(graph_to_bytes(app.build_scn()))
        result = device.get_results(
            device.query(rng.normal(0, 1, 512).astype(np.float32), 5, model, db)
        )
        assert result.seconds < device.ingest_seconds(db)
