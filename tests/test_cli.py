"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_speedup_options(self):
        args = build_parser().parse_args(["speedup", "--app", "tir",
                                          "--gigabytes", "2"])
        assert args.app == "tir"
        assert args.gigabytes == 2.0

    def test_cache_defaults(self):
        args = build_parser().parse_args(["cache"])
        assert args.distribution == "zipf"
        assert args.threshold == 0.10

    def test_demo_rejects_bad_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--app", "nope"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "32 channels" in out
        assert "55 W" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for name in ("reid", "mir", "estp", "tir", "textqa"):
            assert name in out

    def test_breakdown(self, capsys):
        assert main(["breakdown"]) == 0
        assert "SSD read %" in capsys.readouterr().out

    def test_speedup_single_app(self, capsys):
        assert main(["speedup", "--app", "textqa", "--gigabytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "textqa" in out
        assert "x" in out

    def test_dse(self, capsys):
        assert main(["dse"]) == 0
        out = capsys.readouterr().out
        assert "32768" in out

    def test_cache(self, capsys):
        assert main([
            "cache", "--entries", "64", "--queries", "200",
            "--intents", "200", "--distribution", "uniform",
        ]) == 0
        out = capsys.readouterr().out
        assert "miss rate" in out

    def test_demo(self, capsys):
        assert main([
            "demo", "--app", "textqa", "--features", "2000", "--seed", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "recall of planted neighbors" in out

    def test_plan(self, capsys):
        assert main([
            "plan", "--app", "tir", "--features", "1000000", "--qps", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "[OK]" in out

    def test_plan_infeasible_capacity(self, capsys):
        assert main([
            "plan", "--app", "reid", "--features", "2000000000",
            "--qps", "1.0",
        ]) == 1
        assert "infeasible" in capsys.readouterr().out

    def test_scorecard(self, capsys):
        assert main(["scorecard", "--gigabytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction scorecard" in out
        assert "structural claims" in out

    def test_scorecard_json(self, capsys):
        import json

        assert main(["scorecard", "--gigabytes", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["mismatch"] == 0

    def test_faults(self, capsys):
        assert main([
            "faults", "--features", "5000", "--queries", "2",
            "--max-pages", "16",
        ]) == 0
        assert "Reliability report" in capsys.readouterr().out

    def test_faults_json(self, capsys):
        import json

        assert main([
            "faults", "--features", "5000", "--queries", "2",
            "--max-pages", "16", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"] == 2
        assert payload["slowdown"] >= 1.0


class TestObservabilityCommands:
    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        assert main([
            "trace", "--app", "tir", "--features", "5000",
            "--max-pages", "16", "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "Per-query latency breakdown" in text
        assert "Utilization" in text
        with open(out, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]

    def test_trace_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        assert main([
            "trace", "--features", "5000", "--max-pages", "16",
            "--out", str(out), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_file"] == str(out)
        assert payload["spans"] > 0
        assert payload["sim_events"] > 0
        breakdown = payload["breakdown"]
        assert breakdown["total_seconds"] > 0
        assert payload["metrics"]["engine.queries"] == 1

    def test_profile(self, capsys):
        assert main([
            "profile", "--features", "5000", "--max-pages", "16",
            "--top", "4",
        ]) == 0
        assert "Busiest resources" in capsys.readouterr().out

    def test_profile_json(self, capsys):
        import json

        assert main([
            "profile", "--features", "5000", "--max-pages", "16",
            "--top", "4", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["resources"]) == 4
        for usage in payload["resources"]:
            assert 0.0 <= usage["utilization"] <= 1.0

    def test_trace_rejects_bad_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--app", "nope"])


class TestServe:
    SMALL = ["serve", "--features", "50000", "--queries", "40"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.app == "tir"
        assert args.features == 400_000
        assert args.queue_bound == 32
        assert args.policy == "reject"
        assert not args.scorecard

    def test_parser_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "yolo"])

    def test_sweep_prints_curve_and_knee(self, capsys):
        assert main(self.SMALL + ["--qps-sweep"]) == 0
        out = capsys.readouterr().out
        assert "offered" in out
        assert "p99" in out
        assert "queue depth" in out
        assert "saturation" in out

    def test_sweep_deterministic(self, capsys):
        assert main(self.SMALL + ["--qps-sweep", "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(self.SMALL + ["--qps-sweep", "--seed", "3"]) == 0
        assert capsys.readouterr().out == first

    def test_json_curve(self, capsys):
        import json

        assert main(self.SMALL + ["--qps", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["app"] == "tir"
        points = payload["curve"]["points"]
        assert len(points) == 1
        assert points[0]["arrived"] == 40
        assert payload["metrics"]["serving.arrived"] == 40

    def test_single_qps_point(self, capsys):
        assert main(self.SMALL + ["--qps", "2"]) == 0
        assert "no saturation" in capsys.readouterr().out

    def test_deadline_policy_flags(self, capsys):
        assert main(self.SMALL + [
            "--policy", "deadline", "--deadline-ms", "200", "--qps-sweep",
        ]) == 0
        assert "offered" in capsys.readouterr().out

    def test_fail_accels_flag(self, capsys):
        import json

        assert main(self.SMALL + [
            "--fail-accels", "0,1", "--qps", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["failed_accels"] == [0, 1]


class TestClusterCommand:
    SMALL = ["cluster", "--features", "600", "--queries", "2", "--k", "4"]

    def test_parse_fail_shards(self):
        from repro.cli import _parse_fail_shards

        assert _parse_fail_shards("") == ()
        assert _parse_fail_shards("0,3:1") == (0, (3, 1))
        assert _parse_fail_shards(" 2 , 1:0 ") == (2, (1, 0))

    def test_parser_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.shards == 4
        assert args.replicas == 1
        assert args.placement == "range"
        assert not args.scorecard

    def test_parser_rejects_bad_placement(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--placement", "nope"])

    def test_human_output(self, capsys):
        assert main(self.SMALL + ["--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 shard(s)" in out
        assert "recall" in out

    def test_json_output(self, capsys):
        import json

        assert main(self.SMALL + ["--shards", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["shards"] == 2
        assert len(payload["queries"]) == 2
        assert len(payload["queries"][0]["feature_ids"]) == 4
        assert payload["metrics"]["cluster.scatters"] == 2
        assert sum(payload["shard_sizes"]) == 600

    def test_json_deterministic(self, capsys):
        cmd = self.SMALL + ["--shards", "2", "--replicas", "2",
                            "--fail-shards", "1", "--json"]
        assert main(cmd) == 0
        first = capsys.readouterr().out
        assert main(cmd) == 0
        assert capsys.readouterr().out == first

    def test_fail_shards_reported(self, capsys):
        import json

        assert main(self.SMALL + ["--shards", "2", "--replicas", "2",
                                  "--fail-shards", "0:0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["dead_replicas"] == [[0, 0]]
        assert payload["queries"][0]["failovers"] == 1

    def test_dead_shard_serves_partial_topk(self, capsys):
        # one of two shards fully dead: the query now resolves as a
        # flagged partial answer instead of failing the whole command
        assert main(self.SMALL + ["--shards", "2",
                                  "--fail-shards", "0"]) == 0
        out = capsys.readouterr().out
        assert "PARTIAL (1 shard(s) unavailable)" in out

    def test_unservable_cluster_fails_cleanly(self, capsys):
        # every replica of every shard dead: nothing can answer
        assert main(self.SMALL + ["--shards", "2",
                                  "--fail-shards", "0,1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_scorecard_mode(self, capsys):
        import json

        assert main(["cluster", "--scorecard"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["shards"] for row in payload["scaling"]] == [1, 2, 4, 8]
        assert payload["failover"]["failovers"] >= 1
        assert payload["hedged"]["hedges_launched"] > 0


class TestIngestCommand:
    SMALL = ["ingest", "--base", "512", "--rounds", "2", "--queries", "4"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["ingest"])
        assert args.app == "textqa"
        assert args.base == 1024
        assert args.rounds == 3
        assert not args.scorecard

    def test_parser_rejects_bad_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "--app", "nope"])

    def test_human_output(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "staleness" in out
        assert "compaction" in out
        assert "write path" in out
        assert "interference" in out

    def test_json_output(self, capsys):
        import json

        assert main(self.SMALL + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["base"] == 512
        assert payload["staleness"]["final_recall"] \
            < payload["staleness"]["initial_recall"]
        assert payload["writepath"]["write_amplification"] >= 1.0
        assert payload["metrics"]["ingest.inserts"] > 0

    def test_json_deterministic(self, capsys):
        cmd = self.SMALL + ["--json", "--seed", "5"]
        assert main(cmd) == 0
        first = capsys.readouterr().out
        assert main(cmd) == 0
        assert capsys.readouterr().out == first

    def test_scorecard_mode(self, capsys):
        import json

        assert main(["ingest", "--scorecard"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["app"] == "textqa"
        assert payload["compaction"]["post_recall"] == pytest.approx(
            payload["compaction"]["baseline_recall"], abs=0.01
        )
        assert set(payload["interference"]) == {
            "slowdown_at_0", "slowdown_at_0.25",
            "slowdown_at_0.5", "slowdown_at_0.75",
        }


class TestChaosCommand:
    SMALL = ["chaos", "--crashes", "1", "--kills", "1", "--queries", "6"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seed == 0
        assert args.duration == 1.0
        assert args.track == "both"
        assert not args.scorecard

    def test_parser_rejects_bad_track(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--track", "meteor"])

    def test_human_output_covers_both_tracks(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "durability" in out
        assert "bit-equal" in out
        assert "availability" in out
        assert "MTTR" in out

    def test_single_track_runs_only_that_track(self, capsys):
        assert main(self.SMALL + ["--track", "durability"]) == 0
        out = capsys.readouterr().out
        assert "durability" in out
        assert "availability" not in out

    def test_json_deterministic(self, capsys):
        import json

        cmd = self.SMALL + ["--json", "--seed", "5"]
        assert main(cmd) == 0
        first = capsys.readouterr().out
        assert main(cmd) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["durability"]["bit_equal"] == 1
        assert 0.0 < payload["availability"]["availability"] <= 1.0

    def test_scorecard_mode_matches_perf_gate_leg(self, capsys):
        import json

        from repro.recovery.scorecard import build_recovery_scorecard

        assert main(["chaos", "--scorecard"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == build_recovery_scorecard()

    def test_bad_config_fails_cleanly(self, capsys):
        assert main(["chaos", "--duration", "0"]) == 1
        assert "error" in capsys.readouterr().err


class TestExplainCommand:
    SMALL = ["explain", "--features", "600", "--queries", "4"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.query_id == 0
        assert args.app == "tir"
        assert args.shards == 3
        assert args.replicas == 2
        assert args.hedge == 0.3
        assert args.fail_shards == "1:0"
        assert not args.json

    def test_human_output_is_bit_exact(self, capsys):
        assert main(self.SMALL + ["2"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end" in out
        assert "bit-exact" in out
        assert "NOT bit-exact" not in out
        assert "fleet p99 dominant segment" in out

    def test_json_schema(self, capsys):
        import json

        assert main(self.SMALL + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "query_id", "seconds", "bit_exact", "critical_path",
            "fleet", "trace",
        }
        assert payload["bit_exact"] is True
        segments = payload["critical_path"]["segments"]
        assert segments and all(
            set(s) == {"name", "kind", "seconds"} for s in segments
        )
        assert payload["fleet"]["exact_fraction"] == 1.0
        assert payload["trace"]["traces"] == 4
        assert payload["trace"]["spans"] > 0

    def test_query_id_out_of_range(self, capsys):
        assert main(self.SMALL + ["99"]) == 1
        assert "out of range" in capsys.readouterr().err

    def test_out_writes_chrome_trace(self, capsys, tmp_path):
        import json

        out = tmp_path / "dtrace.json"
        assert main(self.SMALL + ["--out", str(out)]) == 0
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "s" for e in events)


class TestSloCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["slo"])
        assert args.seed == 0
        assert args.duration == 1.0
        assert args.kills == 4
        assert args.queries == 24
        assert not args.scorecard

    def test_human_output_detects_the_chaos_day(self, capsys):
        assert main(["slo"]) == 0
        out = capsys.readouterr().out
        assert "availability: target" in out
        assert "alerts fired:" in out
        # the kill storm must be *detected*, not just survived
        assert "detection in" in out

    def test_scorecard_schema_and_determinism(self, capsys):
        import json

        assert main(["slo", "--scorecard"]) == 0
        first = capsys.readouterr().out
        payload = json.loads(first)
        assert set(payload) == {
            "seed", "duration_s", "availability", "served", "queries",
            "first_fault_s", "first_alert_s", "alert_latency_s", "slo",
        }
        assert payload["alert_latency_s"] is not None
        assert payload["alert_latency_s"] >= 0.0
        assert set(payload["slo"]["slos"]) == {"availability", "latency"}
        assert main(["slo", "--scorecard"]) == 0
        assert capsys.readouterr().out == first

    def test_bad_config_fails_cleanly(self, capsys):
        assert main(["slo", "--duration", "0"]) == 1
        assert "error" in capsys.readouterr().err


class TestTenantsCommand:
    SMALL = ["tenants", "--day", "4000", "--features", "2000000"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["tenants"])
        assert args.seed == 0
        assert args.day == 86_400.0
        assert args.features == 32_000_000
        assert not args.trace
        assert not args.no_isolation
        assert not args.scorecard
        assert not args.json

    def test_trace_summary(self, capsys):
        assert main(self.SMALL + ["--trace"]) == 0
        out = capsys.readouterr().out
        assert "arrivals over" in out
        assert "search:" in out
        assert "burst)" in out
        # ingest tenant really carries writes
        assert "ingestpipe:" in out

    def test_trace_json_deterministic(self, capsys):
        import json

        cmd = self.SMALL + ["--trace", "--json", "--seed", "9"]
        assert main(cmd) == 0
        first = capsys.readouterr().out
        assert main(cmd) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert set(payload["tenants"]) == {
            "search", "analytics", "ingestpipe",
        }
        assert payload["arrivals"] == sum(
            row["offered"] for row in payload["tenants"].values()
        )

    def test_day_human_output(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "production day: 3 tenants" in out
        assert "SLO attainment" in out
        assert "autoscaler: peak" in out
        assert "rebalance(s)" in out
        assert "isolation (victim p99 with/without search)" in out
        assert "LEDGER IMBALANCE" not in out

    def test_day_json_schema(self, capsys):
        import json

        assert main(self.SMALL + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"day", "aggressor", "isolation_p99_ratio"}
        assert payload["aggressor"] == "search"
        assert payload["day"]["conserved"] == 1
        assert set(payload["isolation_p99_ratio"]) == {
            "analytics", "ingestpipe",
        }

    def test_no_isolation_skips_the_pair(self, capsys):
        import json

        assert main(self.SMALL + ["--json", "--no-isolation"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aggressor"] == ""
        assert payload["isolation_p99_ratio"] == {}

    def test_bad_config_fails_cleanly(self, capsys):
        assert main(["tenants", "--day", "0"]) == 1
        assert "error" in capsys.readouterr().err
