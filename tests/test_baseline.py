"""Tests for the GPU+SSD baseline and wimpy-core models."""

import pytest

from repro.baseline import (
    ARM_A57_OCTA,
    GpuModel,
    GpuSsdSystem,
    HostSystem,
    PASCAL_TITAN_XP,
    VOLTA_TITAN_V,
    WimpyCoreModel,
)
from repro.workloads import ALL_APPS, get_app


class TestGpuModel:
    def test_volta_compute_faster_than_pascal(self, app):
        graph = app.build_scn()
        pascal = GpuModel(PASCAL_TITAN_XP).scn_batch_seconds(graph, app.eval_batch)
        volta = GpuModel(VOLTA_TITAN_V).scn_batch_seconds(graph, app.eval_batch)
        # paper §3: Volta's compute is ~33% faster; ours lands 15-40%
        assert 1.10 < pascal / volta < 1.45

    def test_batch_scaling_sublinear_then_linear(self, tir_app):
        gpu = GpuModel(VOLTA_TITAN_V)
        graph = tir_app.build_scn()
        t1k = gpu.scn_batch_seconds(graph, 1000)
        t50k = gpu.scn_batch_seconds(graph, 50000)
        assert t50k > t1k
        assert t50k < 50 * t1k + 1e-3  # launch overheads amortize

    def test_sustained_flops_below_peak(self, tir_app):
        gpu = GpuModel(VOLTA_TITAN_V)
        sustained = gpu.sustained_flops(tir_app.build_scn(), 50000)
        assert 0 < sustained < VOLTA_TITAN_V.peak_fp32_flops

    def test_invalid_batch(self, tir_app):
        gpu = GpuModel(VOLTA_TITAN_V)
        with pytest.raises(ValueError):
            gpu.scn_batch_seconds(tir_app.build_scn(), 0)

    def test_spec_validation(self):
        from repro.baseline.gpu import GpuSpec

        with pytest.raises(ValueError):
            GpuSpec("x", 0, 1, 1)
        with pytest.raises(ValueError):
            GpuSpec("x", 1e12, 1e11, 200, efficiency=1.5)


class TestHostSystem:
    def test_record_overhead_charged(self):
        host = HostSystem()
        assert host.feature_read_bytes(800) == 800 + 512
        assert host.feature_read_bytes(45056) == 45056 + 512

    def test_read_and_memcpy_times(self):
        host = HostSystem()
        t = host.ssd_read_seconds(2048, 1000)
        assert t == pytest.approx((2048 + 512) * 1000 / 3.2e9 + 30e-6)
        assert host.memcpy_seconds(2048, 1000) == pytest.approx(2048e3 / 12e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostSystem(ssd_bandwidth=0)
        with pytest.raises(ValueError):
            HostSystem().feature_read_bytes(0)


class TestGpuSsdSystem:
    def test_io_fraction_in_paper_band(self, app, baseline):
        # paper Fig. 2: storage I/O is 56-90% of execution time; our
        # calibration lands every app in a slightly wider 55-95% band
        bd = baseline.batch_breakdown(app)
        assert 0.55 < bd.io_fraction < 0.95, f"{app.name}: {bd.io_fraction:.2f}"

    def test_fractions_sum_to_one(self, tir_app, baseline):
        f = baseline.batch_breakdown(tir_app).fractions()
        assert sum(f.values()) == pytest.approx(1.0)

    def test_textqa_most_io_bound(self, baseline):
        fractions = {
            name: baseline.batch_breakdown(get_app(name)).io_fraction
            for name in ALL_APPS
        }
        assert max(fractions, key=fractions.get) == "textqa"
        assert min(fractions, key=fractions.get) in ("reid", "estp", "mir")

    def test_newer_gpu_does_not_fix_io_bottleneck(self, tir_app):
        # paper Observation 1: faster GPUs barely change total time
        pascal = GpuSsdSystem(PASCAL_TITAN_XP).query_cost(tir_app, 100000)
        volta = GpuSsdSystem(VOLTA_TITAN_V).query_cost(tir_app, 100000)
        assert pascal.seconds / volta.seconds < 1.2

    def test_query_cost_scales_with_db(self, tir_app, baseline):
        small = baseline.query_cost(tir_app, 100000)
        large = baseline.query_cost(tir_app, 1000000)
        assert large.seconds == pytest.approx(10 * small.seconds, rel=0.01)

    def test_multiple_ssds_speed_io(self, tir_app):
        one = GpuSsdSystem(num_ssds=1).query_cost(tir_app, 1000000)
        four = GpuSsdSystem(num_ssds=4).query_cost(tir_app, 1000000)
        assert one.seconds / four.seconds > 2.0  # io shrinks, compute doesn't
        assert one.seconds / four.seconds < 4.0  # sublinear (Fig. 10b)

    def test_energy_includes_whole_system(self, tir_app, baseline):
        cost = baseline.query_cost(tir_app, 100000)
        assert cost.power_w > baseline.gpu_only_power_w()

    def test_invalid(self, tir_app, baseline):
        with pytest.raises(ValueError):
            baseline.query_cost(tir_app, 0)
        with pytest.raises(ValueError):
            GpuSsdSystem(num_ssds=0)


class TestWimpyCores:
    def test_spec(self):
        assert ARM_A57_OCTA.peak_flops == pytest.approx(8 * 2e9 * 8)

    def test_wimpy_much_slower_than_gpu(self, app, baseline):
        # paper §6.2: wimpy cores are 4.5-22.8x slower than GPU+SSD;
        # ours land 2-40x slower across the apps
        wimpy = WimpyCoreModel()
        slowdown = wimpy.seconds_per_feature(app) / baseline.seconds_per_feature(app)
        assert 2.0 < slowdown < 40.0, f"{app.name}: {slowdown:.1f}"

    def test_query_time_linear(self, tir_app):
        w = WimpyCoreModel()
        assert w.query_seconds(tir_app, 2000) == pytest.approx(
            2 * w.query_seconds(tir_app, 1000)
        )

    def test_validation(self, tir_app):
        with pytest.raises(ValueError):
            WimpyCoreModel(internal_bandwidth=0)
        with pytest.raises(ValueError):
            WimpyCoreModel().query_seconds(tir_app, 0)
