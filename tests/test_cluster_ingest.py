"""Per-shard ingest routing, skew detection, and rebalance plans."""

import pytest

from repro.cluster import RebalancePlan, ShardIngestTracker


class TestRouting:
    def test_route_is_deterministic_and_in_range(self):
        tracker = ShardIngestTracker(4, seed=3)
        again = ShardIngestTracker(4, seed=3)
        shards = [tracker.route(fid) for fid in range(200)]
        assert shards == [again.route(fid) for fid in range(200)]
        assert set(shards) <= set(range(4))

    def test_hash_routing_spreads_sequential_ids(self):
        tracker = ShardIngestTracker(4, min_inserts=10_000)
        for fid in range(400):
            tracker.record_routed(fid)
        assert tracker.skew < 1.5  # sequential ids decorrelate

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardIngestTracker(0)
        with pytest.raises(ValueError):
            ShardIngestTracker(4, skew_threshold=1.0)
        with pytest.raises(ValueError):
            ShardIngestTracker(4, min_inserts=0)
        tracker = ShardIngestTracker(4)
        with pytest.raises(ValueError):
            tracker.record(7)
        with pytest.raises(ValueError):
            tracker.record(0, rows=0)


class TestSkewDetection:
    def test_no_plan_below_min_inserts(self):
        tracker = ShardIngestTracker(4, min_inserts=64)
        assert tracker.record(0, rows=63) is None
        assert tracker.skew == pytest.approx(4.0)

    def test_no_plan_when_level(self):
        tracker = ShardIngestTracker(4, min_inserts=4)
        for _ in range(100):  # round-robin never builds skew
            for shard in range(4):
                assert tracker.record(shard) is None
        assert tracker.skew == pytest.approx(1.0)

    def test_skewed_ingest_triggers_one_plan(self):
        fired = []
        tracker = ShardIngestTracker(
            4, skew_threshold=2.0, min_inserts=64, on_rebalance=fired.append
        )
        plan = tracker.record(1, rows=100)  # all load on one shard
        assert isinstance(plan, RebalancePlan)
        assert fired == [plan]
        assert plan.skew == pytest.approx(4.0)
        assert plan.loads == (0, 100, 0, 0)
        # the plan levels the shards exactly
        assert plan.rows_moved == 75
        assert {(m.src, m.rows) for m in plan.moves} == {(1, 25)} | set()
        assert sorted(m.dst for m in plan.moves) == [0, 2, 3]
        # tallies restart leveled: no second plan without fresh skew
        assert tracker.skew == pytest.approx(1.0)
        assert tracker.rebalances == 1
        assert tracker.check() is None

    def test_moves_conserve_rows(self):
        tracker = ShardIngestTracker(5, skew_threshold=1.5, min_inserts=10)
        tracker.record(0, rows=9)
        plan = tracker.record(2, rows=41)
        assert plan is not None
        total = sum(plan.loads)
        leveled = list(plan.loads)
        for move in plan.moves:
            leveled[move.src] -= move.rows
            leveled[move.dst] += move.rows
        assert sum(leveled) == total
        assert max(leveled) - min(leveled) <= 1

    def test_total_inserts_survive_rebalances(self):
        tracker = ShardIngestTracker(2, skew_threshold=1.5, min_inserts=8)
        tracker.record(0, rows=50)
        tracker.record(0, rows=50)
        assert tracker.total_inserts == 100
