"""Tests for the span/instant tracer and its simulator hooks."""

import json
import pytest

from repro.core.event_query import EventQuerySimulator
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    TrackHandle,
    Tracer,
    chrome_trace,
    write_chrome_trace,
)
from repro.sim import Simulator
from repro.ssd import Ssd
from repro.workloads import get_app


@pytest.fixture(scope="module")
def small_db():
    """A small database so a traced full DES run is cheap."""
    ssd = Ssd()
    app = get_app("tir")
    meta = ssd.ftl.create_database(app.feature_bytes, 20_000)
    return app, meta


class TestTrackInterning:
    def test_same_pair_returns_same_handle(self):
        t = Tracer()
        assert t.track("channel 0", "bus") == t.track("channel 0", "bus")

    def test_one_pid_per_process(self):
        t = Tracer()
        bus = t.track("channel 0", "bus")
        chip = t.track("channel 0", "chip 1")
        other = t.track("channel 1", "bus")
        assert bus.pid == chip.pid
        assert bus.tid != chip.tid
        assert other.pid != bus.pid

    def test_tids_are_scoped_per_pid(self):
        t = Tracer()
        a = t.track("channel 0", "bus")
        b = t.track("channel 1", "bus")
        # each process numbers its own threads from 0
        assert a.tid == 0 and b.tid == 0

    def test_names_round_trip(self):
        t = Tracer()
        handle = t.track("channel 3", "chip 2")
        assert t.process_names[handle.pid] == "channel 3"
        assert t.thread_names[(handle.pid, handle.tid)] == "chip 2"
        assert t.track_name(handle) == "channel 3/chip 2"


class TestRecording:
    def test_complete_span(self):
        t = Tracer()
        track = t.track("p", "t")
        t.complete(track, "work", 1.0, 0.5, cat="x", args={"k": 1})
        (span,) = t.spans
        assert span.name == "work"
        assert span.start == 1.0
        assert span.end == 1.5
        assert span.args == {"k": 1}
        assert t.span_count == 1
        assert t.count("x") == 1

    def test_instant(self):
        t = Tracer()
        track = t.track("p", "t")
        t.instant(track, "mark", 2.0, cat="ev")
        assert t.count("ev") == 1
        assert t.end_time == 2.0

    def test_end_time_covers_spans_and_instants(self):
        t = Tracer()
        track = t.track("p", "t")
        t.complete(track, "a", 0.0, 3.0)
        t.instant(track, "b", 5.0)
        assert t.end_time == 5.0

    def test_spans_in_filters_by_category(self):
        t = Tracer()
        track = t.track("p", "t")
        t.complete(track, "a", 0.0, 1.0, cat="keep")
        t.complete(track, "b", 1.0, 1.0, cat="drop")
        assert [s.name for s in t.spans_in("keep")] == ["a"]


class TestNullTracer:
    def test_disabled_and_inert(self):
        n = NullTracer()
        assert n.enabled is False
        handle = n.track("p", "t")
        assert handle == TrackHandle(0, 0)
        n.complete(handle, "x", 0.0, 1.0)
        n.instant(handle, "y", 0.0)
        assert n.span_count == 0
        assert n.count("anything") == 0
        assert n.end_time == 0.0
        assert NULL_TRACER.enabled is False


class TestSimulatorHook:
    def test_disabled_tracer_normalized_to_none(self):
        assert Simulator().tracer is None
        assert Simulator(tracer=NULL_TRACER).tracer is None
        t = Tracer()
        assert Simulator(tracer=t).tracer is t

    def test_one_instant_per_dispatched_event(self):
        t = Tracer()
        sim = Simulator(tracer=t)
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        cancelled = sim.schedule(9.0, lambda: None)
        cancelled.cancel()
        sim.run()
        assert sim.events_processed == 5
        assert t.count("sim.event") == 5


class TestZeroPerturbation:
    def test_traced_run_is_bit_identical(self, small_db):
        """The acceptance criterion: tracing never changes timing."""
        app, meta = small_db
        plain = EventQuerySimulator().run(app, meta, max_pages_per_channel=32)
        tracer = Tracer()
        traced = EventQuerySimulator().run(
            app, meta, max_pages_per_channel=32, tracer=tracer
        )
        assert traced.total_seconds == plain.total_seconds  # exact, no approx
        assert traced.per_channel_seconds == plain.per_channel_seconds
        assert traced.pages == plain.pages
        assert tracer.span_count > 0  # the traced run really recorded

    def test_trace_reconciles_with_events_processed(self, small_db):
        app, meta = small_db
        tracer = Tracer()
        EventQuerySimulator().run(
            app, meta, max_pages_per_channel=16, tracer=tracer
        )
        # every dispatched callback left exactly one sim.event instant
        assert tracer.count("sim.event") > 0
        flash_spans = list(tracer.spans_in("ssd.flash"))
        bus_spans = list(tracer.spans_in("ssd.bus"))
        assert flash_spans and bus_spans
        # every array read and bus transfer happened within the query
        for span in flash_spans + bus_spans:
            assert 0.0 <= span.start <= span.end <= tracer.end_time


class TestChromeExport:
    def test_valid_json_and_span_accounting(self, small_db, tmp_path):
        app, meta = small_db
        tracer = Tracer()
        result = EventQuerySimulator().run(
            app, meta, max_pages_per_channel=16, tracer=tracer
        )
        assert result.total_seconds > 0
        path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        x = [e for e in events if e["ph"] == "X"]
        i = [e for e in events if e["ph"] == "i"]
        m = [e for e in events if e["ph"] == "M"]
        assert len(x) == tracer.span_count
        assert len(i) == len(tracer.instants)
        assert len(events) == len(x) + len(i) + len(m)
        # sim.event instants reconcile with the simulator's own counter
        sim_events = [e for e in i if e.get("cat") == "sim.event"]
        assert len(sim_events) == tracer.count("sim.event")

    def test_metadata_names_every_track(self):
        t = Tracer()
        track = t.track("channel 0", "bus")
        t.complete(track, "xfer", 0.0, 1.0, cat="ssd.bus")
        doc = chrome_trace(t)
        names = {
            (e["pid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert (track.pid, "channel 0") in names
        threads = {
            (e["pid"], e["tid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert (track.pid, track.tid, "bus") in threads

    def test_timestamps_in_microseconds(self):
        t = Tracer()
        track = t.track("p", "t")
        t.complete(track, "s", 0.5, 0.25)
        doc = chrome_trace(t)
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["ts"] == pytest.approx(0.5e6)
        assert span["dur"] == pytest.approx(0.25e6)
