"""Device-level ingest tests: verbs, write path, and differential parity."""

import numpy as np
import pytest

from repro.core.api import DeepStoreApiError, DeepStoreDevice
from repro.ingest import IngestError, IngestWritePath, LifecycleDevice
from repro.workloads import get_app

APP = get_app("textqa")
DIM = APP.feature_floats
N_BASE = 64


def _seeded(device, seed=0, n=N_BASE):
    rng = np.random.default_rng(seed)
    db = device.write_db(rng.normal(0, 1, (n, DIM)).astype(np.float32))
    model = device.load_graph(APP.build_scn(seed=seed + 1))
    return db, model, rng


@pytest.fixture
def device():
    return LifecycleDevice()


class TestWritePath:
    @pytest.fixture
    def path(self, ssd):
        return IngestWritePath(ssd, APP.feature_bytes, blocks=8,
                               pages_per_block=16)

    def test_append_costs_time_and_tracks_rows(self, path):
        op = path.append(range(10))
        assert op.seconds > 0
        assert op.pages_written >= 1
        assert path.live_rows == 10
        assert all(path.has_row(i) for i in range(10))

    @staticmethod
    def _churn(path, rounds):
        # full-page batches stay live while single-row appends keep
        # re-programming the open page; GC victims then carry live pages
        # that must be relocated — the benchmark's source of WA
        fid = 0
        for _ in range(rounds):
            path.append(range(fid, fid + path.rows_per_page))
            fid += path.rows_per_page
            for _ in range(6):
                path.append([fid])
                fid += 1

    def test_mixed_churn_amplifies_writes(self, path):
        self._churn(path, 25)
        assert path.write_amplification > 1.0
        assert path.stats.relocations > 0
        assert path.stats.erases > 0

    def test_full_page_batches_do_not_amplify(self, path):
        path.append(range(path.rows_per_page * 3))
        assert path.write_amplification == pytest.approx(1.0)

    def test_delete_trims_empty_pages(self, path):
        path.append(range(path.rows_per_page))
        free_before = path.free_pages
        op = path.delete(range(path.rows_per_page))
        assert op.pages_trimmed == 1
        assert path.free_pages == free_before + 1
        assert path.live_rows == 0

    def test_rewrite_moves_rows(self, path):
        path.append(range(6))
        op = path.rewrite(range(6))
        assert op.pages_written >= 1
        assert path.live_rows == 6

    def test_invalid_ops_rejected(self, path):
        path.append([0])
        with pytest.raises(IngestError):
            path.append([0])  # already on flash
        with pytest.raises(IngestError):
            path.delete([99])  # never written
        with pytest.raises(IngestError):
            path.append([])

    def test_offered_load_scales_with_wa(self, path):
        self._churn(path, 25)
        assert path.offered_load(0.5) > 0.5  # WA > 1 inflates the load
        assert path.offered_load(0.9) <= 0.95  # capped
        with pytest.raises(IngestError):
            path.offered_load(1.5)

    def test_reset_stats_zeroes_counters(self, path):
        path.append(range(10))
        path.reset_stats()
        assert path.stats.host_writes == 0
        assert path.write_amplification == 1.0


class TestDeviceVerbs:
    def test_verbs_require_enable_ingest(self, device):
        db, _, _ = _seeded(device)
        with pytest.raises(DeepStoreApiError):
            device.insert_db(db, np.ones((1, DIM), dtype=np.float32))
        with pytest.raises(DeepStoreApiError):
            device.lifecycle(db)
        assert not device.ingest_enabled(db)

    def test_insert_extends_the_scannable_database(self, device):
        db, model, rng = _seeded(device)
        device.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        before = device.get_results(device.query(probe, 5, model, db))
        # exact copies of the current winner tie its score, so they must
        # join it in the top-K (canonical tie-break keeps the order stable)
        winner_row = device.lifecycle(db).store.rows(before.feature_ids[:1])
        planted = device.insert_db(db, np.tile(winner_row, (3, 1)))
        after = device.get_results(device.query(probe, 5, model, db))
        assert set(planted.tolist()) <= set(after.feature_ids.tolist())
        assert after.scores[0] == pytest.approx(before.scores[0])

    def test_deleted_rows_vanish_from_results(self, device):
        db, model, rng = _seeded(device)
        device.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        top = device.get_results(device.query(probe, 5, model, db))
        victim = int(top.feature_ids[0])
        device.delete_db_rows(db, [victim])
        after = device.get_results(device.query(probe, 5, model, db))
        assert victim not in after.feature_ids.tolist()

    def test_update_replaces_in_place(self, device):
        db, model, rng = _seeded(device)
        device.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        winner = int(
            device.get_results(device.query(probe, 1, model, db)).feature_ids[0]
        )
        winner_row = device.lifecycle(db).store.rows(np.array([winner]))[0]
        victim = 0 if winner != 0 else 1
        new_id = device.update_db_row(db, victim, winner_row)
        result = device.get_results(device.query(probe, 3, model, db))
        ids = result.feature_ids.tolist()
        assert new_id in ids and victim not in ids

    def test_compaction_reclaims_and_shrinks_scan_cost(self, device):
        db, model, rng = _seeded(device)
        device.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
        device.insert_db(
            db, rng.normal(0, 1, (8, DIM)).astype(np.float32)
        )
        device.delete_db_rows(db, list(range(16)))
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        costly = device.get_results(device.query(probe, 5, model, db))
        outcome = device.compact_db(db)
        assert outcome.reclaimed_rows == 16
        assert outcome.rewritten_rows == 8
        assert outcome.seconds > 0
        cheap = device.get_results(device.query(probe, 5, model, db))
        # same answer, cheaper scan: dead pages no longer read
        assert cheap.feature_ids.tolist() == costly.feature_ids.tolist()
        assert cheap.latency.scan_seconds < costly.latency.scan_seconds

    def test_mutation_invalidates_cached_results(self, device):
        db, model, rng = _seeded(device)
        device.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
        device.set_qc(threshold=0.10)
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        device.get_results(device.query(probe, 5, model, db))
        hit = device.get_results(device.query(probe, 5, model, db))
        assert hit.cache_hit
        device.insert_db(db, rng.normal(0, 1, (2, DIM)).astype(np.float32))
        fresh = device.get_results(device.query(probe, 5, model, db))
        assert not fresh.cache_hit

    def test_background_writes_slow_scans_monotonically(self, device):
        db, model, rng = _seeded(device)
        device.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
        device.insert_db(db, rng.normal(0, 1, (2, DIM)).astype(np.float32))
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        seconds = []
        for load in (0.0, 0.3, 0.6):
            device.set_background_write_load(load)
            seconds.append(
                device.get_results(device.query(probe, 5, model, db)).seconds
            )
        device.set_background_write_load(0.0)
        assert seconds[0] < seconds[1] <= seconds[2]
        with pytest.raises(DeepStoreApiError):
            device.set_background_write_load(0.5, policy="bogus")

    def test_metrics_published(self, device):
        db, model, rng = _seeded(device)
        device.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
        device.insert_db(db, rng.normal(0, 1, (3, DIM)).astype(np.float32))
        device.delete_db_rows(db, [0])
        device.get_results(
            device.query(rng.normal(0, 1, DIM).astype(np.float32), 5, model, db)
        )
        snap = device.metrics.snapshot()
        assert snap["ingest.inserts"] == 3
        assert snap["ingest.deletes"] == 1
        assert snap["ingest.queries"] == 1
        assert snap["ingest.db%d.tombstones" % db]["value"] == 1.0


class TestZeroMutationParity:
    """Ingest-enabled but untouched == static device, bit for bit."""

    @pytest.mark.parametrize("level", ["ssd", "channel", "chip"])
    def test_parity_at_every_level(self, level):
        static = DeepStoreDevice(level=level)
        live = LifecycleDevice(level=level)
        db_s, model_s, _ = _seeded(static, seed=3)
        db_l, model_l, _ = _seeded(live, seed=3)
        live.enable_ingest(db_l, region_blocks=8, region_pages_per_block=16)
        static.set_qc(threshold=0.10)
        live.set_qc(threshold=0.10)
        rng = np.random.default_rng(99)
        probes = rng.normal(0, 1, (4, DIM)).astype(np.float32)
        queries = [probes[0], probes[1], probes[0], probes[2], probes[3]]
        for probe in queries:
            try:
                expected = static.get_results(
                    static.query(probe, 5, model_s, db_s)
                )
            except DeepStoreApiError:
                with pytest.raises(DeepStoreApiError):
                    live.query(probe, 5, model_l, db_l)
                return
            got = live.get_results(live.query(probe, 5, model_l, db_l))
            assert got.feature_ids.tolist() == expected.feature_ids.tolist()
            np.testing.assert_array_equal(got.scores, expected.scores)
            assert got.latency.total_seconds == expected.latency.total_seconds
            assert got.transfer_seconds == expected.transfer_seconds
            assert got.cache_hit == expected.cache_hit

    def test_parity_breaks_only_after_first_mutation(self):
        live = LifecycleDevice()
        db, model, rng = _seeded(live, seed=3)
        live.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        static_result = live.get_results(live.query(probe, 5, model, db))
        live.insert_db(db, rng.normal(0, 1, (1, DIM)).astype(np.float32))
        mutable_result = live.get_results(live.query(probe, 5, model, db))
        # the snapshot path now runs; answer is still the exact top-K
        assert (
            mutable_result.feature_ids.tolist()[:5]
            == static_result.feature_ids.tolist()
        ) or mutable_result.scores[0] >= static_result.scores[0]
