"""Finite-difference gradient checks for every differentiable op.

The trainer's manual backprop must match numerical gradients — otherwise
"trained to within 5% accuracy" (paper §3) silently becomes meaningless.
"""

import numpy as np
import pytest

from repro.nn import GraphBuilder
from repro.nn.training import bce_loss_and_grad


def numeric_param_grad(graph, feeds, node_id, key, labels, eps=1e-3):
    """Central-difference gradient of the BCE loss wrt one parameter."""
    tensor = graph.params[node_id][key]
    grad = np.zeros_like(tensor, dtype=np.float64)
    it = np.nditer(tensor, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = tensor[idx]
        tensor[idx] = original + eps
        loss_plus, _ = bce_loss_and_grad(graph.forward(feeds), labels)
        tensor[idx] = original - eps
        loss_minus, _ = bce_loss_and_grad(graph.forward(feeds), labels)
        tensor[idx] = original
        grad[idx] = (loss_plus - loss_minus) / (2 * eps)
        it.iternext()
    return grad


def analytic_param_grads(graph, feeds, labels):
    scores = graph.forward(feeds, keep_activations=True)
    _, grad_out = bce_loss_and_grad(scores, labels)
    return graph.backward(grad_out)


def check_graph_gradients(graph, feeds, labels, rtol=0.08, atol=2e-3):
    analytic = analytic_param_grads(graph, feeds, labels)
    checked = 0
    for node_id, params in analytic.items():
        for key, grad in params.items():
            numeric = numeric_param_grad(graph, feeds, node_id, key, labels)
            np.testing.assert_allclose(grad, numeric, rtol=rtol, atol=atol)
            checked += 1
    assert checked > 0


def make_feeds(rng, shapes, n=6):
    return {
        i: rng.normal(0, 1, (n, *shape)).astype(np.float32)
        for i, shape in enumerate(shapes)
    }


def labels_for(rng, n=6):
    return (rng.random(n) > 0.5).astype(np.float32)


class TestDenseGradients:
    def test_dense_chain(self, rng):
        b = GraphBuilder()
        q = b.input((5,))
        d = b.input((5,))
        h = b.elementwise(q, d, "absdiff")
        h = b.dense(h, 4, activation="relu")
        h = b.dense(h, 1)
        out = b.score_head(h, "sigmoid")
        g = b.build(out, seed=0)
        check_graph_gradients(g, make_feeds(rng, [(5,), (5,)]), labels_for(rng))

    def test_dense_no_bias(self, rng):
        b = GraphBuilder()
        q = b.input((4,))
        d = b.input((4,))
        h = b.dense(d, 4, bias=False)
        s = b.dot(q, h)
        out = b.score_head(s, "sigmoid")
        g = b.build(out, seed=1)
        check_graph_gradients(g, make_feeds(rng, [(4,), (4,)]), labels_for(rng))


class TestConvGradients:
    def test_conv_stack(self, rng):
        b = GraphBuilder()
        q = b.input((2, 5, 5))
        d = b.input((2, 5, 5))
        h = b.elementwise(q, d, "absdiff")
        h = b.conv2d(h, 3, kernel=3, padding=1, activation="relu")
        h = b.conv2d(h, 2, kernel=3, stride=2, padding=1)
        h = b.flatten(h)
        h = b.dense(h, 2)
        out = b.score_head(h, "sigmoid_diff")
        g = b.build(out, seed=2)
        check_graph_gradients(
            g, make_feeds(rng, [(2, 5, 5), (2, 5, 5)], n=4), labels_for(rng, n=4)
        )


class TestElementwiseGradients:
    @pytest.mark.parametrize("kind", ["add", "sub", "mul"])
    def test_all_kinds(self, rng, kind):
        b = GraphBuilder()
        q = b.input((6,))
        d = b.input((6,))
        h = b.elementwise(q, d, kind)
        h = b.dense(h, 1)
        out = b.score_head(h, "sigmoid")
        g = b.build(out, seed=3)
        check_graph_gradients(g, make_feeds(rng, [(6,), (6,)]), labels_for(rng))


class TestConcatGradients:
    def test_concat_branch(self, rng):
        b = GraphBuilder()
        q = b.input((3,))
        d = b.input((4,))
        h = b.concat(q, d)
        h = b.dense(h, 3, activation="tanh")
        h = b.dense(h, 2)
        out = b.score_head(h, "sigmoid_diff")
        g = b.build(out, seed=4)
        check_graph_gradients(g, make_feeds(rng, [(3,), (4,)]), labels_for(rng))


class TestLoss:
    def test_bce_gradient_is_numeric(self, rng):
        scores = rng.uniform(0.1, 0.9, (8, 1)).astype(np.float32)
        labels = (rng.random(8) > 0.5).astype(np.float32)
        scores = scores.astype(np.float64)
        loss, grad = bce_loss_and_grad(scores, labels)
        eps = 1e-6
        for i in range(8):
            s = scores.copy()
            s[i, 0] += eps
            lp, _ = bce_loss_and_grad(s, labels)
            s[i, 0] -= 2 * eps
            lm, _ = bce_loss_and_grad(s, labels)
            assert grad[i, 0] == pytest.approx((lp - lm) / (2 * eps), rel=5e-3)

    def test_perfect_prediction_low_loss(self):
        scores = np.array([[0.999], [0.001]], dtype=np.float32)
        labels = np.array([1.0, 0.0], dtype=np.float32)
        loss, _ = bce_loss_and_grad(scores, labels)
        assert loss < 0.01
