"""Property-based tests over randomly generated models and inputs.

Hypothesis drives structural invariants that example-based tests cannot
sweep: arbitrary two-branch MLPs must serialize losslessly, account
consistently, map onto any array shape, and keep the simulators' basic
inequalities intact.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import GraphBuilder, graph_from_bytes, graph_to_bytes
from repro.nn.quantization import quantize_graph
from repro.systolic import (
    GraphMapper,
    ScratchpadHierarchy,
    ScratchpadLevel,
    SystolicArray,
    SystolicConfig,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
dims = st.integers(min_value=2, max_value=48)
layer_widths = st.lists(st.integers(min_value=2, max_value=64),
                        min_size=1, max_size=3)
merge_kinds = st.sampled_from(["absdiff", "mul", "sub", "add", "concat"])
activations = st.sampled_from(["relu", "tanh", "identity"])


@st.composite
def two_branch_graphs(draw):
    """A random two-branch SCN-shaped graph."""
    dim = draw(dims)
    merge = draw(merge_kinds)
    widths = draw(layer_widths)
    act = draw(activations)
    seed = draw(st.integers(min_value=0, max_value=2**16))

    b = GraphBuilder("prop")
    q = b.input((dim,), "qfv")
    d = b.input((dim,), "dfv")
    if merge == "concat":
        h = b.concat(q, d)
    else:
        h = b.elementwise(q, d, merge)
    for width in widths:
        h = b.dense(h, width, activation=act)
    h = b.dense(h, 1)
    out = b.score_head(h, "sigmoid")
    return b.build(out, seed=seed), dim


def feeds_for(graph, dim, batch, seed=0):
    rng = np.random.default_rng(seed)
    q_id, d_id = graph.input_ids
    return {
        q_id: rng.normal(0, 1, (batch, dim)).astype(np.float32),
        d_id: rng.normal(0, 1, (batch, dim)).astype(np.float32),
    }


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
class TestSerializationProperties:
    @given(two_branch_graphs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_is_lossless(self, graph_and_dim):
        graph, dim = graph_and_dim
        restored = graph_from_bytes(graph_to_bytes(graph))
        feeds = feeds_for(graph, dim, batch=3)
        np.testing.assert_allclose(
            graph.forward(feeds), restored.forward(feeds), rtol=1e-6
        )
        assert restored.total_flops() == graph.total_flops()
        assert restored.parameter_count() == graph.parameter_count()

    @given(two_branch_graphs())
    @settings(max_examples=20, deadline=None)
    def test_outputs_are_probabilities(self, graph_and_dim):
        graph, dim = graph_and_dim
        out = graph.forward(feeds_for(graph, dim, batch=5))
        assert out.shape == (5, 1)
        assert np.all((out >= 0) & (out <= 1))
        assert np.all(np.isfinite(out))


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------
class TestAccountingProperties:
    @given(two_branch_graphs())
    @settings(max_examples=30, deadline=None)
    def test_flops_at_least_twice_macs(self, graph_and_dim):
        graph, _ = graph_and_dim
        assert graph.total_flops() >= 2 * graph.total_macs()

    @given(two_branch_graphs())
    @settings(max_examples=30, deadline=None)
    def test_quantization_shrinks_bytes_preserves_flops(self, graph_and_dim):
        graph, dim = graph_and_dim
        q = quantize_graph(graph, "int8")
        assert q.weight_bytes() * 4 <= graph.weight_bytes() + 3 * 4
        assert q.total_flops() == graph.total_flops()
        out_a = graph.forward(feeds_for(graph, dim, 2))
        out_b = q.forward(feeds_for(graph, dim, 2))
        # fake quantization perturbs scores only mildly
        assert np.max(np.abs(out_a - out_b)) < 0.5


# ----------------------------------------------------------------------
# mapping
# ----------------------------------------------------------------------
def make_mapper(rows, cols):
    l1 = ScratchpadLevel("l1", 512 * 1024, 1e12)
    dram = ScratchpadLevel("dram", 4 * 1024**3, 20e9)
    return GraphMapper(
        SystolicArray(SystolicConfig(rows=rows, cols=cols)),
        ScratchpadHierarchy(l1, dram=dram),
    )


class TestMappingProperties:
    @given(
        two_branch_graphs(),
        st.sampled_from([(4, 16), (16, 64), (32, 64), (8, 128)]),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_graph_maps_onto_any_array(self, graph_and_dim, shape):
        graph, _ = graph_and_dim
        profile = make_mapper(*shape).map_graph(graph)
        assert profile.seconds_per_feature > 0
        assert profile.macs_per_feature > 0
        assert 0 < profile.utilization(shape[0] * shape[1], 800e6) <= 1.0

    @given(two_branch_graphs())
    @settings(max_examples=20, deadline=None)
    def test_bigger_arrays_never_slower(self, graph_and_dim):
        graph, _ = graph_and_dim
        small = make_mapper(8, 32).map_graph(graph).compute_seconds_per_feature
        large = make_mapper(32, 128).map_graph(graph).compute_seconds_per_feature
        assert large <= small * 1.35  # fill overheads allow slight regressions

    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=1024),
    )
    @settings(max_examples=80, deadline=None)
    def test_gemm_cycles_monotone_in_each_dim(self, m, n, k):
        arr = SystolicArray(SystolicConfig(rows=16, cols=64))
        base = arr.gemm_cycles(m, n, k)
        assert arr.gemm_cycles(m + 8, n, k) >= base * 0.999
        assert arr.gemm_cycles(m, n + 8, k) >= base * 0.999
        assert arr.gemm_cycles(m, n, k + 8) >= base * 0.999

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=50, deadline=None)
    def test_elementwise_cycles_linear_bound(self, size):
        arr = SystolicArray(SystolicConfig(rows=16, cols=64))
        cycles = arr.elementwise_cycles(size)
        assert size / 16 <= cycles <= size / 16 + 3
