"""Tests for the chaos subsystem: schedules, harness, and parity.

Three load-bearing claims:

* **schedule determinism** — the same ``(seed, knobs)`` always
  generates the same production day, event for event;
* **fault-domain byte-stability (satellite 2)** — merging a chaos
  schedule into a :class:`FaultPlan` appends hard shard failures only:
  every read-retry / CRC / program-fail draw (hash domains 1–8) is
  byte-identical with or without the chaos events, because crash-time
  and retry-jitter draws live in their own domains (9–10);
* **zero-chaos parity** — with chaos disabled the recovery subsystem
  does not perturb any existing behaviour (the perf gate proves the
  scorecard half of this; here the fault-plan half is pinned).
"""

import numpy as np
import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosError,
    ChaosEvent,
    ChaosSchedule,
    run_cluster_chaos,
    run_durability_chaos,
)
from repro.faults import FaultInjector, FaultPlan
from repro.ssd.geometry import PhysicalPageAddress


def _draw_all(plan, seed, epochs=3, sites=12):
    """The full fault-draw record of a plan: domains 1-8 exercised."""
    injector = FaultInjector(plan=plan, seed=seed)
    record = []
    for epoch in range(epochs):
        injector.begin_epoch(epoch)
        for i in range(sites):
            addr = PhysicalPageAddress(
                channel=i % 4, chip=i % 2, plane=0, block=i, page=i * 3
            )
            record.append(injector.page_read_retries(addr))
            record.append(injector.transfer_crc_retries(addr))
            record.append(injector.page_program_retries(addr))
        record.append(injector.chip_dead(0, 0))
        record.append(injector.accelerator_dead(1))
    return record


class TestScheduleGeneration:
    def test_same_seed_same_day(self):
        kwargs = dict(
            n_shards=4, n_replicas=2, crashes=3, kills=4, bursts=2,
            outage_s=0.1, correlated=2,
        )
        a = ChaosSchedule.generate(11, 1.0, **kwargs)
        b = ChaosSchedule.generate(11, 1.0, **kwargs)
        assert a.events == b.events
        c = ChaosSchedule.generate(12, 1.0, **kwargs)
        assert a.events != c.events

    def test_events_are_time_ordered_and_validated(self):
        schedule = ChaosSchedule.generate(
            3, 2.0, n_shards=2, n_replicas=2, crashes=2, kills=3,
            outage_s=0.2, bursts=2,
        )
        times = [e.at_s for e in schedule.events]
        assert times == sorted(times)
        counts = schedule.counts()
        assert counts["crash"] == 2
        assert counts["burst"] == 2
        # every kill with a positive outage has a matching restart
        assert counts["restart"] == counts["kill"]
        assert "kill" in schedule.describe()

    def test_correlated_kills_share_an_instant(self):
        schedule = ChaosSchedule.generate(
            5, 1.0, n_shards=6, n_replicas=2, kills=2, correlated=3
        )
        kills = schedule.of_kind("kill")
        instants = {e.at_s for e in kills}
        assert len(instants) == 2  # two storms, each at one drawn time
        assert len(kills) > 2  # each storm took down several replicas

    def test_event_validation(self):
        with pytest.raises(ChaosError):
            ChaosEvent(at_s=-1.0, kind="crash")
        with pytest.raises(ChaosError):
            ChaosEvent(at_s=0.0, kind="meteor")
        with pytest.raises(ChaosError):
            ChaosEvent(at_s=0.0, kind="kill")  # no target
        with pytest.raises(ChaosError):
            ChaosEvent(at_s=0.0, kind="burst", rows=0)
        with pytest.raises(ChaosError):
            ChaosSchedule.generate(1, 0.0)
        with pytest.raises(ChaosError):
            ChaosSchedule.generate(1, 1.0, correlated=0)

    def test_due_window_is_half_open(self):
        schedule = ChaosSchedule(
            events=(
                ChaosEvent(at_s=0.1, kind="crash"),
                ChaosEvent(at_s=0.2, kind="crash"),
                ChaosEvent(at_s=0.3, kind="crash"),
            )
        )
        due = schedule.due(0.1, 0.3)
        assert [e.at_s for e in due] == [0.2, 0.3]


class TestFaultDomainByteStability:
    """Satellite 2: chaos draws cannot reshuffle fault draws."""

    def test_merging_chaos_preserves_every_fault_draw(self):
        base = FaultPlan(
            read_retry_rate=0.3,
            crc_error_rate=0.2,
            program_fail_rate=0.25,
            chip_failure_rate=0.1,
            accel_failure_rate=0.1,
        )
        schedule = ChaosSchedule.generate(
            7, 1.0, n_shards=4, n_replicas=2, crashes=3, kills=5, bursts=3
        )  # outage_s=0: every kill is permanent -> merged into the plan
        merged = schedule.to_fault_plan(base)
        assert len(merged.failures) > len(base.failures)
        assert merged.dead_shard_replicas() != ()
        for seed in (0, 7, 12345):
            assert _draw_all(base, seed) == _draw_all(merged, seed)

    def test_rate_fields_never_touched(self):
        base = FaultPlan(read_retry_rate=0.125, crc_error_rate=0.0625)
        schedule = ChaosSchedule.generate(
            9, 1.0, n_shards=2, n_replicas=1, kills=2
        )
        merged = schedule.to_fault_plan(base)
        for field in (
            "read_retry_rate", "read_retry_max", "crc_error_rate",
            "crc_retry_max", "program_fail_rate", "program_retry_max",
            "chip_failure_rate", "accel_failure_rate",
        ):
            assert getattr(merged, field) == getattr(base, field)

    def test_healed_kills_stay_out_of_the_plan(self):
        schedule = ChaosSchedule.generate(
            9, 1.0, n_shards=2, n_replicas=2, kills=2, outage_s=0.1
        )
        merged = schedule.to_fault_plan(FaultPlan.none())
        # every kill restarts later, so no permanent failure is merged
        assert merged.failures == ()

    def test_crash_and_jitter_domains_are_disjoint_from_fault_domains(self):
        from repro.faults import crash_time_unit, retry_jitter_unit
        from repro.faults.injector import _unit

        # same key, different domains: different draws
        for key in ((0, 1), (3, 4), (17, 2)):
            draws = {
                retry_jitter_unit(0, *key),
                crash_time_unit(0, *key),
                *(_unit(0, d, *key) for d in range(1, 9)),
            }
            assert len(draws) == 10  # no domain collides with another


class TestDurabilityHarness:
    def test_default_day_survives_with_bit_equal_recoveries(self):
        report = run_durability_chaos(ChaosConfig(seed=3))
        assert report.crashes and report.all_bit_equal
        assert report.durability == 1.0
        assert report.mutations_acked > 0
        assert report.checkpoints_taken > 0
        assert all(c.mttr_s > 0 for c in report.crashes)
        assert 0.0 < report.delta_skip_recall <= 1.0
        payload = report.to_dict()
        assert payload["bit_equal"] == 1
        assert payload["wal_records"] >= report.mutations_acked

    def test_deterministic_given_seed(self):
        a = run_durability_chaos(ChaosConfig(seed=5)).to_dict()
        b = run_durability_chaos(ChaosConfig(seed=5)).to_dict()
        assert a == b

    def test_config_validation(self):
        with pytest.raises(ChaosError):
            ChaosConfig(duration_s=0.0)
        with pytest.raises(ChaosError):
            ChaosConfig(mutations=0)


class TestClusterChaosHarness:
    def test_default_day_metrics(self):
        report = run_cluster_chaos(ChaosConfig(seed=3))
        assert report.queries == 24
        assert report.served + report.shed + report.failed == report.queries
        assert 0.0 < report.availability <= 1.0
        assert 0.0 < report.recall_mean <= 1.0
        assert report.outages  # kills healed and were priced
        assert all(o.mttr_s > 0 for o in report.outages)
        payload = report.to_dict()
        assert payload["availability"] == report.availability

    def test_deterministic_given_seed(self):
        a = run_cluster_chaos(ChaosConfig(seed=5)).to_dict()
        b = run_cluster_chaos(ChaosConfig(seed=5)).to_dict()
        assert a == b

    def test_quiet_day_is_fully_available(self):
        config = ChaosConfig(seed=1, kills=0, bursts=0, crashes=0, queries=6)
        report = run_cluster_chaos(config)
        assert report.availability == 1.0
        assert report.recall_mean == 1.0
        assert report.partial == 0
        assert report.outages == []
        assert report.breaker_transitions == 0
        assert report.max_brownout_level == 0
