"""Index × ingest: staleness drift, compaction recovery, region audit.

The index is a snapshot; live ingest makes it stale.  These tests pin
the staleness semantics end to end (mirroring the ``DeltaAwareSearch``
drift suite one layer down):

* recall@10 **degrades** as the unindexed delta grows when the probe
  ignores it, and ``include_delta=True`` buys it back at delta-scan
  cost;
* compaction triggers a re-index, after which recall is back within 1%
  of a fresh build;
* the layout region is sized by the ``region_blocks_for`` audit, so a
  scaled build grows its region instead of exhausting logical flash
  space (the ``--bench-scale 10`` regression).
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.index import IndexedDevice, region_blocks_for
from repro.index.scorecard import GATE_CONFIG, make_index_workload
from repro.ingest import IngestError, IngestWritePath
from repro.ssd import Ssd, SsdConfig
from repro.workloads import get_app, train_scn

APP = get_app("textqa")
DIM = APP.feature_floats
GRAPH = train_scn(APP, seed=0)
K = 10
NPROBE = 4

CFG = replace(
    GATE_CONFIG,
    n_features=2048,
    n_intents=8,
    n_lists=8,
    n_queries=3,
    planted=12,
    iterations=4,
)


def _device_with_index():
    features, queries = make_index_workload(CFG)
    device = IndexedDevice(level="channel")
    db = device.write_db(features)
    model = device.load_graph(GRAPH)
    device.enable_ingest(db, region_blocks=64, region_pages_per_block=64)
    device.build_index(
        db, model, CFG.n_lists, iterations=CFG.iterations, seed=CFG.seed
    )
    return device, db, model, queries


def _recall(device, db, model, queries, **kw):
    """Mean recall@K of the routed probe against the exhaustive scan."""
    values = []
    for probe in queries:
        device.index_mode = "off"
        try:
            exact = device.get_results(device.query(probe, K, model, db))
        finally:
            device.index_mode = "ivf"
        got = device.get_results(
            device.query(probe, K, model, db, nprobe=NPROBE, **kw)
        )
        hit = set(got.feature_ids.tolist()) & set(exact.feature_ids.tolist())
        values.append(len(hit) / K)
    return sum(values) / len(values)


def _insert_near(device, db, model, queries, rng, per_query=8):
    """Insert near-copies of each query's current top rows.

    The SCN is non-metric (the query itself is not its own best match),
    so the reliable way to shift the exact top-K is to clone the rows
    that already win it: about half the perturbed clones outscore their
    parent, pushing indexed rows out of the exact top-K.
    """
    store = device._store(db)
    for probe in queries:
        device.index_mode = "off"
        try:
            exact = device.get_results(device.query(probe, K, model, db))
        finally:
            device.index_mode = "ivf"
        parents = store[exact.feature_ids[: per_query // 2]]
        clones = np.repeat(parents, 2, axis=0)
        clones = clones + rng.normal(0, 0.005, clones.shape)
        device.insert_db(db, clones.astype(np.float32))


class TestStalenessDrift:
    def test_recall_degrades_as_the_delta_grows(self):
        device, db, model, queries = _device_with_index()
        rng = np.random.default_rng(23)
        fresh = _recall(device, db, model, queries, include_delta=False)
        assert fresh >= 0.95  # the build starts healthy

        drift = [fresh]
        for _ in range(3):
            _insert_near(device, db, model, queries, rng)
            drift.append(
                _recall(device, db, model, queries, include_delta=False)
            )
        # monotone staleness: each wave of unindexed rows can only hurt
        assert all(a >= b for a, b in zip(drift, drift[1:]))
        assert drift[-1] <= fresh - 0.5  # the delta dominates the top-K
        assert device.delta_rows(db) == 3 * len(queries) * 8

    def test_include_delta_buys_recall_back(self):
        device, db, model, queries = _device_with_index()
        rng = np.random.default_rng(23)
        _insert_near(device, db, model, queries, rng)
        _insert_near(device, db, model, queries, rng)

        stale = _recall(device, db, model, queries, include_delta=False)
        bought = _recall(device, db, model, queries, include_delta=True)
        assert bought >= 0.95
        assert bought > stale

        # the buyback is priced: the delta rows join the scanned cost
        probe = queries[0]
        with_delta = device.get_results(
            device.query(probe, K, model, db, nprobe=NPROBE,
                         include_delta=True)
        )
        without = device.get_results(
            device.query(probe, K, model, db, nprobe=NPROBE,
                         include_delta=False)
        )
        assert with_delta.probed_rows == without.probed_rows + device.delta_rows(db)


class TestCompactionReindex:
    def test_recall_recovers_within_one_percent_of_fresh(self):
        device, db, model, queries = _device_with_index()
        rng = np.random.default_rng(23)
        fresh = _recall(device, db, model, queries, include_delta=False)

        for _ in range(3):
            _insert_near(device, db, model, queries, rng)
        device.delete_db_rows(db, list(range(16)))
        stale = _recall(device, db, model, queries, include_delta=False)
        assert stale < fresh

        outcome = device.compact_db(db)
        assert device.delta_rows(db) == 0
        assert device.metrics.snapshot()["index.reindexes"] == 1
        # the compaction bill includes the rebuild, not just the GC pass
        assert outcome.seconds > device.index_for(db).report.total_seconds

        recovered = _recall(device, db, model, queries, include_delta=False)
        assert recovered >= fresh - 0.01

    def test_rebuild_covers_the_folded_delta(self):
        device, db, model, queries = _device_with_index()
        rng = np.random.default_rng(23)
        before = device.index_for(db)
        _insert_near(device, db, model, queries, rng)
        device.compact_db(db)
        after = device.index_for(db)
        assert after is not before
        assert after.report.rows == before.report.rows + len(queries) * 8
        assert after.boundary > before.boundary


class TestRegionAudit:
    """Satellite regression: index builds at --bench-scale 10 must not
    exhaust the ingest region's logical space."""

    def test_audited_region_holds_the_scaled_build(self):
        page_bytes = SsdConfig().geometry.page_bytes
        rows = GATE_CONFIG.n_features * 10
        blocks = region_blocks_for(rows, APP.feature_bytes, page_bytes)
        rows_per_page = max(1, page_bytes // APP.feature_bytes)
        pages_needed = math.ceil(rows / rows_per_page)
        capacity = blocks * 64
        logical = min(int(capacity * (1 - 0.07)), capacity - 2 * 64)
        assert logical >= 2.0 * pages_needed
        # the audit is monotone: more rows never shrink the region
        assert region_blocks_for(
            rows * 2, APP.feature_bytes, page_bytes
        ) >= blocks

    def test_fixed_region_dies_where_the_audit_survives(self, ssd):
        rows = 2000  # >> what 4 blocks of 16 pages can hold
        fixed = IngestWritePath(ssd, APP.feature_bytes, blocks=4,
                                pages_per_block=16)
        with pytest.raises(IngestError, match="logical flash space exhausted"):
            fixed.append(range(rows))

        blocks = region_blocks_for(
            rows, APP.feature_bytes, ssd.config.geometry.page_bytes,
            pages_per_block=16, min_blocks=4,
        )
        audited = IngestWritePath(Ssd(), APP.feature_bytes, blocks=blocks,
                                  pages_per_block=16)
        audited.append(range(rows))
        assert audited.live_rows == rows

    def test_build_report_pins_the_audited_region(self):
        device, db, _, _ = _device_with_index()
        report = device.index_for(db).report
        page_bytes = device.ssd.config.geometry.page_bytes
        assert report.region_blocks == region_blocks_for(
            report.rows, APP.feature_bytes, page_bytes
        )
