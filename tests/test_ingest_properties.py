"""Property suite: snapshot top-K equals oracle replay, always.

Hypothesis drives arbitrary interleavings of insert / delete / update /
snapshot-query operations against a :class:`MutableFeatureStore` and
checks the two invariants the whole subsystem rests on:

* the store's visible set at any epoch equals an **independent replay**
  of the mutation log (two implementations, one answer);
* the exact top-K over a snapshot never contains a tombstoned id and is
  identical to the oracle's top-K over the replayed visible set —
  including the canonical tie-break order.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.topk import topk_select
from repro.ingest.store import (
    MutableFeatureStore,
    oracle_replay,
    oracle_topk,
)

DIM = 6

# an interleaving is a list of ops; integers parameterize each op so the
# whole program shrinks well
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(min_value=1, max_value=5)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("update"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("query"), st.integers(min_value=1, max_value=8)),
    ),
    min_size=1,
    max_size=24,
)


def _fresh_store(n_base: int = 12, seed: int = 0) -> MutableFeatureStore:
    rng = np.random.default_rng(seed)
    return MutableFeatureStore(
        rng.normal(0, 1, (n_base, DIM)).astype(np.float32)
    )


def _scores_for(store: MutableFeatureStore, seed: int) -> np.ndarray:
    """Deterministic per-id scores with deliberate ties."""
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 8, size=store.n_rows)  # small range forces ties
    return raw.astype(np.float64)


def _store_topk(store, snapshot, scores, k):
    visible = store.visible_ids(snapshot)
    pairs = [(float(scores[i]), int(i)) for i in visible]
    return topk_select(pairs, k)


@given(program=ops, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_snapshot_topk_equals_oracle_replay(program, seed):
    store = _fresh_store(seed=seed)
    base = store.features().copy()
    rng = np.random.default_rng(seed + 1)
    checkpoints = []  # (snapshot, k) captured mid-interleaving
    for op, arg in program:
        alive = store.visible_ids()
        if op == "insert":
            store.insert(rng.normal(0, 1, (arg, DIM)).astype(np.float32))
        elif op == "delete" and len(alive):
            store.delete([int(alive[arg % len(alive)])])
        elif op == "update" and len(alive):
            store.update(
                int(alive[arg % len(alive)]),
                rng.normal(0, 1, DIM).astype(np.float32),
            )
        elif op == "query":
            checkpoints.append((store.snapshot(), arg))
    checkpoints.append((store.snapshot(), 5))

    scores = _scores_for(store, seed)
    for snapshot, k in checkpoints:
        # the snapshot's view must equal an independent log replay...
        _, oracle_visible = oracle_replay(base, store.log, snapshot.epoch)
        assert store.visible_ids(snapshot).tolist() == oracle_visible
        # ...and the exact top-K must match the oracle's, ties included
        expected = oracle_topk(store.features(), oracle_visible, scores, k)
        assert _store_topk(store, snapshot, scores, k) == expected


@given(program=ops, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_tombstoned_ids_never_appear_in_results(program, seed):
    store = _fresh_store(seed=seed)
    rng = np.random.default_rng(seed + 1)
    dead = set()
    for op, arg in program:
        alive = store.visible_ids()
        if op == "insert":
            store.insert(rng.normal(0, 1, (arg, DIM)).astype(np.float32))
        elif op == "delete" and len(alive):
            victim = int(alive[arg % len(alive)])
            store.delete([victim])
            dead.add(victim)
        elif op == "update" and len(alive):
            victim = int(alive[arg % len(alive)])
            store.update(victim, rng.normal(0, 1, DIM).astype(np.float32))
            dead.add(victim)
        elif op == "query":
            scores = _scores_for(store, seed)
            top = _store_topk(store, store.snapshot(), scores, arg)
            assert not ({fid for _, fid in top} & dead)
    scores = _scores_for(store, seed)
    top = _store_topk(store, store.snapshot(), scores, 8)
    assert not ({fid for _, fid in top} & dead)
    # every tombstone is individually invisible
    for fid in dead:
        assert not store.is_visible(fid)


@given(
    n_insert=st.integers(min_value=0, max_value=6),
    n_delete=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_visible_count_conservation(n_insert, n_delete, seed):
    """visible = base + inserted - deleted, for any operation counts."""
    store = _fresh_store(seed=seed)
    rng = np.random.default_rng(seed)
    base = store.n_visible
    store_inserted = 0
    if n_insert:
        store.insert(rng.normal(0, 1, (n_insert, DIM)).astype(np.float32))
        store_inserted = n_insert
    alive = store.visible_ids()
    doomed = [int(i) for i in alive[: min(n_delete, len(alive))]]
    if doomed:
        store.delete(doomed)
    assert store.n_visible == base + store_inserted - len(doomed)
    assert store.n_tombstones == len(doomed)
