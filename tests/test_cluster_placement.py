"""Tests for dataset partitioning across cluster shards."""

import numpy as np
import pytest

from repro.cluster import (
    ShardPlacement,
    hash_placement,
    locality_placement,
    make_placement,
    range_placement,
)


class TestRangePlacement:
    def test_contiguous_and_balanced(self):
        placement = range_placement(10, 3)
        assert sorted(placement.shard_sizes) == [3, 3, 4]
        flat = np.concatenate(placement.owners)
        assert np.array_equal(flat, np.arange(10))  # contiguous slices
        for ids in placement.owners:
            assert np.array_equal(ids, np.arange(ids[0], ids[-1] + 1))

    def test_more_shards_than_features_leaves_empty_shards(self):
        placement = range_placement(2, 5)
        assert sum(placement.shard_sizes) == 2
        assert placement.non_empty_shards() == [
            s for s, ids in enumerate(placement.owners) if len(ids)
        ]
        assert len(placement.non_empty_shards()) == 2

    def test_imbalance_close_to_one(self):
        assert range_placement(1000, 7).imbalance < 1.01


class TestHashPlacement:
    def test_decorrelates_from_insert_order(self):
        placement = hash_placement(1000, 4)
        # no shard owns a long contiguous prefix
        for ids in placement.owners:
            assert len(ids) > 0
            assert not np.array_equal(ids, np.arange(len(ids)))

    def test_seed_changes_assignment(self):
        a = hash_placement(500, 4, seed=0)
        b = hash_placement(500, 4, seed=1)
        assert any(
            not np.array_equal(x, y) for x, y in zip(a.owners, b.owners)
        )

    def test_reasonably_balanced(self):
        assert hash_placement(10_000, 8).imbalance < 1.1


class TestLocalityPlacement:
    def test_block_cyclic_without_features(self):
        placement = locality_placement(64, 4)
        assert placement.strategy == "locality"
        assert sum(placement.shard_sizes) == 64
        # neighbouring ids co-shard in blocks
        shard_of = placement.shard_of()
        assert shard_of[0] == shard_of[1]

    def test_embedding_aware_respects_balance_cap(self):
        rng = np.random.default_rng(0)
        features = rng.normal(0, 1, (200, 16)).astype(np.float32)
        placement = locality_placement(200, 4, features=features, seed=3)
        assert sum(placement.shard_sizes) == 200
        assert max(placement.shard_sizes) <= int(np.ceil(2.0 * 200 / 4))

    def test_co_shards_similar_features(self):
        rng = np.random.default_rng(1)
        # two tight, well-separated clusters
        a = rng.normal(0, 0.01, (50, 8)) + 10.0
        b = rng.normal(0, 0.01, (50, 8)) - 10.0
        features = np.vstack([a, b]).astype(np.float32)
        placement = locality_placement(100, 2, features=features, seed=0)
        shard_of = placement.shard_of()
        # each cluster lands (almost) entirely on one shard
        assert len(set(shard_of[:50].tolist())) == 1
        assert len(set(shard_of[50:].tolist())) == 1

    def test_feature_shape_validated(self):
        with pytest.raises(ValueError):
            locality_placement(10, 2, features=np.zeros((5, 4)))


class TestShardPlacement:
    def test_partition_must_be_exact(self):
        with pytest.raises(ValueError):
            ShardPlacement(
                "range", 5, (np.arange(2, dtype=np.int64),)
            )

    def test_shard_of_inverts_owners(self):
        placement = make_placement("hash", 123, 5, seed=2)
        shard_of = placement.shard_of()
        for shard, ids in enumerate(placement.owners):
            assert all(shard_of[i] == shard for i in ids)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_placement("alphabetical", 10, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            range_placement(-1, 2)
        with pytest.raises(ValueError):
            range_placement(10, 0)
        with pytest.raises(ValueError):
            hash_placement(10, 0)
        with pytest.raises(ValueError):
            locality_placement(10, 0)
