"""The crash-anywhere proof: recovery is bit-exact, always.

Hypothesis drives a mutation program (inserts, deletes, compactions,
checkpoints) against a :class:`~repro.recovery.DurableStore` and crashes
it at **every** durable point — after any prefix of WAL programs, via
the :meth:`~repro.recovery.DurableImage.truncated` seam — then recovers
and demands:

* the recovered store equals a shadow store that applied exactly the
  acked prefix (``state_equal``: rows, epochs, tombstones, delta
  boundary — bit-exact);
* the recovered visible set equals the independent
  :func:`~repro.ingest.store.oracle_replay` of the recovered log;
* top-K over the recovered store is bit-equal to top-K over the shadow
  — **ids and scores** — under the canonical tie-break.

Between the generated programs and the per-program crash-point sweep
this suite checks far more than the required 300 crash examples.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ingest.store import MutableFeatureStore, oracle_replay, oracle_topk
from repro.recovery import CheckpointPolicy, DurableStore, recover

DIM = 4

# a mutation program: inserts of 1-3 rows, deletes (index resolved
# against the visible set at execution time), compactions, checkpoints
ops = st.one_of(
    st.tuples(st.just("insert"), st.integers(min_value=1, max_value=3)),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10_000)),
    st.tuples(st.just("compact"), st.just(0)),
    st.tuples(st.just("checkpoint"), st.just(0)),
)
programs = st.lists(ops, min_size=1, max_size=10)
seeds = st.integers(min_value=0, max_value=2**16)


def _run_program(program, seed):
    """Execute a program; return the durable store + per-op row payloads."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((4, DIM)).astype(np.float32)
    store = DurableStore(
        base,
        policy=CheckpointPolicy(interval_s=1e-9, min_epochs=1),
        # generous region: programs are short, exhaustion is not under test
    )
    now = 0.0
    for kind, arg in program:
        now += 1.0
        if kind == "insert":
            store.insert(
                rng.standard_normal((arg, DIM)).astype(np.float32), now_s=now
            )
        elif kind == "delete":
            visible = sorted(int(i) for i in store.store.visible_ids())
            if not visible:
                continue
            store.delete([visible[arg % len(visible)]], now_s=now)
        elif kind == "compact":
            store.mark_compacted(store.store.snapshot(), now_s=now)
        else:
            store.checkpoint(now)
    return base, store


def _shadow_of(image):
    """Apply the image's acked prefix to a fresh store, independently."""
    shadow = (
        image.checkpoint.restore()
        if image.checkpoint is not None
        else MutableFeatureStore(image.base)
    )
    covered = image.checkpoint.wal_lsn if image.checkpoint else 0
    for record in image.records:
        if record.lsn <= covered:
            continue
        if record.op == "insert":
            shadow.insert(record.payload)
        elif record.op == "delete":
            shadow.delete(record.ids)
        else:
            shadow.mark_compacted(shadow.snapshot_at(record.compact_epoch))
    return shadow


class TestCrashAnywhere:
    @given(programs, seeds)
    @settings(max_examples=300, deadline=None)
    def test_recovery_is_bit_exact_at_every_crash_point(self, program, seed):
        base, store = _run_program(program, seed)
        image = store.crash_image()
        rng = np.random.default_rng(seed + 1)
        queries = rng.standard_normal((2, DIM)).astype(np.float32)
        # crash after every durable prefix of the final WAL, including
        # zero records (checkpoint-only restart) and the full log
        for cut in range(len(image.records) + 1):
            cut_image = image.truncated(cut)
            recovered, report = recover(cut_image)

            shadow = _shadow_of(cut_image)
            assert recovered.store.state_equal(shadow)
            assert report.recovered_epoch == shadow.epoch
            assert report.records_replayed == len(cut_image.records) - (
                sum(
                    1
                    for r in cut_image.records
                    if cut_image.checkpoint
                    and r.lsn <= cut_image.checkpoint.wal_lsn
                )
            )

            # independent oracle agreement on visibility
            rec = recovered.store
            _, oracle_visible = oracle_replay(base, rec.log, rec.epoch)
            assert [int(i) for i in rec.visible_ids()] == oracle_visible

            # top-K bit-equality: ids AND scores
            rec_rows = rec.features()
            sh_rows = shadow.features()
            assert np.array_equal(rec_rows, sh_rows)
            visible = [int(i) for i in rec.visible_ids()]
            for q in queries:
                got = oracle_topk(rec_rows, visible, rec_rows @ q, 3)
                want = oracle_topk(
                    sh_rows,
                    [int(i) for i in shadow.visible_ids()],
                    sh_rows @ q,
                    3,
                )
                assert got == want  # exact float equality, no approx

    @given(programs, seeds)
    @settings(max_examples=60, deadline=None)
    def test_acked_mutations_always_survive(self, program, seed):
        """Durability: every acked epoch is recoverable from the image."""
        _, store = _run_program(program, seed)
        recovered, _ = recover(store.crash_image())
        assert recovered.store.epoch == store.acked_epoch
        assert recovered.store.state_equal(store.store)

    @given(programs, seeds, st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_crash_between_log_and_apply_keeps_the_ack(
        self, program, seed, n_rows
    ):
        """The two-phase boundary: logged-but-unapplied means acked,
        and acked means it survives."""
        _, store = _run_program(program, seed)
        payload = np.random.default_rng(seed + 2).standard_normal(
            (n_rows, DIM)
        ).astype(np.float32)
        pending = store.begin_insert(payload)  # program done = commit
        assert store.acked_epoch == pending.record.epoch
        recovered, _ = recover(store.crash_image())
        assert recovered.store.epoch == pending.record.epoch
        for fid, row in zip(pending.record.ids, payload):
            assert fid in set(int(i) for i in recovered.store.visible_ids())
            assert np.array_equal(recovered.store.features()[fid], row)

    @given(programs, seeds)
    @settings(max_examples=60, deadline=None)
    def test_checkpoint_round_trip_preserves_wal_continuity(
        self, program, seed
    ):
        """A recovered store keeps mutating: epochs and lsns continue
        exactly where the crash left them."""
        _, store = _run_program(program, seed)
        recovered, _ = recover(store.crash_image(), policy=store.policy)
        epoch_before = recovered.store.epoch
        lsn_before = recovered.wal.last_lsn
        ids = recovered.insert(
            np.ones((1, DIM), dtype=np.float32), now_s=1e9
        )
        assert recovered.store.epoch == epoch_before + 1
        assert int(ids[0]) == recovered.store.n_rows - 1
        # the new record is durable in the *new* WAL region
        assert recovered.wal.last_lsn == lsn_before + 1
        again, _ = recover(recovered.crash_image())
        assert again.store.state_equal(recovered.store)
