"""Diurnal trace generator: determinism + shape properties (ISSUE
satellite).

Hypothesis sweeps tenant parameters and pins the four properties the
isolation methodology depends on: bit-identical regeneration under the
same seed, monotone non-decreasing timestamps inside the day, burst
arrivals confined to their declared windows, and **surgical removal**
(excluding one tenant, or stripping one tenant's bursts, leaves every
other arrival byte-identical — the paired noisy-neighbor runs measure
contention, not a reroll).
"""

import math

from hypothesis import given, settings, strategies as st

from repro.tenancy.spec import BurstSpec, TenancyConfig, TenantSpec
from repro.tenancy.trace import (
    aggressor_of,
    diurnal_rate,
    generate_day,
    offered_summary,
    peak_window_qps,
    tenant_day,
)

DAY_S = 4000.0

tenant_specs = st.builds(
    TenantSpec,
    name=st.just("t"),
    base_qps=st.floats(min_value=0.01, max_value=0.3, allow_nan=False),
    amplitude=st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
    phase=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
    zipf_alpha=st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
    write_fraction=st.sampled_from([0.0, 0.3]),
    ingest_key_alpha=st.just(1.0),
    bursts=st.one_of(
        st.just(()),
        st.tuples(st.builds(
            BurstSpec,
            start_fraction=st.floats(min_value=0.1, max_value=0.6,
                                     allow_nan=False),
            duration_fraction=st.floats(min_value=0.02, max_value=0.2,
                                        allow_nan=False),
            multiplier=st.floats(min_value=1.5, max_value=8.0,
                                 allow_nan=False),
        )),
    ),
)


@settings(max_examples=40, deadline=None)
@given(spec=tenant_specs, seed=st.integers(min_value=0, max_value=2**16))
def test_trace_deterministic_monotone_contained(spec, seed):
    first = tenant_day(spec, 0, DAY_S, seed)
    again = tenant_day(spec, 0, DAY_S, seed)
    # bit-identical under the same seed (frozen dataclass equality
    # compares every field, floats included)
    assert first == again
    last = 0.0
    for a in first:
        assert 0.0 <= a.time_s < DAY_S
        assert a.time_s >= last
        last = a.time_s
        if a.burst:
            lo, hi = spec.bursts[0].window_s(DAY_S)
            assert lo <= a.time_s < hi
        if a.kind == "ingest":
            assert a.intent == -1 and a.key >= 0
        else:
            assert a.key == -1 and 0 <= a.intent < spec.n_intents
            assert a.app in [app for app, _f in spec.apps]


@settings(max_examples=30, deadline=None)
@given(spec=tenant_specs, seed=st.integers(min_value=0, max_value=2**16))
def test_burst_strip_is_surgical(spec, seed):
    full = tenant_day(spec, 0, DAY_S, seed)
    base_only = tenant_day(spec, 0, DAY_S, seed, include_bursts=False)
    # stripping bursts removes exactly the burst-marked arrivals and
    # leaves every base arrival byte-identical
    assert [a for a in full if not a.burst] == base_only
    assert all(not a.burst for a in base_only)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       other_seed=st.integers(min_value=2**16 + 1, max_value=2**17))
def test_tenant_exclusion_is_surgical(seed, other_seed):
    cfg = TenancyConfig(
        tenants=(
            TenantSpec(name="victim", base_qps=0.05),
            TenantSpec(
                name="aggressor", base_qps=0.08,
                bursts=(BurstSpec(start_fraction=0.4,
                                  duration_fraction=0.1,
                                  multiplier=5.0),),
            ),
        ),
        day_s=DAY_S,
        seed=seed,
    )
    full = generate_day(cfg)
    solo = generate_day(cfg, exclude=("aggressor",))
    assert [a for a in full if a.tenant == "victim"] == solo
    # and a different seed is a genuinely different day
    reseeded = generate_day(
        TenancyConfig(tenants=cfg.tenants, day_s=DAY_S, seed=other_seed)
    )
    assert reseeded != full


def test_diurnal_rate_shape():
    spec = TenantSpec(name="t", base_qps=0.1, amplitude=0.5, phase=0.25)
    # crest sits a quarter-day after the phase offset
    crest_t = (0.25 + 0.25) * DAY_S
    assert diurnal_rate(spec, crest_t, DAY_S) == 0.1 * 1.5
    trough_t = (0.25 + 0.75) * DAY_S
    assert math.isclose(
        diurnal_rate(spec, trough_t, DAY_S), 0.05, abs_tol=1e-12
    )
    assert all(
        diurnal_rate(spec, f * DAY_S, DAY_S) >= 0.0
        for f in (0.0, 0.1, 0.37, 0.5, 0.9)
    )


def test_burst_lifts_offered_rate():
    burst = BurstSpec(start_fraction=0.25, duration_fraction=0.25,
                      multiplier=6.0)
    spec = TenantSpec(name="t", base_qps=0.2, amplitude=0.0,
                      bursts=(burst,))
    arrivals = tenant_day(spec, 0, DAY_S, seed=3)
    lo, hi = burst.window_s(DAY_S)
    inside = sum(1 for a in arrivals if lo <= a.time_s < hi)
    outside = len(arrivals) - inside
    in_rate = inside / (hi - lo)
    out_rate = outside / (DAY_S - (hi - lo))
    # flat diurnal: the window should offer ~multiplier x the base
    assert 4.0 < in_rate / out_rate < 8.0
    assert peak_window_qps(arrivals, window_s=200.0) > out_rate * 3


def test_offered_summary_and_aggressor():
    cfg = TenancyConfig(
        tenants=(
            TenantSpec(name="quiet", base_qps=0.05, write_fraction=0.5,
                       ingest_key_alpha=1.0),
            TenantSpec(
                name="noisy", base_qps=0.05,
                bursts=(BurstSpec(start_fraction=0.5,
                                  duration_fraction=0.1,
                                  multiplier=4.0),),
            ),
        ),
        day_s=DAY_S,
        seed=11,
    )
    assert aggressor_of(cfg) == "noisy"
    summary = offered_summary(generate_day(cfg))
    assert set(summary) == {"quiet", "noisy"}
    for row in summary.values():
        assert row["offered"] == row["queries"] + row["writes"]
    assert summary["quiet"]["writes"] > 0
    assert summary["quiet"]["burst"] == 0
    assert summary["noisy"]["burst"] > 0
    # nobody bursts -> no aggressor, no isolation pair
    assert aggressor_of(TenancyConfig(
        tenants=(TenantSpec(name="quiet"),)
    )) is None
