"""Tests for the hardware top-K sorter and the merge step."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.topk import (
    KWayMergeStats,
    TopKSorter,
    kway_merge_topk,
    merge_topk,
    topk_select,
)


class TestTopKSorter:
    def test_keeps_best_k(self):
        sorter = TopKSorter(3)
        for i, score in enumerate([0.1, 0.9, 0.5, 0.7, 0.3]):
            sorter.update(score, i)
        assert [fid for _, fid in sorter.results()] == [1, 3, 2]

    def test_results_sorted_descending(self, rng):
        sorter = TopKSorter(8)
        for i in range(100):
            sorter.update(float(rng.random()), i)
        scores = [s for s, _ in sorter.results()]
        assert scores == sorted(scores, reverse=True)

    def test_rejects_below_minimum_when_full(self):
        sorter = TopKSorter(2)
        sorter.update(0.9, 0)
        sorter.update(0.8, 1)
        assert not sorter.update(0.5, 2)
        assert sorter.inserts == 2
        assert sorter.updates == 3

    def test_partial_fill(self):
        sorter = TopKSorter(10)
        sorter.update(0.5, 0)
        assert sorter.size == 1
        assert sorter.min_score == float("-inf")

    def test_cycle_accounting(self):
        sorter = TopKSorter(4)
        sorter.update(0.5, 0)
        # 1 compare + log2(4) search + shift
        assert sorter.cycles >= 3

    def test_expected_cycles_close_to_one_for_long_streams(self):
        sorter = TopKSorter(10)
        # over a million candidates almost every update is a reject
        assert sorter.expected_cycles_per_update(1_000_000) < 1.1
        assert sorter.expected_cycles_per_update(10) > 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKSorter(0)
        with pytest.raises(ValueError):
            TopKSorter(5).expected_cycles_per_update(0)

    @given(st.lists(st.floats(min_value=0, max_value=1,
                              allow_nan=False), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_equivalent_to_sorted_reference(self, scores, k):
        sorter = TopKSorter(k)
        for i, s in enumerate(scores):
            sorter.update(s, i)
        got = [s for s, _ in sorter.results()]
        expected = sorted(scores, reverse=True)[:k]
        assert got == pytest.approx(expected)


class TestMergeTopK:
    def test_merges_partials(self):
        partials = [
            [(0.9, 1), (0.5, 2)],
            [(0.8, 3), (0.7, 4)],
        ]
        merged = merge_topk(partials, 3)
        assert merged == [(0.9, 1), (0.8, 3), (0.7, 4)]

    def test_handles_empty_partials(self):
        assert merge_topk([[], [(0.5, 1)]], 2) == [(0.5, 1)]

    def test_ties_break_by_feature_id(self):
        merged = merge_topk([[(0.5, 9)], [(0.5, 1)]], 2)
        assert merged == [(0.5, 1), (0.5, 9)]

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_topk([], 0)

    @given(
        st.lists(
            st.lists(st.tuples(st.floats(0, 1, allow_nan=False), st.integers(0, 999)),
                     max_size=20),
            min_size=1, max_size=8,
        ),
        st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_global_sort(self, partials, k):
        merged = merge_topk(partials, k)
        everything = sorted(
            (item for p in partials for item in p),
            key=lambda pair: (-pair[0], pair[1]),
        )
        assert merged == everything[:k]


class TestTopKSelect:
    def test_canonical_order(self):
        pairs = [(0.5, 9), (0.9, 4), (0.5, 1), (0.9, 2)]
        assert topk_select(pairs, 3) == [(0.9, 2), (0.9, 4), (0.5, 1)]

    def test_k_larger_than_input(self):
        assert topk_select([(0.3, 0)], 10) == [(0.3, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            topk_select([(0.1, 0)], 0)


class TestKWayMergeTopK:
    def test_matches_materialized_merge(self):
        partials = [
            [(0.9, 1), (0.5, 2)],
            [(0.8, 3), (0.7, 4)],
            [],
        ]
        merged, _ = kway_merge_topk(partials, 3)
        assert merged == merge_topk(partials, 3)

    def test_single_list_costs_zero_comparisons(self):
        # the degenerate one-shard cluster must add zero hidden cost
        merged, stats = kway_merge_topk([[(0.9, 0), (0.1, 1)]], 2)
        assert merged == [(0.9, 0), (0.1, 1)]
        assert stats.lists == 1
        assert stats.comparisons == 0

    def test_empty_input_costs_nothing(self):
        merged, stats = kway_merge_topk([[], []], 5)
        assert merged == []
        assert stats.heap_ops == 0
        assert stats.entries_popped == 0

    def test_stats_accounting(self):
        partials = [
            [(0.9, 1), (0.5, 2)],
            [(0.8, 3), (0.7, 4)],
        ]
        merged, stats = kway_merge_topk(partials, 3)
        assert stats.lists == 2
        assert stats.entries_offered == 4
        assert stats.entries_popped == 3
        # heapify(2 heads) + 3 pops + 2 refill pushes (last pop drains)
        assert stats.heap_ops == 7
        assert stats.comparisons == 7  # ceil(log2(2)) == 1

    def test_streaming_stops_at_k(self):
        # only K entries are popped no matter how much was offered
        partials = [[(1.0 - i / 100, i) for i in range(50)]]
        _, stats = kway_merge_topk(partials, 3)
        assert stats.entries_popped == 3
        assert stats.entries_offered == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            kway_merge_topk([[(0.5, 0)]], 0)

    def test_comparisons_scale_with_log_lists(self):
        stats = KWayMergeStats(
            lists=8, entries_offered=0, entries_popped=0, heap_ops=10
        )
        assert stats.comparisons == 30  # 10 * ceil(log2(8))
