"""Tests for the DeepStore programming API (paper Table 2)."""

import numpy as np
import pytest

from repro.core.api import DeepStoreApiError, DeepStoreDevice
from repro.nn import graph_to_bytes
from repro.workloads import get_app, plant_neighbors
from repro.workloads.pretrained import train_scn


@pytest.fixture
def device():
    return DeepStoreDevice()


@pytest.fixture
def tir_db(device, rng):
    features = rng.normal(0, 1, (4096, 512)).astype(np.float32)
    return device.write_db(features), features


@pytest.fixture
def tir_model(device, tir_app):
    return device.load_model(graph_to_bytes(tir_app.build_scn(seed=1)))


class TestDatabaseApi:
    def test_write_read_roundtrip(self, device, rng):
        features = rng.normal(0, 1, (100, 64)).astype(np.float32)
        db = device.write_db(features)
        np.testing.assert_array_equal(device.read_db(db, 10, 5), features[10:15])
        np.testing.assert_array_equal(device.read_db(db), features)

    def test_write_registers_ftl_metadata(self, device, rng):
        db = device.write_db(rng.normal(0, 1, (100, 512)).astype(np.float32))
        meta = device.database_metadata(db)
        assert meta.feature_bytes == 2048
        assert meta.feature_count == 100

    def test_append(self, device, rng):
        a = rng.normal(0, 1, (50, 64)).astype(np.float32)
        b = rng.normal(0, 1, (30, 64)).astype(np.float32)
        db = device.write_db(a)
        device.append_db(db, b)
        assert device.database_metadata(db).feature_count == 80
        np.testing.assert_array_equal(device.read_db(db, 50, 30), b)

    def test_append_size_mismatch(self, device, rng):
        db = device.write_db(rng.normal(0, 1, (10, 64)).astype(np.float32))
        with pytest.raises(DeepStoreApiError):
            device.append_db(db, rng.normal(0, 1, (5, 32)).astype(np.float32))

    def test_read_out_of_range(self, device, rng):
        db = device.write_db(rng.normal(0, 1, (10, 8)).astype(np.float32))
        with pytest.raises(DeepStoreApiError):
            device.read_db(db, 5, 10)

    def test_unknown_db(self, device):
        with pytest.raises(DeepStoreApiError):
            device.read_db(99)

    def test_bad_features(self, device):
        with pytest.raises(DeepStoreApiError):
            device.write_db(np.zeros((0, 4), dtype=np.float32))
        with pytest.raises(DeepStoreApiError):
            device.write_db(np.zeros(8, dtype=np.float32))


class TestModelApi:
    def test_load_model_blob(self, device, tir_app):
        blob = graph_to_bytes(tir_app.build_scn())
        model_id = device.load_model(blob)
        assert model_id >= 1
        # DRAM footprint tracked
        assert device.ssd.dram.allocation(f"model{model_id}") == len(blob)

    def test_model_ids_unique(self, device, tir_app):
        blob = graph_to_bytes(tir_app.build_scn())
        assert device.load_model(blob) != device.load_model(blob)


class TestQueryApi:
    def test_query_returns_topk_sorted(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        res = device.get_results(device.query(qfv, 10, tir_model, db))
        assert res.k == 10
        assert list(res.scores) == sorted(res.scores, reverse=True)
        assert len(set(res.feature_ids.tolist())) == 10

    def test_topk_matches_exhaustive_scoring(self, device, tir_db, tir_model, rng):
        db, features = tir_db
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        res = device.get_results(device.query(qfv, 5, tir_model, db))
        graph = device._models[tir_model]
        all_scores = device._score_features(graph, qfv, features)
        expected = np.argsort(-all_scores)[:5]
        assert set(res.feature_ids.tolist()) == set(expected.tolist())

    def test_trained_model_retrieves_planted_neighbors(self, device, rng):
        app = get_app("textqa")
        graph = train_scn(app, seed=0)
        anchor = rng.normal(0, 1, 200).astype(np.float32)
        features = rng.normal(0, 1, (3000, 200)).astype(np.float32)
        features, planted = plant_neighbors(features, anchor, k=5, noise=0.2, seed=1)
        db = device.write_db(features)
        model = device.load_graph(graph)
        qfv = anchor + rng.normal(0, 0.2, 200).astype(np.float32)
        res = device.get_results(device.query(qfv, 10, model, db))
        recall = len(set(res.feature_ids.tolist()) & set(planted.tolist())) / 5
        assert recall >= 0.8

    def test_subrange_query(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        res = device.get_results(
            device.query(qfv, 5, tir_model, db, db_start=1000, db_end=2000)
        )
        assert all(1000 <= i < 2000 for i in res.feature_ids)

    def test_latency_attached(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        res = device.get_results(device.query(qfv, 5, tir_model, db))
        assert res.latency.total_seconds > 0
        assert res.latency.level == "channel"
        assert res.seconds == res.latency.total_seconds

    def test_result_dma_charged(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        res = device.get_results(device.query(qfv, 5, tir_model, db))
        expected = 5 * (2048 + 8) / 3.2e9
        assert res.transfer_seconds == pytest.approx(expected)
        assert res.seconds_to_host == pytest.approx(
            res.seconds + res.transfer_seconds
        )

    def test_accel_level_override(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        chip = device.get_results(
            device.query(qfv, 5, tir_model, db, accel_level="chip")
        )
        channel = device.get_results(device.query(qfv, 5, tir_model, db))
        assert chip.latency.level == "chip"
        assert chip.latency.total_seconds > channel.latency.total_seconds

    def test_object_ids_are_physical_addresses(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        meta = device.database_metadata(db)
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        res = device.get_results(device.query(qfv, 5, tir_model, db))
        start_byte = meta.start_ppn * meta.page_bytes
        end_byte = (meta.extents[-1].end_ppn) * meta.page_bytes
        assert all(start_byte <= oid < end_byte for oid in res.object_ids)

    def test_reid_rejected_at_chip_level(self, device, rng):
        app = get_app("reid")
        features = rng.normal(0, 1, (16, app.feature_floats)).astype(np.float32)
        db = device.write_db(features)
        model = device.load_graph(app.build_scn())
        with pytest.raises(DeepStoreApiError):
            device.query(
                rng.normal(0, 1, app.feature_floats).astype(np.float32),
                4, model, db, accel_level="chip",
            )

    def test_bad_requests(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        with pytest.raises(DeepStoreApiError):
            device.query(qfv, 0, tir_model, db)
        with pytest.raises(DeepStoreApiError):
            device.query(qfv, 5, 999, db)
        with pytest.raises(DeepStoreApiError):
            device.query(qfv, 5, tir_model, db, db_start=50, db_end=10)
        with pytest.raises(DeepStoreApiError):
            device.query(rng.normal(0, 1, 100).astype(np.float32), 5, tir_model, db)
        with pytest.raises(DeepStoreApiError):
            device.get_results(type("H", (), {"query_id": 12345})())


class TestQueryCacheIntegration:
    def test_hit_on_repeat_and_paraphrase(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        device.set_qc(threshold=0.10, capacity=16)
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        first = device.get_results(device.query(qfv, 5, tir_model, db))
        assert not first.cache_hit
        para = qfv + rng.normal(0, 0.03, 512).astype(np.float32)
        second = device.get_results(device.query(para, 5, tir_model, db))
        assert second.cache_hit
        # the hit skips the scan; on this deliberately tiny test database
        # the fixed engine overheads compress the ratio, so just require
        # a clear win (paper-scale databases give orders of magnitude)
        assert second.seconds < first.seconds / 2

    def test_hit_reranks_cached_candidates(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        device.set_qc(threshold=0.10, capacity=16)
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        first = device.get_results(device.query(qfv, 5, tir_model, db))
        second = device.get_results(device.query(qfv, 5, tir_model, db))
        assert set(second.feature_ids.tolist()) <= set(first.feature_ids.tolist())

    def test_no_stale_hit_after_append(self, device, tir_db, tir_model, rng):
        """Regression: a mutation must invalidate cached results.

        Before epoch tagging, a query cached before ``append_db`` could
        hit afterwards and return a top-K that ignores the appended
        features entirely.
        """
        db, _ = tir_db
        device.set_qc(threshold=0.10, capacity=16)
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        first = device.get_results(device.query(qfv, 5, tir_model, db))
        assert not first.cache_hit
        # plant appended features that dominate the ranking for qfv
        graph = device._models[tir_model]
        base = device.read_db(db)
        scores = device._score_features(graph, qfv, base)
        winners = base[np.argsort(-scores)[:8]]
        device.append_db(db, winners + rng.normal(0, 1e-3, winners.shape).astype(np.float32))
        second = device.get_results(device.query(qfv, 5, tir_model, db))
        assert not second.cache_hit  # the stale entry must not satisfy this
        assert any(int(i) >= len(base) for i in second.feature_ids)
        # and the mutation dropped the stale entry outright
        assert device.query_cache.invalidations >= 1

    def test_epoch_advances_on_append(self, device, rng):
        db = device.write_db(rng.normal(0, 1, (32, 64)).astype(np.float32))
        assert device.db_epoch(db) == 0
        device.append_db(db, rng.normal(0, 1, (8, 64)).astype(np.float32))
        assert device.db_epoch(db) == 1
        device.append_db(db, rng.normal(0, 1, (8, 64)).astype(np.float32))
        assert device.db_epoch(db) == 2

    def test_unrelated_query_misses(self, device, tir_db, tir_model, rng):
        db, _ = tir_db
        device.set_qc(threshold=0.10, capacity=16)
        device.query(rng.normal(0, 1, 512).astype(np.float32), 5, tir_model, db)
        other = device.get_results(
            device.query(rng.normal(0, 1, 512).astype(np.float32), 5, tir_model, db)
        )
        assert not other.cache_hit
        assert device.query_cache.misses == 2
