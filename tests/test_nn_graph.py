"""Tests for the DAG graph: construction, execution, accounting."""

import numpy as np
import pytest

from repro.nn import Dense, GraphBuilder, Input
from repro.nn.graph import Graph, GraphError


def small_scn(seed: int = 0) -> Graph:
    b = GraphBuilder("t")
    q = b.input((8,), "qfv")
    d = b.input((8,), "dfv")
    h = b.elementwise(q, d, "absdiff")
    h = b.dense(h, 4, activation="relu")
    h = b.dense(h, 1)
    out = b.score_head(h, "sigmoid")
    return b.build(out, seed=seed)


class TestConstruction:
    def test_builder_produces_valid_graph(self):
        g = small_scn()
        assert g.shape_of(g.output_id) == (1,)
        assert len(g.input_ids) == 2

    def test_arity_checked(self):
        g = Graph()
        i = g.add(Input((4,)))
        with pytest.raises(GraphError):
            g.add(Dense(4, 2), (i, i))

    def test_dangling_input_rejected(self):
        g = Graph()
        g.add(Input((4,)))
        with pytest.raises(GraphError):
            g.add(Dense(4, 2), (7,))

    def test_shape_check_at_construction(self):
        g = Graph()
        i = g.add(Input((4,)))
        with pytest.raises(ValueError):
            g.add(Dense(5, 2), (i,))

    def test_set_output_validates(self):
        g = small_scn()
        with pytest.raises(GraphError):
            g.set_output(99)


class TestExecution:
    def test_forward_shapes(self, rng):
        g = small_scn()
        q = rng.normal(0, 1, (5, 8)).astype(np.float32)
        d = rng.normal(0, 1, (5, 8)).astype(np.float32)
        out = g.forward({0: q, 1: d})
        assert out.shape == (5, 1)
        assert np.all((out > 0) & (out < 1))

    def test_identical_inputs_score_high(self, rng):
        # absdiff(x, x) = 0, so the score is the bias path -> deterministic
        g = small_scn()
        x = rng.normal(0, 1, (3, 8)).astype(np.float32)
        s_same = g.forward({0: x, 1: x})
        assert np.allclose(s_same, s_same[0])

    def test_missing_feed(self, rng):
        g = small_scn()
        with pytest.raises(GraphError):
            g.forward({0: rng.normal(0, 1, (2, 8)).astype(np.float32)})

    def test_batch_mismatch(self, rng):
        g = small_scn()
        with pytest.raises(GraphError):
            g.forward(
                {
                    0: rng.normal(0, 1, (2, 8)).astype(np.float32),
                    1: rng.normal(0, 1, (3, 8)).astype(np.float32),
                }
            )

    def test_feed_shape_mismatch(self, rng):
        g = small_scn()
        with pytest.raises(GraphError):
            g.forward(
                {
                    0: rng.normal(0, 1, (2, 9)).astype(np.float32),
                    1: rng.normal(0, 1, (2, 8)).astype(np.float32),
                }
            )

    def test_deterministic_given_seed(self, rng):
        g1, g2 = small_scn(seed=7), small_scn(seed=7)
        q = rng.normal(0, 1, (4, 8)).astype(np.float32)
        d = rng.normal(0, 1, (4, 8)).astype(np.float32)
        np.testing.assert_array_equal(
            g1.forward({0: q, 1: d}), g2.forward({0: q, 1: d})
        )

    def test_backward_requires_kept_activations(self, rng):
        g = small_scn()
        g.forward(
            {0: rng.normal(0, 1, (2, 8)).astype(np.float32),
             1: rng.normal(0, 1, (2, 8)).astype(np.float32)}
        )
        g._last_activations = None
        with pytest.raises(GraphError):
            g.backward(np.ones((2, 1), dtype=np.float32))


class TestAccounting:
    def test_total_flops_sums_layers(self):
        g = small_scn()
        stats = g.layer_stats()
        assert g.total_flops() == sum(s.flops for s in stats)
        assert g.total_macs() == sum(s.macs for s in stats)

    def test_parameter_count(self):
        g = small_scn()
        # dense 8->4 (36) + dense 4->1 (5)
        assert g.parameter_count() == 41
        assert g.weight_bytes() == 164

    def test_count_layers(self):
        counts = small_scn().count_layers()
        assert counts == {"conv": 0, "fc": 2, "elementwise": 1}

    def test_layer_stats_exclude_inputs(self):
        g = small_scn()
        assert all(s.op_name != "Input" for s in g.layer_stats())

    def test_summary_mentions_layers(self):
        text = small_scn().summary()
        assert "Dense" in text and "Elementwise" in text

    def test_weight_bytes_fp32(self):
        g = small_scn()
        stats = [s for s in g.layer_stats() if s.weight_params]
        assert all(s.weight_bytes == 4 * s.weight_params for s in stats)


class TestInitialization:
    def test_initialize_is_deterministic(self):
        g = small_scn(seed=3)
        w1 = {k: {n: v.copy() for n, v in p.items()} for k, p in g.params.items()}
        g.initialize(seed=3)
        for node_id, params in g.params.items():
            for name, tensor in params.items():
                np.testing.assert_array_equal(tensor, w1[node_id][name])

    def test_different_seed_different_weights(self):
        g1, g2 = small_scn(seed=1), small_scn(seed=2)
        some = next(iter(g1.params))
        assert not np.array_equal(g1.params[some]["W"], g2.params[some]["W"])
