"""Unit tests for the WAL, checkpoints, and replay-based recovery.

The property suite (``test_recovery_properties``) carries the
crash-anywhere proof; this file pins the mechanics: slot packing,
measured write amplification, truncation TRIM, region exhaustion,
checkpoint cadence, two-phase ordering, and the recovery report's
cost arithmetic.
"""

import numpy as np
import pytest

from repro.recovery import (
    CheckpointPolicy,
    DurableStore,
    RecoveryError,
    WalConfig,
    WalRecord,
    WriteAheadLog,
    recover,
    take_checkpoint,
)
from repro.ingest.writepath import IngestWritePath
from repro.ssd.ssd import Ssd


def _wal(slot_bytes=64, blocks=8, pages_per_block=8):
    return WriteAheadLog(
        IngestWritePath(
            Ssd(), slot_bytes, blocks=blocks, pages_per_block=pages_per_block
        )
    )


def _rows(n, dim=4, seed=0):
    return np.random.default_rng(seed).standard_normal((n, dim)).astype(
        np.float32
    )


class TestWalRecord:
    def test_insert_needs_payload(self):
        with pytest.raises(RecoveryError):
            WalRecord(lsn=1, epoch=1, op="insert", ids=(0,))

    def test_compact_needs_epoch(self):
        with pytest.raises(RecoveryError):
            WalRecord(lsn=1, epoch=1, op="compact")

    def test_unknown_op_rejected(self):
        with pytest.raises(RecoveryError):
            WalRecord(lsn=1, epoch=1, op="upsert")

    def test_nbytes_counts_header_ids_payload(self):
        payload = _rows(2, dim=4)
        record = WalRecord(
            lsn=1, epoch=1, op="insert", ids=(0, 1), payload=payload
        )
        assert record.nbytes == 28 + 8 * 2 + payload.nbytes

    def test_compact_is_not_a_store_mutation(self):
        record = WalRecord(lsn=1, epoch=1, op="compact", compact_epoch=1)
        with pytest.raises(RecoveryError):
            record.as_mutation()


class TestWriteAheadLog:
    def test_append_assigns_monotonic_lsns(self):
        wal = _wal()
        for i in range(3):
            record, write = wal.append("delete", i + 1, ids=(i,))
            assert record.lsn == i + 1
            assert write.seconds > 0
        assert wal.last_lsn == 3
        assert [r.lsn for r in wal.records] == [1, 2, 3]

    def test_records_span_slots_by_size(self):
        wal = _wal(slot_bytes=64)
        small, _ = wal.append("delete", 1, ids=(0,))
        big, _ = wal.append("insert", 2, ids=(1, 2), payload=_rows(2, dim=32))
        assert wal.slots_for(small) == 1
        # 28 + 16 + 2*32*4 = 300 bytes -> 5 slots of 64
        assert wal.slots_for(big) == 5

    def test_write_amplification_is_measured_not_assumed(self):
        wal = _wal(slot_bytes=64)
        total_slots = 0
        for i in range(40):
            record, _ = wal.append("delete", i + 1, ids=(i,))
            total_slots += wal.slots_for(record)
        # the FTL's own arithmetic, not a constant baked into the WAL
        stats = wal.writepath.stats
        assert wal.write_amplification == stats.write_amplification
        assert wal.write_amplification >= 1.0
        # synchronous commits re-program the open page on every append:
        # far more page programs than the records' slots strictly need
        min_pages = -(-total_slots // wal.writepath.rows_per_page)
        assert stats.host_writes >= 40 > min_pages
        assert wal.bytes_logged == sum(r.nbytes for r in wal.records)

    def test_truncate_drops_prefix_and_trims(self):
        wal = _wal()
        for i in range(5):
            wal.append("delete", i + 1, ids=(i,))
        op = wal.truncate_through(3)
        assert op is not None and op.seconds >= 0
        assert [r.lsn for r in wal.records] == [4, 5]
        assert wal.truncated_records == 3
        assert wal.truncate_through(3) is None  # idempotent

    def test_records_after_and_in_epochs(self):
        wal = _wal()
        wal.append("insert", 1, ids=(0,), payload=_rows(1))
        wal.append("compact", 1, compact_epoch=1)
        wal.append("delete", 2, ids=(0,))
        assert [r.lsn for r in wal.records_after(1)] == [2, 3]
        # resync replay skips compact markers
        assert [r.epoch for r in wal.records_in_epochs(0, 2)] == [1, 2]

    def test_region_full_raises_recovery_error(self):
        wal = _wal(blocks=4, pages_per_block=2)
        with pytest.raises(RecoveryError, match="WAL region full"):
            for i in range(10_000):
                wal.append("delete", i + 1, ids=(i,))


class TestCheckpoint:
    def test_restore_round_trips_state(self):
        store = DurableStore(_rows(8))
        store.insert(_rows(2, seed=1))
        store.delete([0])
        checkpoint = take_checkpoint(store.store, 1, store.wal.last_lsn, 0.5)
        restored = checkpoint.restore()
        assert store.store.state_equal(restored)
        assert checkpoint.epoch == store.store.epoch
        assert checkpoint.nbytes > 0

    def test_cadence_needs_both_time_and_epochs(self):
        policy = CheckpointPolicy(interval_s=1.0, min_epochs=2)
        store = DurableStore(_rows(8), policy=policy)
        store.insert(_rows(1), now_s=5.0)  # 1 epoch: too few
        assert store.checkpoints_taken == 0
        store.insert(_rows(1), now_s=0.5)  # 2 epochs but too soon
        assert store.checkpoints_taken == 0
        store.insert(_rows(1), now_s=5.0)
        assert store.checkpoints_taken == 1
        # checkpoint truncated the fully-applied log
        assert store.wal.records == ()


class TestDurableStore:
    def test_two_phase_must_apply_in_log_order(self):
        store = DurableStore(_rows(8))
        first = store.begin_insert(_rows(1, seed=1))
        second = store.begin_delete([0])
        with pytest.raises(RecoveryError, match="log order"):
            store.apply_pending(second)
        store.apply_pending(first)
        store.apply_pending(second)
        with pytest.raises(RecoveryError, match="already applied"):
            store.apply_pending(second)

    def test_ack_advances_at_program_completion(self):
        store = DurableStore(_rows(8))
        assert store.acked_epoch == 0
        pending = store.begin_insert(_rows(1, seed=1))
        # committed (acked) even though the store has not applied it
        assert store.acked_epoch == 1
        assert store.store.epoch == 0
        store.apply_pending(pending)
        assert store.store.epoch == 1

    def test_logged_but_unapplied_mutation_survives_crash(self):
        store = DurableStore(_rows(8))
        store.begin_insert(np.ones((1, 4), dtype=np.float32))
        recovered, report = recover(store.crash_image())
        # the ack made it durable: replay applies it
        assert recovered.store.epoch == 1
        assert report.records_replayed == 1
        assert 8 in [int(i) for i in recovered.store.visible_ids()]

    def test_recovered_store_keeps_operating(self):
        store = DurableStore(
            _rows(8), policy=CheckpointPolicy(interval_s=1e-9, min_epochs=1)
        )
        store.insert(_rows(2, seed=1), now_s=1.0)
        recovered, _ = recover(store.crash_image(), policy=store.policy)
        assert store.store.state_equal(recovered.store)
        # lsn continuity: new records never reuse old lsns
        before = recovered.wal.last_lsn
        recovered.insert(_rows(1, seed=2), now_s=2.0)
        assert recovered.wal.last_lsn == before + 1

    def test_recovery_report_prices_every_stage(self):
        store = DurableStore(
            _rows(64, dim=16),
            policy=CheckpointPolicy(interval_s=1e-9, min_epochs=1),
        )
        store.insert(_rows(4, dim=16, seed=1), now_s=1.0)  # checkpointed
        store.insert(_rows(4, dim=16, seed=2), now_s=1.0)  # replayed
        _, report = recover(store.crash_image())
        assert report.checkpoint_epoch == 1
        assert report.recovered_epoch == 2
        assert report.records_replayed == 1
        assert report.checkpoint_read_seconds > 0
        assert report.wal_read_seconds > 0
        assert report.apply_seconds > 0
        assert report.seconds == pytest.approx(
            report.checkpoint_read_seconds
            + report.wal_read_seconds
            + report.apply_seconds
        )

    def test_crash_image_truncation_seam(self):
        store = DurableStore(_rows(8))
        store.insert(_rows(1, seed=1))
        store.insert(_rows(1, seed=2))
        image = store.crash_image()
        earlier = image.truncated(1)
        recovered, _ = recover(earlier)
        assert recovered.store.epoch == 1

    def test_wal_config_controls_region(self):
        cfg = WalConfig(slot_bytes=32, blocks=4, pages_per_block=4)
        store = DurableStore(_rows(8), wal_config=cfg)
        assert store.wal.slot_bytes == 32
