"""Tests for the fault-injection and reliability layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.reliability import percentile, run_reliability_trial
from repro.core.api import DeepStoreApiError, DeepStoreDevice
from repro.core.engine import DispatchPolicy, QueryEngine
from repro.core.event_query import EventQuerySimulator
from repro.core.scheduler import (
    degraded_topk,
    partition_feature_ranges,
    plan_degraded_scan,
)
from repro.core.topk import merge_topk
from repro.faults import (
    ComponentFailure,
    FaultInjector,
    FaultPlan,
    ReliabilityCounters,
)
from repro.faults.injector import maybe_injector
from repro.sim import Simulator
from repro.ssd import ChannelController, FlashChip, FlashTiming, SsdConfig
from repro.ssd.flash import PageReadRequest
from repro.ssd.geometry import PhysicalPageAddress
from repro.workloads import get_app


def addr(channel=0, chip=0, plane=0, block=0, page=0):
    return PhysicalPageAddress(channel, chip, plane, block, page)


class TestFaultPlan:
    def test_zero_plan_is_zero(self):
        assert FaultPlan.none().is_zero
        assert not FaultPlan(read_retry_rate=0.1).is_zero
        assert not FaultPlan.none().fail_accelerator(0).is_zero

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(read_retry_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(crc_error_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(read_retry_max=0)

    def test_failure_kind_validation(self):
        with pytest.raises(ValueError):
            ComponentFailure(kind="gpu", index=0)
        with pytest.raises(ValueError):
            ComponentFailure(kind="accelerator")  # needs an index
        with pytest.raises(ValueError):
            ComponentFailure(kind="chip", channel=0)  # needs a chip too

    def test_builders_accumulate_failures(self):
        plan = FaultPlan.none().fail_accelerator(2).fail_chip(1, 3, at_s=1e-3)
        assert len(plan.failures) == 2
        assert plan.injects_hard_failures
        assert "failure" in plan.describe()

    def test_maybe_injector_zero_fast_path(self):
        assert maybe_injector(None) is None
        assert maybe_injector(FaultPlan.none()) is None
        assert maybe_injector(FaultPlan(read_retry_rate=0.1)) is not None


class TestInjectorDeterminism:
    def _draws(self, seed, rate=0.2):
        inj = FaultInjector(plan=FaultPlan(read_retry_rate=rate,
                                           crc_error_rate=rate), seed=seed)
        pages = [addr(c, 0, 0, 0, p) for c in range(4) for p in range(64)]
        return (
            [inj.page_read_retries(a) for a in pages],
            [inj.transfer_crc_retries(a) for a in pages],
        )

    def test_same_seed_same_faults(self):
        assert self._draws(seed=11) == self._draws(seed=11)

    def test_different_seed_different_faults(self):
        assert self._draws(seed=11) != self._draws(seed=12)

    def test_epoch_redraws_the_pattern(self):
        inj = FaultInjector(plan=FaultPlan(read_retry_rate=0.3), seed=5)
        pages = [addr(page=p) for p in range(128)]
        first = [inj.page_read_retries(a) for a in pages]
        inj.begin_epoch(1)
        second = [inj.page_read_retries(a) for a in pages]
        assert first != second
        inj.begin_epoch(0)
        assert [inj.page_read_retries(a) for a in pages] == first

    def test_fault_sites_nest_as_rate_grows(self):
        # the monotone-curve guarantee: every site faulting at a low
        # rate also faults, with the same depth, at any higher rate
        pages = [addr(0, 0, 0, b, p) for b in range(8) for p in range(32)]
        low = FaultInjector(plan=FaultPlan(read_retry_rate=0.05), seed=3)
        high = FaultInjector(plan=FaultPlan(read_retry_rate=0.30), seed=3)
        low_draws = {a: low.page_read_retries(a) for a in pages}
        high_draws = {a: high.page_read_retries(a) for a in pages}
        faulting_low = {a for a, d in low_draws.items() if d}
        faulting_high = {a for a, d in high_draws.items() if d}
        assert faulting_low <= faulting_high
        assert len(faulting_high) > len(faulting_low)
        for a in faulting_low:
            assert low_draws[a] == high_draws[a]

    def test_counters_tally(self):
        inj = FaultInjector(plan=FaultPlan(read_retry_rate=1.0,
                                           read_retry_max=2), seed=0)
        total = sum(inj.page_read_retries(addr(page=p)) for p in range(50))
        assert inj.counts.page_reads == 50
        assert inj.counts.pages_with_retry == 50
        assert inj.counts.retry_passes == total
        assert inj.counts.observed_retry_rate == 1.0
        assert ReliabilityCounters().observed_retry_rate == 0.0

    def test_scheduled_failures_respect_time(self):
        plan = FaultPlan.none().fail_chip(0, 1, at_s=2e-3).fail_accelerator(
            4, at_s=1e-3
        )
        inj = FaultInjector(plan=plan, seed=0)
        assert not inj.chip_dead(0, 1, now=1e-3)
        assert inj.chip_dead(0, 1, now=2e-3)
        assert inj.plane_dead(0, 1, 0, now=3e-3)  # dead chip kills planes
        assert not inj.accelerator_dead(4, now=0.0)
        assert inj.accelerator_dead(4, now=1e-3)
        assert inj.failed_accelerators(8, now=1.0) == [4]


class TestFlashFaultHooks:
    def test_read_retry_stretches_plane_occupancy(self):
        timing = FlashTiming()
        clean_sim, faulty_sim = Simulator(), Simulator()
        clean = FlashChip(clean_sim, timing, planes=2)
        inj = FaultInjector(
            plan=FaultPlan(read_retry_rate=1.0, read_retry_max=1), seed=0
        )
        faulty = FlashChip(faulty_sim, timing, planes=2, injector=inj)
        done = {}
        clean.read(PageReadRequest(addr(), lambda r: done.update(c=clean_sim.now)))
        faulty.read(PageReadRequest(addr(), lambda r: done.update(f=faulty_sim.now)))
        clean_sim.run()
        faulty_sim.run()
        # rate 1.0, max 1 => exactly one extra array pass
        assert done["f"] == pytest.approx(done["c"] + timing.array_read_latency_s)
        assert faulty.retry_passes == 1

    def test_dead_plane_fails_the_read(self):
        inj = FaultInjector(plan=FaultPlan.none().fail_chip(0, 0), seed=0)
        sim = Simulator()
        chip = FlashChip(sim, FlashTiming(), planes=2, injector=inj)
        outcome = []
        chip.read(
            PageReadRequest(
                addr(),
                lambda r: outcome.append("ok"),
                on_failed=lambda r: outcome.append("failed"),
            )
        )
        sim.run()
        assert outcome == ["failed"]
        assert chip.reads_failed == 1
        assert inj.counts.failed_reads == 1

    def test_crc_retransfer_inflates_bus_time(self):
        config = SsdConfig()
        results = {}
        for label, rate in (("clean", 0.0), ("noisy", 1.0)):
            sim = Simulator()
            inj = maybe_injector(
                FaultPlan(crc_error_rate=rate, crc_retry_max=1)
            )
            ctl = ChannelController(
                sim, config.geometry, config.timing, 0, injector=inj
            )
            ctl.read_page(addr(), lambda a: None)
            sim.run()
            results[label] = sim.now
        extra = config.timing.transfer_seconds(
            config.geometry.page_bytes
        ) + config.timing.command_overhead_s
        assert results["noisy"] == pytest.approx(results["clean"] + extra)


class TestDispatchPolicy:
    def test_backoff_ladder(self):
        policy = DispatchPolicy(timeout_seconds=100e-6, max_retries=3,
                                backoff=2.0)
        assert policy.attempts == 4
        assert policy.attempt_timeout_seconds(0) == pytest.approx(100e-6)
        assert policy.attempt_timeout_seconds(3) == pytest.approx(800e-6)
        assert policy.give_up_seconds() == pytest.approx(1500e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            DispatchPolicy(timeout_seconds=0)
        with pytest.raises(ValueError):
            DispatchPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            DispatchPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            DispatchPolicy().attempt_timeout_seconds(-1)


class TestEngineRobustness:
    def test_merge_seconds_rejects_nonpositive_accels(self, ssd_config):
        engine = QueryEngine(ssd_config)
        with pytest.raises(ValueError):
            engine.merge_seconds(0, 10)
        with pytest.raises(ValueError):
            engine.merge_seconds(-3, 10)

    def test_degraded_dispatch_adds_timeout_ladders(self, ssd_config):
        engine = QueryEngine(ssd_config)
        policy = DispatchPolicy()
        healthy = engine.dispatch_seconds(30)
        degraded = engine.degraded_dispatch_seconds(32, 2, policy)
        assert degraded == pytest.approx(
            healthy + 2 * policy.give_up_seconds()
        )
        assert engine.degraded_dispatch_seconds(32, 0) == pytest.approx(
            engine.dispatch_seconds(32)
        )

    def test_degraded_dispatch_validation(self, ssd_config):
        engine = QueryEngine(ssd_config)
        with pytest.raises(ValueError):
            engine.degraded_dispatch_seconds(4, 4)  # nobody left
        with pytest.raises(ValueError):
            engine.degraded_dispatch_seconds(4, -1)


class TestDegradedScanPlan:
    def test_partition_covers_exactly(self):
        ranges = partition_feature_ranges(1003, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1003
        for (a, b), (c, _) in zip(ranges, ranges[1:]):
            assert b == c
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_plan_adopts_failed_stripes(self):
        plan = plan_degraded_scan(1000, 8, failed=[2, 5])
        assert plan.survivors == [0, 1, 3, 4, 6, 7]
        covered = sorted(
            r for ranges in plan.assignments.values() for r in ranges
        )
        assert covered == partition_feature_ranges(1000, 8)
        assert plan.load_factor > 1.0

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            plan_degraded_scan(100, 4, failed=[4])
        with pytest.raises(ValueError):
            plan_degraded_scan(100, 4, failed=[0, 1, 2, 3])
        assert plan_degraded_scan(100, 4, failed=[]).load_factor == 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        n_features=st.integers(min_value=1, max_value=400),
        n_accels=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    def test_degraded_topk_identical_to_healthy(
        self, n_features, n_accels, seed, data
    ):
        # failing any proper subset of accelerators must not change the
        # answer: remapped ranges cover the database exactly once
        failed = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=n_accels - 1),
                max_size=n_accels - 1,
            )
        )
        rng = np.random.default_rng(seed)
        # integer scores force plenty of ties through the tie-breaker
        scores = rng.integers(0, 5, size=n_features).astype(np.float32)
        plan = plan_degraded_scan(n_features, n_accels, failed)
        k = data.draw(st.integers(min_value=1, max_value=20))
        healthy = merge_topk(
            [list(zip(scores.tolist(), range(n_features)))], k
        )
        assert degraded_topk(scores, plan, k) == healthy


class TestEventQueryFaults:
    @pytest.fixture(scope="class")
    def small_meta(self):
        from repro.ssd import Ssd

        app = get_app("tir")
        return app, Ssd().ftl.create_database(app.feature_bytes, 4000)

    def test_zero_plan_bit_identical(self, small_meta):
        app, meta = small_meta
        sim = EventQuerySimulator()
        healthy = sim.run(app, meta)
        with_none = sim.run(app, meta, injector=maybe_injector(FaultPlan.none()))
        assert with_none.total_seconds == healthy.total_seconds
        assert with_none.availability == 1.0

    def test_retries_slow_the_scan(self, small_meta):
        app, meta = small_meta
        sim = EventQuerySimulator()
        healthy = sim.run(app, meta)
        inj = FaultInjector(plan=FaultPlan(read_retry_rate=0.2), seed=1)
        faulty = sim.run(app, meta, injector=inj)
        assert faulty.total_seconds > healthy.total_seconds
        assert faulty.availability == 1.0
        assert inj.counts.pages_with_retry > 0

    def test_accel_failure_remaps_and_degrades(self, small_meta):
        app, meta = small_meta
        sim = EventQuerySimulator()
        healthy = sim.run(app, meta)
        inj = FaultInjector(plan=FaultPlan.none().fail_accelerator(3), seed=0)
        degraded = sim.run(app, meta, injector=inj)
        assert degraded.failed_channels == [3]
        assert degraded.remapped_pages > 0
        assert degraded.availability == 1.0
        assert degraded.total_seconds > healthy.total_seconds
        assert degraded.per_channel_seconds[3] == 0.0

    def test_all_accels_failed_raises(self, small_meta):
        app, meta = small_meta
        sim = EventQuerySimulator()
        inj = FaultInjector(plan=FaultPlan(accel_failure_rate=1.0), seed=0)
        with pytest.raises(RuntimeError):
            sim.run(app, meta, injector=inj)


class TestReliabilityReport:
    def test_percentile_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 99) == 5.0
        assert percentile(values, 100) == 5.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 0)

    def test_zero_plan_reports_unity(self, tir_app):
        from repro.ssd import Ssd

        meta = Ssd().ftl.create_database(tir_app.feature_bytes, 4000)
        report = run_reliability_trial(
            tir_app, meta, FaultPlan.none(), queries=3
        )
        assert report.slowdown == 1.0
        assert report.p99_inflation == 1.0
        assert report.availability == 1.0
        assert report.counters == {}

    def test_trial_is_deterministic(self, tir_app):
        from repro.ssd import Ssd

        meta = Ssd().ftl.create_database(tir_app.feature_bytes, 4000)
        plan = FaultPlan(read_retry_rate=0.1, crc_error_rate=0.02)
        a = run_reliability_trial(tir_app, meta, plan, queries=2, seed=9)
        b = run_reliability_trial(tir_app, meta, plan, queries=2, seed=9)
        assert a.to_json() == b.to_json()
        assert a.slowdown > 1.0
        assert "p50" in a.render()

    def test_trial_validation(self, tir_app):
        from repro.ssd import Ssd

        meta = Ssd().ftl.create_database(tir_app.feature_bytes, 1000)
        with pytest.raises(ValueError):
            run_reliability_trial(tir_app, meta, FaultPlan.none(), queries=0)


class TestDeviceDegradedQueries:
    def test_failed_accel_keeps_topk_raises_latency(self, rng):
        device = DeepStoreDevice()
        app = get_app("tir")
        features = rng.normal(0, 1, (2048, 512)).astype(np.float32)
        db = device.write_db(features)
        from repro.nn import graph_to_bytes

        model = device.load_model(graph_to_bytes(app.build_scn(seed=1)))
        qfv = rng.normal(0, 1, 512).astype(np.float32)
        healthy = device.get_results(device.query(qfv, 10, model, db))
        device.fail_accelerator(7)
        assert sorted(device.failed_accelerators) == [7]
        degraded = device.get_results(device.query(qfv, 10, model, db))
        assert degraded.feature_ids.tolist() == healthy.feature_ids.tolist()
        assert degraded.seconds > healthy.seconds
        device.repair_accelerator(7)
        repaired = device.get_results(device.query(qfv, 10, model, db))
        assert repaired.seconds == pytest.approx(healthy.seconds)

    def test_all_accels_failed_is_an_error(self, rng):
        device = DeepStoreDevice()
        app = get_app("tir")
        db = device.write_db(rng.normal(0, 1, (256, 512)).astype(np.float32))
        from repro.nn import graph_to_bytes

        model = device.load_model(graph_to_bytes(app.build_scn(seed=1)))
        channels = device.ssd.config.geometry.channels
        for i in range(channels):
            device.fail_accelerator(i)
        with pytest.raises(DeepStoreApiError):
            device.query(rng.normal(0, 1, 512).astype(np.float32), 5, model, db)

    def test_fail_accelerator_validation(self):
        device = DeepStoreDevice()
        with pytest.raises(DeepStoreApiError):
            device.fail_accelerator(-1)


class TestFaultsCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["faults", "--retry-rate", "0.1"])
        assert args.retry_rate == 0.1
        assert args.app == "tir"
        assert args.json is False

    def test_faults_command_runs(self, capsys):
        from repro.cli import main

        code = main([
            "faults", "--features", "2000", "--queries", "2",
            "--retry-rate", "0.05", "--fail-accels", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Reliability report" in out
        assert "failed accels   [2]" in out

    def test_faults_command_json(self, capsys):
        import json

        from repro.cli import main

        code = main([
            "faults", "--features", "2000", "--queries", "1",
            "--crc-rate", "0.1", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slowdown"] >= 1.0
        assert payload["queries"] == 1


class TestProgramFaults:
    """Write-path (program-verify) faults for the ingest subsystem."""

    def test_plan_validation_and_description(self):
        with pytest.raises(ValueError):
            FaultPlan(program_fail_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(program_retry_max=0)
        plan = FaultPlan(program_fail_rate=0.2, program_retry_max=2)
        assert not plan.is_zero
        assert plan.injects_program_faults
        assert "program-fail" in plan.describe()
        assert not FaultPlan.none().injects_program_faults

    def test_zero_rate_counts_programs_but_never_retries(self):
        inj = FaultInjector(plan=FaultPlan(read_retry_rate=0.5), seed=0)
        for page in range(32):
            assert inj.page_program_retries(addr(page=page)) == 0
        assert inj.counts.page_programs == 32
        assert inj.counts.program_retries == 0
        assert inj.counts.programs_with_retry == 0

    def test_retries_are_deterministic_and_bounded(self):
        plan = FaultPlan(program_fail_rate=0.5, program_retry_max=3)
        a = FaultInjector(plan=plan, seed=11)
        b = FaultInjector(plan=plan, seed=11)
        sites = [addr(block=i % 4, page=i) for i in range(64)]
        draws = [a.page_program_retries(s) for s in sites]
        assert draws == [b.page_program_retries(s) for s in sites]
        assert any(draws)  # rate 0.5 over 64 sites must fire somewhere
        assert all(0 <= d <= 3 for d in draws)
        assert a.counts.programs_with_retry == sum(1 for d in draws if d)
        assert a.counts.program_retries == sum(draws)

    def test_program_faults_leave_read_draws_untouched(self):
        # separate hash domains: arming write faults must not reshuffle
        # the read-retry pattern an experiment already depends on
        reads_only = FaultInjector(plan=FaultPlan(read_retry_rate=0.3), seed=5)
        both = FaultInjector(
            plan=FaultPlan(read_retry_rate=0.3, program_fail_rate=0.9), seed=5
        )
        sites = [addr(block=i // 8, page=i % 8) for i in range(48)]
        assert [reads_only.page_read_retries(s) for s in sites] == [
            both.page_read_retries(s) for s in sites
        ]

    def test_writepath_charges_program_retries(self, ssd):
        from repro.ingest import IngestWritePath
        from repro.ssd import Ssd

        app = get_app("textqa")
        inj = FaultInjector(
            plan=FaultPlan(program_fail_rate=1.0, program_retry_max=2), seed=0
        )
        faulty = IngestWritePath(
            ssd, app.feature_bytes, blocks=8, pages_per_block=16, injector=inj
        )
        clean = IngestWritePath(
            Ssd(), app.feature_bytes, blocks=8, pages_per_block=16
        )
        slow = faulty.append(range(40))
        fast = clean.append(range(40))
        assert inj.counts.page_programs > 0
        assert inj.counts.program_retries > 0
        # every program drew at least one extra pass: strictly slower
        assert slow.host_seconds > fast.host_seconds
        assert slow.pages_written == fast.pages_written

    def test_enable_ingest_attaches_injector_after_seeding(self, rng):
        from repro.ingest import LifecycleDevice

        device = LifecycleDevice()
        db = device.write_db(rng.normal(0, 1, (64, 6)).astype(np.float32))
        inj = FaultInjector(plan=FaultPlan(program_fail_rate=1.0), seed=0)
        device.enable_ingest(
            db, region_blocks=8, region_pages_per_block=16, injector=inj
        )
        # seeding the base rows must not count as faulted mutation traffic
        assert inj.counts.page_programs == 0
        device.insert_db(db, np.ones((3, 6), dtype=np.float32))
        assert inj.counts.page_programs > 0
        assert inj.counts.program_retries > 0
