"""Tests for flash scan-trace generation (channel filters, windows)."""

import pytest

from repro.ssd import Ssd
from repro.ssd.trace import scan_trace, stripe_page_count


@pytest.fixture(scope="module")
def db():
    """A database spanning a few stripes on the default geometry."""
    ssd = Ssd()
    meta = ssd.ftl.create_database(1024, 4_000)
    return ssd, meta


class TestScanTrace:
    def test_full_scan_covers_every_page_in_order(self, db):
        ssd, meta = db
        accesses = list(scan_trace(meta, ssd.config.geometry))
        assert len(accesses) == meta.total_pages
        offsets = [a.db_page_offset for a in accesses]
        assert offsets == sorted(offsets)
        assert offsets == list(range(meta.total_pages))

    def test_channel_filter_only_yields_that_channel(self, db):
        ssd, meta = db
        for channel in (0, ssd.config.geometry.channels - 1):
            accesses = list(scan_trace(meta, ssd.config.geometry, channel=channel))
            assert accesses
            assert all(a.address.channel == channel for a in accesses)

    def test_channel_stripes_partition_the_scan(self, db):
        ssd, meta = db
        full = {a.ppn for a in scan_trace(meta, ssd.config.geometry)}
        union = set()
        total = 0
        for channel in range(ssd.config.geometry.channels):
            stripe = list(scan_trace(meta, ssd.config.geometry, channel=channel))
            total += len(stripe)
            union.update(a.ppn for a in stripe)
            # the analytic count agrees with the enumerated stripe
            assert len(stripe) == stripe_page_count(
                meta, ssd.config.geometry, channel
            )
        assert union == full
        assert total == meta.total_pages  # disjoint: counts add up exactly

    def test_max_pages_clamps_output(self, db):
        ssd, meta = db
        accesses = list(scan_trace(meta, ssd.config.geometry, max_pages=7))
        assert len(accesses) == 7

    def test_max_pages_clamps_per_channel(self, db):
        ssd, meta = db
        accesses = list(
            scan_trace(meta, ssd.config.geometry, channel=0, max_pages=3)
        )
        assert len(accesses) == 3
        assert all(a.address.channel == 0 for a in accesses)

    def test_max_pages_larger_than_trace_is_harmless(self, db):
        ssd, meta = db
        accesses = list(
            scan_trace(meta, ssd.config.geometry, max_pages=meta.total_pages * 10)
        )
        assert len(accesses) == meta.total_pages

    def test_start_page_skips_prefix(self, db):
        ssd, meta = db
        accesses = list(scan_trace(meta, ssd.config.geometry, start_page=10))
        assert accesses[0].db_page_offset == 10
        assert len(accesses) == meta.total_pages - 10

    def test_start_page_with_window(self, db):
        ssd, meta = db
        window = list(
            scan_trace(meta, ssd.config.geometry, start_page=5, max_pages=4)
        )
        assert [a.db_page_offset for a in window] == [5, 6, 7, 8]

    def test_bad_channel_rejected(self, db):
        ssd, meta = db
        with pytest.raises(ValueError):
            list(scan_trace(meta, ssd.config.geometry, channel=ssd.config.geometry.channels))
        with pytest.raises(ValueError):
            list(scan_trace(meta, ssd.config.geometry, channel=-1))


class TestStripePageCount:
    def test_counts_sum_to_total(self, db):
        ssd, meta = db
        total = sum(
            stripe_page_count(meta, ssd.config.geometry, ch)
            for ch in range(ssd.config.geometry.channels)
        )
        assert total == meta.total_pages

    def test_bad_channel_rejected(self, db):
        ssd, meta = db
        with pytest.raises(ValueError):
            stripe_page_count(meta, ssd.config.geometry, ssd.config.geometry.channels)
