"""Tests for the synthetic dataset stand-ins."""

import numpy as np
import pytest

from repro.workloads import get_app
from repro.workloads.datasets import DATASET_BUILDERS, make_dataset


class TestBuilders:
    @pytest.mark.parametrize("name", list(DATASET_BUILDERS))
    def test_shapes_match_app(self, name):
        ds = make_dataset(name, seed=1)
        app = get_app(name)
        assert ds.features.shape[1] == app.feature_floats
        assert ds.queries.shape[1] == app.feature_floats
        assert len(ds.labels) == len(ds.features)
        assert len(ds.query_labels) == len(ds.queries)
        assert ds.features.dtype == np.float32

    @pytest.mark.parametrize("name", list(DATASET_BUILDERS))
    def test_deterministic(self, name):
        a = make_dataset(name, seed=3)
        b = make_dataset(name, seed=3)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet")

    def test_every_entity_has_views(self):
        ds = make_dataset("reid", seed=2)
        counts = np.bincount(ds.labels)
        assert counts.min() >= 1
        assert len(counts) == ds.n_entities


class TestRetrievalStructure:
    def test_queries_are_closest_to_their_entity(self):
        # nearest-gallery-neighbor of a query should usually share its
        # label, despite the domain shift
        ds = make_dataset("tir", seed=4)
        hits = 0
        for i in range(40):
            q = ds.queries[i]
            dist = np.linalg.norm(ds.features - q, axis=1)
            nearest = int(np.argmin(dist))
            hits += int(ds.labels[nearest] == ds.query_labels[i])
        assert hits / 40 > 0.7

    def test_domain_shift_hurts_raw_distance(self):
        # the street2shop gap is the largest; raw-nearest accuracy there
        # should trail the milder TIR gap
        def accuracy(name, n=40):
            ds = make_dataset(name, seed=5)
            hits = 0
            for i in range(n):
                dist = np.linalg.norm(ds.features - ds.queries[i], axis=1)
                hits += int(ds.labels[int(np.argmin(dist))] == ds.query_labels[i])
            return hits / n

        assert accuracy("estp") <= accuracy("tir") + 0.1

    def test_positives_and_recall(self):
        ds = make_dataset("textqa", seed=6)
        positives = ds.positives_of(0)
        assert len(positives) >= 1
        assert ds.recall_at_k(0, positives) == 1.0
        assert ds.recall_at_k(0, np.array([], dtype=np.int64)) == 0.0

    def test_end_to_end_retrieval_with_trained_scn(self):
        from repro import DeepStoreDevice
        from repro.workloads import train_scn

        app = get_app("textqa")
        graph = train_scn(app, seed=0)
        ds = make_dataset("textqa", seed=7, n_questions=60,
                          answers_per_question=6)
        device = DeepStoreDevice()
        db = device.write_db(ds.features)
        model = device.load_graph(graph)
        recalls = []
        for i in range(10):
            result = device.get_results(
                device.query(ds.queries[i], k=10, model_id=model, db_id=db)
            )
            recalls.append(ds.recall_at_k(i, result.feature_ids))
        assert float(np.mean(recalls)) > 0.5
