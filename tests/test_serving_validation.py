"""Regression tests: ServingConfig knob combinations fail up front.

Before the fix, a bad queue bound or a ``deadline_s`` attached to the
wrong policy surfaced as a ``ValueError`` from ``AdmissionQueue`` deep
inside ``QueryServer.run`` — after the cost model had been built and,
in a sweep, after earlier points had already run.  Now every knob
combination is validated at ``ServingConfig`` construction.
"""

import pytest

from repro.serving.server import ServingConfig
from repro.serving.sweep import sweep_offered_load


class TestServingConfigValidation:
    def test_defaults_valid(self):
        ServingConfig()

    @pytest.mark.parametrize("kwargs", [
        {"queue_bound": 0},
        {"queue_bound": -4},
        {"max_batch": 0},
        {"max_batch": -1},
        {"policy": "frobnicate"},
        # deadline policy without a bound / with a non-positive bound
        {"policy": "deadline"},
        {"policy": "deadline", "deadline_s": 0.0},
        {"policy": "deadline", "deadline_s": -0.5},
        # deadline_s attached to a policy that never reads it
        {"policy": "reject", "deadline_s": 0.5},
        {"policy": "drop-oldest", "deadline_s": 0.5},
        {"cache_entries": 64, "cache_threshold": 0.0},
        {"cache_entries": 64, "cache_threshold": 1.0},
        {"cache_entries": 64, "cache_threshold": -0.2},
        {"fidelity": "quantum"},
        {"shard_placement": "alphabetical"},
        {"features": 0},
        {"n_servers": 0},
        {"n_shards": 0},
        {"n_replicas": 0},
        {"cache_entries": -1},
        {"ingest_rows_per_op": 0},
        # index knob combinations (pre-existing, still enforced)
        {"index_lists": -1},
        {"index_lists": 8, "index_nprobe": 0},
        {"index_lists": 8, "index_nprobe": 9},
        {"index_nprobe": 4},
    ])
    def test_bad_combination_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)

    def test_error_messages_name_the_knob(self):
        with pytest.raises(ValueError, match="queue_bound"):
            ServingConfig(queue_bound=0)
        with pytest.raises(ValueError, match="deadline_s only applies"):
            ServingConfig(policy="reject", deadline_s=1.0)
        with pytest.raises(ValueError, match="fidelity"):
            ServingConfig(fidelity="nope")
        with pytest.raises(ValueError, match="index_nprobe"):
            ServingConfig(index_lists=4, index_nprobe=5)

    def test_valid_combinations_still_construct(self):
        ServingConfig(policy="deadline", deadline_s=0.5)
        ServingConfig(policy="drop-oldest")
        ServingConfig(cache_entries=16, cache_threshold=0.10)
        ServingConfig(cache_entries=0, cache_threshold=0.10)
        ServingConfig(index_lists=8, index_nprobe=8)
        ServingConfig(n_shards=4, n_replicas=2, shard_placement="hash")


class TestSweepValidation:
    CONFIG = ServingConfig(app="tir", features=50_000, queue_bound=8)

    def test_non_positive_qps_point_rejected(self):
        with pytest.raises(ValueError, match="qps_points"):
            sweep_offered_load(
                self.CONFIG, n_queries=4, qps_points=[1.0, 0.0]
            )
        with pytest.raises(ValueError, match="qps_points"):
            sweep_offered_load(
                self.CONFIG, n_queries=4, qps_points=[-2.0]
            )

    def test_non_positive_load_fraction_rejected(self):
        with pytest.raises(ValueError, match="load_fractions"):
            sweep_offered_load(
                self.CONFIG, n_queries=4, load_fractions=(0.5, 0.0)
            )

    def test_non_positive_queries_rejected(self):
        with pytest.raises(ValueError, match="n_queries"):
            sweep_offered_load(self.CONFIG, n_queries=0)
