"""Tests for the systolic-array cycle/traffic model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.systolic import (
    GraphMapper,
    ScratchpadHierarchy,
    ScratchpadLevel,
    SystolicArray,
    SystolicConfig,
)
from repro.systolic.array import best_aspect_ratio
from repro.workloads import ALL_APPS, get_app


def os_array(rows=16, cols=64, **kw):
    return SystolicArray(SystolicConfig(rows=rows, cols=cols, dataflow="OS", **kw))


def ws_array(rows=4, cols=32, **kw):
    return SystolicArray(
        SystolicConfig(rows=rows, cols=cols, dataflow="WS", frequency_hz=400e6, **kw)
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystolicConfig(rows=0, cols=4)
        with pytest.raises(ValueError):
            SystolicConfig(rows=4, cols=4, dataflow="XX")
        with pytest.raises(ValueError):
            SystolicConfig(rows=4, cols=4, frequency_hz=0)

    def test_derived(self):
        cfg = SystolicConfig(rows=16, cols=64, frequency_hz=800e6)
        assert cfg.num_pes == 1024
        assert cfg.seconds(800e6) == pytest.approx(1.0)


class TestOsGemm:
    def test_large_gemm_near_ideal(self):
        arr = os_array()
        m, n, k = 1024, 1024, 1024
        cycles = arr.gemm_cycles(m, n, k)
        ideal = m * n * k / arr.config.num_pes
        assert ideal <= cycles <= 1.5 * ideal

    def test_single_feature_uses_fold_cap(self):
        arr = os_array(rows=16, cols=64)
        # m=1, fold capped at 4: k_eff = ceil(k/4)
        cycles = arr.gemm_cycles(1, 64, 400)
        assert cycles == pytest.approx(math.ceil(400 / 4) + 4 + 64 - 2 + 1)

    def test_fold_never_exceeds_cap(self):
        small = os_array(rows=64, cols=16).gemm_cycles(1, 16, 1024)
        # even with 64 idle rows, fold stays at max_fold=4
        assert small >= 1024 / 4

    def test_tiles_multiply(self):
        arr = os_array(rows=16, cols=64)
        one = arr.gemm_cycles(16, 64, 100)
        four = arr.gemm_cycles(32, 128, 100)
        assert four == pytest.approx(4 * one)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            os_array().gemm_cycles(0, 4, 4)

    @given(
        st.integers(1, 512), st.integers(1, 512), st.integers(1, 2048),
    )
    @settings(max_examples=60, deadline=None)
    def test_cycles_lower_bounded_by_work(self, m, n, k):
        arr = os_array()
        cycles = arr.gemm_cycles(m, n, k)
        # can never beat perfect PE utilization (folding included, the
        # MACs still all execute)
        assert cycles * arr.config.num_pes >= m * n * k / 4


class TestWsGemm:
    def test_stream_batch_amortizes_loads(self):
        small = ws_array(ws_stream_batch=2).gemm_cycles(256, 64, 64)
        large = ws_array(ws_stream_batch=32).gemm_cycles(256, 64, 64)
        assert large < small

    def test_ws_slower_than_os_for_single_feature(self):
        # the chip-level accelerator is compute-limited (paper §6.2)
        ws = ws_array().gemm_cycles(1, 200, 200)
        os_ = os_array(rows=4, cols=32).gemm_cycles(1, 200, 200)
        assert ws > os_


class TestElementwise:
    def test_row_parallel_throughput(self):
        arr = os_array(rows=16, cols=64)
        assert arr.elementwise_cycles(1600) == 100 + 2

    def test_speedup_scales_with_rows(self):
        few = os_array(rows=4, cols=64).elementwise_cycles(4096)
        many = os_array(rows=32, cols=64).elementwise_cycles(4096)
        assert few / many == pytest.approx(8, rel=0.05)

    def test_invalid(self):
        with pytest.raises(ValueError):
            os_array().elementwise_cycles(0)


class TestAccessCounts:
    def test_os_weight_reuse_over_m_tiles(self):
        arr = os_array(rows=16, cols=64)
        acc = arr.gemm_accesses(32, 64, 100)
        # weights read once per M-tile (2 tiles)
        assert acc.sram_reads >= 100 * 64 * 2
        assert acc.sram_writes == 32 * 64

    def test_elementwise_counts(self):
        acc = os_array().elementwise_accesses(100)
        assert acc.sram_reads == 200
        assert acc.sram_writes == 100


class TestAspectRatioSearch:
    def test_returns_exact_pe_count(self):
        cfg, _ = best_aspect_ratio(1024, 1024, 16, 99)
        assert cfg.num_pes == 1024

    def test_fc_prefers_wide_arrays(self):
        cfg, _ = best_aspect_ratio(512, 1, 512, 512)
        assert cfg.cols >= cfg.rows

    def test_conv_prefers_tall_arrays(self):
        cfg, _ = best_aspect_ratio(1024, 1024, 16, 99)
        assert cfg.rows >= cfg.cols

    def test_invalid(self):
        with pytest.raises(ValueError):
            best_aspect_ratio(0, 1, 1, 1)


class TestScratchpadHierarchy:
    def make(self, l1_kb=512, with_l2=True):
        l1 = ScratchpadLevel("l1", l1_kb * 1024, 1e12)
        l2 = ScratchpadLevel("l2", 8 * 1024 * 1024, 20e9) if with_l2 else None
        dram = ScratchpadLevel("dram", 4 * 1024**3, 20e9)
        return ScratchpadHierarchy(l1, l2=l2, dram=dram)

    def test_reserve_capped(self):
        h = self.make(l1_kb=8192, with_l2=False)
        assert h.activation_reserve_bytes == 128 * 1024

    def test_small_l1_proportional_reserve(self):
        h = self.make(l1_kb=256, with_l2=False)
        assert h.activation_reserve_bytes == 64 * 1024

    def test_per_layer_residency(self):
        h = self.make()
        plans = h.plan_weights([("big", 10 * 1024 * 1024), ("small", 1024)])
        assert not plans[0].resident
        assert plans[1].resident

    def test_layer_fitting_l2_is_resident(self):
        # the ESTP/ReId distinction: 8.2 MB fits the shared 8 MB L2 path,
        # 10 MB does not
        h = self.make()
        plans = h.plan_weights([("estp_fc1", int(8.2 * 1024 * 1024))])
        assert plans[0].resident
        plans = h.plan_weights([("reid_fc1", int(10.1 * 1024 * 1024))])
        assert not plans[0].resident

    def test_stream_level_is_dram(self):
        h = self.make()
        plans = h.plan_weights([("big", 20 * 1024 * 1024)])
        assert plans[0].stream_level.name == "dram"
        assert plans[0].stream_bandwidth == pytest.approx(20e9)

    def test_no_backing_level_raises(self):
        h = ScratchpadHierarchy(ScratchpadLevel("l1", 1024, 1e9))
        with pytest.raises(ValueError):
            h.plan_weights([("big", 10 * 1024 * 1024)])

    def test_validation(self):
        with pytest.raises(ValueError):
            ScratchpadLevel("x", 0, 1e9)


class TestGraphMapper:
    def make_mapper(self, **kw):
        # channel-level-like hierarchy: 512 KB L1 + shared 8 MB L2 + DRAM
        l1 = ScratchpadLevel("l1", 512 * 1024, 1e12)
        l2 = ScratchpadLevel("l2", 8 * 1024 * 1024, 20e9)
        dram = ScratchpadLevel("dram", 4 * 1024**3, 20e9)
        return GraphMapper(
            os_array(), ScratchpadHierarchy(l1, l2=l2, dram=dram), **kw
        )

    @pytest.mark.parametrize("name", list(ALL_APPS))
    def test_profiles_every_app(self, name):
        profile = self.make_mapper().map_graph(get_app(name).build_scn())
        assert profile.seconds_per_feature > 0
        assert profile.macs_per_feature > 0
        assert 0 < profile.utilization(1024, 800e6) <= 1.0

    def test_compute_time_tracks_flops(self):
        mapper = self.make_mapper()
        times = {
            name: mapper.map_graph(get_app(name).build_scn()).compute_seconds_per_feature
            for name in ("textqa", "mir", "reid")
        }
        assert times["textqa"] < times["mir"] < times["reid"]

    def test_weight_stream_bound_for_reid(self):
        profile = self.make_mapper().map_graph(get_app("reid").build_scn())
        assert profile.bound == "weight-stream"
        assert profile.dram_weight_words_per_feature > 0

    def test_resident_apps_have_no_dram_stream(self):
        profile = self.make_mapper().map_graph(get_app("tir").build_scn())
        assert profile.bound == "compute"
        assert profile.dram_weight_words_per_feature == 0

    def test_stream_window_amortizes(self):
        p1 = self.make_mapper(stream_window=1).map_graph(get_app("reid").build_scn())
        p8 = self.make_mapper(stream_window=8).map_graph(get_app("reid").build_scn())
        assert p8.seconds_per_feature < p1.seconds_per_feature

    def test_setup_time_scales_with_resident_weights(self):
        mapper = self.make_mapper()
        small = mapper.map_graph(get_app("textqa").build_scn())
        big = mapper.map_graph(get_app("tir").build_scn())
        assert big.query_setup_seconds > small.query_setup_seconds > 0

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            self.make_mapper(dfv_batch=0)
        with pytest.raises(ValueError):
            self.make_mapper(stream_window=0)
