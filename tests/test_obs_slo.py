"""Tests for SLO monitoring: windows, burn rates, alerts, hysteresis."""

import pytest

from repro.obs import (
    BurnRateRule,
    MetricsRegistry,
    SloMonitor,
    SloSpec,
    default_chaos_monitor,
)


def _monitor(rules=(), interval=0.1, threshold=None, target=0.9):
    return SloMonitor(
        [SloSpec("read", target=target, latency_threshold_s=threshold)],
        rules=rules,
        sample_interval_s=interval,
    )


class TestSpecs:
    def test_budget(self):
        assert SloSpec("x", target=0.99).budget == pytest.approx(0.01)

    def test_target_must_leave_budget(self):
        with pytest.raises(ValueError):
            SloSpec("x", target=1.0)
        with pytest.raises(ValueError):
            SloSpec("x", target=0.0)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule("r", "x", window_s=0.0)
        with pytest.raises(ValueError):
            BurnRateRule("r", "x", window_s=1.0, burn_threshold=0.0)
        with pytest.raises(ValueError):
            BurnRateRule("r", "x", window_s=1.0, min_events=0)

    def test_duplicate_slo_rejected(self):
        with pytest.raises(ValueError):
            SloMonitor([SloSpec("a"), SloSpec("a")])

    def test_rule_must_reference_known_slo(self):
        with pytest.raises(ValueError):
            SloMonitor([SloSpec("a")],
                       rules=[BurnRateRule("r", "ghost", window_s=1.0)])

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SloMonitor([SloSpec("a")], sample_interval_s=0.0)


class TestRecording:
    def test_latency_threshold_classifies(self):
        mon = _monitor(threshold=0.5)
        mon.record("read", 0.01, latency_s=0.2)   # good
        mon.record("read", 0.02, latency_s=0.9)   # bad
        mon.finish()
        budget = mon.error_budget("read")
        assert budget["events"] == 2
        assert budget["bad"] == 1

    def test_explicit_good_wins(self):
        mon = _monitor()
        mon.record("read", 0.01, good=False)
        mon.finish()
        assert mon.error_budget("read")["bad"] == 1

    def test_no_threshold_defaults_good(self):
        mon = _monitor()
        mon.record("read", 0.01, latency_s=99.0)
        mon.finish()
        assert mon.error_budget("read")["bad"] == 0

    def test_unknown_slo_ignored(self):
        mon = _monitor()
        mon.record("ghost", 0.01, good=False)
        mon.finish()
        assert mon.error_budget("read")["events"] == 0

    def test_gauges_sampled_at_boundaries(self):
        mon = _monitor(interval=0.1)
        mon.record("read", 0.05, good=True)
        mon.record("read", 0.15, good=False)
        mon.finish(0.2)
        ts = mon.registry.timeseries("slo.read.good_fraction")
        times = [t for t, _v in ts.samples]
        assert times == pytest.approx([0.1, 0.2])
        values = [v for _t, v in ts.samples]
        assert values == pytest.approx([1.0, 0.0])
        bad = mon.registry.timeseries("slo.read.bad")
        assert [v for _t, v in bad.samples] == pytest.approx([0.0, 1.0])

    def test_empty_boundary_samples_good(self):
        mon = _monitor(interval=0.1)
        mon.record("read", 0.35, good=True)  # boundaries 0.1..0.3 empty
        mon.finish()
        ts = mon.registry.timeseries("slo.read.good_fraction")
        assert [v for _t, v in ts.samples[:3]] == pytest.approx(
            [1.0, 1.0, 1.0]
        )
        events = mon.registry.timeseries("slo.read.events")
        assert [v for _t, v in events.samples[:3]] == pytest.approx(
            [0.0, 0.0, 0.0]
        )


class TestAlerting:
    def _burning(self, **kw):
        kw.setdefault("window_s", 0.2)
        kw.setdefault("burn_threshold", 2.0)
        return _monitor(rules=[BurnRateRule("fast", "read", **kw)])

    def test_fires_on_fast_burn(self):
        mon = self._burning()
        # budget 0.1; 2/4 bad => burn 5.0 > 2.0
        for i, good in enumerate((True, False, False, True)):
            mon.record("read", 0.02 * (i + 1), good=good)
        mon.finish(0.2)
        assert len(mon.alerts) == 1
        alert = mon.alerts[0]
        assert alert.rule == "fast"
        assert alert.at_s == pytest.approx(0.1)
        assert alert.burn_rate == pytest.approx((2 / 4) / 0.1)
        assert alert.bad == 2 and alert.total == 4

    def test_hysteresis_fires_once_until_quiet(self):
        mon = self._burning(window_s=0.1)
        # bad events in boundary 1 and 2: still one alert (no quiet gap)
        mon.record("read", 0.05, good=False)
        mon.record("read", 0.15, good=False)
        # boundary 3 is quiet (window has only the good event) -> re-arm
        mon.record("read", 0.25, good=True)
        # boundary 4 burns again -> second alert
        mon.record("read", 0.35, good=False)
        mon.finish(0.4)
        assert [a.at_s for a in mon.alerts] == pytest.approx([0.1, 0.4])

    def test_min_events_suppresses_thin_windows(self):
        mon = self._burning(min_events=3)
        mon.record("read", 0.05, good=False)
        mon.finish(0.2)
        assert mon.alerts == []

    def test_first_alert_at(self):
        mon = self._burning(window_s=0.1)
        mon.record("read", 0.05, good=False)
        # a quiet populated boundary re-arms the rule (empty windows
        # are skipped by min_events and leave the alert active)
        mon.record("read", 0.25, good=True)
        mon.record("read", 0.45, good=False)
        mon.finish(0.5)
        assert mon.first_alert_at(0.0) == pytest.approx(0.1)
        assert mon.first_alert_at(0.2) == pytest.approx(0.5)
        assert mon.first_alert_at(0.6) is None

    def test_no_rules_no_alerts(self):
        mon = _monitor()
        mon.record("read", 0.05, good=False)
        mon.finish()
        assert mon.alerts == []


class TestBudgetAndReport:
    def test_budget_remaining_goes_negative_on_violation(self):
        mon = _monitor(target=0.9)
        for i in range(10):
            mon.record("read", 0.01 * (i + 1), good=(i >= 2))  # 2 bad
        mon.finish()
        budget = mon.error_budget("read")
        assert budget["good_fraction"] == pytest.approx(0.8)
        assert budget["budget_remaining"] == pytest.approx(-1.0)
        assert budget["violated"]

    def test_untouched_slo_keeps_full_budget(self):
        mon = _monitor()
        mon.finish(0.2)
        budget = mon.error_budget("read")
        assert budget["events"] == 0
        assert budget["budget_remaining"] == 1.0
        assert not budget["violated"]

    def test_report_shape(self):
        mon = _monitor(
            rules=[BurnRateRule("fast", "read", window_s=0.2)]
        )
        mon.record("read", 0.05, good=True)
        mon.finish(0.3)
        report = mon.report()
        assert report["sample_interval_s"] == pytest.approx(0.1)
        assert report["boundaries"] == 3
        assert set(report["slos"]) == {"read"}
        assert report["rules"][0]["name"] == "fast"
        assert report["alerts"] == []

    def test_finish_includes_exact_end_boundary(self):
        mon = _monitor(interval=0.1)
        mon.record("read", 0.05, good=True)
        mon.finish(0.3)
        ts = mon.registry.timeseries("slo.read.events")
        assert [t for t, _v in ts.samples] == pytest.approx(
            [0.1, 0.2, 0.3]
        )

    def test_shared_registry(self):
        reg = MetricsRegistry()
        mon = SloMonitor([SloSpec("read")], registry=reg,
                         sample_interval_s=0.1)
        mon.record("read", 0.05, good=True)
        mon.finish()
        assert "slo.read.events" in reg.snapshot()


class TestDefaultChaosMonitor:
    def test_stock_shape(self):
        mon = default_chaos_monitor(2.0)
        assert set(mon.specs) == {"availability", "latency"}
        assert mon.sample_interval_s == pytest.approx(0.1)
        assert [r.window_s for r in mon.rules] == pytest.approx([0.2, 0.2])
        assert all(r.burn_threshold == 1.0 for r in mon.rules)

    def test_detects_a_kill_storm(self):
        mon = default_chaos_monitor(1.0)
        # healthy until 0.4, then every query fails for a while
        for i in range(8):
            mon.record("availability", 0.05 * (i + 1), good=True)
        for i in range(4):
            mon.record("availability", 0.45 + 0.05 * i, good=False)
        mon.finish(1.0)
        first = mon.first_alert_at(0.4)
        assert first is not None
        assert first >= 0.4


class TestSubIntervalWindowClamp:
    """Burn windows shorter than the sample interval are clamped.

    Evaluation only happens at sample-interval boundaries, so a
    sub-interval window sees a sliver of each interval: events landing
    in the unobserved remainder could never alert.  The monitor clamps
    such windows up to one full interval and warns at construction.
    """

    def _clamped(self):
        with pytest.warns(UserWarning, match="clamping"):
            return SloMonitor(
                [SloSpec("read", target=0.9)],
                rules=[BurnRateRule("fast", "read", window_s=0.01,
                                    burn_threshold=1.0)],
                sample_interval_s=0.1,
            )

    def test_construction_warns(self):
        self._clamped()

    def test_clamped_window_alerts_on_mid_interval_badness(self):
        # bad events at 0.02..0.04 sit OUTSIDE the raw (0.09, 0.1]
        # window of the first boundary — unclamped, no alert could ever
        # fire for them; clamped to the full interval, the burn is seen
        mon = self._clamped()
        for i in range(4):
            mon.record("read", 0.02 + 0.005 * i, good=False)
        mon.finish(0.3)
        assert mon.alerts, "clamped window must observe the bad events"
        assert mon.alerts[0].at_s == pytest.approx(0.1)

    def test_window_at_or_above_interval_not_clamped(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            SloMonitor(
                [SloSpec("read", target=0.9)],
                rules=[BurnRateRule("ok", "read", window_s=0.1)],
                sample_interval_s=0.1,
            )


class TestWindowCounts:
    def test_public_window_counts_matches_events(self):
        mon = _monitor(interval=1.0)
        mon.record("read", 0.2, good=True)
        mon.record("read", 0.4, good=False)
        mon.record("read", 0.6, good=False)
        mon.record("read", 0.8, good=True)
        assert mon.window_counts("read", 0.8, 0.5) == (2, 3)
        assert mon.window_counts("read", 0.3, 0.2) == (0, 1)
        assert mon.window_counts("read", 5.0, 0.5) == (0, 0)

    def test_window_counts_validation(self):
        mon = _monitor(interval=1.0)
        with pytest.raises(ValueError):
            mon.window_counts("read", 1.0, 0.0)
        with pytest.raises(ValueError):
            mon.window_counts("ghost", 1.0, 1.0)

    def test_burn_rate_helper(self):
        mon = _monitor(interval=1.0, target=0.9)
        mon.record("read", 0.2, good=False)
        mon.record("read", 0.4, good=True)
        # bad fraction 0.5 over budget 0.1 -> burn 5.0
        assert mon.burn_rate("read", 0.5, 0.5) == pytest.approx(5.0)
        assert mon.burn_rate("read", 9.0, 0.5) == 0.0

    def test_out_of_order_record_rejected(self):
        mon = _monitor(interval=1.0)
        mon.record("read", 0.5, good=True)
        with pytest.raises(ValueError):
            mon.record("read", 0.4, good=True)
