"""Property suite for the wall-clock fast path.

The fast path is a *representation* change with a hard contract: with
``repro.sim.fastpath`` on or off, every observable — fire order,
simulated clock, heap bookkeeping counters, scan traces, cycle tables,
cache scores, merged top-K lists — must be bit-identical.  These
properties drive the refactored structures against the original code
as an oracle under Hypothesis-generated interleavings, which is what
caught the heap-compaction accounting edge the example tests missed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.parallel import scatter_gather_topk
from repro.core.query_cache import EmbeddingComparator, QueryCache
from repro.core.topk import TopKSorter, topk_select
from repro.sim import Simulator, fastpath
from repro.sim.forkmap import available as fork_available
from repro.sim.forkmap import fork_map
from repro.ssd import Ssd
from repro.ssd.trace import (
    scan_trace,
    scan_trace_bulk,
    scan_traces_by_channel,
)
from repro.workloads.queries import QueryStream

# ----------------------------------------------------------------------
# event-heap oracle: array-backed heap vs the classic Event heap
# ----------------------------------------------------------------------
#: one scripted scheduler operation: (kind, argument)
heap_ops = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"),
                  st.floats(min_value=0.0, max_value=8.0,
                            allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("bulk"),
                  st.lists(st.floats(min_value=0.0, max_value=8.0,
                                     allow_nan=False,
                                     allow_infinity=False),
                           min_size=0, max_size=6)),
        st.tuples(st.just("cancel"),
                  st.integers(min_value=0, max_value=40)),
        st.tuples(st.just("step"), st.none()),
        st.tuples(st.just("peek"), st.none()),
    ),
    min_size=0, max_size=40,
)


def _drive(fast: bool, ops):
    """Run one op script; return every observable the contract names."""
    sim = Simulator(fast=fast)
    log = []
    scheduled = []
    observations = []

    def mk(tag):
        def cb():
            log.append((tag, sim.now))
        return cb

    for kind, arg in ops:
        if kind == "schedule":
            scheduled.append(
                sim.schedule(sim.now + arg, mk(len(scheduled)))
            )
        elif kind == "bulk":
            times = [sim.now + dt for dt in arg]
            callbacks = [
                mk(len(scheduled) + i) for i in range(len(arg))
            ]
            scheduled.extend(sim.schedule_bulk(times, callbacks))
        elif kind == "cancel":
            if scheduled:
                scheduled[arg % len(scheduled)].cancel()
        elif kind == "step":
            observations.append(("step", sim.step(), sim.now))
        elif kind == "peek":
            observations.append(("peek", sim.peek()))
    processed = sim.run()
    return (
        log,
        observations,
        processed,
        sim.now,
        sim.events_processed,
        sim.pending_events,
        sim.cancelled_pending,
        sim.compactions,
    )


@settings(max_examples=120, deadline=None)
@given(ops=heap_ops)
def test_array_heap_matches_classic_heap(ops):
    """Fire order, clock, and every counter agree op-for-op."""
    assert _drive(True, ops) == _drive(False, ops)


def test_compaction_counts_preserved_exactly():
    """Mass-cancel interleavings trigger identical compactions.

    The compaction threshold accounting is the regression this pins:
    both heap representations must compact at the same instants and
    report the same ``compactions`` / ``cancelled_pending`` counts.
    """
    outcomes = []
    for fast in (True, False):
        sim = Simulator(fast=fast)
        fired = []
        events = [
            sim.schedule(float(i % 97) / 7.0, lambda i=i: fired.append(i))
            for i in range(600)
        ]
        for i, event in enumerate(events):
            if i % 3:
                event.cancel()
        mid = (sim.compactions, sim.cancelled_pending, sim.pending_events)
        sim.run()
        outcomes.append(
            (mid, fired, sim.compactions, sim.cancelled_pending,
             sim.events_processed, sim.now)
        )
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][2] > 0  # the sweep actually compacted


@settings(max_examples=60, deadline=None)
@given(
    dts=st.lists(st.floats(min_value=0.0, max_value=5.0,
                           allow_nan=False, allow_infinity=False),
                 min_size=0, max_size=30),
    fast=st.booleans(),
)
def test_schedule_bulk_equals_n_schedules(dts, fast):
    """One bulk call == the equivalent loop of single schedules."""
    def run(bulk: bool):
        sim = Simulator(fast=fast)
        log = []
        callbacks = [lambda i=i: log.append((i, sim.now))
                     for i in range(len(dts))]
        if bulk:
            sim.schedule_bulk(list(dts), callbacks)
        else:
            for dt, callback in zip(dts, callbacks):
                sim.schedule(dt, callback)
        processed = sim.run()
        return log, processed, sim.now, sim.events_processed

    assert run(True) == run(False)


# ----------------------------------------------------------------------
# precomputed cycle tables
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=64),
    n=st.integers(min_value=1, max_value=200_000),
)
def test_expected_topk_cycles_matches_sorter(k, n):
    """The memo table returns the sorter's closed form, float-exact."""
    assert fastpath.expected_topk_cycles(k, n) == (
        TopKSorter(k).expected_cycles_per_update(n)
    )


# ----------------------------------------------------------------------
# bulk scan traces
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trace_db():
    ssd = Ssd()
    meta = ssd.ftl.create_database(1024, 4_000)
    return meta, ssd.config.geometry


@settings(max_examples=40, deadline=None)
@given(
    channel=st.one_of(st.none(), st.integers(min_value=0, max_value=7)),
    start=st.integers(min_value=0, max_value=400),
    window=st.one_of(st.none(), st.integers(min_value=0, max_value=300)),
)
def test_scan_trace_bulk_equals_generator(trace_db, channel, start, window):
    meta, geometry = trace_db
    if channel is not None and channel >= geometry.channels:
        channel = channel % geometry.channels
    expect = list(scan_trace(meta, geometry, channel=channel,
                             start_page=start, max_pages=window))
    got = scan_trace_bulk(meta, geometry, channel=channel,
                          start_page=start, max_pages=window)
    assert got == expect


def test_scan_traces_by_channel_equals_per_channel_scans(trace_db):
    meta, geometry = trace_db
    for cap in (None, 0, 5, 10_000):
        grouped = scan_traces_by_channel(
            meta, geometry, max_pages_per_channel=cap
        )
        assert sorted(grouped) == list(range(geometry.channels))
        for channel in range(geometry.channels):
            assert grouped[channel] == list(
                scan_trace(meta, geometry, channel=channel, max_pages=cap)
            )


# ----------------------------------------------------------------------
# process-parallel executors
# ----------------------------------------------------------------------
def _shard_leg(shard: int):
    rng = np.random.default_rng(shard)
    pairs = [(float(s), shard * 1000 + i)
             for i, s in enumerate(rng.normal(0.0, 1.0, 12))]
    return pairs, float(shard) * 0.25 + 0.5


@pytest.mark.skipif(not fork_available(), reason="no os.fork")
def test_parallel_scatter_gather_bit_equal():
    """Forked shard legs == the sequential loop: same floats, order."""
    shards = list(range(5))
    seq = scatter_gather_topk(_shard_leg, shards, k=7, processes=1)
    par = scatter_gather_topk(_shard_leg, shards, k=7, processes=3)
    assert par.merged == seq.merged
    assert par.partials == seq.partials
    assert par.shard_seconds == seq.shard_seconds
    assert par.stats == seq.stats
    assert par.processes == 3 and seq.processes == 1
    # and the merge really is the canonical k-way merge of the partials
    assert seq.partials == [topk_select(_shard_leg(s)[0], 7) for s in shards]


@pytest.mark.skipif(not fork_available(), reason="no os.fork")
def test_fork_map_orders_and_propagates_errors():
    assert fork_map(lambda i: i * i, 6, processes=3) == [
        i * i for i in range(6)
    ]
    with pytest.raises(RuntimeError, match="worker 2 failed"):
        fork_map(lambda i: 1 // (2 - i), 4, processes=2)


# ----------------------------------------------------------------------
# query-cache lookup matrix
# ----------------------------------------------------------------------
cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("lookup"), st.integers(0, 2**16)),
        st.tuples(st.just("tagged"), st.integers(0, 2**16)),
        st.tuples(st.just("invalidate"), st.integers(0, 2)),
    ),
    min_size=1, max_size=60,
)


@settings(max_examples=40, deadline=None)
@given(ops=cache_ops, capacity=st.integers(min_value=1, max_value=12))
def test_query_cache_matrix_equals_stacking(ops, capacity):
    """The maintained lookup matrix == fresh stack+convert per lookup."""
    def run(on: bool):
        with fastpath.override(on):
            cache = QueryCache(
                capacity=capacity,
                comparator=EmbeddingComparator(),
                threshold=0.25,
            )
            out = []
            for kind, arg in ops:
                rng = np.random.default_rng(arg)
                q = rng.normal(0.0, 1.0, 8).astype(np.float32)
                if kind == "invalidate":
                    out.append(cache.invalidate(
                        lambda tag: tag == (arg,) or tag is None
                    ))
                    continue
                tag = (arg % 3,) if kind == "tagged" else None
                r = cache.lookup(q, tag=tag)
                out.append((r.hit, r.best_score, r.entries_scanned))
                if not r.hit:
                    cache.insert(q, np.zeros(3, np.float32),
                                 np.arange(3), tag=tag)
            assert cache._keys == list(cache._entries.keys())
            return out, cache.hits, cache.misses, cache.invalidations

    assert run(True) == run(False)


# ----------------------------------------------------------------------
# batched query-stream generation
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=2**10),
    distribution=st.sampled_from(["uniform", "zipf"]),
)
def test_query_stream_batched_noise_bit_equal(n, seed, distribution):
    """Batched normal draws == the sequential per-query loop."""
    stream = QueryStream(dim=16, n_intents=9, distribution=distribution,
                         alpha=0.8, paraphrase_noise=0.05, seed=seed)
    with fastpath.override(True):
        fast = stream.generate(n)
    with fastpath.override(False):
        slow = stream.generate(n)
    for a, b in zip(fast, slow):
        assert a.intent == b.intent and a.sequence == b.sequence
        assert a.qfv.dtype == b.qfv.dtype
        assert np.array_equal(a.qfv, b.qfv)
