"""Tests for the energy/area models."""

import pytest

from repro.energy import CactiLite, EnergyBreakdown, EnergyModel, EnergyTables
from repro.systolic import GraphMapper, ScratchpadHierarchy, ScratchpadLevel
from repro.systolic.array import SystolicArray, SystolicConfig
from repro.workloads import get_app


class TestCactiLite:
    def test_energy_grows_with_capacity(self):
        c = CactiLite()
        e = [c.access_energy_pj(s) for s in (8 * 1024, 512 * 1024, 8 * 1024**2)]
        assert e[0] < e[1] < e[2]

    def test_lop_saves_energy(self):
        c = CactiLite()
        assert c.access_energy_pj(512 * 1024, "itrs-lop") < c.access_energy_pj(
            512 * 1024, "itrs-hp"
        )

    def test_area_grows_linearly(self):
        c = CactiLite()
        small = c.area_mm2(512 * 1024)
        big = c.area_mm2(8 * 1024 * 1024)
        assert big - c.a0_mm2 == pytest.approx(16 * (small - c.a0_mm2), rel=0.01)

    def test_validation(self):
        c = CactiLite()
        with pytest.raises(ValueError):
            c.access_energy_pj(0)
        with pytest.raises(ValueError):
            c.access_energy_pj(1024, "tsmc")
        with pytest.raises(ValueError):
            c.area_mm2(-1)

    def test_joules_conversion(self):
        c = CactiLite()
        assert c.access_energy_j(1024) == pytest.approx(
            c.access_energy_pj(1024) * 1e-12
        )


class TestEnergyTables:
    def test_dram_per_word(self):
        t = EnergyTables()
        assert t.dram_j_per_word() == pytest.approx(32 * 20e-12)

    def test_flash_pages(self):
        t = EnergyTables()
        assert t.flash_j_for_pages(4) == pytest.approx(100e-6)
        with pytest.raises(ValueError):
            t.flash_j_for_pages(-1)

    def test_noc(self):
        t = EnergyTables()
        assert t.noc_j(1000, 2.0) == pytest.approx(1000 * 2.0 * 0.08e-12)
        with pytest.raises(ValueError):
            t.noc_j(-1, 1)


class TestEnergyBreakdown:
    def test_totals_and_fractions(self):
        b = EnergyBreakdown(compute_j=1.0, sram_j=2.0, dram_j=1.0, flash_j=4.0)
        assert b.memory_j == 3.0
        assert b.total_j == 8.0
        f = b.fractions()
        assert f["compute"] == pytest.approx(0.125)
        assert f["memory"] == pytest.approx(0.375)
        assert f["flash"] == pytest.approx(0.5)
        assert sum(f.values()) == pytest.approx(1.0)

    def test_add_and_scale(self):
        b = EnergyBreakdown(compute_j=1.0) + EnergyBreakdown(flash_j=2.0)
        assert b.total_j == 3.0
        assert b.scaled(2).total_j == 6.0

    def test_zero_fractions(self):
        assert EnergyBreakdown().fractions() == {
            "compute": 0.0, "memory": 0.0, "flash": 0.0,
        }


class TestEnergyModel:
    def make_profile(self, app_name="tir"):
        l1 = ScratchpadLevel("l1", 512 * 1024, 1e12)
        l2 = ScratchpadLevel("l2", 8 * 1024**2, 20e9)
        dram = ScratchpadLevel("dram", 4 * 1024**3, 20e9)
        mapper = GraphMapper(
            SystolicArray(SystolicConfig(rows=16, cols=64)),
            ScratchpadHierarchy(l1, l2=l2, dram=dram),
        )
        return mapper.map_graph(get_app(app_name).build_scn())

    def test_feature_energy_positive_components(self):
        model = EnergyModel()
        e = model.accelerator_feature_energy(
            self.make_profile(), 512 * 1024, flash_pages_per_feature=0.125,
            area_mm2=7.4,
        )
        assert e.compute_j > 0
        assert e.sram_j > 0
        assert e.flash_j > 0
        assert e.total_j > e.compute_j

    def test_flash_dominates_io_heavy_apps(self):
        # TextQA reads 0.8 KB per 0.08 MFLOP -> flash is the biggest share
        model = EnergyModel()
        e = model.accelerator_feature_energy(
            self.make_profile("textqa"), 512 * 1024,
            flash_pages_per_feature=1 / 20, area_mm2=7.4,
        )
        f = e.fractions()
        assert f["flash"] > f["compute"]

    def test_banking_reduces_sram_energy(self):
        profile = self.make_profile()
        flat = EnergyModel(sram_banks=1).accelerator_feature_energy(
            profile, 512 * 1024
        )
        banked = EnergyModel(sram_banks=32).accelerator_feature_energy(
            profile, 512 * 1024
        )
        assert banked.sram_j < flat.sram_j

    def test_power_within_channel_budget(self):
        # the Table-3 channel design must respect its 1.71 W share for
        # the resident-weight apps
        model = EnergyModel()
        for app_name in ("mir", "tir", "textqa", "estp"):
            profile = self.make_profile(app_name)
            power = model.accelerator_power_w(
                profile, 512 * 1024,
                seconds_per_feature=max(
                    profile.seconds_per_feature, 2048 / 800e6
                ),
                area_mm2=7.4,
            )
            assert power < 2.2, f"{app_name} draws {power:.2f} W"

    def test_gpu_energy(self):
        model = EnergyModel()
        assert model.gpu_energy(2.0, 235.0) == pytest.approx(470.0)
        with pytest.raises(ValueError):
            model.gpu_energy(-1, 235)

    def test_host_transfer_energy(self):
        model = EnergyModel()
        assert model.host_transfer_energy(1e9).host_j == pytest.approx(6e-3)

    def test_power_requires_positive_time(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.accelerator_power_w(self.make_profile(), 512 * 1024, 0.0)
