"""Tests for the accelerator and whole-system DeepStore models.

These encode the paper's headline claims as assertions: the Table-4
speedup structure, the flash-latency insensitivity of Fig. 9, the
bandwidth scaling of Fig. 10, and the analytic/event-driven agreement.
"""

import pytest

from repro.analysis import compare_levels
from repro.baseline import GpuSsdSystem
from repro.core import DeepStoreSystem, InStorageAccelerator
from repro.core.placement import CHANNEL_LEVEL, CHIP_LEVEL, SSD_LEVEL
from repro.ssd import Ssd, SsdConfig
from repro.workloads import ALL_APPS, get_app

from tests.conftest import make_db


class TestInStorageAccelerator:
    def test_profile_cached(self, ssd_config, tir_app):
        accel = InStorageAccelerator(CHANNEL_LEVEL, ssd_config, tir_app.build_scn())
        assert accel.profile is accel.profile

    def test_chip_rejects_reid(self, ssd_config):
        with pytest.raises(Exception):
            InStorageAccelerator(CHIP_LEVEL, ssd_config, get_app("reid").build_scn())

    def test_compute_time_positive(self, ssd_config, app):
        if not CHANNEL_LEVEL.supports(app.build_scn()):
            pytest.skip("unsupported")
        accel = InStorageAccelerator(CHANNEL_LEVEL, ssd_config, app.build_scn())
        assert accel.compute_seconds_per_feature() > 0

    def test_event_scan_matches_analytic_for_io_bound_app(self, ssd):
        app = get_app("textqa")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        accel = InStorageAccelerator(CHANNEL_LEVEL, ssd.config, app.build_scn())
        window = accel.simulate_stripe_scan(meta, channel=0, max_pages=256)
        analytic = max(
            accel.compute_seconds_per_feature(),
            meta.stored_bytes / meta.feature_count / 800e6,
        )
        assert window.seconds_per_feature == pytest.approx(analytic, rel=0.15)

    def test_event_scan_only_for_channel_level(self, ssd):
        app = get_app("textqa")
        meta = make_db(ssd, app.feature_bytes, gigabytes=0.1)
        accel = InStorageAccelerator(SSD_LEVEL, ssd.config, app.build_scn())
        with pytest.raises(ValueError):
            accel.simulate_stripe_scan(meta)

    def test_feature_energy_positive(self, ssd, tir_app):
        meta = make_db(ssd, tir_app.feature_bytes, gigabytes=0.1)
        accel = InStorageAccelerator(CHANNEL_LEVEL, ssd.config, tir_app.build_scn())
        energy = accel.feature_energy(meta)
        assert energy.total_j > 0
        assert energy.flash_j > 0


class TestQueryLatencyStructure:
    def test_components_sum(self, ssd, channel_system, tir_app):
        meta = make_db(ssd, tir_app.feature_bytes, gigabytes=1.0)
        lat = channel_system.query_latency(tir_app, meta)
        assert lat.total_seconds == pytest.approx(
            lat.engine_seconds + lat.setup_seconds + lat.scan_seconds
            + lat.merge_seconds
        )
        assert lat.scan_seconds > 0.9 * lat.total_seconds  # scan dominates

    def test_scan_linear_in_db_size(self, ssd, channel_system, tir_app):
        small = channel_system.query_latency(
            tir_app, make_db(ssd, tir_app.feature_bytes, gigabytes=1.0)
        )
        large = channel_system.query_latency(
            tir_app, make_db(ssd, tir_app.feature_bytes, gigabytes=4.0)
        )
        assert large.scan_seconds == pytest.approx(4 * small.scan_seconds, rel=0.01)

    def test_at_level_validation(self):
        with pytest.raises(ValueError):
            DeepStoreSystem.at_level("rack")

    def test_fidelity_validation(self, ssd, channel_system, tir_app):
        meta = make_db(ssd, tir_app.feature_bytes, gigabytes=0.1)
        with pytest.raises(ValueError):
            channel_system.query_latency(tir_app, meta, fidelity="magic")

    def test_event_fidelity_agrees_with_analytic(self, ssd, channel_system):
        app = get_app("mir")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        analytic = channel_system.query_latency(app, meta, fidelity="analytic")
        event = channel_system.query_latency(app, meta, fidelity="event")
        assert event.scan_seconds == pytest.approx(analytic.scan_seconds, rel=0.2)


class TestTable4Structure:
    """The paper's Fig. 8 / Table 4 shape, cell by cell."""

    @pytest.fixture(scope="class")
    def cells(self):
        ssd = Ssd()
        baseline = GpuSsdSystem()
        out = {}
        for name, app in ALL_APPS.items():
            meta = make_db(ssd, app.feature_bytes)
            out[name] = {
                c.level: c for c in compare_levels(app, meta, baseline=baseline)
            }
        return out

    def test_channel_level_always_wins(self, cells):
        for name, row in cells.items():
            best = max(
                (c for c in row.values() if c.supported),
                key=lambda c: c.speedup,
            )
            assert best.level == "channel", name

    def test_channel_speedups_in_paper_band(self, cells):
        # paper: 3.9x - 17.7x; we assert each app lands within 2.5x of
        # its published value and the aggregate band holds
        published = {"reid": 3.92, "mir": 8.26, "estp": 13.16,
                     "tir": 10.68, "textqa": 17.74}
        for name, value in published.items():
            got = cells[name]["channel"].speedup
            assert value / 2.5 < got < value * 2.5, f"{name}: {got:.2f}"

    def test_ssd_level_slower_than_gpu(self, cells):
        # paper: 0.09x - 0.6x
        for name, row in cells.items():
            assert row["ssd"].speedup < 1.0, name

    def test_chip_level_modest_speedup(self, cells):
        # paper: 1.0x - 4.6x
        published = {"mir": 1.01, "estp": 1.9, "tir": 1.47, "textqa": 4.62}
        for name, value in published.items():
            got = cells[name]["chip"].speedup
            assert value / 2.5 < got < value * 2.5, f"{name}: {got:.2f}"

    def test_reid_unsupported_at_chip_level(self, cells):
        assert not cells["reid"]["chip"].supported

    def test_reid_worst_textqa_best_at_channel(self, cells):
        channel = {n: row["channel"].speedup for n, row in cells.items()}
        assert min(channel, key=channel.get) == "reid"
        assert max(channel, key=channel.get) == "textqa"

    def test_energy_efficiency_ordering(self, cells):
        # paper Fig. 11: channel >> chip > ssd-level for every app
        for name, row in cells.items():
            if not row["chip"].supported:
                continue
            assert (
                row["channel"].energy_efficiency
                > row["chip"].energy_efficiency
                > row["ssd"].energy_efficiency
            ), name

    def test_channel_energy_efficiency_band(self, cells):
        # paper: 17.1x - 78.6x better perf/W than the Volta GPU
        for name, row in cells.items():
            ee = row["channel"].energy_efficiency
            assert 2.0 < ee < 120.0, f"{name}: {ee:.1f}"
        assert max(row["channel"].energy_efficiency
                   for row in cells.values()) > 25.0


class TestFlashLatencySensitivity:
    """Fig. 9: DeepStore stays within ~10-15% as latency quadruples."""

    @pytest.mark.parametrize("level", ["channel", "chip"])
    def test_4x_latency_costs_little(self, level):
        app = get_app("mir")
        times = {}
        for latency in (53e-6, 212e-6):
            config = SsdConfig().with_flash_latency(latency)
            ssd = Ssd(config)
            meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
            system = DeepStoreSystem.at_level(level, ssd=config)
            times[latency] = system.query_latency(app, meta).total_seconds
        assert times[212e-6] / times[53e-6] < 1.35

    def test_fast_flash_barely_helps(self):
        app = get_app("mir")
        times = {}
        for latency in (7e-6, 53e-6):
            config = SsdConfig().with_flash_latency(latency)
            ssd = Ssd(config)
            meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
            system = DeepStoreSystem.at_level("channel", ssd=config)
            times[latency] = system.query_latency(app, meta).total_seconds
        assert times[53e-6] / times[7e-6] < 1.1


class TestBandwidthScaling:
    """Fig. 10a: channel/chip performance scales with channel count."""

    def test_channel_level_scales_linearly(self):
        app = get_app("mir")
        times = {}
        for channels in (8, 32):
            config = SsdConfig().with_channels(channels)
            ssd = Ssd(config)
            meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
            system = DeepStoreSystem.at_level("channel", ssd=config)
            times[channels] = system.query_latency(app, meta).total_seconds
        assert times[8] / times[32] == pytest.approx(4.0, rel=0.1)

    def test_ssd_level_does_not_scale(self):
        # the single SSD-level accelerator is compute-bound, so more
        # channels do not help (paper Fig. 10a)
        app = get_app("mir")
        times = {}
        for channels in (8, 64):
            config = SsdConfig().with_channels(channels)
            ssd = Ssd(config)
            meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
            system = DeepStoreSystem.at_level("ssd", ssd=config)
            times[channels] = system.query_latency(app, meta).total_seconds
        assert times[8] / times[64] < 1.2

    def test_gpu_saturates_with_channels(self, tir_app):
        # the baseline cannot see internal bandwidth (Fig. 10a): its
        # time is set by the external link, which is unchanged
        baseline = GpuSsdSystem()
        assert baseline.query_cost(tir_app, 100000).seconds == pytest.approx(
            GpuSsdSystem().query_cost(tir_app, 100000).seconds
        )
