"""Tests for accelerator placements (Table 3) and the query engine."""

import pytest

from repro.core import CHANNEL_LEVEL, CHIP_LEVEL, LEVELS, SSD_LEVEL
from repro.core.engine import EngineCosts, QueryEngine
from repro.core.placement import AcceleratorPlacement, UnsupportedModelError
from repro.systolic import SystolicConfig
from repro.workloads import get_app


class TestTable3Configs:
    def test_ssd_level(self):
        assert SSD_LEVEL.systolic.rows == 32
        assert SSD_LEVEL.systolic.cols == 64
        assert SSD_LEVEL.systolic.dataflow == "OS"
        assert SSD_LEVEL.systolic.frequency_hz == 800e6
        assert SSD_LEVEL.scratchpad_bytes == 8 * 1024 * 1024
        assert SSD_LEVEL.area_mm2 == 31.7

    def test_channel_level(self):
        assert CHANNEL_LEVEL.systolic.rows == 16
        assert CHANNEL_LEVEL.systolic.cols == 64
        assert CHANNEL_LEVEL.scratchpad_bytes == 512 * 1024
        assert CHANNEL_LEVEL.area_mm2 == 7.4

    def test_chip_level(self):
        assert CHIP_LEVEL.systolic.rows == 4
        assert CHIP_LEVEL.systolic.cols == 32
        assert CHIP_LEVEL.systolic.dataflow == "WS"
        assert CHIP_LEVEL.systolic.frequency_hz == 400e6
        assert CHIP_LEVEL.sram_model == "itrs-lop"
        assert CHIP_LEVEL.area_mm2 == 2.5

    def test_counts(self, ssd_config):
        assert SSD_LEVEL.count(ssd_config) == 1
        assert CHANNEL_LEVEL.count(ssd_config) == 32
        assert CHIP_LEVEL.count(ssd_config) == 128

    def test_power_budgets(self, ssd_config):
        # paper §4.5: 55 W / 1.71 W / 0.43 W
        assert SSD_LEVEL.power_budget_w(ssd_config) == pytest.approx(55.0)
        assert CHANNEL_LEVEL.power_budget_w(ssd_config) == pytest.approx(1.72, abs=0.02)
        assert CHIP_LEVEL.power_budget_w(ssd_config) == pytest.approx(0.43, abs=0.01)

    def test_counts_scale_with_channels(self, ssd_config):
        small = ssd_config.with_channels(8)
        assert CHANNEL_LEVEL.count(small) == 8
        assert CHIP_LEVEL.count(small) == 32


class TestSupport:
    def test_chip_rejects_conv_models(self):
        reid = get_app("reid").build_scn()
        assert not CHIP_LEVEL.supports(reid)
        with pytest.raises(UnsupportedModelError):
            CHIP_LEVEL.check_supported(reid)

    def test_chip_accepts_fc_models(self):
        for name in ("mir", "estp", "tir", "textqa"):
            assert CHIP_LEVEL.supports(get_app(name).build_scn())

    def test_other_levels_accept_everything(self):
        reid = get_app("reid").build_scn()
        assert SSD_LEVEL.supports(reid)
        assert CHANNEL_LEVEL.supports(reid)


class TestHierarchies:
    def test_channel_has_shared_l2(self, ssd_config):
        h = CHANNEL_LEVEL.build_hierarchy(ssd_config)
        assert h.l2 is not None
        assert h.l2.size_bytes == SSD_LEVEL.scratchpad_bytes

    def test_ssd_level_no_l2(self, ssd_config):
        assert SSD_LEVEL.build_hierarchy(ssd_config).l2 is None

    def test_chip_streams_over_channel_bus(self, ssd_config):
        h = CHIP_LEVEL.build_hierarchy(ssd_config)
        assert h.dram.name == "channel-bus"
        assert h.dram.bandwidth_bytes_per_s == pytest.approx(800e6)

    def test_dfv_buffer_bounds(self):
        assert CHIP_LEVEL.dfv_buffer_features(16 * 1024) <= CHIP_LEVEL.dfv_window
        assert CHIP_LEVEL.dfv_buffer_features(800) == CHIP_LEVEL.dfv_window
        with pytest.raises(ValueError):
            CHIP_LEVEL.dfv_buffer_features(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorPlacement(
                level="rack", systolic=SystolicConfig(4, 4),
                scratchpad_bytes=1024, sram_model="itrs-hp", area_mm2=1.0,
            )

    def test_levels_registry(self):
        assert set(LEVELS) == {"ssd", "channel", "chip"}


class TestQueryEngine:
    def test_dispatch_scales_with_accels(self, ssd_config):
        engine = QueryEngine(ssd_config)
        assert engine.dispatch_seconds(32) > engine.dispatch_seconds(1)

    def test_merge_scales_with_k(self, ssd_config):
        engine = QueryEngine(ssd_config)
        assert engine.merge_seconds(32, 100) == pytest.approx(
            10 * engine.merge_seconds(32, 10)
        )

    def test_result_transfer(self, ssd_config):
        engine = QueryEngine(ssd_config)
        t = engine.result_transfer_seconds(10, 2048)
        assert t == pytest.approx(10 * (2048 + 8) / 3.2e9)

    def test_overhead_well_below_scan(self, ssd_config):
        engine = QueryEngine(ssd_config)
        assert engine.query_overhead_seconds(32, 10) < 1e-3

    def test_energy(self, ssd_config):
        engine = QueryEngine(ssd_config)
        assert engine.energy_j(1.0) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            engine.energy_j(-1)

    def test_functional_merge(self, ssd_config):
        engine = QueryEngine(ssd_config)
        merged = engine.merge_results([[(0.9, 1)], [(0.95, 2)]], 1)
        assert merged == [(0.95, 2)]

    def test_validation(self, ssd_config):
        engine = QueryEngine(ssd_config)
        with pytest.raises(ValueError):
            engine.dispatch_seconds(0)
        with pytest.raises(ValueError):
            engine.merge_seconds(4, 0)
        with pytest.raises(ValueError):
            EngineCosts(parse_seconds=-1)
