"""Property-based verification of the cluster layer's exactness.

Hypothesis sweeps what example tests cannot: arbitrary shard counts,
placements, K values, duplicate-heavy score distributions, and killed
replica sets.  The central claims:

* the streaming K-way merge over per-shard canonical top-K lists
  equals the brute-force global top-K — **always**;
* sharding is invisible: partition any scored dataset any way, take
  per-shard top-K, merge — same answer as no partitioning;
* failover never loses a shard's contribution, and an unservable
  shard (every replica dead) raises instead of answering wrongly;
* a hedged request never double-counts: exactly one payload per shard
  survives, and the winner is the replica that actually finished first.

Together with ``test_cluster_differential`` (bit-exact parity against
one real device) this suite carries the PR's correctness argument —
well over 500 generated cases per run.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterError,
    ReplicaAttempt,
    ShardJob,
    make_placement,
    run_scatter,
)
from repro.core.topk import kway_merge_topk, merge_topk, topk_select

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
# coarse score grid => duplicate scores straddle the K-th place often,
# hammering the canonical (-score, id) tie-break
tied_scores = st.integers(min_value=0, max_value=12).map(lambda i: i / 12.0)
ks = st.integers(min_value=1, max_value=15)
shard_counts = st.integers(min_value=1, max_value=9)
placements = st.sampled_from(["range", "hash", "locality"])
seeds = st.integers(min_value=0, max_value=2**16)

score_lists = st.lists(tied_scores, min_size=1, max_size=120)

pair_partials = st.lists(
    st.lists(
        st.tuples(tied_scores, st.integers(min_value=0, max_value=400)),
        max_size=25,
    ),
    min_size=1,
    max_size=9,
)


def _canon(pairs):
    """Full canonical ordering of one partial (empty ones stay empty)."""
    return topk_select(pairs, len(pairs)) if pairs else []


# ----------------------------------------------------------------------
# streaming merge == brute force
# ----------------------------------------------------------------------
class TestMergeProperties:
    @given(pair_partials, ks)
    @settings(max_examples=200, deadline=None)
    def test_kway_merge_equals_brute_force(self, partials, k):
        canonical = [_canon(p) for p in partials]
        merged, stats = kway_merge_topk(canonical, k)
        everything = [pair for p in partials for pair in p]
        assert merged == topk_select(everything, k)
        # same answer as the query engine's materialize-and-sort merge
        assert merged == merge_topk(canonical, k)
        assert stats.entries_popped == len(merged) <= k
        assert stats.entries_offered == sum(len(p) for p in partials)

    @given(pair_partials, ks)
    @settings(max_examples=100, deadline=None)
    def test_merge_cost_accounting(self, partials, k):
        canonical = [_canon(p) for p in partials]
        _, stats = kway_merge_topk(canonical, k)
        if stats.lists <= 1:
            assert stats.comparisons == 0  # degenerate cluster: free
        else:
            assert stats.comparisons > 0 or stats.heap_ops == 0
        # every heap op is a heapify entry, a pop, or a push
        non_empty = sum(1 for p in canonical if p)
        assert stats.heap_ops <= non_empty + 2 * stats.entries_popped


# ----------------------------------------------------------------------
# sharding is invisible
# ----------------------------------------------------------------------
class TestShardingInvariance:
    @given(score_lists, shard_counts, placements, ks, seeds)
    @settings(max_examples=200, deadline=None)
    def test_partition_then_merge_equals_global(
        self, scores, n_shards, strategy, k, seed
    ):
        n = len(scores)
        placement = make_placement(strategy, n, n_shards, seed=seed)
        # exact partition: every global id owned exactly once, ascending
        seen = np.concatenate([ids for ids in placement.owners if len(ids)])
        assert sorted(seen.tolist()) == list(range(n))
        for ids in placement.owners:
            assert list(ids) == sorted(ids)

        partials = [
            topk_select([(scores[int(i)], int(i)) for i in ids], k)
            for ids in placement.owners
            if len(ids)
        ]
        merged, _ = kway_merge_topk(partials, k)
        expected = topk_select(list(zip(scores, range(n))), k)
        assert merged == expected

    @given(st.integers(min_value=0, max_value=200), shard_counts, seeds)
    @settings(max_examples=100, deadline=None)
    def test_hash_placement_is_deterministic(self, n, n_shards, seed):
        a = make_placement("hash", n, n_shards, seed=seed)
        b = make_placement("hash", n, n_shards, seed=seed)
        for x, y in zip(a.owners, b.owners):
            assert np.array_equal(x, y)

    @given(st.integers(min_value=1, max_value=200), placements, seeds)
    @settings(max_examples=50, deadline=None)
    def test_one_shard_is_identity(self, n, strategy, seed):
        placement = make_placement(strategy, n, 1, seed=seed)
        assert np.array_equal(placement.owners[0], np.arange(n))


# ----------------------------------------------------------------------
# failover + hedging over the scatter DES
# ----------------------------------------------------------------------
def _job(shard, replica_specs, detect=0.01, hedge_delay=None):
    """replica_specs: [(replica, alive, seconds), ...] in failover order."""
    attempts = tuple(
        ReplicaAttempt(
            replica=r,
            alive=alive,
            run=(lambda s=seconds, sh=shard, rr=r: (s, (sh, rr))),
        )
        for r, alive, seconds in replica_specs
    )
    return ShardJob(
        shard=shard, attempts=attempts, detect_seconds=detect,
        hedge_delay=hedge_delay,
    )


replica_plans = st.lists(  # per shard: (alive, seconds) per replica
    st.lists(
        st.tuples(st.booleans(),
                  st.floats(min_value=0.001, max_value=2.0,
                            allow_nan=False, allow_infinity=False)),
        min_size=1, max_size=4,
    ),
    min_size=1, max_size=6,
)


class TestScatterProperties:
    @given(replica_plans)
    @settings(max_examples=150, deadline=None)
    def test_failover_uses_first_live_replica(self, plans):
        any_servable = any(any(alive for alive, _ in plan) for plan in plans)
        jobs = [
            _job(s, [(r, alive, secs) for r, (alive, secs) in enumerate(plan)])
            for s, plan in enumerate(plans)
        ]
        if not any_servable:
            # only a fully-dead *cluster* raises; a dead shard resolves
            # as a structured unavailable outcome below
            with pytest.raises(ClusterError):
                run_scatter(jobs)
            return
        result = run_scatter(jobs)
        assert len(result.outcomes) == len(plans)
        for outcome, plan in zip(result.outcomes, plans):
            if not any(alive for alive, _ in plan):
                assert outcome.unavailable
                assert outcome.replica == -1
                assert outcome.payload is None
                assert outcome.failovers == len(plan)  # every corpse tried
                assert outcome.detect_s == pytest.approx(0.01 * len(plan))
                assert outcome.done_s == pytest.approx(outcome.detect_s)
                continue
            first_live = next(r for r, (a, _) in enumerate(plan) if a)
            assert not outcome.unavailable
            assert outcome.replica == first_live
            assert outcome.payload == (outcome.shard, first_live)
            assert outcome.failovers == first_live  # corpses ahead of it
            assert outcome.detect_s == pytest.approx(0.01 * first_live)
            assert outcome.done_s == pytest.approx(
                outcome.detect_s + plan[first_live][1]
            )
        assert result.unavailable_shards == sum(
            1 for plan in plans if not any(a for a, _ in plan)
        )
        assert result.makespan_s == pytest.approx(
            max(o.done_s for o in result.outcomes)
        )

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            ),
            min_size=1, max_size=6,
        ),
        st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_hedge_never_double_counts(self, shard_times, hedge_delay):
        jobs = [
            _job(
                s,
                [(0, True, primary_s), (1, True, backup_s)],
                hedge_delay=hedge_delay,
            )
            for s, (primary_s, backup_s) in enumerate(shard_times)
        ]
        result = run_scatter(jobs)
        assert len(result.outcomes) == len(shard_times)
        for outcome, (primary_s, backup_s) in zip(
            result.outcomes, shard_times
        ):
            # exactly one payload survives, and it names its replica
            assert outcome.payload == (outcome.shard, outcome.replica)
            if primary_s <= hedge_delay:
                # primary beat the deadline (FIFO tie: completion wins)
                assert not outcome.hedged
                assert outcome.replica == 0
                assert outcome.done_s == pytest.approx(primary_s)
            else:
                assert outcome.hedged
                hedged_backup_done = hedge_delay + backup_s
                if hedged_backup_done < primary_s:
                    assert outcome.hedge_won and outcome.replica == 1
                    assert outcome.done_s == pytest.approx(hedged_backup_done)
                else:
                    assert not outcome.hedge_won and outcome.replica == 0
                    assert outcome.done_s == pytest.approx(primary_s)
        assert result.hedges_launched == sum(
            1 for o in result.outcomes if o.hedged
        )
        assert result.hedge_wins <= result.hedges_launched
