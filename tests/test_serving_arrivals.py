"""Arrival-process tests: determinism, rate, rescaling, priorities."""

import numpy as np
import pytest

from repro.serving import (
    offered_qps_of,
    poisson_arrivals,
    trace_arrivals,
)
from repro.workloads import QueryStream
from repro.workloads.traces import capture_trace


class TestPoissonArrivals:
    def test_deterministic_for_seed(self):
        a = poisson_arrivals(100, 10.0, seed=3)
        b = poisson_arrivals(100, 10.0, seed=3)
        assert [e.time_s for e in a] == [e.time_s for e in b]

    def test_seed_changes_schedule(self):
        a = poisson_arrivals(100, 10.0, seed=3)
        b = poisson_arrivals(100, 10.0, seed=4)
        assert [e.time_s for e in a] != [e.time_s for e in b]

    def test_mean_rate_near_offered(self):
        events = poisson_arrivals(4000, 25.0, seed=0)
        assert offered_qps_of(events) == pytest.approx(25.0, rel=0.1)

    def test_times_strictly_increasing(self):
        times = [e.time_s for e in poisson_arrivals(500, 50.0, seed=1)]
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))

    def test_timing_only_without_stream(self):
        event = poisson_arrivals(5, 1.0, seed=0)[0]
        assert event.qfv is None
        assert event.intent == -1

    def test_stream_attaches_queries(self):
        stream = QueryStream(dim=16, n_intents=4, seed=0)
        events = poisson_arrivals(8, 1.0, seed=0, stream=stream)
        for event in events:
            assert isinstance(event.qfv, np.ndarray)
            assert event.qfv.shape == (16,)
            assert 0 <= event.intent < 4

    def test_priority_mapping_and_compat(self):
        events = poisson_arrivals(
            6, 1.0, seed=0, compat="tir", priority_of=lambda i: i % 2
        )
        assert [e.priority for e in events] == [0, 1, 0, 1, 0, 1]
        assert all(e.compat == "tir" for e in events)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0.0)


class TestTraceArrivals:
    def _trace(self, qps=20.0, n=200):
        stream = QueryStream(dim=8, n_intents=4, seed=5)
        return capture_trace(stream, n, qps, app="tir", seed=5)

    def test_preserves_trace_timing_by_default(self):
        trace = self._trace()
        events = trace_arrivals(trace)
        assert [e.time_s for e in events] == [
            q.arrival_s for q in trace.queries
        ]
        assert all(e.compat == "tir" for e in events)

    def test_rescales_to_target_rate(self):
        trace = self._trace(qps=20.0)
        events = trace_arrivals(trace, target_qps=5.0)
        assert offered_qps_of(events) == pytest.approx(5.0, rel=0.05)

    def test_rescaling_preserves_gap_shape(self):
        trace = self._trace(qps=20.0)
        slow = trace_arrivals(trace, target_qps=5.0)
        orig = [q.arrival_s for q in trace.queries]
        gaps_orig = np.diff(orig)
        gaps_slow = np.diff([e.time_s for e in slow])
        ratios = gaps_slow / gaps_orig
        assert ratios == pytest.approx(
            np.full_like(ratios, ratios[0]), rel=1e-6
        )

    def test_carries_query_content(self):
        trace = self._trace(n=10)
        events = trace_arrivals(trace)
        for event, q in zip(events, trace.queries):
            assert event.intent == q.intent
            assert np.array_equal(event.qfv, q.qfv)

    def test_empty_trace(self):
        from repro.workloads.traces import QueryTrace

        assert trace_arrivals(QueryTrace(app="tir")) == []

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            trace_arrivals(self._trace(n=5), target_qps=-1.0)


class TestOfferedQps:
    def test_degenerate_schedules(self):
        assert offered_qps_of([]) == 0.0
        assert offered_qps_of(poisson_arrivals(1, 5.0)) == 0.0
