"""Property-based queueing invariants (ISSUE satellite: hypothesis).

Hypothesis drives :class:`AdmissionQueue` with arbitrary interleavings
of offers and (batch) pops under every policy, asserting the structural
invariants the serving layer's correctness rests on:

* **bound** — live depth never exceeds the queue bound;
* **conservation** — ``offered == admitted + rejected`` and
  ``admitted == popped + evicted + expired + depth`` after every op;
* **FIFO within a priority class** — queries of one class are served
  in admission order (batch coalescing must never reorder them);
* **priority** — a pop never returns a class when a more important
  (lower-numbered) class has an older resident... more precisely, each
  pop returns the most important nonempty class at that instant.
"""

import collections

from hypothesis import given, settings, strategies as st

from repro.serving import AdmissionQueue, QueuedQuery

# an operation is either an offer (priority, compat) or a pop (max_batch)
offers = st.tuples(
    st.just("offer"),
    st.integers(min_value=0, max_value=3),
    st.sampled_from(["a", "b"]),
)
pops = st.tuples(st.just("pop"), st.integers(min_value=1, max_value=4),
                 st.just(""))
op_lists = st.lists(st.one_of(offers, pops), min_size=1, max_size=60)
bounds = st.integers(min_value=1, max_value=8)
policies = st.sampled_from(["reject", "drop-oldest", "deadline"])
gaps = st.lists(st.floats(min_value=0.0, max_value=0.5,
                          allow_nan=False), min_size=0, max_size=60)


def drive(queue, ops, time_gaps):
    """Run an op sequence; return per-class admit and serve orders."""
    admitted_order = collections.defaultdict(list)
    served_order = collections.defaultdict(list)
    now = 0.0
    for i, (kind, arg, compat) in enumerate(ops):
        now += time_gaps[i % len(time_gaps)] if time_gaps else 0.1
        if kind == "offer":
            query = QueuedQuery(qid=i, arrival_s=now, priority=arg,
                                compat=compat)
            if queue.offer(query, now):
                admitted_order[arg].append(i)
        else:
            batch = queue.pop_batch(now, max_batch=arg)
            if batch:
                classes = {q.priority for q in batch}
                assert len(classes) == 1, "a batch never spans classes"
                nonempty = [p for p, dq in queue._classes.items() if dq]
                assert all(batch[0].priority <= p for p in nonempty), (
                    "pop must serve the most important nonempty class"
                )
            for q in batch:
                served_order[q.priority].append(q.qid)
        # shed queries leave the admitted record: they were revoked
        for query, reason in queue.take_shed():
            if reason in ("evicted", "expired"):
                admitted_order[query.priority].remove(query.qid)
        assert len(queue) <= queue.bound, "depth exceeded the bound"
        assert queue.counters.conserved(queue.depth), (
            f"conservation broken: {queue.counters} depth={queue.depth}"
        )
    return admitted_order, served_order


@settings(max_examples=120, deadline=None)
@given(ops=op_lists, bound=bounds, policy=policies, time_gaps=gaps)
def test_queue_invariants(ops, bound, policy, time_gaps):
    deadline_s = 1.0 if policy == "deadline" else None
    queue = AdmissionQueue(bound, policy, deadline_s)
    admitted_order, served_order = drive(queue, ops, time_gaps)

    # FIFO within each priority class: the served sequence must be a
    # prefix-respecting subsequence = exactly the surviving admits in
    # admission order
    for priority, served in served_order.items():
        assert served == sorted(served), (
            f"class {priority} served out of admission order: {served}"
        )
        survivors = served + [
            q.qid for q in queue._classes.get(priority, [])
        ]
        assert survivors == admitted_order[priority], (
            f"class {priority}: served+queued != admitted in order"
        )


@settings(max_examples=60, deadline=None)
@given(ops=op_lists, bound=bounds)
def test_reject_policy_never_revokes(ops, bound):
    """Under ``reject``, an admission is a promise: no evict/expire."""
    queue = AdmissionQueue(bound, "reject")
    drive(queue, ops, [0.1])
    assert queue.counters.evicted == 0
    assert queue.counters.expired == 0


@settings(max_examples=60, deadline=None)
@given(ops=op_lists, bound=bounds, policy=policies)
def test_drain_completes_everything_admitted(ops, bound, policy):
    """After draining, popped + shed accounts for every admission."""
    deadline_s = 1e9 if policy == "deadline" else None
    queue = AdmissionQueue(bound, policy, deadline_s)
    drive(queue, ops, [0.05])
    while queue.pop(now=1e6) is not None:
        pass
    c = queue.counters
    assert queue.depth == 0
    assert c.admitted == c.popped + c.evicted + c.expired
    assert c.offered == c.popped + c.shed
