"""Tests for the whole-device event-driven query simulator."""

import pytest

from repro.core import DeepStoreSystem
from repro.core.event_query import EventQuerySimulator
from repro.core.placement import SSD_LEVEL
from repro.ssd import Ssd, SsdConfig
from repro.workloads import get_app


@pytest.fixture(scope="module")
def small_db():
    """A deliberately small database so a full DES run is cheap."""
    ssd = Ssd()
    app = get_app("tir")
    meta = ssd.ftl.create_database(app.feature_bytes, 40_000)  # ~80 MB
    return app, meta


class TestEventQuerySimulator:
    def test_matches_analytic_model(self, small_db):
        app, meta = small_db
        event = EventQuerySimulator().run(app, meta)
        analytic = DeepStoreSystem.at_level("channel").query_latency(app, meta)
        assert event.total_seconds == pytest.approx(
            analytic.total_seconds, rel=0.20
        )

    def test_covers_all_pages(self, small_db):
        app, meta = small_db
        event = EventQuerySimulator().run(app, meta)
        assert event.pages == meta.total_pages

    def test_channel_skew_is_small(self, small_db):
        # the striped layout balances stripes, so completion skew across
        # channels stays tight
        app, meta = small_db
        event = EventQuerySimulator().run(app, meta)
        assert event.channel_skew < 1.1

    def test_window_mode(self, small_db):
        app, meta = small_db
        window = EventQuerySimulator().run(app, meta, max_pages_per_channel=32)
        full = EventQuerySimulator().run(app, meta)
        assert window.pages < full.pages
        assert window.scan_seconds < full.scan_seconds

    def test_latency_insensitivity_full_device(self):
        # the Fig. 9 claim at whole-device scope
        app = get_app("tir")
        times = {}
        for latency in (53e-6, 212e-6):
            config = SsdConfig().with_flash_latency(latency)
            ssd = Ssd(config)
            meta = ssd.ftl.create_database(app.feature_bytes, 40_000)
            result = EventQuerySimulator(ssd=config).run(app, meta)
            times[latency] = result.scan_seconds
        assert times[212e-6] / times[53e-6] < 1.35

    def test_rejects_other_levels(self):
        with pytest.raises(ValueError):
            EventQuerySimulator(placement=SSD_LEVEL)
        with pytest.raises(ValueError):
            EventQuerySimulator(queue_depth=0)


class TestChipChannelSimulation:
    @pytest.mark.parametrize("name", ["mir", "textqa", "tir"])
    def test_matches_analytic_chip_model(self, name):
        from repro.core.event_query import simulate_chip_channel

        ssd = Ssd()
        app = get_app(name)
        meta = ssd.ftl.create_database(app.feature_bytes, 1_000_000)
        event = simulate_chip_channel(app, meta, max_pages=256)
        lat = DeepStoreSystem.at_level("chip").query_latency(app, meta)
        analytic_pf = max(lat.io_spf + lat.bus_weight_spf, lat.compute_spf)
        # event is slightly faster: broadcasts overlap chip compute
        assert 0.7 < event.seconds_per_feature / analytic_pf < 1.15

    def test_weight_broadcasts_counted(self):
        from repro.core.event_query import simulate_chip_channel
        from repro.core.placement import CHIP_LEVEL

        ssd = Ssd()
        app = get_app("mir")
        meta = ssd.ftl.create_database(app.feature_bytes, 1_000_000)
        result = simulate_chip_channel(app, meta, max_pages=256)
        window = CHIP_LEVEL.dfv_buffer_features(app.feature_bytes)
        expected_rounds = result.features / (window * 4)
        assert result.weight_broadcasts == pytest.approx(expected_rounds, abs=2)

    def test_broadcasts_saturate_bus_for_big_models(self):
        from repro.core.event_query import simulate_chip_channel

        ssd = Ssd()
        # MIR's 2 MB model rebroadcast every 96 features keeps the bus
        # mostly busy with weights
        app = get_app("mir")
        meta = ssd.ftl.create_database(app.feature_bytes, 1_000_000)
        result = simulate_chip_channel(app, meta, max_pages=256)
        assert result.bus_busy_seconds / result.seconds > 0.8
