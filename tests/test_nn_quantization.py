"""Tests for post-training quantization (the §7 extension)."""

import numpy as np
import pytest

from repro.core import DeepStoreSystem
from repro.core.accelerator import InStorageAccelerator
from repro.core.placement import CHANNEL_LEVEL
from repro.nn import GraphBuilder
from repro.nn.quantization import (
    PRECISIONS,
    QuantizationError,
    accuracy_delta,
    get_precision,
    graph_precision,
    pair_accuracy,
    quantize_graph,
)
from repro.nn.training import make_pair_dataset
from repro.ssd import Ssd
from repro.workloads import get_app


def tiny_graph(seed=0):
    b = GraphBuilder("tiny")
    q = b.input((16,))
    d = b.input((16,))
    h = b.elementwise(q, d, "absdiff")
    h = b.dense(h, 8, activation="relu")
    h = b.dense(h, 1)
    out = b.score_head(h, "sigmoid")
    return b.build(out, seed=seed)


class TestPrecisionSpecs:
    def test_catalog(self):
        assert set(PRECISIONS) == {"fp32", "fp16", "int8"}
        assert get_precision("int8").ops_per_pe == 4
        assert get_precision("fp16").weight_bytes == 2
        assert get_precision("fp32").mac_j > get_precision("int8").mac_j

    def test_unknown(self):
        with pytest.raises(QuantizationError):
            get_precision("int4")

    def test_memory_scale(self):
        assert get_precision("int8").memory_scale == pytest.approx(0.25)


class TestQuantizeGraph:
    def test_original_untouched(self):
        g = tiny_graph()
        before = {k: {n: v.copy() for n, v in p.items()} for k, p in g.params.items()}
        quantize_graph(g, "int8")
        assert g.dtype_bytes == 4
        for node_id, params in g.params.items():
            for name, tensor in params.items():
                np.testing.assert_array_equal(tensor, before[node_id][name])

    def test_weight_bytes_shrink(self):
        g = tiny_graph()
        q8 = quantize_graph(g, "int8")
        q16 = quantize_graph(g, "fp16")
        assert q8.weight_bytes() == g.weight_bytes() // 4
        assert q16.weight_bytes() == g.weight_bytes() // 2
        assert q8.layer_stats()[1].weight_bytes < g.layer_stats()[1].weight_bytes

    def test_precision_recorded(self):
        q = quantize_graph(tiny_graph(), "int8")
        assert q.precision == "int8"
        assert graph_precision(q).name == "int8"
        assert graph_precision(tiny_graph()).name == "fp32"

    def test_int8_values_on_grid(self):
        g = tiny_graph()
        q = quantize_graph(g, "int8")
        for node_id, params in q.params.items():
            for name, tensor in params.items():
                scale = float(np.max(np.abs(g.params[node_id][name])))
                if scale == 0:
                    continue
                step = scale / 127.0
                ratio = tensor / step
                np.testing.assert_allclose(ratio, np.round(ratio), atol=1e-3)

    def test_quantization_error_small(self, rng):
        g = tiny_graph()
        q = quantize_graph(g, "int8")
        x = rng.normal(0, 1, (10, 16)).astype(np.float32)
        y = rng.normal(0, 1, (10, 16)).astype(np.float32)
        orig = g.forward({0: x, 1: y})
        quant = q.forward({0: x, 1: y})
        assert np.max(np.abs(orig - quant)) < 0.1

    def test_accuracy_preserved_on_trained_model(self, rng):
        from repro.workloads import train_scn

        app = get_app("textqa")
        trained = train_scn(app, seed=0)
        q, f, y = make_pair_dataset(rng, app.feature_floats, 400)
        base, quant = accuracy_delta(trained, quantize_graph(trained, "int8"),
                                     q, f, y)
        assert quant > base - 0.05

    def test_pair_accuracy_helper(self, rng):
        g = tiny_graph()
        q, f, y = make_pair_dataset(rng, 16, 100)
        acc = pair_accuracy(g, q, f, y)
        assert 0.0 <= acc <= 1.0


class TestHardwareIntegration:
    def test_accelerator_picks_up_precision(self, ssd_config):
        app = get_app("tir")
        fp32 = InStorageAccelerator(CHANNEL_LEVEL, ssd_config, app.build_scn())
        int8 = InStorageAccelerator(
            CHANNEL_LEVEL, ssd_config, quantize_graph(app.build_scn(), "int8")
        )
        assert int8.precision.name == "int8"
        assert (
            int8.compute_seconds_per_feature()
            < fp32.compute_seconds_per_feature()
        )

    def test_reid_residency_flips_at_int8(self, ssd_config):
        app = get_app("reid")
        fp32 = InStorageAccelerator(CHANNEL_LEVEL, ssd_config, app.build_scn())
        int8 = InStorageAccelerator(
            CHANNEL_LEVEL, ssd_config, quantize_graph(app.build_scn(), "int8")
        )
        assert fp32.profile.bound == "weight-stream"
        assert int8.profile.bound == "compute"

    def test_quantized_query_latency_never_worse(self):
        ssd = Ssd()
        app = get_app("mir")
        meta = ssd.ftl.create_database(app.feature_bytes, 1_000_000)
        system = DeepStoreSystem.at_level("channel")
        fp32 = system.query_latency(app, meta).total_seconds
        int8 = system.query_latency(
            app, meta, graph=quantize_graph(app.build_scn(), "int8")
        ).total_seconds
        assert int8 <= fp32 * 1.01

    def test_quantized_energy_lower(self, ssd_config):
        ssd = Ssd(ssd_config)
        app = get_app("tir")
        meta = ssd.ftl.create_database(app.feature_bytes, 1_000_000)
        fp32 = InStorageAccelerator(CHANNEL_LEVEL, ssd_config, app.build_scn())
        int8 = InStorageAccelerator(
            CHANNEL_LEVEL, ssd_config, quantize_graph(app.build_scn(), "int8")
        )
        assert int8.feature_energy(meta).compute_j < fp32.feature_energy(meta).compute_j
        assert int8.feature_energy(meta).sram_j < fp32.feature_energy(meta).sram_j
        # flash energy unchanged: the stored database stays fp32
        assert int8.feature_energy(meta).flash_j == pytest.approx(
            fp32.feature_energy(meta).flash_j
        )
