"""Documentation gate: every public item carries a docstring.

Deliverable (e) of a credible release — enforced, not aspired to.  Walks
every module under ``repro`` and asserts module, public class, public
function/method docstrings exist and are non-trivial.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if defined_here and (inspect.isclass(obj) or inspect.isfunction(obj)):
            yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 20, module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in public_members(module):
        if not inspect.getdoc(obj):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                # inspect.getdoc on the *attribute* follows the MRO, so
                # overrides of a documented interface method pass;
                # properties and dataclass fields are exempt by nature
                if inspect.isfunction(meth) and not inspect.getdoc(
                    getattr(obj, meth_name)
                ):
                    undocumented.append(
                        f"{module.__name__}.{name}.{meth_name}"
                    )
    assert not undocumented, f"undocumented public items: {undocumented}"
