"""Property suite for the circuit breaker (satellite 3b).

Hypothesis drives random event sequences (successes, failures, allow
probes, clock advances) through a :class:`CircuitBreaker` and checks the
state-machine invariants the coordinator leans on:

* an **open** breaker never serves — ``allow`` is False for the whole
  cool-down, regardless of traffic;
* a **half-open** breaker admits exactly ``half_open_probes`` requests,
  no matter how many ``allow`` calls arrive;
* transitions follow the classic closed → open → half-open → {closed,
  open} graph, timestamped in order.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import BreakerConfig, BreakerState, CircuitBreaker
from repro.cluster.config import ClusterError

@st.composite
def configs(draw):
    window = draw(st.integers(min_value=1, max_value=12))
    return BreakerConfig(
        window=window,
        failure_threshold=draw(st.floats(min_value=0.1, max_value=1.0)),
        min_samples=draw(st.integers(min_value=1, max_value=window)),
        open_seconds=draw(st.floats(min_value=0.01, max_value=0.2)),
        half_open_probes=draw(st.integers(min_value=1, max_value=4)),
    )


configs = configs()

# an event stream: (kind, dt) — the clock only moves forward
events = st.lists(
    st.tuples(
        st.sampled_from(["success", "failure", "allow"]),
        st.floats(min_value=0.0, max_value=0.05),
    ),
    min_size=1,
    max_size=60,
)


def _drive(breaker, stream):
    """Replay a stream; return [(now, state_before, kind, allowed)]."""
    now = 0.0
    trace = []
    for kind, dt in stream:
        now += dt
        state = breaker.state(now)
        allowed = None
        if kind == "success":
            breaker.record_success(now)
        elif kind == "failure":
            breaker.record_failure(now)
        else:
            allowed = breaker.allow(now)
        trace.append((now, state, kind, allowed))
    return trace


class TestBreakerInvariants:
    @given(configs, events)
    @settings(max_examples=300, deadline=None)
    def test_open_never_serves_and_half_open_admits_probe_budget(
        self, config, stream
    ):
        breaker = CircuitBreaker(config)
        trace = _drive(breaker, stream)

        # replay the trace against the transition log to bound each
        # state interval, then check every allow() against it
        half_open_admits = 0
        for now, state, kind, allowed in trace:
            if state is not BreakerState.HALF_OPEN:
                half_open_admits = 0  # any excursion starts a new episode
            if kind != "allow":
                if kind == "failure" and state is BreakerState.HALF_OPEN:
                    # re-opened: the next half-open is a fresh episode,
                    # possibly with no observed OPEN entry in between
                    half_open_admits = 0
                continue
            if state is BreakerState.OPEN:
                assert allowed is False  # the whole point
            elif state is BreakerState.CLOSED:
                assert allowed is True
            else:
                if allowed:
                    half_open_admits += 1
                # never beyond the budget within one half-open episode
                assert half_open_admits <= config.half_open_probes

    @given(configs, events)
    @settings(max_examples=300, deadline=None)
    def test_transition_graph_and_timestamps(self, config, stream):
        breaker = CircuitBreaker(config)
        _drive(breaker, stream)
        legal = {
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
            (BreakerState.HALF_OPEN, BreakerState.OPEN),
        }
        times = [t for t, _f, _t in breaker.transitions]
        assert times == sorted(times)
        for _now, src, dst in breaker.transitions:
            assert (src, dst) in legal

    @given(configs, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_cooldown_is_respected_exactly(self, config, fraction):
        breaker = CircuitBreaker(config)
        # slam it open
        for _ in range(max(config.min_samples, config.window)):
            breaker.record_failure(1.0)
        assert breaker.state(1.0) is BreakerState.OPEN
        opened_at = breaker.transitions[-1][0]
        inside = opened_at + fraction * config.open_seconds * 0.999
        assert breaker.state(inside) is BreakerState.OPEN
        assert not breaker.allow(inside)
        after = opened_at + config.open_seconds * 1.001
        assert breaker.state(after) is BreakerState.HALF_OPEN

    @given(configs)
    @settings(max_examples=100, deadline=None)
    def test_probe_success_closes_probe_failure_reopens(self, config):
        def slam(b):
            for _ in range(max(config.min_samples, config.window)):
                b.record_failure(0.0)
            assert b.state(0.0) is BreakerState.OPEN

        # all probes succeed -> CLOSED with a clean window
        breaker = CircuitBreaker(config)
        slam(breaker)
        t = config.open_seconds * 1.001  # float-safe past the cool-down
        for _ in range(config.half_open_probes):
            assert breaker.allow(t)
            breaker.record_success(t)
        assert breaker.state(t) is BreakerState.CLOSED
        assert breaker.failure_rate == 0.0

        # any probe fails -> OPEN again, with a fresh cool-down
        breaker = CircuitBreaker(config)
        slam(breaker)
        assert breaker.allow(t)
        breaker.record_failure(t)
        assert breaker.state(t) is BreakerState.OPEN
        assert not breaker.allow(t + config.open_seconds * 0.5)
        assert breaker.state(t + config.open_seconds * 1.001) is (
            BreakerState.HALF_OPEN
        )

    @given(configs, st.integers(min_value=1, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_closed_needs_min_samples_to_open(self, config, failures):
        breaker = CircuitBreaker(config)
        for _ in range(min(failures, config.min_samples - 1)):
            breaker.record_failure(0.0)
        assert breaker.state(0.0) is BreakerState.CLOSED


class TestBreakerValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ClusterError):
            BreakerConfig(window=0)
        with pytest.raises(ClusterError):
            BreakerConfig(failure_threshold=0.0)
        with pytest.raises(ClusterError):
            BreakerConfig(min_samples=0)
        with pytest.raises(ClusterError):
            BreakerConfig(open_seconds=-1.0)
        with pytest.raises(ClusterError):
            BreakerConfig(half_open_probes=0)
        with pytest.raises(ClusterError):
            BreakerConfig(window=2, min_samples=3)
