"""Cross-module integration scenarios.

Each test exercises a realistic end-to-end flow through several
subsystems at once — the flows a downstream user of this library would
actually run.
"""

import numpy as np
import pytest

from repro import DeepStoreDevice, DeepStoreSystem
from repro.analysis import compare_levels
from repro.baseline import GpuSsdSystem
from repro.core.reorganize import ReorganizedSearch, build_layout
from repro.core.scheduler import MultiQueryScheduler
from repro.nn import graph_from_bytes, graph_to_bytes
from repro.nn.quantization import quantize_graph
from repro.ssd import Ssd
from repro.workloads import (
    FeatureDatasetSpec,
    QueryStream,
    capture_trace,
    get_app,
    make_clustered_features,
    plant_neighbors,
    replay_trace,
    train_scn,
)

from tests.conftest import make_db


class TestTrainServeRetrieve:
    """Train -> serialize -> load into device -> query -> verify."""

    def test_full_model_lifecycle(self, rng):
        app = get_app("textqa")
        trained = train_scn(app, seed=0)

        # ship the model through the ONNX-like format, as loadModel does
        blob = graph_to_bytes(trained)
        restored = graph_from_bytes(blob)

        features = rng.normal(0, 1, (4000, 200)).astype(np.float32)
        anchor = rng.normal(0, 1, 200).astype(np.float32)
        features, planted = plant_neighbors(features, anchor, k=5,
                                            noise=0.2, seed=1)

        device = DeepStoreDevice()
        db = device.write_db(features)
        model = device.load_model(blob)
        qfv = anchor + rng.normal(0, 0.2, 200).astype(np.float32)
        result = device.get_results(device.query(qfv, 10, model, db))
        recall = len(set(result.feature_ids.tolist()) & set(planted.tolist()))
        assert recall >= 4
        # and the restored graph scores identically to the original
        tiled = np.repeat(qfv[None], 16, axis=0)
        scores_a = trained.forward({0: tiled, 1: features[:16]})
        scores_b = restored.forward({0: tiled, 1: features[:16]})
        np.testing.assert_allclose(scores_a, scores_b, rtol=1e-6)

    def test_quantized_lifecycle(self, rng):
        app = get_app("textqa")
        trained = train_scn(app, seed=0)
        int8 = quantize_graph(trained, "int8")

        features = rng.normal(0, 1, (2000, 200)).astype(np.float32)
        anchor = rng.normal(0, 1, 200).astype(np.float32)
        features, planted = plant_neighbors(features, anchor, k=5,
                                            noise=0.2, seed=2)
        device = DeepStoreDevice()
        db = device.write_db(features)
        model = device.load_graph(int8)
        qfv = anchor + rng.normal(0, 0.2, 200).astype(np.float32)
        result = device.get_results(device.query(qfv, 10, model, db))
        recall = len(set(result.feature_ids.tolist()) & set(planted.tolist()))
        assert recall >= 4  # quantization preserves retrieval


class TestEvaluationConsistency:
    """The evaluation paths must tell one coherent story."""

    def test_api_latency_matches_system_model(self, rng):
        app = get_app("tir")
        device = DeepStoreDevice(level="channel")
        features = rng.normal(0, 1, (8192, 512)).astype(np.float32)
        db = device.write_db(features)
        model = device.load_graph(app.build_scn())
        result = device.get_results(
            device.query(rng.normal(0, 1, 512).astype(np.float32), 5, model, db)
        )
        system = DeepStoreSystem.at_level("channel")
        meta = device.database_metadata(db)
        expected = system.query_latency(app, meta, graph=device._models[model])
        assert result.latency.total_seconds == pytest.approx(
            expected.total_seconds, rel=1e-6
        )

    def test_speedup_consistent_between_metrics_and_raw_models(self, ssd):
        app = get_app("mir")
        meta = make_db(ssd, app.feature_bytes, gigabytes=2.0)
        baseline = GpuSsdSystem()
        cell = [c for c in compare_levels(app, meta, baseline=baseline)
                if c.level == "channel"][0]
        raw = baseline.query_cost(app, meta.feature_count).seconds / \
            DeepStoreSystem.at_level("channel").query_latency(app, meta).total_seconds
        assert cell.speedup == pytest.approx(raw, rel=1e-6)

    def test_scheduler_consistent_with_single_query(self, ssd):
        app = get_app("estp")
        meta = make_db(ssd, app.feature_bytes, gigabytes=2.0)
        single = DeepStoreSystem.at_level("channel").query_latency(app, meta)
        shared = MultiQueryScheduler().shared_scan(app, meta, 1)
        assert shared.scan_seconds == pytest.approx(
            single.total_seconds, rel=0.15
        )


class TestCacheUnderRealisticStream:
    def test_device_cache_tracks_stream_locality(self, rng):
        app = get_app("textqa")
        trained = train_scn(app, seed=0)
        stream = QueryStream(
            dim=200, n_intents=12, distribution="zipf", alpha=0.9,
            paraphrase_noise=0.08, seed=8,
        )
        corpus = rng.normal(0, 1, (5000, 200)).astype(np.float32)
        device = DeepStoreDevice()
        db = device.write_db(corpus)
        model = device.load_graph(trained)
        device.set_qc(threshold=0.10, capacity=16)
        for record in stream.generate(48):
            device.get_results(device.query(record.qfv, 5, model, db))
        cache = device.query_cache
        # with 12 Zipf-skewed intents and 16 entries, hits dominate after
        # warm-up
        assert cache.hits > cache.misses / 2
        assert len(cache) <= 16

    def test_trace_replay_with_real_device(self, rng):
        """The §5 methodology end to end: capture a trace, replay it
        against the functional device's measured per-query latency."""
        app = get_app("textqa")
        trained = train_scn(app, seed=0)
        corpus = rng.normal(0, 1, (3000, 200)).astype(np.float32)
        device = DeepStoreDevice()
        db = device.write_db(corpus)
        model = device.load_graph(trained)
        device.set_qc(threshold=0.10, capacity=32)
        stream = QueryStream(dim=200, n_intents=10, distribution="zipf",
                             alpha=0.8, paraphrase_noise=0.08, seed=9)
        trace = capture_trace(stream, 40, offered_qps=100.0, seed=3)

        def service(query):
            result = device.get_results(device.query(query.qfv, 5, model, db))
            return result.seconds

        dist = replay_trace(trace, service)
        assert dist.mean_s > 0
        assert dist.p99_s >= dist.p50_s


class TestReorganizationOnDevice:
    def test_clustered_layout_accelerates_with_recall(self):
        spec = FeatureDatasetSpec(n_features=4000, dim=200, n_intents=8,
                                  noise=0.25, seed=6)
        features, _ = make_clustered_features(spec)
        app = get_app("textqa")
        graph = train_scn(app, seed=0)
        ssd = Ssd()
        layout = build_layout(features, n_clusters=8, ftl=ssd.ftl,
                              feature_bytes=800, seed=1)
        search = ReorganizedSearch(layout, features, app, graph)
        rng = np.random.default_rng(12)
        qfv = (spec.centroids()[2] + rng.normal(0, 0.1, 200)).astype(np.float32)
        probed = search.query(qfv, k=10, n_probe=2)
        exact = search.exact_topk(qfv, 10)
        assert probed.recall_against(exact) > 0.5
        assert probed.scan_fraction < 0.6
        assert probed.scan_seconds < probed.full_scan_seconds
