"""Tests for flash chip/plane timing and the channel controller."""

import pytest

from repro.sim import Simulator
from repro.ssd import ChannelController, FlashChip, FlashTiming, SsdGeometry
from repro.ssd.flash import PageReadRequest
from repro.ssd.geometry import PhysicalPageAddress


def addr(channel=0, chip=0, plane=0, block=0, page=0):
    return PhysicalPageAddress(channel, chip, plane, block, page)


class TestFlashChip:
    def test_read_takes_array_latency(self):
        sim = Simulator()
        chip = FlashChip(sim, FlashTiming(), planes=2)
        done = []
        chip.read(PageReadRequest(addr(), lambda r: done.append(sim.now)))
        sim.run()
        assert done == [pytest.approx(53e-6)]

    def test_planes_operate_in_parallel(self):
        sim = Simulator()
        chip = FlashChip(sim, FlashTiming(), planes=2)
        done = []
        for plane in range(2):
            chip.read(PageReadRequest(addr(plane=plane), lambda r: done.append(sim.now)))
        sim.run()
        assert done == [pytest.approx(53e-6)] * 2

    def test_same_plane_serializes_after_buffer_release(self):
        sim = Simulator()
        chip = FlashChip(sim, FlashTiming(), planes=1)
        done = []

        def first(request):
            done.append(sim.now)
            # drain the buffer after 10us, freeing the plane
            sim.schedule_after(10e-6, lambda: chip.release_buffer(0))

        chip.read(PageReadRequest(addr(), first))
        chip.read(PageReadRequest(addr(page=1), lambda r: done.append(sim.now)))
        sim.run()
        assert done[0] == pytest.approx(53e-6)
        assert done[1] == pytest.approx(53e-6 + 10e-6 + 53e-6)

    def test_release_without_hold_raises(self):
        chip = FlashChip(Simulator(), FlashTiming(), planes=1)
        with pytest.raises(RuntimeError):
            chip.release_buffer(0)

    def test_zero_planes_rejected(self):
        with pytest.raises(ValueError):
            FlashChip(Simulator(), FlashTiming(), planes=0)

    def test_pages_read_counter(self):
        sim = Simulator()
        chip = FlashChip(sim, FlashTiming(), planes=4)
        for plane in range(4):
            chip.read(PageReadRequest(addr(plane=plane), lambda r: None))
        sim.run()
        assert chip.pages_read == 4


class TestFlashTiming:
    def test_transfer_seconds(self):
        t = FlashTiming()
        assert t.transfer_seconds(16 * 1024) == pytest.approx(16384 / 800e6)

    def test_with_latency(self):
        t = FlashTiming().with_latency(212e-6)
        assert t.array_read_latency_s == 212e-6
        assert t.channel_bandwidth == 800e6

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashTiming(array_read_latency_s=0)
        with pytest.raises(ValueError):
            FlashTiming(command_overhead_s=-1)


class TestChannelController:
    def make(self, latency=53e-6):
        sim = Simulator()
        geo = SsdGeometry()
        ctrl = ChannelController(sim, geo, FlashTiming(array_read_latency_s=latency), 0)
        return sim, geo, ctrl

    def test_single_page_latency(self):
        sim, geo, ctrl = self.make()
        done = []
        ctrl.read_page(addr(), lambda a: done.append(sim.now))
        sim.run()
        expected = 53e-6 + 16384 / 800e6 + 0.2e-6
        assert done == [pytest.approx(expected)]

    def test_wrong_channel_rejected(self):
        _, _, ctrl = self.make()
        with pytest.raises(ValueError):
            ctrl.read_page(addr(channel=3), lambda a: None)

    def test_bus_saturates_at_channel_bandwidth(self):
        sim, geo, ctrl = self.make()
        done = {"n": 0}
        n_pages = 128
        for i in range(n_pages):
            # spread across all chips/planes of the channel
            a = addr(chip=i % 4, plane=(i // 4) % 8, page=i // 32)
            ctrl.read_page(a, lambda a: done.__setitem__("n", done["n"] + 1))
        sim.run()
        assert done["n"] == n_pages
        bw = ctrl.delivered_bandwidth(sim.now)
        assert bw == pytest.approx(800e6, rel=0.12)

    def test_high_latency_barely_matters_with_many_planes(self):
        # the Fig. 9 mechanism: with 32 planes per channel the bus, not
        # the array, limits a steady scan
        def run(latency):
            sim, geo, ctrl = self.make(latency)
            done = {"n": 0}
            for i in range(256):
                a = addr(chip=i % 4, plane=(i // 4) % 8, page=i // 32)
                ctrl.read_page(a, lambda a: done.__setitem__("n", done["n"] + 1))
            sim.run()
            return sim.now

    # 4x latency should cost well under 20%
        slow = run(212e-6)
        fast = run(53e-6)
        assert slow / fast < 1.2

    def test_stats(self):
        sim, geo, ctrl = self.make()
        ctrl.read_page(addr(), lambda a: None)
        sim.run()
        stats = ctrl.stats()
        assert stats["pages_delivered"] == 1
        assert stats["bytes_delivered"] == 16384
        assert stats["mean_delivery_latency_s"] > 53e-6

    def test_occupy_bus_delays_page_delivery(self):
        sim, geo, ctrl = self.make()
        order = []
        # 80 KB weight broadcast occupies the 800 MB/s bus for 100 us
        ctrl.occupy_bus(80_000, lambda: order.append(("weights", sim.now)))
        ctrl.read_page(addr(), lambda a: order.append(("page", sim.now)))
        sim.run()
        assert order[0][0] == "weights"
        # the page transfer had to wait for the weight broadcast
        assert order[1][1] > 100e-6 + 16384 / 800e6
