"""Differential parity: a degenerate cluster IS a single DeepStore SSD.

The cluster layer's anchor contract: a 1-shard, 1-replica cluster must
reproduce a standalone :class:`DeepStoreDevice` **bit-exactly** — same
feature ids, same scores (no tolerance), and the same end-to-end
seconds (``ClusterQueryResult.seconds == QueryResult.seconds_to_host``,
compared with ``==``, not approx).  Every hidden coordinator cost
(scatter charge, gather charge, straggler factor, canonicalization)
would break one of these assertions, so the suite pins them all to
zero/identity in the degenerate case — per accelerator placement
level, with and without the query cache, and for every placement
strategy (all of which must collapse to the identity layout at one
shard).
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, DeepStoreCluster
from repro.core.api import DeepStoreDevice
from repro.workloads import get_app

LEVELS = ("ssd", "channel", "chip")

N_FEATURES = 300
K = 7
SEED = 3


def _dataset(app, n=N_FEATURES, seed=SEED):
    rng = np.random.default_rng(seed)
    features = rng.normal(0, 1, (n, app.feature_floats)).astype(np.float32)
    queries = rng.normal(0, 1, (4, app.feature_floats)).astype(np.float32)
    return features, queries


def _single_device(app, features, level, qc_threshold=None):
    device = DeepStoreDevice(level=level, seed=SEED)
    db = device.write_db(features)
    model = device.load_graph(app.build_scn(seed=SEED))
    if qc_threshold is not None:
        device.set_qc(qc_threshold)
    return device, model, db


def _degenerate_cluster(app, features, level, placement="range",
                        qc_threshold=None):
    cluster = DeepStoreCluster(
        ClusterConfig(n_shards=1, n_replicas=1, placement=placement,
                      level=level, seed=SEED)
    )
    db = cluster.write_db(features)
    model = cluster.load_graph(app.build_scn(seed=SEED))
    if qc_threshold is not None:
        cluster.set_qc(qc_threshold)
    return cluster, model, db


@pytest.mark.parametrize("level", LEVELS)
class TestDegenerateParity:
    """1 shard x 1 replica == one device, at every accelerator level."""

    def test_ids_scores_and_seconds_bit_exact(self, tir_app, level):
        features, queries = _dataset(tir_app)
        device, d_model, d_db = _single_device(tir_app, features, level)
        cluster, c_model, c_db = _degenerate_cluster(tir_app, features, level)
        for qfv in queries:
            expected = device.get_results(
                device.query(qfv, k=K, model_id=d_model, db_id=d_db)
            )
            got = cluster.query(qfv, k=K, model_id=c_model, db_id=c_db)
            assert np.array_equal(got.feature_ids, expected.feature_ids)
            assert np.array_equal(got.scores, expected.scores)
            # bit-exact latency: == on floats is deliberate
            assert got.seconds == expected.seconds_to_host

    def test_coordinator_charges_vanish(self, tir_app, level):
        features, queries = _dataset(tir_app)
        cluster, model, db = _degenerate_cluster(tir_app, features, level)
        got = cluster.query(queries[0], k=K, model_id=model, db_id=db)
        assert got.scatter_seconds == 0.0
        assert got.gather_seconds == 0.0
        assert got.merge.comparisons == 0
        assert got.n_contacted == 1
        assert got.seconds == got.makespan_seconds

    def test_parity_with_query_cache(self, tir_app, level):
        features, queries = _dataset(tir_app)
        device, d_model, d_db = _single_device(
            tir_app, features, level, qc_threshold=0.2
        )
        cluster, c_model, c_db = _degenerate_cluster(
            tir_app, features, level, qc_threshold=0.2
        )
        # repeat each query so the second round can hit the cache; both
        # sides must hit (or miss) identically and stay bit-exact
        for qfv in list(queries[:2]) * 2:
            expected = device.get_results(
                device.query(qfv, k=K, model_id=d_model, db_id=d_db)
            )
            got = cluster.query(qfv, k=K, model_id=c_model, db_id=c_db)
            assert np.array_equal(got.feature_ids, expected.feature_ids)
            assert np.array_equal(got.scores, expected.scores)
            assert got.seconds == expected.seconds_to_host
            assert got.cache_hit == expected.cache_hit
        # the repeat pass genuinely exercised the cache on both sides
        assert expected.cache_hit

    @pytest.mark.parametrize("placement", ["range", "hash", "locality"])
    def test_every_placement_degenerates(self, tir_app, level, placement):
        features, queries = _dataset(tir_app)
        device, d_model, d_db = _single_device(tir_app, features, level)
        cluster, c_model, c_db = _degenerate_cluster(
            tir_app, features, level, placement=placement
        )
        expected = device.get_results(
            device.query(queries[0], k=K, model_id=d_model, db_id=d_db)
        )
        got = cluster.query(queries[0], k=K, model_id=c_model, db_id=c_db)
        assert np.array_equal(got.feature_ids, expected.feature_ids)
        assert np.array_equal(got.scores, expected.scores)
        assert got.seconds == expected.seconds_to_host


class TestShardedAgreement:
    """Sharded answers equal unsharded answers (ids + scores)."""

    @pytest.mark.parametrize("placement", ["range", "hash", "locality"])
    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_global_topk_matches_single_device(
        self, tir_app, placement, shards
    ):
        features, queries = _dataset(tir_app)
        device, d_model, d_db = _single_device(tir_app, features, "channel")
        cluster = DeepStoreCluster(
            ClusterConfig(n_shards=shards, placement=placement,
                          level="channel", seed=SEED)
        )
        c_db = cluster.write_db(features)
        c_model = cluster.load_graph(tir_app.build_scn(seed=SEED))
        for qfv in queries:
            expected = device.get_results(
                device.query(qfv, k=K, model_id=d_model, db_id=d_db)
            )
            got = cluster.query(qfv, k=K, model_id=c_model, db_id=c_db)
            # canonical tie-break makes even duplicate scores agree
            assert np.array_equal(got.feature_ids, expected.feature_ids)
            assert got.scores == pytest.approx(expected.scores, abs=1e-6)

    def test_replication_and_failover_never_change_answers(self, tir_app):
        features, queries = _dataset(tir_app)
        healthy = DeepStoreCluster(
            ClusterConfig(n_shards=4, n_replicas=2, level="channel",
                          seed=SEED)
        )
        h_db = healthy.write_db(features)
        h_model = healthy.load_graph(tir_app.build_scn(seed=SEED))
        wounded = DeepStoreCluster(
            ClusterConfig(n_shards=4, n_replicas=2, level="channel",
                          seed=SEED, fail_shards=(0, (2, 1)))
        )
        w_db = wounded.write_db(features)
        w_model = wounded.load_graph(tir_app.build_scn(seed=SEED))
        for qfv in queries:
            a = healthy.query(qfv, k=K, model_id=h_model, db_id=h_db)
            b = wounded.query(qfv, k=K, model_id=w_model, db_id=w_db)
            assert np.array_equal(a.feature_ids, b.feature_ids)
            assert np.array_equal(a.scores, b.scores)
            # ... but the dead replicas cost detection time
            assert b.failovers >= 1
            assert b.seconds > a.seconds
