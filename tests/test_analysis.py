"""Tests for metrics and reporting helpers."""

import pytest

from repro.analysis import (
    Table,
    compare_levels,
    energy_efficiency,
    evaluate_level,
    format_seconds,
    format_si,
    speedup,
)
from repro.workloads import get_app
from tests.conftest import make_db


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_energy_efficiency(self):
        # same time, half the power -> 2x perf/W
        assert energy_efficiency(1.0, 200.0, 1.0, 100.0) == pytest.approx(2.0)
        # 2x faster at the same power -> 2x
        assert energy_efficiency(2.0, 100.0, 1.0, 100.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            energy_efficiency(1, 0, 1, 1)

    def test_evaluate_level_cell(self, ssd, baseline):
        app = get_app("tir")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        cell = evaluate_level(app, meta, "channel", baseline=baseline)
        assert cell.supported
        assert cell.speedup > 1.0
        assert cell.energy_efficiency > 1.0
        assert cell.bound in ("compute", "flash", "weight-broadcast")

    def test_unsupported_cell(self, ssd, baseline):
        app = get_app("reid")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        cell = evaluate_level(app, meta, "chip", baseline=baseline)
        assert not cell.supported
        assert cell.speedup == 0.0

    def test_compare_levels_covers_all(self, ssd, baseline):
        app = get_app("mir")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        cells = compare_levels(app, meta, baseline=baseline)
        assert [c.level for c in cells] == ["ssd", "channel", "chip"]


class TestReporting:
    def test_format_si(self):
        assert format_si(1.05e6) == "1.05M"
        assert format_si(78.6e9, "FLOP/s") == "78.60GFLOP/s"
        assert format_si(0) == "0"
        assert format_si(42) == "42.00"

    def test_format_seconds(self):
        assert format_seconds(0) == "0s"
        assert format_seconds(3e-6) == "3.00us"
        assert format_seconds(2.5e-3) == "2.50ms"
        assert format_seconds(1.25) == "1.250s"
        with pytest.raises(ValueError):
            format_seconds(-1)

    def test_table_render(self):
        t = Table("Demo", ["app", "speedup"])
        t.add_row("tir", "10.7x")
        text = t.render()
        assert "Demo" in text
        assert "tir" in text and "10.7x" in text

    def test_table_validation(self):
        with pytest.raises(ValueError):
            Table("x", [])
        t = Table("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")
