"""Property suite for the retry ladder (satellite 3c).

Backoff monotonicity and budget conservation, swept by hypothesis over
policy shapes, seeds, and keys — plus byte-stability of the jitter
stream (it lives in its own fault hash domain).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterError, RetryLadder, RetryPolicy
from repro.faults import retry_jitter_unit

policies = st.builds(
    RetryPolicy,
    base_delay_s=st.floats(min_value=1e-6, max_value=1e-3),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay_s=st.floats(min_value=1e-3, max_value=1e-2),
    max_attempts=st.integers(min_value=1, max_value=8),
    budget_s=st.floats(min_value=0.0, max_value=2e-2),
    jitter=st.floats(min_value=0.0, max_value=1.0),
)
seeds = st.integers(min_value=0, max_value=2**16)
keys = st.tuples(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=64),
)


class TestBackoffShape:
    @given(policies, st.integers(min_value=0, max_value=20))
    @settings(max_examples=200, deadline=None)
    def test_raw_delays_are_nondecreasing_and_capped(self, policy, attempt):
        assert policy.raw_delay(attempt) <= policy.raw_delay(attempt + 1) or (
            policy.raw_delay(attempt) == policy.max_delay_s
        )
        assert policy.raw_delay(attempt) <= policy.max_delay_s
        assert policy.raw_delay(0) == min(
            policy.max_delay_s, policy.base_delay_s
        )

    @given(policies, seeds, keys)
    @settings(max_examples=200, deadline=None)
    def test_jitter_stays_inside_the_band(self, policy, seed, key):
        ladder = RetryLadder(policy, seed, *key)
        for attempt, delay in enumerate(ladder.all_delays()):
            raw = policy.raw_delay(attempt)
            assert (1.0 - policy.jitter) * raw <= delay <= raw


class TestBudgetConservation:
    @given(policies, seeds, keys)
    @settings(max_examples=300, deadline=None)
    def test_charged_never_exceeds_budget_or_attempts(self, policy, seed, key):
        ladder = RetryLadder(policy, seed, *key)
        delays = ladder.all_delays()
        # conservation: what was granted is exactly what was charged
        assert ladder.charged_s == pytest.approx(sum(delays))
        assert ladder.charged_s <= policy.budget_s
        assert ladder.attempts == len(delays) <= policy.max_attempts
        # the ladder stopped for a stated reason, and that reason holds
        if len(delays) < policy.max_attempts:
            assert ladder.exhausted == "budget"
            next_raw = policy.raw_delay(len(delays))
            u = retry_jitter_unit(seed, *key, len(delays))
            refused = next_raw * (1.0 - policy.jitter * u)
            assert ladder.charged_s + refused > policy.budget_s
        else:
            assert ladder.exhausted == "attempts"

    @given(policies, seeds, keys)
    @settings(max_examples=100, deadline=None)
    def test_exhausted_ladder_stays_exhausted(self, policy, seed, key):
        ladder = RetryLadder(policy, seed, *key)
        ladder.all_delays()
        assert ladder.next_delay() is None
        assert ladder.exhausted in ("attempts", "budget")


class TestDeterminism:
    @given(policies, seeds, keys)
    @settings(max_examples=100, deadline=None)
    def test_same_key_same_delays(self, policy, seed, key):
        a = RetryLadder(policy, seed, *key).all_delays()
        b = RetryLadder(policy, seed, *key).all_delays()
        assert a == b  # bit-equal floats, not approx

    @given(seeds, keys)
    @settings(max_examples=100, deadline=None)
    def test_different_key_different_stream(self, seed, key):
        # the key actually scopes the draws: distinct keys hit distinct
        # hash points (4 simultaneous collisions would be a hash bug)
        a = [retry_jitter_unit(seed, *key, i) for i in range(4)]
        b = [retry_jitter_unit(seed, key[0] + 1, key[1], i) for i in range(4)]
        assert a != b
        assert all(0.0 <= u < 1.0 for u in a)


class TestPolicyValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ClusterError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ClusterError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ClusterError):
            RetryPolicy(max_delay_s=1e-9, base_delay_s=1e-3)
        with pytest.raises(ClusterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ClusterError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ClusterError):
            RetryPolicy().raw_delay(-1)
