"""Property-based verification of critical-path attribution.

Hypothesis sweeps what the example tests cannot: arbitrary scatter
interleavings — failover ladders of any depth, retry-backoff rungs
that may exhaust, hedge timers that win, lose, or never fire, breaker
rejections, and shards that resolve unavailable.  The central claims:

* the slowest leg's additive decomposition (detect + backoff +
  hedge-wait + scan) reproduces the scatter state machine's ``done_s``
  with IEEE-754 ``==`` — for *every* shard, not just the critical one;
* :func:`cluster_critical_path` folds ``(fanout + leg) + gather`` to
  the exact float the coordinator reported as end-to-end seconds;
* attribution is **zero-overhead**: attaching a trace collector (and
  an SLO monitor, for the chaos day) leaves every result dict
  byte-identical to the untraced twin.

Together with the example suites in ``test_obs_dtrace.py`` this
carries the PR's exactness argument — 300+ generated interleavings
per run, far beyond what the eight-query acceptance day covers.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.chaos import ChaosConfig, run_cluster_chaos
from repro.cluster import (
    ClusterConfig,
    ClusterError,
    DeepStoreCluster,
    ReplicaAttempt,
    RetryPolicy,
    ShardJob,
    run_scatter,
)
from repro.cluster.coordinator import ClusterQueryResult, ShardReport
from repro.core.topk import KWayMergeStats
from repro.obs import (
    FleetAttribution,
    SloMonitor,
    SloSpec,
    TraceCollector,
    cluster_critical_path,
)
from repro.serving import QueryServer, ServingConfig, poisson_arrivals
from repro.workloads import get_app, train_scn

# ----------------------------------------------------------------------
# strategies: one scatter scenario = per-shard replica plans plus the
# knobs that perturb the leg state machine (hedge timer, retry ladder,
# detection cost), plus the coordinator's own fan-out/gather floats
# ----------------------------------------------------------------------
run_secs = st.floats(min_value=0.001, max_value=2.0,
                     allow_nan=False, allow_infinity=False)
pause_secs = st.floats(min_value=0.0, max_value=0.5,
                       allow_nan=False, allow_infinity=False)
overhead_secs = st.floats(min_value=0.0, max_value=0.01,
                          allow_nan=False, allow_infinity=False)


@st.composite
def scatter_scenarios(draw):
    n_shards = draw(st.integers(min_value=1, max_value=5))
    shards = []
    for _ in range(n_shards):
        plan = draw(st.lists(st.tuples(st.booleans(), run_secs),
                             min_size=1, max_size=4))
        hedge = draw(st.one_of(
            st.none(),
            st.floats(min_value=0.001, max_value=1.5,
                      allow_nan=False, allow_infinity=False),
        ))
        backoff = draw(st.one_of(
            st.none(),
            st.lists(pause_secs, min_size=0, max_size=3).map(tuple),
        ))
        detect = draw(st.floats(min_value=0.0, max_value=0.05,
                                allow_nan=False, allow_infinity=False))
        breakers = draw(st.integers(min_value=0, max_value=2))
        shards.append((plan, hedge, backoff, detect, breakers))
    scatter_s = draw(overhead_secs)
    gather_s = draw(overhead_secs)
    return shards, scatter_s, gather_s


def _jobs(shards):
    jobs = []
    for s, (plan, hedge, backoff, detect, breakers) in enumerate(shards):
        attempts = tuple(
            ReplicaAttempt(
                replica=r,
                alive=alive,
                run=(lambda sec=seconds, sh=s, rr=r: (sec, (sh, rr))),
            )
            for r, (alive, seconds) in enumerate(plan)
        )
        jobs.append(ShardJob(
            shard=s,
            attempts=attempts,
            detect_seconds=detect,
            hedge_delay=hedge,
            backoff_delays=backoff,
            breaker_rejected=tuple(
                (len(plan) + i, "open") for i in range(breakers)
            ),
        ))
    return jobs


def _reports(scatter, jobs):
    """Mirror the coordinator's report construction, float for float."""
    reports = []
    for outcome, job in zip(scatter.outcomes, jobs):
        if outcome.unavailable:
            reports.append(ShardReport(
                shard=outcome.shard,
                replica=-1,
                seconds=outcome.done_s,
                detect_seconds=outcome.detect_s,
                failovers=outcome.failovers,
                hedged=False,
                hedge_won=False,
                cache_hit=False,
                k_returned=0,
                retry_pause_seconds=outcome.retry_pause_s,
                unavailable=True,
                breaker_rejections=len(job.breaker_rejected),
            ))
            continue
        reports.append(ShardReport(
            shard=outcome.shard,
            replica=outcome.replica,
            seconds=outcome.done_s,
            detect_seconds=outcome.detect_s,
            failovers=outcome.failovers,
            hedged=outcome.hedged,
            hedge_won=outcome.hedge_won,
            cache_hit=False,
            k_returned=0,
            retry_pause_seconds=outcome.retry_pause_s,
            service_seconds=outcome.service_s,
            hedge_wait_seconds=outcome.hedge_wait_s,
            hedge_saved_seconds=outcome.hedge_saved_s,
            breaker_rejections=len(job.breaker_rejected),
        ))
    return reports


def _result(scatter, jobs, scatter_s, gather_s):
    # same association order as the coordinator's latency arithmetic:
    # total = scatter_s + scatter.makespan_s + gather_s
    total = scatter_s + scatter.makespan_s + gather_s
    return ClusterQueryResult(
        feature_ids=np.zeros(0, dtype=np.int64),
        scores=np.zeros(0, dtype=np.float32),
        seconds=total,
        scatter_seconds=scatter_s,
        gather_seconds=gather_s,
        makespan_seconds=scatter.makespan_s,
        n_contacted=len(jobs),
        merge=KWayMergeStats(
            lists=len(jobs), entries_offered=0, entries_popped=0,
            heap_ops=0,
        ),
        shards=_reports(scatter, jobs),
    )


def _leg_fold(report):
    """Left-fold the leg segments exactly as CriticalPath does."""
    total = 0.0
    if report.detect_seconds != 0.0:
        total += report.detect_seconds
    if report.retry_pause_seconds != 0.0:
        total += report.retry_pause_seconds
    if not report.unavailable:
        if report.hedge_won:
            total += report.hedge_wait_seconds
        total += report.service_seconds
    return total


# ----------------------------------------------------------------------
# the bit-exactness property, over arbitrary interleavings
# ----------------------------------------------------------------------
class TestBitExactAttribution:
    @given(scatter_scenarios())
    @settings(max_examples=300, deadline=None)
    def test_critical_path_sums_bit_exactly(self, scenario):
        shards, scatter_s, gather_s = scenario
        jobs = _jobs(shards)
        try:
            scatter = run_scatter(jobs)
        except ClusterError:
            # a fully-unavailable cluster has no latency to attribute
            assume(False)
        result = _result(scatter, jobs, scatter_s, gather_s)
        path = cluster_critical_path(result)
        assert path.exact
        assert path.component_sum() == result.seconds  # IEEE-754 ==
        assert path.bit_exact
        # the named critical shard is the one the max() picked
        crit = max(result.shards, key=lambda s: s.seconds)
        assert path.info["critical_shard"] == crit.shard
        assert path.as_dict()["bit_exact"] is True

    @given(scatter_scenarios())
    @settings(max_examples=300, deadline=None)
    def test_every_leg_decomposes_to_done_s(self, scenario):
        """Stronger than the critical path: *each* shard's additive
        segments replay the state machine's ``done_s`` exactly."""
        shards, _scatter_s, _gather_s = scenario
        jobs = _jobs(shards)
        try:
            scatter = run_scatter(jobs)
        except ClusterError:
            assume(False)
        for report in _reports(scatter, jobs):
            assert _leg_fold(report) == report.seconds  # IEEE-754 ==

    @given(scatter_scenarios())
    @settings(max_examples=100, deadline=None)
    def test_tracing_never_perturbs_outcomes(self, scenario):
        """run_scatter with a collector attached is bit-identical."""
        shards, _scatter_s, _gather_s = scenario
        jobs = _jobs(shards)
        try:
            bare = run_scatter(jobs)
        except ClusterError:
            assume(False)
        dt = TraceCollector()
        ctxs = {
            job.shard: dt.start_trace(f"shard {job.shard}", 0.0,
                                      kind="test", track="test")
            for job in jobs
        }
        traced = run_scatter(_jobs(shards), dtrace=dt, shard_ctxs=ctxs)
        for a, b in zip(bare.outcomes, traced.outcomes):
            assert (a.shard, a.replica, a.start_s, a.done_s,
                    a.detect_s, a.retry_pause_s, a.failovers,
                    a.hedged, a.hedge_won, a.unavailable,
                    a.service_s, a.hedge_wait_s, a.hedge_saved_s) == (
                    b.shard, b.replica, b.start_s, b.done_s,
                    b.detect_s, b.retry_pause_s, b.failovers,
                    b.hedged, b.hedge_won, b.unavailable,
                    b.service_s, b.hedge_wait_s, b.hedge_saved_s)
        assert bare.makespan_s == traced.makespan_s


# ----------------------------------------------------------------------
# acceptance: a real hardened cluster day, every query bit-exact
# ----------------------------------------------------------------------
def _hardened_cluster():
    return DeepStoreCluster(ClusterConfig(
        n_shards=3,
        n_replicas=2,
        seed=0,
        hedge_fraction=0.3,
        straggler_spread=0.5,
        fail_shards=((1, 0),),
        retry_policy=RetryPolicy(),
    ))


class TestRealClusterAcceptance:
    def test_hardened_day_is_bit_exact(self):
        app = get_app("reid")
        rng = np.random.default_rng(0)
        features = rng.normal(0, 1, (240, app.feature_floats)).astype(
            np.float32
        )
        dtrace = TraceCollector()
        cluster = _hardened_cluster()
        db = cluster.write_db(features)
        model = cluster.load_graph(train_scn(app, seed=0))
        fleet = FleetAttribution()
        saw_failover = saw_hedge = False
        for _ in range(8):
            q = rng.normal(0, 1, app.feature_floats).astype(np.float32)
            result = cluster.query(q, 5, model, db, dtrace=dtrace)
            path = cluster_critical_path(result)
            assert path.component_sum() == result.seconds
            fleet.add(path)
            saw_failover = saw_failover or result.failovers > 0
            saw_hedge = saw_hedge or result.hedges_launched > 0
        assert fleet.exact_fraction == 1.0
        # the scenario actually exercised the hard segments
        assert saw_failover and saw_hedge
        assert dtrace.open_count == 0


# ----------------------------------------------------------------------
# zero overhead: observability attached == observability absent
# ----------------------------------------------------------------------
class TestZeroOverheadParity:
    def test_cluster_parity(self):
        app = get_app("reid")
        rng = np.random.default_rng(1)
        features = rng.normal(0, 1, (240, app.feature_floats)).astype(
            np.float32
        )
        queries = [
            rng.normal(0, 1, app.feature_floats).astype(np.float32)
            for _ in range(4)
        ]

        def day(dtrace=None):
            cluster = _hardened_cluster()
            db = cluster.write_db(features)
            model = cluster.load_graph(train_scn(app, seed=0))
            return [
                cluster.query(q, 5, model, db, dtrace=dtrace).to_dict()
                for q in queries
            ]

        assert day(dtrace=TraceCollector()) == day()

    def test_serving_parity(self):
        config = ServingConfig(app="tir", features=20_000, queue_bound=8)

        def day(**obs):
            server = QueryServer(config)
            arrivals = poisson_arrivals(
                40, server.saturation_qps() * 1.2, seed=7, compat="tir"
            )
            return server.run(arrivals, **obs).as_dict()

        traced = day(
            dtrace=TraceCollector(),
            slo=SloMonitor([SloSpec("read", target=0.9)],
                           sample_interval_s=0.05),
        )
        assert traced == day()

    def test_chaos_parity(self):
        config = ChaosConfig(seed=5, queries=12, kills=2, crashes=1,
                             mutations=12)
        traced = run_cluster_chaos(config, dtrace=TraceCollector())
        bare = run_cluster_chaos(config)
        assert traced.to_dict() == bare.to_dict()
        # the SLO side-channel is additive: alerts exist, dict untouched
        assert pytest.approx(traced.availability) == bare.availability
