"""Tests for distributed query tracing and critical-path attribution.

Covers the collector (span trees, balance, flows), the Chrome export
(``X`` spans, ``B``/``E`` pairs for open-ended spans, ``s``/``f`` flow
arrows, cancellation markers), the cancelled-hedge-loser regression,
and the bit-exact critical-path builders for every query shape.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    DeepStoreCluster,
    ReplicaAttempt,
    RetryPolicy,
    ShardJob,
    run_scatter,
)
from repro.obs import (
    FleetAttribution,
    TraceCollector,
    Tracer,
    cache_hit_critical_path,
    chrome_trace,
    cluster_critical_path,
    device_critical_path,
    dtrace_chrome,
    recovery_critical_path,
)
from repro.obs.dtrace import Segment
from repro.workloads import get_app


# ----------------------------------------------------------------------
# collector
# ----------------------------------------------------------------------
class TestTraceCollector:
    def test_span_tree(self):
        dt = TraceCollector()
        root = dt.start_trace("query 0", 0.0, kind="q", track="t")
        child = dt.start_span(root, "leg", 0.1, kind="leg", track="t")
        dt.end_span(child, 0.5)
        dt.end_span(root, 0.6, status="ok")
        assert dt.open_count == 0
        assert dt.span_count == 2
        assert dt.trace_ids() == [root.trace_id]
        spans = dt.spans_of(root.trace_id)
        assert {s.name for s in spans} == {"query 0", "leg"}
        assert dt.root(root.trace_id).name == "query 0"
        kids = dt.children(root.span_id)
        assert [k.name for k in kids] == ["leg"]
        assert kids[0].parent_span_id == root.span_id

    def test_add_span_one_shot(self):
        dt = TraceCollector()
        root = dt.start_trace("q", 0.0, kind="q", track="t")
        ctx = dt.add_span(root, "device", 0.1, 0.2, kind="dev",
                          track="device", pages=7)
        span = dt.spans[-1]
        assert span.span_id == ctx.span_id
        assert span.duration_s == pytest.approx(0.1)
        assert span.args["pages"] == 7
        assert dt.open_count == 1  # only the root is still open

    def test_end_span_merges_args_and_status(self):
        dt = TraceCollector()
        root = dt.start_trace("q", 0.0, kind="q", track="t", k=5)
        dt.end_span(root, 1.0, status="partial", latency_s=1.0)
        (span,) = dt.spans
        assert span.status == "partial"
        assert span.args["k"] == 5
        assert span.args["latency_s"] == 1.0

    def test_flow_arrows(self):
        dt = TraceCollector()
        root = dt.start_trace("q", 0.0, kind="q", track="t")
        leg = dt.start_span(root, "leg", 0.0, kind="leg", track="u")
        dt.flow(root, leg)
        dt.end_span(leg, 1.0)
        dt.end_span(root, 1.0)
        assert dt.flows == [(root.span_id, leg.span_id)]


# ----------------------------------------------------------------------
# Chrome export
# ----------------------------------------------------------------------
class TestDtraceChrome:
    def _forest(self):
        dt = TraceCollector()
        root = dt.start_trace("q", 0.0, kind="q", track="serving")
        leg = dt.start_span(root, "leg", 0.1, kind="leg", track="shard")
        dt.flow(root, leg)
        dt.end_span(leg, 0.4, status="cancelled")
        dt.end_span(root, 0.5)
        return dt

    def test_events_and_metadata(self):
        trace = dtrace_chrome(self._forest())
        events = trace["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        # one pid per track, named via metadata
        names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"serving", "shard"} <= names
        pids = {e["pid"] for e in xs}
        assert len(pids) == 2

    def test_microsecond_timestamps(self):
        events = dtrace_chrome(self._forest())["traceEvents"]
        leg = next(e for e in events if e["ph"] == "X"
                   and e["name"] == "leg")
        assert leg["ts"] == pytest.approx(0.1 * 1e6)
        assert leg["dur"] == pytest.approx(0.3 * 1e6)

    def test_flow_pair(self):
        events = dtrace_chrome(self._forest())["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert finishes[0]["bp"] == "e"

    def test_non_ok_status_gets_marker(self):
        events = dtrace_chrome(self._forest())["traceEvents"]
        markers = [e for e in events if e["ph"] == "i"]
        assert any(m["name"] == "leg:cancelled" for m in markers)

    def test_unclosed_flow_endpoint_dropped(self):
        dt = TraceCollector()
        root = dt.start_trace("q", 0.0, kind="q", track="t")
        leg = dt.start_span(root, "leg", 0.0, kind="leg", track="t")
        dt.flow(root, leg)
        dt.end_span(root, 1.0)  # leg never closed
        events = dtrace_chrome(dt)["traceEvents"]
        assert not [e for e in events if e["ph"] in ("s", "f")]

    def test_device_tracer_merges_with_offset_pids(self):
        tracer = Tracer()
        lane = tracer.track("ch0", "chip0")
        tracer.complete(lane, "page read", 0.0, 1e-5, cat="flash")
        trace = dtrace_chrome(self._forest(), tracer=tracer)
        events = trace["traceEvents"]
        assert any(e.get("name") == "page read" for e in events)
        collector_pids = {
            e["pid"] for e in events
            if e["ph"] == "X" and e["name"] in ("q", "leg")
        }
        tracer_pids = {
            e["pid"] for e in events
            if e["ph"] == "X" and e["name"] == "page read"
        }
        assert max(collector_pids) < min(tracer_pids)


# ----------------------------------------------------------------------
# cancelled hedge losers (regression: open-ended spans must terminate)
# ----------------------------------------------------------------------
def _hedged_job(shard=0, primary_s=1.0, backup_s=0.1, hedge_delay=0.2):
    attempts = tuple(
        ReplicaAttempt(
            replica=r, alive=True,
            run=(lambda s=secs, sh=shard, rr=r: (s, (sh, rr))),
        )
        for r, secs in enumerate((primary_s, backup_s))
    )
    return ShardJob(shard=shard, attempts=attempts, hedge_delay=hedge_delay)


class TestCancelledHedgeLoser:
    def test_loser_span_ends_at_cancellation(self):
        tracer = Tracer()
        result = run_scatter([_hedged_job()], tracer=tracer)
        (outcome,) = result.outcomes
        assert outcome.hedged and outcome.hedge_won
        # the loser (primary, replica 0) planned to run 1.0 s but was
        # cancelled when the backup finished at 0.2 + 0.1 = 0.3 s
        loser = next(
            s for s in tracer.spans
            if s.name == "replica 0" and s.args.get("cancelled")
        )
        assert loser.emit == "BE"
        assert loser.start + loser.duration == pytest.approx(0.3)
        assert loser.duration < 1.0  # NOT its planned completion
        cancels = [i for i in tracer.instants if i.cat == "cluster.cancel"]
        assert len(cancels) == 1
        assert cancels[0].time == pytest.approx(0.3)
        assert tracer.open_spans == 0  # every begin() was ended

    def test_loser_emits_terminating_be_pair_in_chrome(self):
        tracer = Tracer()
        run_scatter([_hedged_job()], tracer=tracer)
        events = chrome_trace(tracer)["traceEvents"]
        begins = [e for e in events if e["ph"] == "B"
                  and e["name"] == "replica 0"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == 1 and len(ends) >= 1
        # B at launch (t=0), E at cancellation (0.3 s), balanced
        assert begins[0]["ts"] == pytest.approx(0.0)
        end = min(ends, key=lambda e: abs(e["ts"] - 0.3e6))
        assert end["ts"] == pytest.approx(0.3e6)
        assert any(e["ph"] == "i" and "cancel" in e["name"]
                   for e in events)

    def test_winner_span_closes_at_completion(self):
        tracer = Tracer()
        run_scatter([_hedged_job()], tracer=tracer)
        winner = next(
            s for s in tracer.spans
            if s.name == "replica 1" and not s.args.get("cancelled")
        )
        assert winner.start == pytest.approx(0.2)
        assert winner.duration == pytest.approx(0.1)

    def test_dtrace_records_loser_with_cancelled_status(self):
        dt = TraceCollector()
        ctx = dt.start_trace("q", 0.0, kind="q", track="t")
        shard_ctx = dt.start_span(ctx, "shard 0 leg", 0.0,
                                  kind="leg", track="t")
        run_scatter([_hedged_job()], dtrace=dt,
                    shard_ctxs={0: shard_ctx}, base_s=0.0)
        loser = next(s for s in dt.spans if s.status == "cancelled")
        assert loser.name == "attempt r0 (hedge loser)"
        assert loser.end_s == pytest.approx(0.3)


# ----------------------------------------------------------------------
# critical paths
# ----------------------------------------------------------------------
def _small_cluster(**kw):
    app = get_app("reid")
    kw.setdefault("n_shards", 3)
    kw.setdefault("n_replicas", 2)
    kw.setdefault("seed", 0)
    config = ClusterConfig(**kw)
    rng = np.random.default_rng(0)
    features = rng.normal(0, 1, (240, app.feature_floats)).astype(np.float32)
    cluster = DeepStoreCluster(config)
    db = cluster.write_db(features)
    model = cluster.load_graph(app.build_scn(seed=0))
    return cluster, db, model, app, rng


class TestClusterCriticalPath:
    def test_bit_exact_on_healthy_cluster(self):
        cluster, db, model, app, rng = _small_cluster()
        qfv = rng.normal(0, 1, app.feature_floats).astype(np.float32)
        result = cluster.query(qfv, 5, model, db)
        path = cluster_critical_path(result)
        assert path.exact
        assert path.component_sum() == result.seconds  # IEEE-754 ==
        kinds = [s.kind for s in path.segments]
        assert kinds[0] == "fanout" and kinds[-1] == "gather"

    def test_bit_exact_under_hedging_retries_and_death(self):
        cluster, db, model, app, rng = _small_cluster(
            hedge_fraction=0.3,
            straggler_spread=0.5,
            fail_shards=((1, 0),),
            retry_policy=RetryPolicy(),
        )
        for _ in range(8):
            qfv = rng.normal(0, 1, app.feature_floats).astype(np.float32)
            result = cluster.query(qfv, 5, model, db)
            path = cluster_critical_path(result)
            assert path.component_sum() == result.seconds

    def test_traced_query_matches_untraced(self):
        kw = dict(hedge_fraction=0.3, straggler_spread=0.5,
                  fail_shards=((1, 0),), retry_policy=RetryPolicy())
        cluster, db, model, app, rng = _small_cluster(**kw)
        twin, tdb, tmodel, _, trng = _small_cluster(**kw)
        dt = TraceCollector()
        for _ in range(4):
            qfv = rng.normal(0, 1, app.feature_floats).astype(np.float32)
            tq = trng.normal(0, 1, app.feature_floats).astype(np.float32)
            assert np.array_equal(qfv, tq)
            a = cluster.query(qfv, 5, model, db, dtrace=dt)
            b = twin.query(tq, 5, tmodel, tdb)
            assert a.to_dict() == b.to_dict()  # tracing is zero-cost
        assert dt.open_count == 0
        assert len(dt.trace_ids()) == 4

    def test_trace_exports_device_leaf_spans(self):
        cluster, db, model, app, rng = _small_cluster()
        dt = TraceCollector()
        qfv = rng.normal(0, 1, app.feature_floats).astype(np.float32)
        cluster.query(qfv, 5, model, db, dtrace=dt)
        kinds = {s.kind for s in dt.spans}
        assert "device.query" in kinds
        assert "cluster.scatter" in kinds
        assert "cluster.gather" in kinds


class TestOtherCriticalPaths:
    def test_device_path_bit_exact(self):
        from repro.core.event_query import EventQuerySimulator
        from repro.ssd import Ssd

        app = get_app("tir")
        meta = Ssd().ftl.create_database(app.feature_bytes, 40_000)
        result = EventQuerySimulator().run(app, meta)
        path = device_critical_path(result)
        assert path.component_sum() == result.total_seconds
        assert path.info["pages"] == result.pages

    def test_cache_hit_path(self):
        path = cache_hit_critical_path(0.1, 0.2)
        assert path.bit_exact
        assert [s.kind for s in path.segments] == ["lookup", "scan"]

    def test_recovery_path_bit_exact(self):
        from repro.recovery.durable import DurableStore, recover

        rng = np.random.default_rng(2)
        store = DurableStore(
            rng.standard_normal((32, 8)).astype(np.float32)
        )
        for _ in range(6):
            store.insert(rng.standard_normal((2, 8)).astype(np.float32))
        _, report = recover(store.crash_image())
        path = recovery_critical_path(report)
        assert path.component_sum() == report.seconds
        assert path.info["records_replayed"] == report.records_replayed


# ----------------------------------------------------------------------
# fleet aggregation
# ----------------------------------------------------------------------
class TestFleetAttribution:
    def _path(self, total, kind="scan"):
        from repro.obs.dtrace import CriticalPath

        return CriticalPath(
            total_seconds=total,
            groups=[[Segment("x", kind, total)]],
            exact=True,
        )

    def test_dominant_at_tail(self):
        fleet = FleetAttribution()
        for t in (0.1, 0.2, 0.3, 0.4):
            fleet.add(self._path(t, kind="scan"))
        fleet.add(self._path(9.0, kind="detect"))
        verdict = fleet.dominant_at(80.0)
        assert verdict["dominant"] == "detect"
        # nearest-rank p80 cut keeps the 0.4 s query in the tail too
        assert verdict["queries"] == 2
        assert verdict["share"] == pytest.approx(9.0 / 9.4)

    def test_exact_fraction(self):
        fleet = FleetAttribution()
        fleet.add(self._path(1.0))
        bad = self._path(1.0)
        bad.total_seconds = 2.0  # breaks the bit-exact sum
        fleet.add(bad)
        assert fleet.exact_fraction == pytest.approx(0.5)

    def test_empty_fleet(self):
        fleet = FleetAttribution()
        assert fleet.queries == 0
        verdict = fleet.dominant_at(99.0)
        assert verdict["queries"] == 0
