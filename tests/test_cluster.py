"""Tests for the cluster config, coordinator, analytic model, serving
integration, and the cluster scorecard."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterBatchCostModel,
    ClusterConfig,
    ClusterError,
    ClusterModel,
    CoordinatorCosts,
    DeepStoreCluster,
    build_cluster_scorecard,
    cluster_metrics_snapshot,
    normalize_fail_shards,
)
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, Tracer
from repro.serving import QueryServer, ServingConfig
from repro.serving.batcher import BatchCostModel, BatchPolicy
from repro.ssd.ftl import DatabaseMetadata
from repro.workloads import get_app

N = 240
K = 5


def _cluster(app, **kw):
    kw.setdefault("n_shards", 3)
    kw.setdefault("level", "channel")
    cluster = DeepStoreCluster(ClusterConfig(**kw))
    rng = np.random.default_rng(0)
    features = rng.normal(0, 1, (N, app.feature_floats)).astype(np.float32)
    db = cluster.write_db(features)
    model = cluster.load_graph(app.build_scn(seed=0))
    qfv = rng.normal(0, 1, app.feature_floats).astype(np.float32)
    return cluster, model, db, qfv


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ClusterError):
            ClusterConfig(n_shards=0)
        with pytest.raises(ClusterError):
            ClusterConfig(n_replicas=0)
        with pytest.raises(ClusterError):
            ClusterConfig(placement="round-robin")
        with pytest.raises(ClusterError):
            ClusterConfig(hedge_fraction=0.0)
        with pytest.raises(ClusterError):
            ClusterConfig(straggler_spread=-1.0)

    def test_normalize_fail_shards(self):
        assert normalize_fail_shards((3, (1, 1), 3)) == ((1, 1), (3, 0))
        with pytest.raises(ClusterError):
            normalize_fail_shards((-1,))

    def test_live_replicas_and_dead(self):
        cfg = ClusterConfig(n_shards=4, n_replicas=3, fail_shards=(0, (0, 2)))
        assert cfg.live_replicas(0) == (1,)
        assert cfg.live_replicas(1) == (0, 1, 2)
        assert cfg.is_dead(0, 0) and not cfg.is_dead(1, 0)

    def test_fault_plan_shard_failures_merge_in(self):
        plan = FaultPlan().fail_shard(2, replica=1)
        cfg = ClusterConfig(
            n_shards=4, n_replicas=2, fail_shards=(0,), fault_plan=plan
        )
        assert cfg.dead_replicas() == ((0, 0), (2, 1))

    def test_replica_slowdown_deterministic_and_bounded(self):
        cfg = ClusterConfig(n_shards=2, n_replicas=2, straggler_spread=0.5,
                            seed=9)
        a = cfg.replica_slowdown(1, 0)
        assert a == cfg.replica_slowdown(1, 0)
        assert 1.0 <= a <= 1.5
        assert ClusterConfig().replica_slowdown(0, 0) == 1.0

    def test_describe_mentions_everything(self):
        text = ClusterConfig(
            n_shards=2, n_replicas=2, fail_shards=(1,),
            hedge_fraction=1.5, straggler_spread=0.5,
        ).describe()
        for needle in ("2 shard", "2 replica", "dead", "hedge", "straggler"):
            assert needle in text

    def test_coordinator_costs(self):
        costs = CoordinatorCosts()
        assert costs.scatter_seconds(1) == 0.0  # first shard rides free
        assert costs.gather_seconds(0) == 0.0
        assert costs.scatter_seconds(3) == pytest.approx(
            2 * costs.scatter_per_shard_seconds
        )
        with pytest.raises(ValueError):
            costs.scatter_seconds(0)
        with pytest.raises(ValueError):
            costs.gather_seconds(-1)
        with pytest.raises(ValueError):
            CoordinatorCosts(scatter_per_shard_seconds=-1.0)


class TestDeepStoreCluster:
    def test_query_is_deterministic(self, tir_app):
        a_cluster, a_model, a_db, qfv = _cluster(tir_app)
        b_cluster, b_model, b_db, _ = _cluster(tir_app)
        a = a_cluster.query(qfv, k=K, model_id=a_model, db_id=a_db)
        b = b_cluster.query(qfv, k=K, model_id=b_model, db_id=b_db)
        assert a.to_dict() == b.to_dict()

    def test_read_spread_rotates_primaries(self, tir_app):
        cluster, model, db, qfv = _cluster(tir_app, n_shards=2, n_replicas=2)
        first = cluster.query(qfv, k=K, model_id=model, db_id=db)
        second = cluster.query(qfv, k=K, model_id=model, db_id=db)
        # primary = (seq + shard) % replicas: consecutive queries land on
        # different replicas of the same shard
        for s1, s2 in zip(first.shards, second.shards):
            assert s1.replica != s2.replica
        # ... without changing the answer
        assert np.array_equal(first.feature_ids, second.feature_ids)

    def test_all_replicas_dead_yields_partial_not_raise(self, tir_app):
        # regression: an all-dead shard used to blow up the whole query;
        # it must now resolve as a structured per-shard unavailable leg
        # with an explicitly flagged partial top-K
        cluster, model, db, qfv = _cluster(
            tir_app, n_shards=2, n_replicas=2, fail_shards=((1, 0), (1, 1))
        )
        result = cluster.query(qfv, k=K, model_id=model, db_id=db)
        assert result.partial
        assert result.unavailable_shards == 1
        dead_leg = next(s for s in result.shards if s.shard == 1)
        assert dead_leg.unavailable and dead_leg.replica == -1
        assert dead_leg.k_returned == 0
        # the dead shard still cost its detection ladders
        assert dead_leg.failovers == 2
        live_leg = next(s for s in result.shards if s.shard == 0)
        assert not live_leg.unavailable
        # answers cover the shard that answered, exactly
        healthy, hm, hdb, _ = _cluster(tir_app, n_shards=2, n_replicas=2)
        full = healthy.query(qfv, k=K, model_id=hm, db_id=hdb)
        live_owner_ids = set(
            int(i) for i in cluster.placement_of(db).owners[0]
        )
        assert all(int(i) in live_owner_ids for i in result.feature_ids)
        # the full top-K filtered to the live shard is a prefix of the
        # partial top-K (the partial answer is exact over what answered)
        expected_prefix = [
            int(i) for i in full.feature_ids if int(i) in live_owner_ids
        ]
        assert list(map(int, result.feature_ids))[: len(expected_prefix)] \
            == expected_prefix
        assert "unavailable_shards" in result.to_dict()

    def test_every_shard_dead_still_raises(self, tir_app):
        cluster, model, db, qfv = _cluster(
            tir_app, n_shards=2, n_replicas=1, fail_shards=(0, 1)
        )
        with pytest.raises(ClusterError):
            cluster.query(qfv, k=K, model_id=model, db_id=db)

    def test_unknown_ids_rejected(self, tir_app):
        cluster, model, db, qfv = _cluster(tir_app)
        with pytest.raises(ClusterError):
            cluster.query(qfv, k=K, model_id=model, db_id=db + 7)
        with pytest.raises(ClusterError):
            cluster.query(qfv, k=K, model_id=model + 7, db_id=db)
        with pytest.raises(ClusterError):
            cluster.query(qfv, k=0, model_id=model, db_id=db)
        with pytest.raises(ClusterError):
            cluster.write_db(np.zeros((0, 4), dtype=np.float32))
        with pytest.raises(ClusterError):
            cluster.placement_of(db + 7)

    def test_metrics_and_tracer_populated(self, tir_app):
        metrics = MetricsRegistry()
        tracer = Tracer()
        cluster = DeepStoreCluster(
            ClusterConfig(n_shards=2), tracer=tracer, metrics=metrics
        )
        rng = np.random.default_rng(0)
        features = rng.normal(0, 1, (N, tir_app.feature_floats)).astype(
            np.float32
        )
        db = cluster.write_db(features)
        model = cluster.load_graph(tir_app.build_scn(seed=0))
        cluster.query(
            rng.normal(0, 1, tir_app.feature_floats).astype(np.float32),
            k=K, model_id=model, db_id=db,
        )
        snap = cluster_metrics_snapshot(metrics)
        assert snap["cluster.scatters"] == 1
        assert snap["cluster.shard0.queries"] == 1
        assert snap["cluster.shard1.queries"] == 1
        assert "cluster.query_seconds" in snap
        cats = {s.cat for s in tracer.spans}
        assert "cluster.shard" in cats
        assert "cluster.coordinator" in cats

    def test_fail_accelerator_scoped_to_one_shard(self, tir_app):
        degraded_one, m1, d1, qfv = _cluster(tir_app, n_shards=2)
        degraded_one.fail_accelerator(0, shard=1)
        healthy, m0, d0, _ = _cluster(tir_app, n_shards=2)
        a = healthy.query(qfv, k=K, model_id=m0, db_id=d0)
        b = degraded_one.query(qfv, k=K, model_id=m1, db_id=d1)
        assert np.array_equal(a.feature_ids, b.feature_ids)
        # only shard 1's leg pays the degraded-mode tax
        assert b.shards[0].seconds == a.shards[0].seconds
        assert b.shards[1].seconds > a.shards[1].seconds

    def test_to_dict_is_json_ready(self, tir_app):
        import json

        cluster, model, db, qfv = _cluster(tir_app)
        result = cluster.query(qfv, k=K, model_id=model, db_id=db)
        blob = json.dumps(result.to_dict(), sort_keys=True)
        round_tripped = json.loads(blob)
        assert round_tripped["n_contacted"] == 3
        assert len(round_tripped["feature_ids"]) == K
        assert len(round_tripped["shards"]) == 3


class TestClusterModel:
    def test_sharding_speeds_up_scan(self, tir_app):
        single = ClusterModel(ClusterConfig(n_shards=1)).estimate(
            tir_app, 400_000
        )
        sharded = ClusterModel(ClusterConfig(n_shards=8)).estimate(
            tir_app, 400_000
        )
        assert sharded.seconds < single.seconds
        assert sharded.speedup_vs_single > 4.0
        assert single.speedup_vs_single == pytest.approx(1.0)
        assert 0.0 < sharded.utilization <= 1.0

    def test_failover_costs_detection_not_correctness(self, tir_app):
        healthy = ClusterModel(
            ClusterConfig(n_shards=4, n_replicas=2)
        ).estimate(tir_app, 100_000)
        wounded = ClusterModel(
            ClusterConfig(n_shards=4, n_replicas=2, fail_shards=(0,))
        ).estimate(tir_app, 100_000)
        assert wounded.failovers == 1
        assert wounded.seconds > healthy.seconds

    def test_hedging_caps_stragglers(self, tir_app):
        straggled = ClusterModel(
            ClusterConfig(n_shards=4, n_replicas=2, seed=16,
                          straggler_spread=3.0)
        ).estimate(tir_app, 100_000)
        hedged = ClusterModel(
            ClusterConfig(n_shards=4, n_replicas=2, seed=16,
                          straggler_spread=3.0, hedge_fraction=1.25)
        ).estimate(tir_app, 100_000)
        assert hedged.hedges_launched > 0
        assert hedged.makespan_seconds <= straggled.makespan_seconds

    def test_validation(self, tir_app):
        model = ClusterModel()
        with pytest.raises(ClusterError):
            model.estimate(tir_app, 0)
        with pytest.raises(ClusterError):
            model.estimate(tir_app, 100, k=0)
        with pytest.raises(ClusterError):
            model.shard_seconds(tir_app, 0, 10)


class TestClusterServing:
    def test_serving_config_clustered_property(self):
        assert not ServingConfig().clustered
        assert ServingConfig(n_shards=4).clustered
        assert ServingConfig(n_replicas=2).clustered
        assert ServingConfig(fail_shards=(0,)).clustered
        with pytest.raises(ValueError):
            ServingConfig(n_shards=0)
        with pytest.raises(ValueError):
            ServingConfig(n_replicas=0)

    def test_one_shard_table_equals_device_table(self, tir_app):
        meta = DatabaseMetadata(
            db_id=0, feature_bytes=tir_app.feature_bytes,
            feature_count=100_000,
        )
        device = BatchCostModel(tir_app, meta)
        clustered = ClusterBatchCostModel(
            tir_app, meta, cluster=ClusterConfig(n_shards=1)
        )
        for n in (1, 4, clustered.max_batch):
            assert clustered.service_seconds(n) == device.service_seconds(n)
        assert clustered.best_batch() == device.best_batch()
        assert clustered.saturation_qps() == device.saturation_qps()

    def test_shard_barrier_prices_slowest_shard(self, tir_app):
        meta = DatabaseMetadata(
            db_id=0, feature_bytes=tir_app.feature_bytes,
            feature_count=100_000,
        )
        flat = ClusterBatchCostModel(
            tir_app, meta, cluster=ClusterConfig(n_shards=4)
        )
        straggly = ClusterBatchCostModel(
            tir_app, meta,
            cluster=ClusterConfig(n_shards=4, n_replicas=2,
                                  straggler_spread=2.0, seed=1),
        )
        assert straggly.service_seconds(4) > flat.service_seconds(4)
        assert straggly.saturation_qps() < flat.saturation_qps()

    def test_batch_size_validated(self, tir_app):
        meta = DatabaseMetadata(
            db_id=0, feature_bytes=tir_app.feature_bytes,
            feature_count=10_000,
        )
        table = ClusterBatchCostModel(
            tir_app, meta, cluster=ClusterConfig(n_shards=2),
            policy=BatchPolicy(max_batch=8),
        )
        with pytest.raises(ValueError):
            table.service_seconds(0)
        with pytest.raises(ValueError):
            table.service_seconds(9)
        with pytest.raises(ValueError):
            table.saturation_qps(0)

    def test_query_server_runs_over_sharded_backend(self):
        from repro.serving import poisson_arrivals

        sharded = ServingConfig(app="tir", features=50_000, n_shards=4)
        server = QueryServer(sharded)
        result = server.run(
            poisson_arrivals(40, server.saturation_qps() * 0.5,
                             seed=11, compat="tir")
        )
        assert result.conserved
        assert result.completed == 40
        # a 4-shard backend outruns the single-SSD one on the same data
        single = QueryServer(ServingConfig(app="tir", features=50_000))
        assert server.saturation_qps() > single.saturation_qps()


class TestClusterScorecard:
    @pytest.fixture(scope="class")
    def scorecard(self):
        return build_cluster_scorecard(n_features=200_000)

    def test_deterministic(self, scorecard):
        assert scorecard == build_cluster_scorecard(n_features=200_000)

    def test_scaling_block_shape(self, scorecard):
        shards = [row["shards"] for row in scorecard["scaling"]]
        assert shards == [1, 2, 4, 8]
        speedups = [row["speedup_vs_single"] for row in scorecard["scaling"]]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups == sorted(speedups)  # monotone scaling
        assert scorecard["scaling"][0]["merge_comparisons"] == 0

    def test_failover_block(self, scorecard):
        block = scorecard["failover"]
        assert block["dead_replicas"] == 2
        assert block["failovers"] >= 1
        assert block["query_ms"] > block["healthy_query_ms"]
        assert block["slowdown"] > 1.0

    def test_hedged_block(self, scorecard):
        block = scorecard["hedged"]
        assert block["hedges_launched"] > 0
        assert block["hedge_wins"] >= 1
        assert block["metrics_hedges_launched"] == block["hedges_launched"]
        assert 0.0 < block["makespan_saved_fraction"] < 1.0
        assert block["hedged_query_ms"] < block["straggled_query_ms"]
