"""Mixed read/write serving: arrivals, per-class admission, write cost."""

import numpy as np
import pytest

from repro.serving import (
    INGEST_COMPAT,
    QueryServer,
    ServingConfig,
    mixed_arrivals,
    poisson_arrivals,
)
from repro.workloads.queries import QueryStream


def _config(**kw):
    defaults = dict(app="tir", features=50_000, queue_bound=64, max_batch=4)
    defaults.update(kw)
    return ServingConfig(**defaults)


class TestMixedArrivals:
    def test_split_is_deterministic_and_tagged(self):
        a = mixed_arrivals(200, 500.0, write_fraction=0.3, seed=5)
        b = mixed_arrivals(200, 500.0, write_fraction=0.3, seed=5)
        assert [e.kind for e in a] == [e.kind for e in b]
        writes = [e for e in a if e.kind == "ingest"]
        assert 0 < len(writes) < len(a)
        for w in writes:
            assert w.compat == INGEST_COMPAT
            assert w.qfv is None
            assert w.priority == 1
        for q in a:
            if q.kind == "query":
                assert q.compat != INGEST_COMPAT

    def test_write_fraction_extremes(self):
        pure_reads = mixed_arrivals(50, 100.0, write_fraction=0.0, seed=0)
        pure_writes = mixed_arrivals(50, 100.0, write_fraction=1.0, seed=0)
        assert all(e.kind == "query" for e in pure_reads)
        assert all(e.kind == "ingest" for e in pure_writes)
        with pytest.raises(ValueError):
            mixed_arrivals(50, 100.0, write_fraction=1.5)

    def test_schedule_matches_pure_poisson_timing(self):
        mixed = mixed_arrivals(100, 250.0, write_fraction=0.5, seed=3)
        pure = poisson_arrivals(100, 250.0, seed=3)
        assert [e.time_s for e in mixed] == [e.time_s for e in pure]


class TestMixedServing:
    def test_writes_are_served_and_accounted(self):
        server = QueryServer(_config())
        arrivals = mixed_arrivals(
            120, server.saturation_qps() * 0.5, write_fraction=0.25, seed=9
        )
        result = server.run(arrivals)
        n_writes = sum(1 for e in arrivals if e.kind == "ingest")
        assert result.ingest_arrived == n_writes
        assert result.ingest_completed == n_writes
        assert result.ingest_mean_latency_s > 0
        assert result.conserved
        # read accounting never absorbs the write class
        assert result.completed == result.ingest_completed + (
            len(arrivals) - n_writes
        )

    def test_zero_write_fraction_matches_pure_read_run(self):
        server = QueryServer(_config())
        qps = server.saturation_qps() * 0.5
        pure = server.run(poisson_arrivals(80, qps, seed=4))
        mixed = QueryServer(_config()).run(
            mixed_arrivals(80, qps, write_fraction=0.0, seed=4)
        )
        assert mixed.as_dict() == pure.as_dict()
        assert mixed.ingest_arrived == 0

    def test_queries_keep_priority_over_writes(self):
        # saturate: class-1 writes must shed before class-0 queries
        server = QueryServer(_config(queue_bound=8, policy="drop-oldest"))
        arrivals = mixed_arrivals(
            150, server.saturation_qps() * 6, write_fraction=0.5, seed=2
        )
        result = server.run(arrivals)
        assert result.shed > 0
        n_writes = result.ingest_arrived
        n_reads = result.arrived - n_writes
        read_completed = result.completed - result.ingest_completed
        assert read_completed / n_reads > result.ingest_completed / n_writes

    def test_write_service_time_scales_with_rows_per_op(self):
        small = QueryServer(_config(ingest_rows_per_op=8))
        large = QueryServer(_config(ingest_rows_per_op=512))
        assert large.ingest_op_seconds > small.ingest_op_seconds
        with pytest.raises(ValueError):
            _config(ingest_rows_per_op=0)

    def test_writes_never_batch_with_queries(self):
        stream = QueryStream(dim=512, n_intents=16, seed=0)
        server = QueryServer(_config(cache_entries=64))
        arrivals = mixed_arrivals(
            100,
            server.saturation_qps() * 2,
            write_fraction=0.4,
            seed=7,
            stream=stream,
            compat="tir",
        )
        result = server.run(arrivals)
        assert result.conserved
        assert result.ingest_completed > 0
        # cache hits can only come from the read class
        assert result.cache_hits <= result.arrived - result.ingest_arrived
