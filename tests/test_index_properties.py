"""Property suite for the IVF index layer.

Hypothesis pins the four invariants the index rests on:

* **membership** — every id a routed query returns came from a probed
  list (or the unindexed delta when mutations are live);
* **monotone recall** — widening ``nprobe`` never loses a result: the
  number of returned scores clearing the exact k-th best score is
  non-decreasing in ``nprobe``, and the full probe recovers all of them
  (score-based, so it holds under any id tie-break);
* **canonical assignment** — k-means assigns each row to the argmin
  centroid under the canonical ``(-score, id)`` tie-break, with exact
  ties always resolving to the lowest list id;
* **lifecycle safety** — arbitrary build / insert / delete / compact
  interleavings never surface a tombstoned id from a routed query.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.index import CentroidRouter, IndexedDevice, assign_canonical
from repro.index.kmeans import centroid_scores, train_kmeans
from repro.workloads import get_app

APP = get_app("textqa")
DIM = APP.feature_floats
GRAPH = APP.build_scn(seed=1)
N = 96
N_LISTS = 8
NPROBES = (1, 2, 4, 8)


def _build_shared():
    """One read-only indexed device shared by the query properties."""
    rng = np.random.default_rng(11)
    device = IndexedDevice()
    db = device.write_db(rng.normal(0, 1, (N, DIM)).astype(np.float32))
    model = device.load_graph(GRAPH)
    index = device.build_index(db, model, N_LISTS, iterations=4, seed=3)
    return device, db, model, index


DEVICE, DB, MODEL, INDEX = _build_shared()
META = DEVICE.ssd.ftl.get(DB)


def _route(probe, nprobe):
    """Recompute the routing decision exactly as the query path does."""
    router = CentroidRouter(
        INDEX.centroids, DEVICE._system("ssd"), GRAPH,
        feature_bytes=META.feature_bytes, page_bytes=META.page_bytes,
    )
    qfv = np.asarray(probe, dtype=np.float32).reshape(-1)
    return router.route(qfv, nprobe, DEVICE._score_features)


# ----------------------------------------------------------------------
# membership: returned ids ⊆ probed lists
# ----------------------------------------------------------------------
@given(
    qseed=st.integers(min_value=0, max_value=2**16),
    nprobe=st.integers(min_value=1, max_value=N_LISTS),
    k=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=120, deadline=None)
def test_returned_ids_come_from_probed_lists(qseed, nprobe, k):
    probe = np.random.default_rng(qseed).normal(0, 1, DIM).astype(np.float32)
    result = DEVICE.get_results(
        DEVICE.query(probe, k, MODEL, DB, nprobe=nprobe)
    )
    decision = _route(probe, nprobe)
    allowed = set(INDEX.lists.probed_ids(decision.list_ids).tolist())
    assert set(result.feature_ids.tolist()) <= allowed
    assert result.nprobe == decision.nprobe
    assert result.probed_rows == len(allowed)
    # a probed id belongs to exactly one list: list sizes partition N
    assert sum(INDEX.lists.sizes) == N


# ----------------------------------------------------------------------
# monotone recall in nprobe (score-based)
# ----------------------------------------------------------------------
@given(
    qseed=st.integers(min_value=0, max_value=2**16),
    k=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=120, deadline=None)
def test_recall_is_monotone_in_nprobe(qseed, k):
    probe = np.random.default_rng(qseed).normal(0, 1, DIM).astype(np.float32)
    DEVICE.index_mode = "off"
    try:
        exact = DEVICE.get_results(DEVICE.query(probe, k, MODEL, DB))
    finally:
        DEVICE.index_mode = "ivf"
    kth = exact.scores[-1]
    counts = []
    for nprobe in NPROBES:
        got = DEVICE.get_results(
            DEVICE.query(probe, k, MODEL, DB, nprobe=nprobe)
        )
        counts.append(int(np.count_nonzero(got.scores >= kth)))
    assert counts == sorted(counts)
    # the full probe is the exhaustive scan: it recovers every result
    assert counts[-1] == k


# ----------------------------------------------------------------------
# canonical k-means assignment
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=8, max_value=40),
    dim=st.integers(min_value=2, max_value=8),
    n_lists=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=80, deadline=None)
def test_assignment_is_canonical_argmin(seed, n, dim, n_lists):
    rng = np.random.default_rng(seed)
    data = rng.normal(0, 1, (n, dim)).astype(np.float32)
    centroids, assignments = train_kmeans(data, n_lists, iterations=3,
                                          seed=seed)
    # independent selection: maximize score, break ties on lowest id
    scores = centroid_scores(data, centroids)
    for i in range(n):
        best = max(range(n_lists), key=lambda j: (scores[i, j], -j))
        assert assignments[i] == best
    assert np.array_equal(assignments, assign_canonical(data, centroids))


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=1, max_value=16),
    m=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_exact_ties_resolve_to_lowest_list(seed, n, m):
    rng = np.random.default_rng(seed)
    data = rng.normal(0, 1, (n, 4)).astype(np.float32)
    # m bit-identical centroids: every score ties, id breaks it
    centroid = rng.normal(0, 1, (1, 4)).astype(np.float32)
    centroids = np.repeat(centroid, m, axis=0)
    assert assign_canonical(data, centroids).tolist() == [0] * n


# ----------------------------------------------------------------------
# lifecycle interleavings never surface tombstones
# ----------------------------------------------------------------------
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(st.just("compact"), st.just(0)),
        st.tuples(st.just("query"), st.integers(min_value=1, max_value=4)),
    ),
    min_size=1,
    max_size=12,
)


@given(program=ops, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_interleavings_never_surface_tombstones(program, seed):
    rng = np.random.default_rng(seed)
    device = IndexedDevice()
    db = device.write_db(rng.normal(0, 1, (24, DIM)).astype(np.float32))
    model = device.load_graph(GRAPH)
    device.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
    device.build_index(db, model, 4, iterations=2, seed=seed)
    alive = list(range(24))
    dead = set()

    def check(nprobe):
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        result = device.get_results(
            device.query(probe, 6, model, db, nprobe=nprobe)
        )
        returned = set(result.feature_ids.tolist())
        assert not (returned & dead)
        assert returned <= set(alive)

    for op, arg in program:
        if op == "insert":
            new = device.insert_db(
                db, rng.normal(0, 1, (arg, DIM)).astype(np.float32)
            )
            alive.extend(int(i) for i in new)
        elif op == "delete" and alive:
            victim = alive[arg % len(alive)]
            device.delete_db_rows(db, [victim])
            alive.remove(victim)
            dead.add(victim)
        elif op == "compact":
            device.compact_db(db)
            # compaction re-indexes: the delta is folded in
            assert device.delta_rows(db) == 0
        elif op == "query":
            check(arg)
    check(4)  # full probe + delta: still only live ids
