"""Tests for the pair trainer and serialization."""

import numpy as np
import pytest

from repro.nn import (
    GraphBuilder,
    PairTrainer,
    TrainConfig,
    graph_from_bytes,
    graph_to_bytes,
)
from repro.nn.onnx_lite import SerializationError, model_size_bytes
from repro.nn.training import make_pair_dataset


def tiny_scn(seed=0):
    b = GraphBuilder("tiny")
    q = b.input((16,), "qfv")
    d = b.input((16,), "dfv")
    h = b.elementwise(q, d, "absdiff")
    h = b.dense(h, 8, activation="relu")
    h = b.dense(h, 1)
    out = b.score_head(h, "sigmoid")
    return b.build(out, seed=seed)


class TestPairDataset:
    def test_shapes_and_balance(self, rng):
        q, f, y = make_pair_dataset(rng, 16, 200)
        assert q.shape == f.shape == (200, 16)
        assert y.shape == (200,)
        assert 90 <= y.sum() <= 110

    def test_positives_are_closer(self, rng):
        q, f, y = make_pair_dataset(rng, 32, 400)
        d = np.linalg.norm(q - f, axis=1)
        assert d[y > 0.5].mean() < d[y < 0.5].mean()


class TestPairTrainer:
    def test_converges_on_separable_pairs(self, rng):
        g = tiny_scn()
        q, f, y = make_pair_dataset(rng, 16, 1200)
        trainer = PairTrainer(g, TrainConfig(epochs=10, seed=0))
        report = trainer.fit(q, f, y)
        assert report.final_accuracy > 0.9
        assert report.losses[-1] < report.losses[0]

    def test_evaluate_on_holdout(self, rng):
        g = tiny_scn()
        q, f, y = make_pair_dataset(rng, 16, 1200)
        trainer = PairTrainer(g, TrainConfig(epochs=10, seed=0))
        trainer.fit(q[:1000], f[:1000], y[:1000])
        assert trainer.evaluate(q[1000:], f[1000:], y[1000:]) > 0.85

    def test_score_shape(self, rng):
        g = tiny_scn()
        trainer = PairTrainer(g)
        q = rng.normal(0, 1, (7, 16)).astype(np.float32)
        assert trainer.score(q, q).shape == (7,)

    def test_misaligned_inputs_rejected(self, rng):
        trainer = PairTrainer(tiny_scn())
        q, f, y = make_pair_dataset(rng, 16, 100)
        with pytest.raises(ValueError):
            trainer.fit(q, f[:50], y)

    def test_requires_two_inputs(self):
        b = GraphBuilder()
        x = b.input((4,))
        h = b.dense(x, 1)
        out = b.score_head(h, "sigmoid")
        g = b.build(out)
        with pytest.raises(ValueError):
            PairTrainer(g)

    def test_training_is_reproducible(self, rng):
        q, f, y = make_pair_dataset(rng, 16, 600)
        r1 = PairTrainer(tiny_scn(1), TrainConfig(epochs=3, seed=5)).fit(q, f, y)
        r2 = PairTrainer(tiny_scn(1), TrainConfig(epochs=3, seed=5)).fit(q, f, y)
        assert r1.losses == r2.losses


class TestSerialization:
    def test_roundtrip_preserves_behaviour(self, rng):
        g = tiny_scn(seed=2)
        g2 = graph_from_bytes(graph_to_bytes(g))
        q = rng.normal(0, 1, (5, 16)).astype(np.float32)
        d = rng.normal(0, 1, (5, 16)).astype(np.float32)
        np.testing.assert_allclose(
            g.forward({0: q, 1: d}), g2.forward({0: q, 1: d}), rtol=1e-6
        )

    def test_roundtrip_preserves_accounting(self):
        g = tiny_scn()
        g2 = graph_from_bytes(graph_to_bytes(g))
        assert g2.total_flops() == g.total_flops()
        assert g2.parameter_count() == g.parameter_count()
        assert g2.count_layers() == g.count_layers()
        assert g2.name == g.name

    def test_blob_size_dominated_by_weights(self):
        g = tiny_scn()
        assert model_size_bytes(g) >= g.weight_bytes()
        assert model_size_bytes(g) < g.weight_bytes() + 8192

    def test_bad_magic_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_bytes(b"NOTAMODELxxxxxxxxxxxx")

    def test_truncated_blob_rejected(self):
        blob = graph_to_bytes(tiny_scn())
        with pytest.raises(SerializationError):
            graph_from_bytes(blob[: len(blob) // 2])

    def test_truncated_header_rejected(self):
        blob = graph_to_bytes(tiny_scn())
        with pytest.raises(SerializationError):
            graph_from_bytes(blob[:16])

    def test_trained_weights_survive_roundtrip(self, rng):
        g = tiny_scn()
        q, f, y = make_pair_dataset(rng, 16, 400)
        PairTrainer(g, TrainConfig(epochs=3)).fit(q, f, y)
        g2 = graph_from_bytes(graph_to_bytes(g))
        for node_id, params in g.params.items():
            for key, tensor in params.items():
                np.testing.assert_array_equal(tensor, g2.params[node_id][key])
