"""Tests for the deployment capacity planner."""

import pytest

from repro.core.capacity import (
    PlanningError,
    _miss_rate_estimate,
    best_plan,
    plan_deployment,
)


class TestMissEstimate:
    def test_bounds(self):
        assert _miss_rate_estimate(0, 1000, 0.7) == 1.0
        assert _miss_rate_estimate(1000, 1000, 0.7) == 0.0

    def test_monotone_in_entries(self):
        rates = [_miss_rate_estimate(e, 5000, 0.7) for e in (100, 500, 2000)]
        assert rates[0] > rates[1] > rates[2]

    def test_skew_lowers_miss(self):
        flat = _miss_rate_estimate(500, 5000, 0.1)
        skewed = _miss_rate_estimate(500, 5000, 1.0)
        assert skewed < flat


class TestPlanning:
    def test_easy_target_needs_one_ssd(self):
        plan = best_plan("tir", corpus_features=1_000_000, target_qps=0.5)
        assert plan.feasible
        assert plan.num_ssds == 1
        assert plan.level == "channel"  # measured-best level

    def test_cache_unlocks_higher_qps(self):
        plans = plan_deployment("tir", corpus_features=50_000_000,
                                target_qps=20.0)
        feasible = [p for p in plans if p.feasible]
        assert feasible
        assert feasible[0].cache_entries > 0  # raw scans cannot hit 20 qps

    def test_huge_corpus_needs_more_devices(self):
        small = best_plan("tir", corpus_features=10_000_000, target_qps=0.2)
        # a 4 TB corpus cannot fit one 1 TiB SSD
        huge = best_plan("tir", corpus_features=2_000_000_000, target_qps=0.2)
        assert huge.num_ssds > small.num_ssds

    def test_infeasible_flagged_not_hidden(self):
        plans = plan_deployment(
            "reid", corpus_features=10_000_000, target_qps=1e6,
            max_ssds=2, cache_options=(0,),
        )
        assert plans
        assert not any(p.feasible for p in plans)
        assert plans[0].utilization > 1.0

    def test_capacity_overflow_raises(self):
        with pytest.raises(PlanningError):
            plan_deployment(
                "reid", corpus_features=500_000_000, target_qps=1.0,
                max_ssds=2,
            )

    def test_describe_readable(self):
        plan = best_plan("mir", corpus_features=1_000_000, target_qps=0.5)
        text = plan.describe()
        assert "mir" in text and "qps" in text
        assert text.startswith("[OK]") or text.startswith("[INSUFFICIENT]")

    def test_validation(self):
        with pytest.raises(PlanningError):
            plan_deployment("tir", corpus_features=0, target_qps=1.0)
        with pytest.raises(PlanningError):
            plan_deployment("tir", corpus_features=10, target_qps=0.0)

    def test_reid_never_plans_chip_level(self):
        plan = best_plan("reid", corpus_features=1_000_000, target_qps=0.05)
        assert plan.level in ("ssd", "channel")
