"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import BoundedQueue, Resource, Simulator
from repro.sim.engine import SimulationError


class TestSimulator:
    def test_runs_events_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abcd":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == list("abcd")

    def test_schedule_after_uses_current_time(self):
        sim = Simulator()
        times = []
        def chain():
            times.append(sim.now)
            if len(times) < 3:
                sim.schedule_after(0.5, chain)
        sim.schedule(1.0, chain)
        sim.run()
        assert times == [1.0, 1.5, 2.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0

    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_run_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [2]

    def test_stop_when_predicate(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: count.append(i))
        sim.run(stop_when=lambda: len(count) >= 4)
        assert len(count) == 4

    def test_max_events(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: count.append(i))
        sim.run(max_events=3)
        assert len(count) == 3

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.peek() == 2.0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_heap_compaction_purges_cancelled_majority(self):
        # timeout-heavy workloads cancel most of what they schedule; the
        # heap must shed that garbage instead of growing without bound
        sim = Simulator()
        keep = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
        doomed = [sim.schedule(2000.0 + i, lambda: None) for i in range(100)]
        for event in doomed:
            event.cancel()
        assert sim.compactions >= 1
        # invariant: cancelled garbage never exceeds half the heap
        assert sim.cancelled_pending * 2 <= len(sim._heap)
        assert sim.pending_events == len(keep)
        assert len(sim._heap) < len(keep) + len(doomed)
        # the surviving events still fire, in order
        fired = []
        for event in keep:
            event.callback = lambda t=event.time: fired.append(t)
        sim.run()
        assert fired == sorted(e.time for e in keep)

    def test_small_heaps_skip_compaction(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        for event in events:
            event.cancel()
        assert sim.compactions == 0  # below COMPACT_MIN_HEAP: lazy pops win
        sim.run()
        assert sim.events_processed == 0

    def test_cancel_after_fire_does_not_skew_accounting(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        event.cancel()  # already executed; must not count as pending
        assert sim.cancelled_pending == 0
        assert sim.pending_events == 1

    def test_peek_drains_cancelled_prefix_accounting(self):
        # peek lazily pops cancelled heap heads; the cancelled-pending
        # counter must track every one of those pops
        sim = Simulator()
        doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(3)]
        live = sim.schedule(10.0, lambda: None)
        for event in doomed:
            event.cancel()
        assert sim.cancelled_pending == 3
        assert sim.peek() == 10.0
        assert sim.cancelled_pending == 0
        assert sim.pending_events == 1
        assert live.cancelled is False

    def test_step_skips_cancelled_and_decrements_counter(self):
        sim = Simulator()
        doomed = sim.schedule(1.0, lambda: None)
        fired = []
        sim.schedule(2.0, lambda: fired.append(sim.now))
        doomed.cancel()
        assert sim.cancelled_pending == 1
        assert sim.step() is True  # pops the corpse, runs the live event
        assert fired == [2.0]
        assert sim.cancelled_pending == 0
        assert sim.events_processed == 1

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.cancelled_pending == 1
        assert sim.pending_events == 0

    def test_compaction_resets_counter_then_peek_stays_consistent(self):
        # after a compaction rebuilt the heap, lazy peek/step pops must
        # not drive the cancelled counter negative
        sim = Simulator()
        keep = [sim.schedule(100.0 + i, lambda: None) for i in range(5)]
        doomed = [sim.schedule(200.0 + i, lambda: None) for i in range(20)]
        for event in doomed:
            event.cancel()
        assert sim.compactions >= 1
        assert sim.cancelled_pending == 0
        assert sim.peek() == 100.0
        assert sim.cancelled_pending == 0
        sim.run()
        assert sim.events_processed == len(keep)
        assert sim.cancelled_pending == 0

    def test_cancel_between_steps_keeps_invariant(self):
        # interleave step() with cancellations: pending + cancelled must
        # always equal the heap size, and live events all still fire
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(9)]
        cancelled = 0
        for i, event in enumerate(events):
            if i % 3 == 0:
                sim.step()
            if i % 2 == 1 and not event.cancelled and event.time > sim.now:
                event.cancel()
                cancelled += 1
            assert sim.pending_events + sim.cancelled_pending == len(sim._heap)
        sim.run()
        assert sim.events_processed == len(events) - cancelled
        assert sim.cancelled_pending == 0

    def test_cancel_releases_callback_closure(self):
        # hedged requests cancel completion events whose callbacks close
        # over whole result payloads; the payload must become garbage at
        # cancel time even while the Event handle stays referenced
        import gc
        import weakref

        class Payload:
            pass

        sim = Simulator()
        payload = Payload()
        ref = weakref.ref(payload)
        event = sim.schedule(1.0, lambda p=payload: p)
        del payload
        gc.collect()
        assert ref() is not None  # pinned by the scheduled callback
        event.cancel()
        gc.collect()
        assert ref() is None  # released at cancel time, not at pop time
        sim.run()  # the corpse pops harmlessly

    def test_fired_event_releases_callback_closure(self):
        # a retained Event handle (hedging keeps them around to cancel
        # losers) must not pin the winner's payload after it fired
        import gc
        import weakref

        class Payload:
            pass

        sim = Simulator()
        payload = Payload()
        ref = weakref.ref(payload)
        event = sim.schedule(1.0, lambda p=payload: None)
        del payload
        sim.run()
        gc.collect()
        assert ref() is None
        assert event.time == 1.0  # handle still usable for bookkeeping

    def test_double_cancel_releases_once_and_stays_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled
        assert event.sim is None
        sim.run()
        assert sim.events_processed == 0

    def test_cancel_after_fire_is_harmless_noop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]
        event.cancel()  # losers can be cancelled after the race resolved
        event.cancel()
        assert sim.cancelled_pending == 0
        assert sim.events_processed == 1

    def test_released_event_cannot_rerun(self):
        from repro.sim.engine import _released_callback

        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert event.callback is _released_callback
        with pytest.raises(SimulationError):
            event.callback()

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_events_always_fire_in_nondecreasing_time(self, times):
        sim = Simulator()
        observed = []
        for t in times:
            sim.schedule(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)


class TestResource:
    def test_exclusive_fifo_service(self):
        sim = Simulator()
        res = Resource(sim, "bus")
        order = []
        res.acquire(2.0, lambda: order.append(("a", sim.now)))
        res.acquire(1.0, lambda: order.append(("b", sim.now)))
        res.acquire(1.0, lambda: order.append(("c", sim.now)))
        sim.run()
        assert order == [("a", 2.0), ("b", 3.0), ("c", 4.0)]

    def test_busy_seconds_accumulate(self):
        sim = Simulator()
        res = Resource(sim, "bus")
        res.acquire(2.0, lambda: None)
        res.acquire(3.0, lambda: None)
        sim.run()
        assert res.busy_seconds == pytest.approx(5.0)
        assert res.grants == 2

    def test_utilization(self):
        sim = Simulator()
        res = Resource(sim, "bus")
        res.acquire(1.0, lambda: None)
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert res.utilization() == pytest.approx(0.25)

    def test_negative_duration_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim).acquire(-1.0, lambda: None)

    def test_completion_can_reacquire(self):
        sim = Simulator()
        res = Resource(sim, "bus")
        done = []
        def again():
            done.append(sim.now)
            if len(done) < 3:
                res.acquire(1.0, again)
        res.acquire(1.0, again)
        sim.run()
        assert done == [1.0, 2.0, 3.0]

    def test_peak_queue_depth(self):
        sim = Simulator()
        res = Resource(sim)
        for _ in range(5):
            res.acquire(1.0, lambda: None)
        assert res.peak_queue_depth == 4


class TestBoundedQueue:
    def test_put_get_fifo(self):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=4)
        got = []
        q.put("a", lambda: None)
        q.put("b", lambda: None)
        q.get(got.append)
        q.get(got.append)
        sim.run()
        assert got == ["a", "b"]

    def test_full_queue_blocks_producer(self):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=1)
        accepted = []
        q.put("a", lambda: accepted.append("a"))
        q.put("b", lambda: accepted.append("b"))
        sim.run()
        assert accepted == ["a"]
        assert q.producer_stalls == 1
        got = []
        q.get(got.append)
        sim.run()
        assert accepted == ["a", "b"]
        assert got == ["a"]

    def test_empty_queue_blocks_consumer(self):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=2)
        got = []
        q.get(got.append)
        sim.run()
        assert got == []
        assert q.consumer_stalls == 1
        q.put("x", lambda: None)
        sim.run()
        assert got == ["x"]

    def test_direct_handoff_to_waiting_consumer(self):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=1)
        got = []
        q.get(got.append)
        q.put("x", lambda: None)
        sim.run()
        assert got == ["x"]
        assert len(q) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(Simulator(), capacity=0)

    def test_counters(self):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=8)
        for i in range(5):
            q.put(i, lambda: None)
        got = []
        for _ in range(5):
            q.get(got.append)
        sim.run()
        assert q.total_puts == 5
        assert q.total_gets == 5
        assert got == list(range(5))

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=40))
    def test_all_items_delivered_in_order(self, capacity, n_items):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=capacity)
        got = []
        for i in range(n_items):
            q.put(i, lambda: None)
        for _ in range(n_items):
            q.get(got.append)
        sim.run()
        assert got == list(range(n_items))
