"""Staleness, delta-aware search, and preemptible background compaction."""

import numpy as np
import pytest

from repro.ingest import (
    CompactionJob,
    CompactionPolicy,
    DeltaAwareSearch,
    IngestError,
    LifecycleConfig,
    LifecycleDevice,
    run_lifecycle,
)
from repro.sim import Simulator
from repro.workloads import get_app

APP = get_app("textqa")
DIM = APP.feature_floats


@pytest.fixture
def rig(rng):
    """A lifecycle device with one ingest-enabled database + search."""
    device = LifecycleDevice()
    db = device.write_db(rng.normal(0, 1, (256, DIM)).astype(np.float32))
    model = device.load_graph(APP.build_scn(seed=1))
    device.enable_ingest(db, region_blocks=8, region_pages_per_block=16)
    search = DeltaAwareSearch(
        device.lifecycle(db).store, device._models[model], n_clusters=8, seed=0
    )
    return device, db, model, search


def _plant_winners(device, db, search, probe, n):
    """Insert near-copies of the current exact winners (they belong in
    the new exact top-K but the stale layout cannot reach them)."""
    winners = search.exact_topk(probe, n)
    rows = device.lifecycle(db).store.rows(winners)
    return device.insert_db(db, rows + np.float32(1e-3))


class TestDeltaAwareSearch:
    def test_fresh_layout_has_high_recall(self, rig, rng):
        _, _, _, search = rig
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        result = search.query(probe, 10, n_probe=6)
        exact = search.exact_topk(probe, 10)
        assert result.recall_against(exact) >= 0.5
        assert result.probed_rows < result.total_visible
        assert result.scan_seconds > 0

    def test_recall_drifts_down_as_delta_grows(self, rig, rng):
        device, db, _, search = rig
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        exact0 = search.exact_topk(probe, 10)
        recall0 = search.query(probe, 10, n_probe=6).recall_against(exact0)
        _plant_winners(device, db, search, probe, 10)
        exact1 = search.exact_topk(probe, 10)
        stale = search.query(probe, 10, n_probe=6).recall_against(exact1)
        # the planted winners sit in the delta; stale probing misses them
        assert stale < recall0
        assert search.query(probe, 10, n_probe=6).delta_rows == 10

    def test_scanning_the_delta_buys_recall_back(self, rig, rng):
        device, db, _, search = rig
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        _plant_winners(device, db, search, probe, 10)
        exact = search.exact_topk(probe, 10)
        stale = search.query(probe, 10, n_probe=6, include_delta=False)
        fresh = search.query(probe, 10, n_probe=6, include_delta=True)
        assert fresh.recall_against(exact) > stale.recall_against(exact)
        assert fresh.probed_rows > stale.probed_rows
        # the latency model quantizes at page granularity, so a small
        # delta may not move the clock — it must never make it cheaper
        assert fresh.scan_seconds >= stale.scan_seconds

    def test_tombstones_cost_reads_but_never_rank(self, rig, rng):
        device, db, _, search = rig
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        top = search.exact_topk(probe, 5)
        device.delete_db_rows(db, [int(top[0])])
        result = search.query(probe, 10, n_probe=8)
        assert int(top[0]) not in result.feature_ids.tolist()
        # the dead row's page is still probed until compaction
        assert result.probed_rows > result.total_visible - result.delta_rows

    def test_rebuild_restores_recall(self, rig, rng):
        device, db, _, search = rig
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        _plant_winners(device, db, search, probe, 10)
        search.rebuild(device.lifecycle(db).store.snapshot())
        exact = search.exact_topk(probe, 10)
        assert search.query(probe, 10, n_probe=6).recall_against(exact) >= 0.5
        assert search.rebuilds == 1

    def test_bad_arguments_rejected(self, rig, rng):
        _, _, _, search = rig
        probe = rng.normal(0, 1, DIM).astype(np.float32)
        with pytest.raises(IngestError):
            search.query(probe, 0, n_probe=2)
        with pytest.raises(IngestError):
            search.query(probe, 5, n_probe=0)
        with pytest.raises(IngestError):
            search.query(probe, 5, n_probe=999)


class TestCompactionPolicy:
    def test_validation(self):
        with pytest.raises(IngestError):
            CompactionPolicy(delta_threshold=0.0)
        with pytest.raises(IngestError):
            CompactionPolicy(chunk_rows=0)
        with pytest.raises(IngestError):
            CompactionPolicy(min_gap_s=-1.0)

    def test_due_follows_the_delta_threshold(self, rig, rng):
        device, db, _, search = rig
        job = CompactionJob(
            device, db, search=search,
            policy=CompactionPolicy(delta_threshold=0.1),
        )
        assert not job.due()
        device.insert_db(
            db, rng.normal(0, 1, (40, DIM)).astype(np.float32)
        )
        assert job.due()


class TestCompactionJob:
    def test_chunked_run_absorbs_the_delta(self, rig, rng):
        device, db, _, search = rig
        inserted = device.insert_db(
            db, rng.normal(0, 1, (50, DIM)).astype(np.float32)
        )
        device.delete_db_rows(db, [0, 1, 2])
        sim = Simulator()
        seen = []
        job = CompactionJob(
            device, db, search=search,
            policy=CompactionPolicy(chunk_rows=16),
        )
        job.start(sim, on_done=seen.append)
        sim.run()
        report = job.report
        assert report is not None and seen == [report]
        assert report.rows_rewritten == len(inserted)
        assert report.chunks == 4  # ceil(50 / 16)
        assert report.reclaimed_rows == 3
        assert report.delta_before > 0 and report.delta_after == 0.0
        assert report.write_seconds > 0
        assert report.duration_s >= report.write_seconds * 0.5
        assert not job.active
        assert search.rebuilds == 1

    def test_mutations_after_snapshot_land_in_next_delta(self, rig, rng):
        device, db, _, search = rig
        device.insert_db(db, rng.normal(0, 1, (20, DIM)).astype(np.float32))
        sim = Simulator()
        job = CompactionJob(device, db, search=search)
        job.start(sim)
        late = device.insert_db(
            db, rng.normal(0, 1, (5, DIM)).astype(np.float32)
        )
        sim.run()
        store = device.lifecycle(db).store
        assert set(store.delta_ids().tolist()) == set(int(i) for i in late)

    def test_queries_preempt_pending_chunks(self, rig, rng):
        device, db, model, search = rig
        device.insert_db(db, rng.normal(0, 1, (48, DIM)).astype(np.float32))
        sim = Simulator()
        job = CompactionJob(
            device, db, search=search,
            policy=CompactionPolicy(chunk_rows=8),
        )
        job.start(sim)
        probe = rng.normal(0, 1, DIM).astype(np.float32)

        def fire():
            seconds = device.get_results(
                device.query(probe, 5, model, db)
            ).seconds
            assert job.preempt(sim.now + seconds)

        sim.schedule(1e-5, fire, label="fg-query")
        sim.run()
        report = job.report
        assert report is not None
        assert report.preemptions == 1
        assert report.rows_rewritten == 48

    def test_preempt_is_a_noop_when_idle(self, rig):
        device, db, _, search = rig
        job = CompactionJob(device, db, search=search)
        assert not job.preempt(1.0)

    def test_double_start_rejected(self, rig, rng):
        device, db, _, search = rig
        device.insert_db(db, rng.normal(0, 1, (8, DIM)).astype(np.float32))
        sim = Simulator()
        job = CompactionJob(device, db, search=search)
        job.start(sim)
        with pytest.raises(IngestError):
            job.start(sim)
        sim.run()


class TestRunLifecycle:
    #: one small deterministic loop shared by the smoke assertions
    CONFIG = LifecycleConfig(
        n_base=256,
        rounds=2,
        planted_per_round=24,
        random_per_round=16,
        deletes_per_round=8,
        updates_per_round=2,
        probe_queries=3,
        k=8,
        n_clusters=8,
        n_probe=3,
        interference_loads=(0.0, 0.5),
        seed=11,
    )

    @pytest.fixture(scope="class")
    def report(self):
        return run_lifecycle(self.CONFIG)

    def test_staleness_degrades_and_delta_recovers(self, report):
        assert report.staleness[-1].stale_recall < report.staleness[0].stale_recall
        last = report.staleness[-1]
        assert last.with_delta_recall > last.stale_recall
        assert last.delta_fraction > 0

    def test_compaction_restores_recall(self, report):
        assert report.compaction.rows_rewritten > 0
        assert report.post_compaction_recall == pytest.approx(
            report.fresh_baseline_recall, abs=0.01
        )

    def test_write_amplification_is_consistent(self, report):
        assert report.write_amplification >= 1.0
        assert report.host_writes > 0
        expected = (
            report.host_writes + report.gc_relocations
        ) / report.host_writes
        assert report.write_amplification == pytest.approx(expected)

    def test_interference_slows_queries_monotonically(self, report):
        slowdowns = [p.slowdown for p in report.interference]
        assert slowdowns[0] == pytest.approx(1.0)
        assert slowdowns[-1] > 1.0

    def test_report_serializes(self, report):
        card = report.as_dict()
        assert card["staleness"]["final_recall"] <= card["staleness"]["initial_recall"]
        assert card["mutations"] == report.mutations
        import json

        json.dumps(card)  # must be JSON-clean for the perf gate
