"""Differential gate: the fast path changes nothing observable.

Runs the *entire* combined perf-gate scorecard — all five legs, every
leaf the CI baseline pins — once with the fast path forced on and once
forced off, and requires byte-identical JSON.  This is the enforcement
mechanism behind the "speed refactor only" contract: any fastpath
branch that drifts from the reference implementation fails here before
it can touch the checked-in baseline.
"""

import json
import sys
from pathlib import Path

from repro.sim import fastpath

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import perf_gate  # noqa: E402


def _canonical(card) -> str:
    return json.dumps(card, indent=2, sort_keys=True)


def test_combined_scorecard_byte_identical_both_modes():
    with fastpath.override(False):
        off = _canonical(perf_gate.build_combined_scorecard())
    fastpath.clear_tables()
    with fastpath.override(True):
        on = _canonical(perf_gate.build_combined_scorecard())
    assert on == off


def test_scorecard_matches_checked_in_baseline():
    """The fast-path scorecard is the baseline CI diffs against."""
    baseline_path = (
        Path(perf_gate.__file__).resolve().parent
        / "results" / "baseline_scorecard.json"
    )
    baseline = json.loads(baseline_path.read_text())
    fastpath.clear_tables()
    with fastpath.override(True):
        card = perf_gate.build_combined_scorecard()
    assert _canonical(card) == _canonical(baseline)
