"""Tests for trace generation and whole-SSD scan measurements."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ssd import Ssd, SsdConfig
from repro.ssd.trace import scan_trace, stripe_feature_count, stripe_page_count


class TestScanTrace:
    def test_full_scan_covers_all_pages(self, ssd):
        meta = ssd.ftl.create_database(2048, 8000)
        trace = list(scan_trace(meta, ssd.config.geometry))
        assert len(trace) == meta.total_pages
        assert [t.db_page_offset for t in trace] == list(range(meta.total_pages))

    def test_channel_filter(self, ssd):
        meta = ssd.ftl.create_database(2048, 8000)
        trace = list(scan_trace(meta, ssd.config.geometry, channel=3))
        assert trace
        assert all(t.address.channel == 3 for t in trace)

    def test_window(self, ssd):
        meta = ssd.ftl.create_database(2048, 8000)
        trace = list(scan_trace(meta, ssd.config.geometry, start_page=10, max_pages=5))
        assert len(trace) == 5
        assert trace[0].db_page_offset == 10

    def test_invalid_channel(self, ssd):
        meta = ssd.ftl.create_database(2048, 100)
        with pytest.raises(ValueError):
            list(scan_trace(meta, ssd.config.geometry, channel=99))

    def test_stripe_counts_sum_to_total(self, ssd):
        meta = ssd.ftl.create_database(2048, 12345)
        geo = ssd.config.geometry
        total = sum(stripe_page_count(meta, geo, ch) for ch in range(geo.channels))
        assert total == meta.total_pages

    @given(st.integers(min_value=1, max_value=30000))
    @settings(max_examples=20, deadline=None)
    def test_stripe_count_matches_trace(self, count):
        ssd = Ssd()
        meta = ssd.ftl.create_database(4096, count)
        geo = ssd.config.geometry
        for ch in (0, 7, 31):
            expected = len(list(scan_trace(meta, geo, channel=ch)))
            assert stripe_page_count(meta, geo, ch) == expected

    def test_stripe_feature_count(self, ssd):
        meta = ssd.ftl.create_database(2048, 32000)
        geo = ssd.config.geometry
        per_channel = stripe_feature_count(meta, geo, 0)
        assert per_channel == pytest.approx(32000 / 32, rel=0.05)


class TestScanMeasurement:
    def test_full_ssd_scan_near_internal_bandwidth(self):
        ssd = Ssd()
        meta = ssd.ftl.create_database(2048, 200000)
        bw = ssd.measure_scan_bandwidth(meta, window_pages=2048)
        assert bw == pytest.approx(ssd.config.internal_bandwidth, rel=0.1)

    def test_one_channel_near_channel_bandwidth(self):
        ssd = Ssd()
        meta = ssd.ftl.create_database(2048, 200000)
        trace = list(scan_trace(meta, ssd.config.geometry, channel=0, max_pages=400))
        m = ssd.read_pages(trace)
        assert m.bandwidth == pytest.approx(800e6, rel=0.1)

    def test_empty_trace(self):
        ssd = Ssd()
        m = ssd.read_pages([])
        assert m.pages == 0 and m.seconds == 0.0

    def test_event_matches_analytic_channel_scan(self):
        ssd = Ssd()
        meta = ssd.ftl.create_database(2048, 200000)
        trace = list(scan_trace(meta, ssd.config.geometry, channel=0, max_pages=500))
        event = ssd.read_pages(trace).seconds
        analytic = ssd.channel_scan_seconds(500 * 16384)
        assert event == pytest.approx(analytic, rel=0.1)

    def test_latency_insensitivity_of_scan(self):
        # Fig. 9's substrate claim: 4x array latency costs ~10% or less
        def scan_time(latency):
            ssd = Ssd(SsdConfig().with_flash_latency(latency))
            meta = ssd.ftl.create_database(2048, 200000)
            trace = list(
                scan_trace(meta, ssd.config.geometry, channel=0, max_pages=400)
            )
            return ssd.read_pages(trace).seconds

        assert scan_time(212e-6) / scan_time(53e-6) < 1.15

    def test_host_read_seconds(self):
        ssd = Ssd()
        assert ssd.host_read_seconds(3_200_000_000) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            ssd.host_read_seconds(-1)


class TestSsdConfig:
    def test_power_budget(self):
        cfg = SsdConfig()
        assert cfg.accelerator_power_budget_w == pytest.approx(55.0)

    def test_internal_bandwidth(self):
        assert SsdConfig().internal_bandwidth == pytest.approx(32 * 800e6)

    def test_with_channels(self):
        cfg = SsdConfig().with_channels(8)
        assert cfg.geometry.channels == 8
        assert cfg.internal_bandwidth == pytest.approx(8 * 800e6)

    def test_with_flash_latency(self):
        cfg = SsdConfig().with_flash_latency(7e-6)
        assert cfg.timing.array_read_latency_s == 7e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            SsdConfig(external_bandwidth=0)
