"""Tests for host-I/O interference and multi-query scan sharing."""

import pytest

from repro.core import DeepStoreSystem
from repro.core.scheduler import MultiQueryScheduler
from repro.ssd import SsdConfig
from repro.ssd.host_io import (
    HostIoWorkload,
    InterferenceModel,
    simulate_shared_channel,
)
from repro.workloads import get_app

from tests.conftest import make_db


class TestInterferenceModel:
    def test_preempt_keeps_query_speed(self):
        model = InterferenceModel()
        result = model.evaluate(HostIoWorkload(0.5), "preempt")
        assert result.scan_slowdown == 1.0
        assert result.host_throughput_fraction == 0.0

    def test_share_slows_io_bound_scans(self):
        model = InterferenceModel()
        result = model.evaluate(HostIoWorkload(0.5), "share", scan_io_fraction=1.0)
        assert result.scan_slowdown == pytest.approx(2.0)
        assert result.host_throughput_fraction > 0.9

    def test_compute_bound_scans_hide_interference(self):
        model = InterferenceModel()
        io_bound = model.evaluate(HostIoWorkload(0.4), "share", scan_io_fraction=1.0)
        compute_bound = model.evaluate(
            HostIoWorkload(0.4), "share", scan_io_fraction=0.2
        )
        assert compute_bound.scan_slowdown < io_bound.scan_slowdown

    def test_host_priority_worst_for_queries(self):
        model = InterferenceModel()
        share = model.evaluate(HostIoWorkload(0.7), "share")
        host_first = model.evaluate(HostIoWorkload(0.7), "host-priority")
        assert host_first.scan_slowdown > share.scan_slowdown

    def test_zero_load_no_effect(self):
        model = InterferenceModel()
        for policy in ("preempt", "share", "host-priority"):
            assert model.evaluate(HostIoWorkload(0.0), policy).scan_slowdown == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HostIoWorkload(1.5)
        model = InterferenceModel()
        with pytest.raises(ValueError):
            model.evaluate(HostIoWorkload(0.5), "magic")
        with pytest.raises(ValueError):
            model.evaluate(HostIoWorkload(0.5), "share", scan_io_fraction=2.0)

    def test_event_sim_matches_fair_share(self):
        # 96 host pages against 192 scan pages => the scan's bus share is
        # 192/288 of the total work: slowdown ~1.5 under FIFO
        slowdown = simulate_shared_channel(
            SsdConfig(), scan_pages=192, host_pages=96
        )
        assert slowdown == pytest.approx(1.5, rel=0.15)


class TestMultiQueryScheduler:
    def test_single_query_matches_system(self, ssd):
        app = get_app("textqa")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        scheduler = MultiQueryScheduler()
        report = scheduler.shared_scan(app, meta, 1)
        system_latency = DeepStoreSystem.at_level("channel").query_latency(app, meta)
        assert report.scan_seconds == pytest.approx(
            system_latency.total_seconds, rel=0.15
        )

    def test_stream_bound_scans_share_for_free(self, ssd):
        # ReId's bottleneck is the per-feature weight broadcast, which a
        # second query consumes at no extra cost: co-scheduled queries
        # ride the same stream until compute catches up
        app = get_app("reid")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        scheduler = MultiQueryScheduler()
        four = scheduler.shared_scan(app, meta, 4)
        assert four.scan_seconds < 1.1 * four.single_query_seconds
        assert four.batch_speedup > 3.0

    def test_compute_bound_scans_do_not(self, ssd):
        # MIR at the channel level is compute-bound: each extra query
        # stretches the scan almost proportionally
        app = get_app("mir")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        scheduler = MultiQueryScheduler()
        four = scheduler.shared_scan(app, meta, 4)
        assert four.batch_speedup < 2.0

    def test_throughput_saturates(self, ssd):
        app = get_app("textqa")
        meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
        scheduler = MultiQueryScheduler()
        qps = [
            scheduler.shared_scan(app, meta, n).queries_per_second
            for n in (1, 2, 4, 16, 64, 256)
        ]
        assert qps == sorted(qps)  # monotone
        # beyond the compute crossover the marginal gain collapses
        assert qps[-1] / qps[-2] < 2.0

    def test_free_concurrency_ordering(self, ssd):
        scheduler = MultiQueryScheduler()
        free = {}
        for name in ("mir", "reid"):
            app = get_app(name)
            meta = make_db(ssd, app.feature_bytes, gigabytes=1.0)
            free[name] = scheduler.free_concurrency(app, meta)
        # stream-bound ReId hands out far more free concurrency than
        # compute-bound MIR (whose single query already fills the array)
        assert free["reid"] > free["mir"]
        assert free["reid"] >= 4
        assert free["mir"] <= 2

    def test_validation(self, ssd):
        app = get_app("tir")
        meta = make_db(ssd, app.feature_bytes, gigabytes=0.5)
        scheduler = MultiQueryScheduler()
        with pytest.raises(ValueError):
            scheduler.shared_scan(app, meta, 0)
        with pytest.raises(ValueError):
            scheduler.free_concurrency(app, meta, tolerance=0.5)
