"""Tests for in-storage feature reorganization (IVF-style probing)."""

import numpy as np
import pytest

from repro.core.reorganize import (
    ReorganizeError,
    ReorganizedSearch,
    build_layout,
    kmeans_lite,
)
from repro.ssd import BlockFtl, SsdGeometry
from repro.workloads import FeatureDatasetSpec, get_app, make_clustered_features
from repro.workloads.pretrained import train_scn


@pytest.fixture(scope="module")
def clustered_db():
    spec = FeatureDatasetSpec(n_features=6000, dim=200, n_intents=12,
                              noise=0.25, seed=4)
    features, labels = make_clustered_features(spec)
    return features, labels, spec


@pytest.fixture(scope="module")
def search(clustered_db):
    features, _, _ = clustered_db
    app = get_app("textqa")
    graph = train_scn(app, seed=0)
    layout = build_layout(features, n_clusters=12, seed=1)
    return ReorganizedSearch(layout, features, app, graph)


class TestKmeansLite:
    def test_recovers_planted_clusters(self, clustered_db):
        features, labels, spec = clustered_db
        centroids, assignments = kmeans_lite(features, spec.n_intents, seed=2)
        # most pairs from the same planted intent should co-cluster
        same_intent = labels[:-1] == labels[1:]
        same_cluster = assignments[:-1] == assignments[1:]
        agreement = (same_cluster[same_intent]).mean()
        assert agreement > 0.8

    def test_deterministic(self, clustered_db):
        features, _, _ = clustered_db
        c1, a1 = kmeans_lite(features, 8, seed=5)
        c2, a2 = kmeans_lite(features, 8, seed=5)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_allclose(c1, c2)

    def test_validation(self, clustered_db):
        features, _, _ = clustered_db
        with pytest.raises(ReorganizeError):
            kmeans_lite(features, 0)
        with pytest.raises(ReorganizeError):
            kmeans_lite(features[:5], 10)


class TestClusteredLayout:
    def test_clusters_partition_features(self, clustered_db):
        features, _, _ = clustered_db
        layout = build_layout(features, n_clusters=10, seed=0)
        everything = np.concatenate(layout.clusters)
        assert len(everything) == len(features)
        assert len(np.unique(everything)) == len(features)

    def test_probe_order_prefers_near_centroid(self, clustered_db):
        features, labels, spec = clustered_db
        layout = build_layout(features, n_clusters=spec.n_intents, seed=1)
        qfv = spec.centroids()[3]
        first = layout.probe_order(qfv)[0]
        # the first probed cluster should hold the bulk of intent-3 items
        members = layout.clusters[first]
        covered = (labels[members] == 3).sum() / (labels == 3).sum()
        assert covered > 0.8

    def test_probed_fraction_grows(self, clustered_db):
        features, _, spec = clustered_db
        layout = build_layout(features, n_clusters=12, seed=1)
        qfv = spec.centroids()[0]
        fractions = [layout.probed_fraction(qfv, n) for n in (1, 4, 12)]
        assert fractions[0] < fractions[1] < fractions[2]
        assert fractions[2] == pytest.approx(1.0)

    def test_probe_validation(self, clustered_db):
        features, _, _ = clustered_db
        layout = build_layout(features, n_clusters=4, seed=1)
        with pytest.raises(ReorganizeError):
            layout.probed_features(features[0], 0)
        with pytest.raises(ReorganizeError):
            layout.probed_features(features[0], 5)

    def test_on_flash_allocation(self, clustered_db):
        features, _, _ = clustered_db
        ftl = BlockFtl(SsdGeometry())
        layout = build_layout(features, n_clusters=6, ftl=ftl,
                              feature_bytes=800, seed=1)
        assert len(layout.cluster_metas) == 6
        assert sum(m.feature_count for m in layout.cluster_metas) >= len(features)


class TestReorganizedSearch:
    def test_full_probe_matches_exact(self, search, clustered_db):
        features, _, spec = clustered_db
        rng = np.random.default_rng(9)
        qfv = spec.centroids()[2] + rng.normal(0, 0.1, 200).astype(np.float32)
        result = search.query(qfv, k=10, n_probe=search.layout.n_clusters)
        exact = search.exact_topk(qfv, 10)
        assert result.recall_against(exact) == pytest.approx(1.0)
        assert result.scan_fraction == pytest.approx(1.0)

    def test_probing_trades_recall_for_speed(self, search, clustered_db):
        features, _, spec = clustered_db
        rng = np.random.default_rng(10)
        recalls, speedups = [], []
        for probe in (1, 3, 12):
            recall_sum, speed_sum = 0.0, 0.0
            for i in range(5):
                qfv = (spec.centroids()[i] +
                       rng.normal(0, 0.1, 200)).astype(np.float32)
                result = search.query(qfv, k=10, n_probe=probe)
                recall_sum += result.recall_against(search.exact_topk(qfv, 10))
                speed_sum += result.speedup
            recalls.append(recall_sum / 5)
            speedups.append(speed_sum / 5)
        # more probes: recall up, speedup down
        assert recalls[0] <= recalls[1] + 0.05
        assert recalls[1] <= recalls[2] + 0.05
        assert speedups[0] >= speedups[1] >= speedups[2]
        # a single probe already recovers most of the top-K for
        # well-clustered data, at a clear scan saving (the fixed engine
        # overheads of this small test database bound the time ratio)
        assert recalls[0] > 0.6
        assert speedups[0] > 1.5

    def test_scan_time_proportional_to_probed_pages(self, search, clustered_db):
        features, _, spec = clustered_db
        qfv = spec.centroids()[1]
        small = search.query(qfv, k=5, n_probe=1)
        full = search.query(qfv, k=5, n_probe=search.layout.n_clusters)
        assert small.scan_seconds < full.scan_seconds
        assert small.speedup > 1.0

    def test_validation(self, search, clustered_db):
        features, _, spec = clustered_db
        with pytest.raises(ReorganizeError):
            search.query(spec.centroids()[0], k=0, n_probe=1)
        with pytest.raises(ReorganizeError):
            ReorganizedSearch(search.layout, features[:10], search.app, search.graph)
