"""Quantization: the paper's deferred optimization, realized.

DeepStore evaluates everything in fp32 "to maintain the same accuracy as
the original application" and notes (§7) that accelerator-community
optimizations like quantization could be incorporated.  This example
does it end to end for ReId, the workload whose 10 MB fp32 model is too
large for any on-SSD scratchpad:

1. train the ReId SCN;
2. quantize to int8 (weights really rounded to an 8-bit grid);
3. show retrieval quality is preserved on a functional query;
4. show the hardware consequence: the 2.6 MB int8 model becomes
   scratchpad-resident, flipping the channel level from weight-stream
   bound to flash-bound and roughly quadrupling the speedup.

Run:  python examples/quantized_models.py
"""

import numpy as np

from repro import DeepStoreDevice, DeepStoreSystem
from repro.analysis import Table, format_seconds
from repro.baseline import GpuSsdSystem
from repro.nn import TrainConfig
from repro.nn.quantization import quantize_graph
from repro.ssd import Ssd
from repro.workloads import get_app, plant_neighbors, train_scn


def retrieval_check(app, graphs, rng) -> None:
    gallery = rng.normal(0, 1, (2000, app.feature_floats)).astype(np.float32)
    person = rng.normal(0, 1, app.feature_floats).astype(np.float32)
    gallery, planted = plant_neighbors(gallery, person, k=4, noise=0.2, seed=3)
    probe = person + rng.normal(0, 0.2, app.feature_floats).astype(np.float32)

    print("\nRetrieval quality (4 planted same-person images, top-8):")
    for name, graph in graphs.items():
        device = DeepStoreDevice()
        db = device.write_db(gallery)
        model = device.load_graph(graph)
        result = device.get_results(device.query(probe, 8, model, db))
        hits = len(set(result.feature_ids.tolist()) & set(planted.tolist()))
        print(f"  {name:6s} recall {hits}/4")


def hardware_comparison(app, graphs) -> None:
    ssd = Ssd()
    meta = ssd.ftl.create_database(app.feature_bytes, int(25e9 / app.feature_bytes))
    gpu = GpuSsdSystem().query_cost(app, meta.feature_count)
    table = Table(
        "ReId at the channel level, 25 GB database",
        ["Precision", "Weights", "Query time", "Speedup vs GPU", "Limited by"],
    )
    for name, graph in graphs.items():
        system = DeepStoreSystem.at_level("channel")
        lat = system.query_latency(app, meta, graph=graph)
        table.add_row(
            name,
            f"{graph.weight_bytes() / 1e6:.2f} MB",
            format_seconds(lat.total_seconds),
            f"{gpu.seconds / lat.total_seconds:.2f}x",
            lat.bound,
        )
    table.print()


def main() -> None:
    app = get_app("reid")
    rng = np.random.default_rng(17)
    print(f"== {app.full_name}: fp32 vs int8 deployment ==")
    print("Training the ReId SCN...")
    fp32 = train_scn(
        app, seed=0, n_pairs=1200, target_accuracy=0.85,
        config=TrainConfig(learning_rate=0.05, epochs=4, batch_size=64, seed=0),
    )
    graphs = {
        "fp32": fp32,
        "fp16": quantize_graph(fp32, "fp16"),
        "int8": quantize_graph(fp32, "int8"),
    }
    retrieval_check(app, graphs, rng)
    hardware_comparison(app, graphs)
    print("\nThe int8 model fits the shared scratchpad, removing the "
          "per-feature DRAM weight stream — the single largest win "
          "quantization buys DeepStore.")


if __name__ == "__main__":
    main()
