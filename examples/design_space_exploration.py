"""Design-space exploration for in-storage accelerators.

Walks the two explorations that produced the paper's Table-3 designs:

1. PE-count scaling (Fig. 6): how large a systolic array is worth
   building for similarity-comparison layers;
2. configuration search under each placement's power budget: which
   (array shape, scratchpad) candidates are feasible at the SSD, channel
   and chip levels, and what the Table-3 designs actually draw per app.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import Table
from repro.core.dse import (
    explore_pe_scaling,
    search_configurations,
    validate_placement_power,
)
from repro.core.placement import CHANNEL_LEVEL, CHIP_LEVEL, SSD_LEVEL
from repro.ssd import SsdConfig


def pe_scaling() -> None:
    fc = explore_pe_scaling("fc")
    conv = explore_pe_scaling("conv")
    table = Table(
        "Fig. 6: speedup vs #PEs (best aspect ratio per point)",
        ["#PEs", "FC", "best FC shape", "ConvD", "best Conv shape"],
    )
    for pf, pc in zip(fc, conv):
        table.add_row(pf.num_pes, f"{pf.speedup:.2f}x", f"{pf.rows}x{pf.cols}",
                      f"{pc.speedup:.2f}x", f"{pc.rows}x{pc.cols}")
    table.print()
    print("FC saturates once the array width covers the layer's outputs;"
          " ConvD keeps gaining until the output pixels are covered.")


def budget_search() -> None:
    ssd = SsdConfig()
    budgets = {
        "channel": CHANNEL_LEVEL.power_budget_w(ssd),
        "ssd": SSD_LEVEL.power_budget_w(ssd),
    }
    for level, budget in budgets.items():
        candidates = search_configurations(level, budget)
        feasible = [c for c in candidates if c.feasible]
        table = Table(
            f"{level}-level candidates under {budget:.2f} W "
            f"({len(feasible)}/{len(candidates)} feasible)",
            ["Array", "Scratchpad", "mean s/feature", "Power W", "Feasible"],
        )
        for c in candidates[:8]:
            table.add_row(
                f"{c.systolic.rows}x{c.systolic.cols}",
                f"{c.scratchpad_bytes // 1024}KB",
                f"{c.mean_seconds_per_feature * 1e6:.2f}us",
                f"{c.power_w:.2f}",
                "yes" if c.feasible else "no",
            )
        table.print()


def placement_power() -> None:
    ssd = SsdConfig()
    table = Table(
        "Table-3 designs: per-application accelerator power vs budget",
        ["Level", "Budget W", "reid", "mir", "estp", "tir", "textqa"],
    )
    for label, placement in (("ssd", SSD_LEVEL), ("channel", CHANNEL_LEVEL),
                             ("chip", CHIP_LEVEL)):
        powers = validate_placement_power(placement, ssd)
        table.add_row(
            label,
            f"{placement.power_budget_w(ssd):.2f}",
            *(f"{powers[a]:.2f}" if a in powers else "n/a"
              for a in ("reid", "mir", "estp", "tir", "textqa")),
        )
    table.print()


def main() -> None:
    pe_scaling()
    budget_search()
    placement_power()


if __name__ == "__main__":
    main()
