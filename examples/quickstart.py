"""Quickstart: an intelligent query against a DeepStore SSD.

Builds a synthetic feature database, writes it to a simulated DeepStore
device, registers a trained similarity comparison network (SCN), and runs
a content-based retrieval query — printing the genuinely-retrieved top-K
plus the latency/energy the hardware model predicts for the same query at
paper scale.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DeepStoreDevice
from repro.analysis import format_seconds
from repro.nn import graph_to_bytes
from repro.workloads import get_app, plant_neighbors, train_scn


def main() -> None:
    app = get_app("tir")  # text-based image retrieval (Table 1)
    rng = np.random.default_rng(7)

    print(f"== {app.full_name} ==")
    print("Training the similarity comparison network on synthetic pairs...")
    scn = train_scn(app, seed=0)

    # A feature database: 20,000 synthetic 2 KB image-feature vectors,
    # five of which are planted near our query's intent.
    features = rng.normal(0, 1, (20_000, app.feature_floats)).astype(np.float32)
    intent = rng.normal(0, 1, app.feature_floats).astype(np.float32)
    features, planted = plant_neighbors(features, intent, k=5, noise=0.2, seed=1)
    qfv = intent + rng.normal(0, 0.2, app.feature_floats).astype(np.float32)

    # The DeepStore API (paper Table 2): writeDB / loadModel / query /
    # getResults.
    device = DeepStoreDevice(level="channel")
    db_id = device.write_db(features)
    model_id = device.load_model(graph_to_bytes(scn))
    handle = device.query(qfv, k=10, model_id=model_id, db_id=db_id)
    result = device.get_results(handle)

    hits = sorted(set(result.feature_ids.tolist()) & set(planted.tolist()))
    print(f"\nTop-10 feature ids : {result.feature_ids.tolist()}")
    print(f"Planted neighbors  : {planted.tolist()}")
    print(f"Recall of planted  : {len(hits)}/5")
    print(f"Top score          : {result.scores[0]:.4f}")
    print(f"ObjectID of best   : 0x{result.object_ids[0]:012x} (flash address)")

    lat = result.latency
    print(f"\nModelled query latency ({lat.accel_count} channel-level accelerators):")
    print(f"  engine     {format_seconds(lat.engine_seconds)}")
    print(f"  scan       {format_seconds(lat.scan_seconds)}  (bound: {lat.bound})")
    print(f"  merge      {format_seconds(lat.merge_seconds)}")
    print(f"  total      {format_seconds(lat.total_seconds)}")
    print(f"  device power {lat.power_w:.1f} W")


if __name__ == "__main__":
    main()
