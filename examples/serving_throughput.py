"""Serving intelligent queries under load.

Single-query speedup is the paper's headline; a retrieval service also
lives and dies by sustained throughput and tail latency.  Using the
paper's own trace-driven methodology (§5), this example captures a
Zipfian Poisson query trace and replays it against three backends —
the GPU+SSD baseline, DeepStore's channel level, and DeepStore fronted
by the similarity query cache — at increasing offered load.

Run:  python examples/serving_throughput.py
"""

from repro.analysis import Table, format_seconds
from repro.baseline import GpuSsdSystem
from repro.core import DeepStoreSystem
from repro.core.query_cache import EmbeddingComparator, QueryCache
from repro.ssd import Ssd
from repro.workloads import QueryStream, capture_trace, get_app, replay_trace

DB_FEATURES = 20_000_000  # 40 GB of TIR feature vectors


def main() -> None:
    app = get_app("tir")
    ssd = Ssd()
    meta = ssd.ftl.create_database(app.feature_bytes, DB_FEATURES)

    gpu_seconds = GpuSsdSystem().query_cost(app, meta.feature_count).seconds
    ds_seconds = DeepStoreSystem.at_level("channel").query_latency(
        app, meta
    ).total_seconds
    print(f"== {app.full_name}: serving a {DB_FEATURES / 1e6:.0f}M-feature DB ==")
    print(f"one query: GPU+SSD {format_seconds(gpu_seconds)}, "
          f"DeepStore {format_seconds(ds_seconds)} "
          f"({gpu_seconds / ds_seconds:.1f}x)")

    cache = QueryCache(capacity=512, comparator=EmbeddingComparator(),
                       qcn_accuracy=0.98, threshold=0.10)

    def cached_service(query):
        lookup = cache.lookup(query.qfv)
        base = lookup.entries_scanned * 0.3e-6
        if lookup.hit:
            return base + 300e-6
        cache.insert(query.qfv, [0.0], [0])
        return base + ds_seconds

    backends = {
        "GPU+SSD": lambda q: gpu_seconds,
        "DeepStore": lambda q: ds_seconds,
        "DeepStore+QC": cached_service,
    }

    table = Table(
        "p50 / p99 latency by offered load (S = cannot keep up)",
        ["Offered qps"] + list(backends),
    )
    base_qps = 1.0 / gpu_seconds
    for multiple in (0.5, 2, 8):
        qps = base_qps * multiple
        stream = QueryStream(dim=512, n_intents=2000, distribution="zipf",
                             alpha=0.7, paraphrase_noise=0.15,
                             noise_spread=0.85, seed=21)
        trace = capture_trace(stream, 1200, offered_qps=qps, seed=5)
        cells = []
        for name, service in backends.items():
            dist = replay_trace(trace, service)
            flag = " S" if dist.saturated else ""
            cells.append(
                f"{format_seconds(dist.p50_s)}/{format_seconds(dist.p99_s)}{flag}"
            )
        table.add_row(f"{qps:6.3f} ({multiple}x GPU capacity)", *cells)
    table.print()
    print("\nThe GPU system saturates at its own single-query rate; "
          "DeepStore absorbs ~10x, and the semantic cache keeps the tail "
          "bounded well past that.")


if __name__ == "__main__":
    main()
