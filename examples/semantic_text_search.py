"""Semantic text search with the similarity query cache.

Reproduces the paper's motivating cache scenario (§4.6): "a brown dog is
running in the sand" and "a brown dog plays at the beach" are different
queries about the same intent, and an exact-match cache would miss the
second — but DeepStore's QCN-based cache hits it and skips the scan.

A Zipfian query stream runs against a TextQA database with the cache on
and off; the example prints hit rates and the resulting mean latency.

Run:  python examples/semantic_text_search.py
"""

import numpy as np

from repro import DeepStoreDevice
from repro.analysis import format_seconds
from repro.workloads import QueryStream, get_app, train_scn


def run_stream(device, model_id, db_id, records, k=5):
    seconds = []
    hits = 0
    for record in records:
        result = device.get_results(
            device.query(record.qfv, k, model_id, db_id)
        )
        seconds.append(result.seconds)
        hits += int(result.cache_hit)
    return np.array(seconds), hits


def main() -> None:
    app = get_app("textqa")
    rng = np.random.default_rng(3)
    print(f"== {app.full_name} with the similarity query cache ==")

    print("Training the bilinear TextQA SCN...")
    scn = train_scn(app, seed=0)

    # corpus: 30k answer embeddings clustered around the query intents
    stream = QueryStream(
        dim=app.feature_floats, n_intents=40, distribution="zipf", alpha=0.8,
        paraphrase_noise=0.08, seed=5,
    )
    centroids = stream.centroids()
    corpus = np.repeat(centroids, 750, axis=0) + rng.normal(
        0, 0.3, (30_000, app.feature_floats)
    ).astype(np.float32)

    records = stream.generate(60)

    device = DeepStoreDevice(level="channel")
    db_id = device.write_db(corpus.astype(np.float32))
    model_id = device.load_graph(scn)

    # -- without the cache ------------------------------------------------
    cold, _ = run_stream(device, model_id, db_id, records)
    print(f"\nWithout cache: mean query {format_seconds(cold.mean())} "
          f"(every query scans all {len(corpus)} features)")

    # -- with the cache (paper Algorithm 1) --------------------------------
    device.set_qc(threshold=0.10, capacity=32)
    warm, hits = run_stream(device, model_id, db_id, records)
    cache = device.query_cache
    print(f"With cache   : mean query {format_seconds(warm.mean())}, "
          f"{hits}/{len(records)} hits "
          f"(miss rate {cache.miss_rate * 100:.0f}%)")
    print(f"Speedup from semantic caching: {cold.mean() / warm.mean():.1f}x")

    # -- the paraphrase demonstration --------------------------------------
    base = records[0].qfv
    paraphrase = base + rng.normal(0, 0.04, base.size).astype(np.float32)
    first = device.get_results(device.query(base, 5, model_id, db_id))
    second = device.get_results(device.query(paraphrase, 5, model_id, db_id))
    print("\nParaphrase check:")
    print(f"  original query : cache_hit={first.cache_hit}, "
          f"{format_seconds(first.seconds)}")
    print(f"  paraphrase     : cache_hit={second.cache_hit}, "
          f"{format_seconds(second.seconds)}")
    shared = set(first.feature_ids.tolist()) & set(second.feature_ids.tolist())
    print(f"  shared results : {len(shared)}/5 "
          "(the cached answer serves the reworded question)")


if __name__ == "__main__":
    main()
