"""Person re-identification across accelerator placements.

ReId (paper Table 1) is the heaviest workload: 44 KB spatial features,
two convolutional layers, and a 10 MB fully-connected layer that exceeds
every on-SSD scratchpad.  This example:

1. trains the ReId SCN on synthetic person-pairs,
2. runs a real query over a gallery with planted same-person images,
3. compares the modelled paper-scale (25 GB database) query time across
   the GPU+SSD baseline and the three DeepStore placements — showing why
   the chip level refuses the model and the SSD level loses to the GPU.

Run:  python examples/person_reid.py
"""

import numpy as np

from repro import DeepStoreDevice, DeepStoreSystem
from repro.analysis import Table, format_seconds
from repro.baseline import GpuSsdSystem
from repro.core.api import DeepStoreApiError
from repro.nn import TrainConfig
from repro.ssd import Ssd
from repro.workloads import get_app, plant_neighbors, train_scn


def retrieval_demo(app, scn, rng) -> None:
    gallery = rng.normal(0, 1, (2_000, app.feature_floats)).astype(np.float32)
    person = rng.normal(0, 1, app.feature_floats).astype(np.float32)
    gallery, planted = plant_neighbors(gallery, person, k=4, noise=0.2, seed=3)
    probe = person + rng.normal(0, 0.2, app.feature_floats).astype(np.float32)

    device = DeepStoreDevice(level="channel")
    db_id = device.write_db(gallery)
    model_id = device.load_graph(scn)
    result = device.get_results(device.query(probe, k=8, model_id=model_id, db_id=db_id))
    hits = set(result.feature_ids.tolist()) & set(planted.tolist())
    print(f"Gallery of {len(gallery)} images; same person planted at {planted.tolist()}")
    print(f"Top-8 returned: {result.feature_ids.tolist()}  (recall {len(hits)}/4)")

    # the chip-level accelerator cannot execute ReId (paper §6.2)
    try:
        device.query(probe, k=8, model_id=model_id, db_id=db_id, accel_level="chip")
    except DeepStoreApiError as exc:
        print(f"Chip-level placement refused, as in the paper: {exc}")


def placement_comparison(app) -> None:
    ssd = Ssd()
    meta = ssd.ftl.create_database(app.feature_bytes, int(25e9 / app.feature_bytes))
    graph = app.build_scn()
    baseline = GpuSsdSystem().query_cost(app, meta.feature_count)

    table = Table(
        "ReId: one query over a 25 GB feature database",
        ["System", "Query time", "Speedup vs GPU+SSD", "Limited by"],
    )
    table.add_row("GPU+SSD (Volta)", format_seconds(baseline.seconds), "1.00x", "SSD I/O")
    for level in ("ssd", "channel", "chip"):
        system = DeepStoreSystem.at_level(level)
        if not system.supports(graph):
            table.add_row(f"DeepStore {level}", "n/a", "n/a", "unsupported (conv)")
            continue
        lat = system.query_latency(app, meta, graph=graph)
        table.add_row(
            f"DeepStore {level}",
            format_seconds(lat.total_seconds),
            f"{baseline.seconds / lat.total_seconds:.2f}x",
            lat.bound,
        )
    table.print()


def main() -> None:
    app = get_app("reid")
    rng = np.random.default_rng(11)
    print(f"== {app.full_name} ==")
    print("Training the ReId SCN (two conv + two FC layers)...")
    scn = train_scn(
        app, seed=0, n_pairs=1200, target_accuracy=0.85,
        config=TrainConfig(learning_rate=0.05, epochs=4, batch_size=64, seed=0),
    )
    retrieval_demo(app, scn, rng)
    placement_comparison(app)


if __name__ == "__main__":
    main()
