"""DeepStore reproduction: in-storage acceleration for intelligent queries.

A faithful Python implementation of the system described in

    Mailthody, Qureshi, et al., "DeepStore: In-Storage Acceleration for
    Intelligent Queries", MICRO-52, 2019.

Public surface:

* :class:`repro.core.DeepStoreDevice` — the programming API (Table 2);
* :class:`repro.core.DeepStoreSystem` — the performance/energy model;
* :mod:`repro.workloads` — the five Table-1 applications;
* :mod:`repro.baseline` — the GPU+SSD and wimpy-core comparison systems;
* :mod:`repro.ssd`, :mod:`repro.systolic`, :mod:`repro.nn`,
  :mod:`repro.energy`, :mod:`repro.sim` — the substrates.
"""

from repro.core import (
    DeepStoreDevice,
    DeepStoreSystem,
    QueryHandle,
    QueryLatency,
    QueryResult,
)
from repro.workloads import ALL_APPS, get_app

__version__ = "1.0.0"

__all__ = [
    "DeepStoreDevice",
    "DeepStoreSystem",
    "QueryHandle",
    "QueryResult",
    "QueryLatency",
    "ALL_APPS",
    "get_app",
    "__version__",
]
