"""Named metrics: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` per run; components ``counter()`` /
``gauge()`` / ``histogram()`` their instruments out of it by name, so
two components naming the same metric share the same instrument (the
flash controllers all feed ``ssd.page_delivery_s``, the fault injector
feeds ``faults.*``).  The registry replaces the ad-hoc one-off counters
that used to live in :mod:`repro.faults` and
:mod:`repro.analysis.reliability` — those now sit on top of these
primitives.

Histograms use **fixed bucket bounds** so memory stays O(buckets) no
matter how many pages a scan observes, and quantiles use the same
deterministic **nearest-rank** rule the reliability reports always used
(no interpolation; reproducible across platforms).  With bucketed
storage the nearest-rank answer is the upper bound of the bucket the
rank lands in, clamped to the observed max — an upper bound on the true
quantile that is exact whenever the bucket edges resolve the data.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Deterministic nearest-rank percentile (no interpolation).

    Nearest-rank keeps reports reproducible across numpy versions and
    always returns an actually-observed value, which is what a tail SLO
    refers to.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 < q <= 100.0:
        raise ValueError("q must be in (0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


#: default histogram bounds: 100 ns .. 10 s, 4 buckets per decade — wide
#: enough for everything from a command overhead to a full-device scan
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (exp / 4.0) for exp in range(-28, 5)
)


class Counter:
    """A monotonically-increasing (by convention) integer tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the tally."""
        self.value += amount


class Gauge:
    """A point-in-time value; tracks the peak it ever held."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        """Set the current value, updating the recorded peak."""
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: float) -> None:
        """Shift the current value by ``delta`` (peak-tracked)."""
        self.set(self.value + delta)


class Histogram:
    """Fixed-bucket histogram with nearest-rank quantiles.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in an overflow bucket.  ``min``/``max``/``sum`` are exact
    regardless of bucketing.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        bounds = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be ascending")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation into its bucket; O(log buckets)."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # bisect over bucket upper edges
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile resolved to a bucket upper edge.

        Clamped into ``[min, max]`` so degenerate bucketings still
        return an observed-range value.
        """
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 < q <= 100.0:
            raise ValueError("q must be in (0, 100]")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                edge = self.bounds[i] if i < len(self.bounds) else self.max
                return min(max(edge, self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts sum)

    @property
    def p50(self) -> float:
        """Median via :meth:`quantile`."""
        return self.quantile(50.0)

    @property
    def p99(self) -> float:
        """99th percentile via :meth:`quantile`."""
        return self.quantile(99.0)

    def as_dict(self) -> Dict[str, float]:
        """Summary snapshot (no raw buckets) for reports and JSON."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p99": self.p99,
        }


class TimeSeries:
    """A gauge sampled over simulated time with windowed queries.

    Samples are ``(time, value)`` pairs appended in nondecreasing time
    order (the DES timeline only moves forward).  :meth:`window` answers
    "what did this gauge read over the last ``window_s`` seconds as of
    ``at_s``" — the primitive the SLO burn-rate rules evaluate.  The
    window is **half-open** ``(at_s - window_s, at_s]``: a sample landing
    exactly on the trailing edge belongs to the *previous* window, one on
    the leading edge to this one, so adjacent windows never double-count
    a boundary sample.
    """

    __slots__ = ("name", "window_s", "samples")

    def __init__(self, name: str, window_s: float):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.name = name
        self.window_s = window_s
        self.samples: List[Tuple[float, float]] = []

    def sample(self, time_s: float, value: float) -> None:
        """Append one ``(time, value)`` sample; times must not regress."""
        if self.samples and time_s < self.samples[-1][0]:
            raise ValueError(
                f"timeseries {self.name!r}: sample time {time_s} regresses "
                f"behind {self.samples[-1][0]}"
            )
        self.samples.append((time_s, value))

    def window(self, at_s: float) -> List[float]:
        """Values sampled in the half-open window ``(at_s - window_s, at_s]``."""
        lo = at_s - self.window_s
        return [v for t, v in self.samples if lo < t <= at_s]

    def last(self) -> Optional[float]:
        """Most recent sampled value (None when empty)."""
        return self.samples[-1][1] if self.samples else None

    def window_stats(self, at_s: float) -> Dict[str, float]:
        """count/mean/min/max over one window (all 0.0 when empty)."""
        values = self.window(at_s)
        if not values:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }

    def as_dict(self) -> Dict[str, object]:
        """Summary snapshot for reports and JSON."""
        return {
            "window_s": self.window_s,
            "samples": len(self.samples),
            "last": self.last(),
        }


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Names are dotted (``subsystem.metric``); asking for an existing name
    with a different instrument kind is an error — it means two
    components disagree about what the metric is.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the :class:`Counter` named ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the :class:`Gauge` named ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create the :class:`Histogram` named ``name``.

        ``bounds`` only applies on first creation; later callers share
        the instrument as-is.
        """
        existing = self._metrics.get(name)
        if existing is None:
            return self._get_or_create(name, Histogram, bounds)
        return self._get_or_create(name, Histogram)

    def timeseries(
        self, name: str, window_s: Optional[float] = None
    ) -> TimeSeries:
        """Get or create the :class:`TimeSeries` named ``name``.

        ``window_s`` is required on first creation (it defines the
        instrument); later callers may omit it and share the series
        as-is.
        """
        existing = self._metrics.get(name)
        if existing is None:
            if window_s is None:
                raise ValueError(
                    f"timeseries {name!r} needs window_s at creation"
                )
            return self._get_or_create(name, TimeSeries, window_s)
        return self._get_or_create(name, TimeSeries)

    def names(self) -> List[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: scalars for counters/gauges, dicts for
        histograms; keys sorted for byte-stable output."""
        out: Dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = {"value": metric.value, "peak": metric.peak}
            elif isinstance(metric, TimeSeries):
                out[name] = metric.as_dict()
            else:
                assert isinstance(metric, Histogram)
                out[name] = metric.as_dict()
        return out
