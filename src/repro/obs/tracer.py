"""Span/instant tracing over simulated time.

A :class:`Tracer` records what the simulator's entities were doing and
when, on named **tracks**.  A track is a (process, thread) pair in the
Chrome trace-event sense: the exporters map one *pid* per flash channel
(plus one for the query engine and one for the event scheduler) and one
*tid* per chip, bus, or accelerator, so ``chrome://tracing`` / Perfetto
renders the SSD the way the paper draws it — channels as swimlane
groups, their components as lanes.

Two record kinds cover everything the simulation does:

* **complete spans** (:class:`Span`) — an occupancy with a start and a
  duration, e.g. one array read holding a plane, one page transfer
  holding a channel bus, one per-page SCN compute holding an
  accelerator.  The simulator schedules work with known durations, so
  spans are emitted at *start* time in one call (no begin/end pairing
  to keep balanced).
* **instants** (:class:`Instant`) — zero-duration markers, e.g. every
  event the :class:`~repro.sim.Simulator` dispatches (category
  ``sim.event``, used to reconcile the trace against
  ``events_processed``) or a failed read under fault injection.

The overhead contract: tracing appends records to Python lists and
never touches the event heap, so **simulated** timings are identical
with or without a tracer (regression-tested); and a disabled/absent
tracer costs one ``is None`` check per hook, because instrumented
components resolve their track handles to ``None`` up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple


class TrackHandle(NamedTuple):
    """Resolved (pid, tid) identity of one timeline lane."""

    pid: int
    tid: int


@dataclass(frozen=True)
class Span:
    """One complete occupancy: ``[start, start + duration]`` on a track."""

    name: str
    cat: str
    start: float
    duration: float
    track: TrackHandle
    args: Optional[Dict[str, object]] = None
    #: Chrome phase to export as: ``"X"`` (one complete event) or
    #: ``"BE"`` (a begin/end pair).  ``"BE"`` marks spans whose true end
    #: was only learned later — e.g. a hedge loser cancelled mid-flight —
    #: so viewers see the actual occupancy, not the planned one.
    emit: str = "X"

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Instant:
    """One zero-duration marker on a track."""

    name: str
    cat: str
    time: float
    track: TrackHandle
    args: Optional[Dict[str, object]] = None


@dataclass
class Tracer:
    """Recording tracer: interned tracks + append-only span/instant logs."""

    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self._next_tid: Dict[int, int] = {}
        #: token -> (track, name, start, cat, args) for spans opened with
        #: :meth:`begin` and not yet closed by :meth:`end`
        self._open: Dict[
            int, Tuple[TrackHandle, str, float, str, Optional[Dict[str, object]]]
        ] = {}
        self._next_token = 0

    @property
    def enabled(self) -> bool:
        """Whether hooks should emit (always True for a real tracer)."""
        return True

    # ------------------------------------------------------------------
    # tracks
    # ------------------------------------------------------------------
    def track(self, process: str, thread: str) -> TrackHandle:
        """Intern a (process, thread) pair; stable across repeat calls."""
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids)
            self._pids[process] = pid
            self._next_tid[pid] = 0
        key = (pid, thread)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._next_tid[pid]
            self._next_tid[pid] = tid + 1
            self._tids[key] = tid
        return TrackHandle(pid, tid)

    @property
    def process_names(self) -> Dict[int, str]:
        """pid -> human name, for exporter metadata."""
        return {pid: name for name, pid in self._pids.items()}

    @property
    def thread_names(self) -> Dict[Tuple[int, int], str]:
        """(pid, tid) -> human name, for exporter metadata."""
        return {(pid, tid): name for (pid, name), tid in self._tids.items()}

    def track_name(self, track: TrackHandle) -> str:
        """Render a track as ``process/thread`` for reports."""
        process = self.process_names.get(track.pid, f"pid{track.pid}")
        thread = self.thread_names.get(tuple(track), f"tid{track.tid}")
        return f"{process}/{thread}"

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def complete(
        self,
        track: TrackHandle,
        name: str,
        start: float,
        duration: float,
        cat: str = "",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one complete span (start and duration both known)."""
        self.spans.append(Span(name, cat, start, duration, track, args))

    def instant(
        self,
        track: TrackHandle,
        name: str,
        time: float,
        cat: str = "",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one zero-duration marker."""
        self.instants.append(Instant(name, cat, time, track, args))

    def begin(
        self,
        track: TrackHandle,
        name: str,
        start: float,
        cat: str = "",
        args: Optional[Dict[str, object]] = None,
    ) -> int:
        """Open a span whose end is not yet known; returns a token.

        Used for occupancies that may be cut short (a hedge loser's
        in-flight work, cancelled when the winner lands).  The span only
        materialises — as an emit-``"BE"`` :class:`Span` — when
        :meth:`end` closes the token, so every begin must be balanced.
        """
        token = self._next_token
        self._next_token += 1
        self._open[token] = (track, name, start, cat, args)
        return token

    def end(
        self,
        token: int,
        time: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Close a :meth:`begin` token at ``time`` (extra args merged)."""
        track, name, start, cat, begin_args = self._open.pop(token)
        if args:
            merged = dict(begin_args) if begin_args else {}
            merged.update(args)
            begin_args = merged
        self.spans.append(
            Span(name, cat, start, max(0.0, time - start), track,
                 begin_args, emit="BE")
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def span_count(self) -> int:
        """Number of complete spans recorded so far."""
        return len(self.spans)

    @property
    def open_spans(self) -> int:
        """Begun-but-unclosed spans (0 in a balanced trace)."""
        return len(self._open)

    def count(self, cat: str) -> int:
        """Records (spans + instants) in one category."""
        return sum(1 for s in self.spans if s.cat == cat) + sum(
            1 for i in self.instants if i.cat == cat
        )

    def spans_in(self, cat: str) -> Iterator[Span]:
        """Spans of one category, in emission order."""
        return (s for s in self.spans if s.cat == cat)

    @property
    def end_time(self) -> float:
        """Latest simulated time any record touches (0.0 when empty)."""
        end = 0.0
        for s in self.spans:
            end = max(end, s.end)
        for i in self.instants:
            end = max(end, i.time)
        return end


class NullTracer:
    """Disabled tracer: every hook is a no-op and ``enabled`` is False.

    Components test ``tracer.enabled`` once (usually at construction,
    caching ``None`` track handles), so the per-operation cost of *not*
    tracing is a single attribute check — the zero-cost-when-disabled
    guarantee the hot event loop depends on.
    """

    enabled = False
    spans: List[Span] = []
    instants: List[Instant] = []

    def track(self, process: str, thread: str) -> TrackHandle:
        """Return a dummy handle; nothing is interned."""
        return TrackHandle(0, 0)

    def complete(self, *args, **kwargs) -> None:
        """No-op span record."""
        pass

    def instant(self, *args, **kwargs) -> None:
        """No-op instant record."""
        pass

    def begin(self, *args, **kwargs) -> int:
        """No-op open; the returned token closes nothing."""
        return 0

    def end(self, *args, **kwargs) -> None:
        """No-op close."""
        pass

    @property
    def span_count(self) -> int:
        return 0

    @property
    def open_spans(self) -> int:
        return 0

    def count(self, cat: str) -> int:
        """Always 0: nothing is ever recorded."""
        return 0

    @property
    def end_time(self) -> float:
        return 0.0


#: shared disabled tracer; ``tracer or NULL_TRACER`` normalizes optionals
NULL_TRACER = NullTracer()
