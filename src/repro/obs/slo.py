"""SLO monitoring over the DES timeline: windows, burn rates, alerts.

An :class:`SloMonitor` watches a stream of per-class service events
(``record(slo, at_s, latency_s=...)`` from the serving loop or the
chaos harness) and does three things, all in simulated time:

* samples per-SLO gauges (good fraction, event count, bad count) into
  :meth:`~repro.obs.metrics.MetricsRegistry.timeseries` series at fixed
  ``sample_interval_s`` boundaries, so dashboards get a windowed
  time-series view of each class;
* evaluates declarative :class:`BurnRateRule`\\ s at those boundaries —
  a rule fires an :class:`Alert` when the **error-budget burn rate**
  (bad fraction over the rule's window, divided by the SLO's budget
  ``1 - target``) exceeds its threshold, with hysteresis: an active
  alert re-arms only after a boundary where the burn drops back under
  the threshold;
* keeps whole-run error-budget accounting per SLO for the final
  :meth:`report`.

Evaluation rides on the recording stream: a boundary ``b`` is
evaluated as soon as a record arrives with ``at_s > b`` (events reach
the monitor in nondecreasing DES order, so by then every event at or
before ``b`` has been seen), and :meth:`finish` flushes the remaining
boundaries.  The monitor never schedules simulator events — the
zero-perturbation contract the rest of :mod:`repro.obs` keeps.

During chaos days the interesting number is **alert latency**: the gap
between the first injected fault and the first fired alert.  The chaos
harness computes it from :attr:`SloMonitor.alerts`, and it is the new
column on the PR 6 kill-storm scorecard.
"""

from __future__ import annotations

import warnings
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a class of events.

    ``target`` is the fraction of events that must be *good*; an event
    is bad when its latency exceeds ``latency_threshold_s`` (when set)
    or when the recorder says so explicitly (``good=False`` — sheds,
    failures, partial results).
    """

    name: str
    target: float = 0.99
    latency_threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1) — the error "
                             "budget 1-target must be positive")

    @property
    def budget(self) -> float:
        """Allowed bad fraction (``1 - target``)."""
        return 1.0 - self.target


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when an SLO burns its budget ``burn_threshold`` x too fast.

    Burn rate is the classic SRE multiple: ``(bad/total) / budget``
    over the trailing ``window_s``.  1.0 means the budget is being
    spent exactly at the sustainable rate; 2.0 means twice too fast.
    ``min_events`` suppresses evaluation on windows too thin to mean
    anything.
    """

    name: str
    slo: str
    window_s: float
    burn_threshold: float = 2.0
    min_events: int = 1

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")


@dataclass(frozen=True)
class Alert:
    """One burn-rate rule firing at one evaluation boundary."""

    rule: str
    slo: str
    at_s: float
    burn_rate: float
    bad: int
    total: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of one fired alert."""
        return {
            "rule": self.rule,
            "slo": self.slo,
            "at_s": self.at_s,
            "burn_rate": self.burn_rate,
            "bad": self.bad,
            "total": self.total,
        }


class SloMonitor:
    """Windowed SLO evaluation over a nondecreasing event stream."""

    def __init__(
        self,
        specs: Sequence[SloSpec],
        rules: Sequence[BurnRateRule] = (),
        registry: Optional[MetricsRegistry] = None,
        sample_interval_s: float = 0.05,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self.specs: Dict[str, SloSpec] = {}
        for spec in specs:
            if spec.name in self.specs:
                raise ValueError(f"duplicate SLO {spec.name!r}")
            self.specs[spec.name] = spec
        for rule in rules:
            if rule.slo not in self.specs:
                raise ValueError(
                    f"rule {rule.name!r} references unknown SLO {rule.slo!r}"
                )
        self.rules: Tuple[BurnRateRule, ...] = tuple(rules)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_interval_s = sample_interval_s
        #: effective evaluation window per rule.  Evaluation happens only
        #: at fixed ``sample_interval_s`` boundaries, so a window shorter
        #: than the interval would look at a sliver of each interval and
        #: could *never* see events landing in the rest of it — bad
        #: events would sail past without an alert.  Clamp (and warn):
        #: the shortest honest window is one full sample interval.
        self._rule_window_s: Dict[str, float] = {}
        for rule in rules:
            window = rule.window_s
            if window < sample_interval_s:
                warnings.warn(
                    f"burn-rate rule {rule.name!r}: window_s={window} is "
                    f"shorter than sample_interval_s={sample_interval_s}; "
                    f"clamping to the sample interval (sub-interval "
                    f"windows cannot observe every event)",
                    stacklevel=2,
                )
                window = sample_interval_s
            self._rule_window_s[rule.name] = window
        self.alerts: List[Alert] = []
        #: per-SLO event log as parallel arrays in nondecreasing time
        #: order, with a cumulative bad count — windowed (bad, total)
        #: queries are then two bisects + a prefix-sum difference
        #: instead of a scan over the whole run (24 h diurnal traces
        #: evaluate thousands of boundaries over tens of thousands of
        #: events; the scan was quadratic in the day length)
        self._times: Dict[str, List[float]] = {name: [] for name in self.specs}
        self._bad_prefix: Dict[str, List[int]] = {
            name: [] for name in self.specs
        }
        self._active: Dict[str, bool] = {rule.name: False for rule in rules}
        self._boundaries_done = 0
        self._last_t = 0.0

    # ------------------------------------------------------------------
    def record(
        self,
        slo: str,
        at_s: float,
        latency_s: Optional[float] = None,
        good: Optional[bool] = None,
    ) -> None:
        """Feed one service event; unknown SLO names are ignored.

        Ignoring unknowns lets an instrumented component record its
        classes unconditionally while the monitor's owner decides which
        ones carry objectives.
        """
        spec = self.specs.get(slo)
        if spec is None:
            return
        if good is None:
            if spec.latency_threshold_s is not None and latency_s is not None:
                good = latency_s <= spec.latency_threshold_s
            else:
                good = True
        # evaluate every boundary strictly before this event's time:
        # events arrive in DES order, so those windows are complete
        self._advance(at_s)
        self._last_t = max(self._last_t, at_s)
        times = self._times[slo]
        if times and at_s < times[-1]:
            raise ValueError(
                f"SLO events must arrive in nondecreasing time order: "
                f"got {at_s} after {times[-1]}"
            )
        prefix = self._bad_prefix[slo]
        times.append(at_s)
        prefix.append((prefix[-1] if prefix else 0) + (0 if good else 1))

    def finish(self, end_s: Optional[float] = None) -> None:
        """Flush evaluation through ``end_s`` (default: last event)."""
        end = self._last_t if end_s is None else max(end_s, self._last_t)
        # include a boundary landing exactly on the end time
        self._advance(end + self.sample_interval_s)

    # ------------------------------------------------------------------
    def _advance(self, now_s: float) -> None:
        """Evaluate all fixed boundaries strictly before ``now_s``."""
        interval = self.sample_interval_s
        while (self._boundaries_done + 1) * interval < now_s:
            self._boundaries_done += 1
            self._evaluate(self._boundaries_done * interval)

    def window_counts(
        self, slo: str, at_s: float, window_s: float
    ) -> Tuple[int, int]:
        """(bad, total) over the half-open window ``(at_s - w, at_s]``.

        Public so consumers driving control loops off the monitor (the
        tenancy autoscaler reads per-tenant burn rates this way) share
        the exact accounting the alert rules use.
        """
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if slo not in self.specs:
            raise ValueError(f"unknown SLO {slo!r}")
        times = self._times[slo]
        lo = bisect_right(times, at_s - window_s)
        hi = bisect_right(times, at_s)
        if hi <= lo:
            return 0, 0
        prefix = self._bad_prefix[slo]
        bad = prefix[hi - 1] - (prefix[lo - 1] if lo > 0 else 0)
        return bad, hi - lo

    def burn_rate(self, slo: str, at_s: float, window_s: float) -> float:
        """Error-budget burn multiple over the trailing window (0 when
        the window holds no events)."""
        bad, total = self.window_counts(slo, at_s, window_s)
        if total == 0:
            return 0.0
        return (bad / total) / self.specs[slo].budget

    def _evaluate(self, at_s: float) -> None:
        for name, spec in self.specs.items():
            bad, total = self.window_counts(name, at_s, self.sample_interval_s)
            good_fraction = 1.0 if total == 0 else (total - bad) / total
            self.registry.timeseries(
                f"slo.{name}.good_fraction", self.sample_interval_s
            ).sample(at_s, good_fraction)
            self.registry.timeseries(
                f"slo.{name}.events", self.sample_interval_s
            ).sample(at_s, float(total))
            self.registry.timeseries(
                f"slo.{name}.bad", self.sample_interval_s
            ).sample(at_s, float(bad))
        for rule in self.rules:
            spec = self.specs[rule.slo]
            bad, total = self.window_counts(
                rule.slo, at_s, self._rule_window_s[rule.name]
            )
            if total < rule.min_events:
                continue
            burn = (bad / total) / spec.budget
            if burn > rule.burn_threshold:
                if not self._active[rule.name]:
                    self._active[rule.name] = True
                    self.alerts.append(Alert(
                        rule=rule.name, slo=rule.slo, at_s=at_s,
                        burn_rate=burn, bad=bad, total=total,
                    ))
            else:
                # hysteresis: a quiet boundary re-arms the rule
                self._active[rule.name] = False

    # ------------------------------------------------------------------
    def first_alert_at(self, after_s: float = 0.0) -> Optional[float]:
        """Time of the first alert at or after ``after_s`` (None: never)."""
        for alert in self.alerts:
            if alert.at_s >= after_s:
                return alert.at_s
        return None

    def error_budget(self, slo: str) -> Dict[str, object]:
        """Whole-run budget accounting for one SLO."""
        spec = self.specs[slo]
        prefix = self._bad_prefix[slo]
        total = len(prefix)
        bad = prefix[-1] if prefix else 0
        bad_fraction = bad / total if total else 0.0
        # fraction of the allowed bad budget still unspent (can go
        # negative: the SLO was violated)
        remaining = 1.0 - bad_fraction / spec.budget if total else 1.0
        return {
            "target": spec.target,
            "events": total,
            "bad": bad,
            "good_fraction": 1.0 - bad_fraction,
            "budget_remaining": remaining,
            "violated": bad_fraction > spec.budget,
        }

    def report(self) -> Dict[str, object]:
        """JSON-ready summary: per-SLO budgets + the alert log."""
        return {
            "sample_interval_s": self.sample_interval_s,
            "boundaries": self._boundaries_done,
            "slos": {name: self.error_budget(name) for name in self.specs},
            "rules": [
                {
                    "name": rule.name,
                    "slo": rule.slo,
                    "window_s": rule.window_s,
                    "burn_threshold": rule.burn_threshold,
                }
                for rule in self.rules
            ],
            "alerts": [alert.to_dict() for alert in self.alerts],
        }


def default_chaos_monitor(
    duration_s: float,
    registry: Optional[MetricsRegistry] = None,
    latency_threshold_s: Optional[float] = None,
) -> SloMonitor:
    """The chaos harness's stock monitor: availability + latency SLOs.

    Windows scale with the chaos day so a handful of kill-storm queries
    still populate them: sampling at ~1/20th of the day, burn windows
    at ~1/10th.
    """
    interval = duration_s / 20.0
    specs = [
        SloSpec("availability", target=0.9),
        SloSpec("latency", target=0.9,
                latency_threshold_s=latency_threshold_s),
    ]
    rules = [
        BurnRateRule("availability-fast-burn", "availability",
                     window_s=duration_s / 10.0, burn_threshold=1.0),
        BurnRateRule("latency-fast-burn", "latency",
                     window_s=duration_s / 10.0, burn_threshold=1.0),
    ]
    return SloMonitor(specs, rules, registry=registry,
                      sample_interval_s=interval)
