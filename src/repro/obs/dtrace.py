"""Distributed tracing and critical-path latency attribution.

:mod:`repro.obs.tracer` answers "what was this *resource* doing" — one
lane per channel/chip/accelerator.  This module answers the dual
question, "what happened to this *query*": a
:class:`QueryTraceContext` is minted when a query enters the system
(serving admission, or a direct cluster call) and propagated through
batch formation, cluster scatter — one child span per shard attempt,
including retry/failover rungs, hedge winners *and* cancelled losers,
and breaker rejections — device execution, the K-way gather, and cache
hits.  The resulting span tree exports as Chrome trace-event JSON with
flow (``s``/``f``) arrows linking a query's spans across tracks, and
optionally merges a device :class:`~repro.obs.tracer.Tracer`'s
resource lanes into the same file so causality and occupancy can be
read side by side.

On top of the span tree, :class:`CriticalPath` decomposes one query's
end-to-end seconds into named :class:`Segment`\\ s that **sum
bit-exactly** (``==`` on the float) to the total — the cluster-wide
extension of PR 2's per-device breakdown invariant.  Exactness is
engineered, not hoped for: every segment is the *recorded primary
float* the simulator actually added (never a subtraction residue), and
:meth:`CriticalPath.component_sum` replays the simulator's exact
association order via ordered **groups** — ``[[a], [b, c], [d]]``
folds as ``(a + ((b + c))) + d`` — so float non-associativity cannot
break equality.  Quantities that do *not* sit on the additive path
(hedge overlap saved, brownout level, GC inflation factors) live in
``info``, never in segments.

:class:`FleetAttribution` aggregates many critical paths to answer the
fleet question the paper's Fig. 2 asks of one device: *which segment
dominates the tail* — overall and among the slowest ``q``-percentile
queries — per segment kind.

Like the tracer, everything here is append-only bookkeeping off the
simulation's hot path: collectors never schedule events, so simulated
timings are identical with or without them (parity-tested), and every
hook sits behind one ``is not None`` check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import percentile
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.coordinator import ClusterQueryResult
    from repro.core.event_query import EventQueryResult


# ----------------------------------------------------------------------
# trace contexts and spans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryTraceContext:
    """Propagated identity of one span: mint children off it."""

    trace_id: int
    span_id: int
    parent_span_id: Optional[int] = None


@dataclass(frozen=True)
class QuerySpan:
    """One closed span of a query's causal tree."""

    span_id: int
    parent_span_id: Optional[int]
    trace_id: int
    name: str
    #: coarse stage taxonomy: ``serving.admission``, ``cluster.scatter``,
    #: ``cluster.attempt``, ``device.query``, ``recovery.stage``, ...
    kind: str
    #: logical lane the exporter maps to a pid (``serving``,
    #: ``cluster/shard 0``, ``device``, ``recovery``, ...)
    track: str
    start_s: float
    end_s: float
    #: ``ok`` | ``cancelled`` | ``rejected`` | ``unavailable`` |
    #: ``shed_<reason>`` — anything but ``ok`` also exports an instant
    #: marker so terminations are visible at a glance
    status: str = "ok"
    args: Optional[Dict[str, object]] = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class TraceCollector:
    """Append-only collector of query spans and cross-track flows.

    Ids are dense counters (no randomness), so two identical runs
    produce byte-identical exports.  Open spans live in a side table
    until :meth:`end_span` closes them; a balanced instrumentation
    leaves :attr:`open_count` at zero.
    """

    def __init__(self) -> None:
        self.spans: List[QuerySpan] = []
        #: (source span id, destination span id) causality arrows
        self.flows: List[Tuple[int, int]] = []
        self._open: Dict[int, Tuple[QueryTraceContext, str, str, str, float,
                                    Optional[Dict[str, object]]]] = {}
        self._next_trace = 0
        self._next_span = 0

    # -- minting -------------------------------------------------------
    def _mint(self, trace_id: int, parent: Optional[int]) -> QueryTraceContext:
        ctx = QueryTraceContext(trace_id, self._next_span, parent)
        self._next_span += 1
        return ctx

    def start_trace(
        self,
        name: str,
        at_s: float,
        kind: str = "query",
        track: str = "serving",
        **args: object,
    ) -> QueryTraceContext:
        """Open a new trace's root span; returns its context."""
        trace_id = self._next_trace
        self._next_trace += 1
        ctx = self._mint(trace_id, None)
        self._open[ctx.span_id] = (ctx, name, kind, track, at_s, args or None)
        return ctx

    def start_span(
        self,
        parent: QueryTraceContext,
        name: str,
        at_s: float,
        kind: str,
        track: str,
        **args: object,
    ) -> QueryTraceContext:
        """Open a child span under ``parent``; returns its context."""
        ctx = self._mint(parent.trace_id, parent.span_id)
        self._open[ctx.span_id] = (ctx, name, kind, track, at_s, args or None)
        return ctx

    def end_span(
        self,
        ctx: QueryTraceContext,
        at_s: float,
        status: str = "ok",
        **args: object,
    ) -> QuerySpan:
        """Close an open span at ``at_s`` (extra args merged in)."""
        opened, name, kind, track, start_s, open_args = self._open.pop(
            ctx.span_id
        )
        merged = dict(open_args) if open_args else {}
        merged.update(args)
        span = QuerySpan(
            span_id=opened.span_id,
            parent_span_id=opened.parent_span_id,
            trace_id=opened.trace_id,
            name=name,
            kind=kind,
            track=track,
            start_s=start_s,
            end_s=at_s,
            status=status,
            args=merged or None,
        )
        self.spans.append(span)
        return span

    def add_span(
        self,
        parent: QueryTraceContext,
        name: str,
        start_s: float,
        end_s: float,
        kind: str,
        track: str,
        status: str = "ok",
        **args: object,
    ) -> QueryTraceContext:
        """Record an already-closed child span in one call."""
        ctx = self._mint(parent.trace_id, parent.span_id)
        self.spans.append(QuerySpan(
            span_id=ctx.span_id,
            parent_span_id=parent.span_id,
            trace_id=parent.trace_id,
            name=name,
            kind=kind,
            track=track,
            start_s=start_s,
            end_s=end_s,
            status=status,
            args=args or None,
        ))
        return ctx

    def flow(self, src: QueryTraceContext, dst: QueryTraceContext) -> None:
        """Draw a causality arrow from ``src``'s span to ``dst``'s."""
        self.flows.append((src.span_id, dst.span_id))

    # -- queries -------------------------------------------------------
    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def open_count(self) -> int:
        """Started-but-unclosed spans (0 in balanced instrumentation)."""
        return len(self._open)

    def trace_ids(self) -> List[int]:
        """Distinct trace ids with at least one closed span, sorted."""
        return sorted({s.trace_id for s in self.spans})

    def spans_of(self, trace_id: int) -> List[QuerySpan]:
        """One trace's closed spans, ordered by (start, span id)."""
        spans = [s for s in self.spans if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start_s, s.span_id))
        return spans

    def root(self, trace_id: int) -> Optional[QuerySpan]:
        """The trace's parentless span (None while still open)."""
        for span in self.spans:
            if span.trace_id == trace_id and span.parent_span_id is None:
                return span
        return None

    def children(self, span_id: int) -> List[QuerySpan]:
        """Direct children of one span, ordered by (start, span id)."""
        kids = [s for s in self.spans if s.parent_span_id == span_id]
        kids.sort(key=lambda s: (s.start_s, s.span_id))
        return kids


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
#: pid offset for merged-in device Tracer lanes, so query tracks and
#: resource tracks never collide in one file
_TRACER_PID_OFFSET = 100


def dtrace_chrome(
    collector: TraceCollector,
    tracer: Optional[Tracer] = None,
) -> Dict[str, object]:
    """Render a collector (and optionally a device tracer) as one
    Chrome/Perfetto trace-event dict.

    One pid per logical track string; ``X`` events carry
    trace/span/parent/status args; non-``ok`` spans also get an ``i``
    marker at their end; every :meth:`TraceCollector.flow` arrow
    becomes an ``s``/``f`` pair.  A device tracer's events merge in
    with pids shifted by :data:`_TRACER_PID_OFFSET`.
    """
    pids: Dict[str, int] = {}
    for span in collector.spans:
        if span.track not in pids:
            pids[span.track] = len(pids)
    events: List[Dict[str, object]] = []
    for track, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": track},
        })
        events.append({
            "name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
            "args": {"sort_index": pid},
        })
    span_by_id: Dict[int, QuerySpan] = {}
    for span in collector.spans:
        span_by_id[span.span_id] = span
        pid = pids[span.track]
        args: Dict[str, object] = {
            "trace": span.trace_id,
            "span": span.span_id,
            "status": span.status,
        }
        if span.parent_span_id is not None:
            args["parent"] = span.parent_span_id
        if span.args:
            args.update(span.args)
        events.append({
            "name": span.name, "cat": span.kind, "ph": "X",
            "pid": pid, "tid": 0,
            "ts": span.start_s * 1e6,
            "dur": max(0.0, span.duration_s) * 1e6,
            "args": args,
        })
        if span.status != "ok":
            events.append({
                "name": f"{span.name}:{span.status}", "cat": span.kind,
                "ph": "i", "s": "t", "pid": pid, "tid": 0,
                "ts": span.end_s * 1e6,
            })
    for flow_id, (src_id, dst_id) in enumerate(collector.flows):
        src = span_by_id.get(src_id)
        dst = span_by_id.get(dst_id)
        if src is None or dst is None:
            continue  # an endpoint never closed; drop the arrow
        events.append({
            "name": "flow", "cat": "dtrace.flow", "ph": "s",
            "id": flow_id, "pid": pids[src.track], "tid": 0,
            "ts": src.end_s * 1e6,
        })
        events.append({
            "name": "flow", "cat": "dtrace.flow", "ph": "f", "bp": "e",
            "id": flow_id, "pid": pids[dst.track], "tid": 0,
            "ts": dst.start_s * 1e6,
        })
    if tracer is not None:
        from repro.obs.export import chrome_trace

        for event in chrome_trace(tracer)["traceEvents"]:  # type: ignore[union-attr]
            shifted = dict(event)
            shifted["pid"] = int(shifted["pid"]) + _TRACER_PID_OFFSET  # type: ignore[arg-type]
            events.append(shifted)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_dtrace(
    collector: TraceCollector,
    path: str,
    tracer: Optional[Tracer] = None,
) -> str:
    """Serialize :func:`dtrace_chrome` to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(dtrace_chrome(collector, tracer), fh)
    return path


# ----------------------------------------------------------------------
# critical-path attribution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Segment:
    """One additive piece of a query's end-to-end latency."""

    name: str
    #: taxonomy key for fleet aggregation: ``fanout`` | ``detect`` |
    #: ``backoff`` | ``hedge_wait`` | ``scan`` | ``gather`` |
    #: ``admission`` | ``service`` | ``lookup`` | ``penalty`` | ...
    kind: str
    seconds: float


@dataclass
class CriticalPath:
    """A query's end-to-end seconds decomposed into ordered segments.

    ``groups`` preserve the simulator's association order:
    :meth:`component_sum` folds each group left-to-right from 0.0, then
    folds the group totals left-to-right — so ``[[a], [b, c], [d]]``
    reproduces ``(a + (b + c)) + d`` exactly.  When ``exact`` is True
    the builder guarantees every segment is a recorded primary float
    and the fold order matches the simulator, hence
    ``component_sum() == total_seconds`` bit-for-bit; analytic paths
    that cannot promise this (serving queue arithmetic subtracts
    arrival times) set ``exact=False`` and the sum is best-effort.
    """

    total_seconds: float
    groups: List[List[Segment]] = field(default_factory=list)
    #: non-additive diagnostics (hedge overlap saved, brownout level,
    #: shard/replica ids, ...) — never folded into the sum
    info: Dict[str, object] = field(default_factory=dict)
    exact: bool = True

    @property
    def segments(self) -> List[Segment]:
        """All segments, flattened in fold order."""
        return [seg for group in self.groups for seg in group]

    def component_sum(self) -> float:
        """Replay the simulator's association order over the groups."""
        total: Optional[float] = None
        for group in self.groups:
            group_sum = 0.0
            for seg in group:
                group_sum += seg.seconds
            total = group_sum if total is None else total + group_sum
        return 0.0 if total is None else total

    @property
    def bit_exact(self) -> bool:
        """Whether the segments sum to the total with float ``==``."""
        return self.component_sum() == self.total_seconds

    def fraction(self, kind: str) -> float:
        """Share of the total attributed to one segment kind (0..1)."""
        if self.total_seconds <= 0:
            return 0.0
        return (
            sum(s.seconds for s in self.segments if s.kind == kind)
            / self.total_seconds
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot with the exactness verdict included."""
        return {
            "total_seconds": self.total_seconds,
            "exact": self.exact,
            "bit_exact": self.bit_exact,
            "segments": [
                {"name": s.name, "kind": s.kind, "seconds": s.seconds}
                for s in self.segments
            ],
            "info": dict(self.info),
        }

    def table(self, title: str = "Critical-path attribution"):
        """Render as an :class:`~repro.analysis.Table`."""
        from repro.analysis.reporting import Table, format_seconds

        table = Table(title, ["Segment", "Kind", "Time", "Share"])
        for seg in self.segments:
            share = (
                seg.seconds / self.total_seconds * 100.0
                if self.total_seconds > 0 else 0.0
            )
            table.add_row(seg.name, seg.kind, format_seconds(seg.seconds),
                          f"{share:5.1f}%")
        table.add_row("total", "", format_seconds(self.total_seconds),
                      "100.0%")
        return table


def cluster_critical_path(result: "ClusterQueryResult") -> CriticalPath:
    """Attribute one cluster query's seconds along its slowest leg.

    The critical path of scatter-gather is ``fan-out -> slowest shard
    leg -> merge``; the slowest leg decomposes into the floats the
    scatter state machine actually accumulated: failover detection,
    retry backoff, hedge wait (only when the hedge *won* — a losing
    hedge never delays the leg), and the winning replica's scan.  Fold
    order ``(fanout + leg) + gather`` with the leg left-folded matches
    ``scatter_s + makespan_s + gather_s`` exactly, so the result is
    bit-exact for every cluster query.
    """
    crit = max(result.shards, key=lambda s: s.seconds)
    leg: List[Segment] = []
    if crit.detect_seconds != 0.0:
        leg.append(Segment(
            f"failover detect x{crit.failovers}", "detect",
            crit.detect_seconds,
        ))
    if crit.retry_pause_seconds != 0.0:
        leg.append(Segment(
            "retry backoff charged", "backoff", crit.retry_pause_seconds,
        ))
    if crit.unavailable:
        status = "unavailable"
    else:
        status = "ok"
        if crit.hedge_won:
            leg.append(Segment(
                "hedge wait (backup armed)", "hedge_wait",
                crit.hedge_wait_seconds,
            ))
        scan_name = (
            f"shard {crit.shard} cache hit"
            if crit.cache_hit
            else f"shard {crit.shard} scan (replica {crit.replica})"
        )
        leg.append(Segment(scan_name, "scan", crit.service_seconds))
    return CriticalPath(
        total_seconds=result.seconds,
        groups=[
            [Segment(f"scatter fan-out x{result.n_contacted}", "fanout",
                     result.scatter_seconds)],
            leg,
            [Segment(f"K-way gather ({result.merge.comparisons} cmp)",
                     "gather", result.gather_seconds)],
        ],
        info={
            "critical_shard": crit.shard,
            "critical_replica": crit.replica,
            "critical_status": status,
            "failovers": crit.failovers,
            "hedged": crit.hedged,
            "hedge_won": crit.hedge_won,
            "hedge_saved_s": crit.hedge_saved_seconds,
            "breaker_rejections": crit.breaker_rejections,
            "cache_hit": crit.cache_hit,
            "partial": result.partial,
            "unavailable_shards": result.unavailable_shards,
        },
        exact=True,
    )


def device_critical_path(result: "EventQueryResult") -> CriticalPath:
    """Attribute one device query's seconds (PR 2 invariant, regrouped).

    The engine computes ``scan + (dispatch + merge + setup)`` with the
    tail accumulated first, so the groups mirror that: one group for
    the overlapped scan, one for the engine tail.
    """
    return CriticalPath(
        total_seconds=result.total_seconds,
        groups=[
            [Segment("flash scan (overlapped I/O+compute)", "scan",
                     result.scan_seconds)],
            [
                Segment("engine dispatch", "service",
                        result.dispatch_seconds),
                Segment("top-K merge", "gather", result.merge_seconds),
                Segment("accelerator setup", "service",
                        result.setup_seconds),
            ],
        ],
        info={"pages": result.pages},
        exact=True,
    )


def cache_hit_critical_path(
    lookup_seconds: float, hit_seconds: float
) -> CriticalPath:
    """Attribute a served cache hit: lookup walk + canned hit latency."""
    return CriticalPath(
        total_seconds=lookup_seconds + hit_seconds,
        groups=[[
            Segment("cache lookup", "lookup", lookup_seconds),
            Segment("cache hit service", "scan", hit_seconds),
        ]],
        info={"cache_hit": True},
        exact=True,
    )


def recovery_critical_path(report: "object") -> CriticalPath:
    """Attribute a crash recovery: checkpoint read + WAL read + apply.

    ``RecoveryReport.seconds`` is defined as exactly this left-fold sum,
    so the path is bit-exact by construction.
    """
    groups = [[
        Segment("checkpoint read", "recovery", report.checkpoint_read_seconds),
        Segment("wal read", "recovery", report.wal_read_seconds),
        Segment("apply replay", "recovery", report.apply_seconds),
    ]]
    return CriticalPath(
        total_seconds=report.seconds,
        groups=groups,
        info={"records_replayed": report.records_replayed},
        exact=True,
    )


# ----------------------------------------------------------------------
# fleet aggregation
# ----------------------------------------------------------------------
class FleetAttribution:
    """Aggregate many critical paths into a fleet-level answer.

    The paper's Fig. 2 shows where one query's cycles go at each
    accelerator level; this answers the production version — *which
    segment kind dominates the slowest queries* — by summing segment
    seconds by kind over the queries at or above a latency percentile.
    """

    def __init__(self) -> None:
        self.paths: List[CriticalPath] = []

    def add(self, path: CriticalPath) -> None:
        """Fold one query's attribution into the fleet."""
        self.paths.append(path)

    @property
    def queries(self) -> int:
        return len(self.paths)

    @property
    def exact_fraction(self) -> float:
        """Share of queries whose segments sum bit-exactly (0..1)."""
        if not self.paths:
            return 0.0
        return sum(1 for p in self.paths if p.bit_exact) / len(self.paths)

    def totals_by_kind(
        self, paths: Optional[List[CriticalPath]] = None
    ) -> Dict[str, float]:
        """Total seconds per segment kind (sorted keys)."""
        paths = self.paths if paths is None else paths
        totals: Dict[str, float] = {}
        for path in paths:
            for seg in path.segments:
                totals[seg.kind] = totals.get(seg.kind, 0.0) + seg.seconds
        return dict(sorted(totals.items()))

    def tail_paths(self, q: float = 99.0) -> List[CriticalPath]:
        """Queries whose total is at or above the ``q``-th percentile."""
        if not self.paths:
            return []
        cut = percentile([p.total_seconds for p in self.paths], q)
        return [p for p in self.paths if p.total_seconds >= cut]

    def dominant_at(self, q: float = 99.0) -> Dict[str, object]:
        """Which segment kind dominates the slowest queries.

        Returns the dominant kind, its share of tail seconds, and the
        full per-kind breakdown over the tail cohort.
        """
        tail = self.tail_paths(q)
        totals = self.totals_by_kind(tail)
        grand = sum(totals.values())
        if not totals or grand <= 0:
            return {"percentile": q, "queries": len(tail),
                    "dominant": None, "share": 0.0, "by_kind": totals}
        dominant = max(totals, key=lambda k: (totals[k], k))
        return {
            "percentile": q,
            "queries": len(tail),
            "dominant": dominant,
            "share": totals[dominant] / grand,
            "by_kind": totals,
        }

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready fleet summary (overall + p99 tail)."""
        return {
            "queries": self.queries,
            "exact_fraction": self.exact_fraction,
            "by_kind": self.totals_by_kind(),
            "p99": self.dominant_at(99.0),
        }

    def table(self, title: str = "Fleet latency attribution"):
        """Render per-kind totals as an :class:`~repro.analysis.Table`."""
        from repro.analysis.reporting import Table, format_seconds

        totals = self.totals_by_kind()
        grand = sum(totals.values())
        table = Table(title, ["Kind", "Total time", "Share"])
        for kind, seconds in totals.items():
            share = seconds / grand * 100.0 if grand > 0 else 0.0
            table.add_row(kind, format_seconds(seconds), f"{share:5.1f}%")
        return table
