"""Exporters: Chrome trace JSON, latency breakdowns, utilization, profiles.

Everything in here is a pure function of a :class:`~repro.obs.Tracer`
(and, for breakdowns, an
:class:`~repro.core.event_query.EventQueryResult`), so exports can run
after the simulation with zero effect on it.

The Chrome export emits the `Trace Event Format`_ JSON that both
``chrome://tracing`` and Perfetto load: ``X`` (complete) events for
spans, ``i`` (instant) events for markers, and ``M`` metadata naming
each pid/tid.  Track interning in the tracer already assigned one pid
per flash channel and one tid per chip/bus/accelerator, so the viewer
groups lanes by channel without any post-processing.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.event_query import EventQueryResult


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """Render a tracer as a Chrome/Perfetto trace-event dict.

    Sim-time seconds map to trace microseconds (the format's native
    unit).  Span count is preserved exactly: one ``X`` event per span,
    one ``i`` event per instant, plus metadata — so tests can reconcile
    ``len(traceEvents)`` against the tracer and the simulator.
    """
    events: List[Dict[str, object]] = []
    for pid, name in sorted(tracer.process_names.items()):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
        events.append({
            "name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
            "args": {"sort_index": pid},
        })
    for (pid, tid), name in sorted(tracer.thread_names.items()):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name},
        })
    for s in tracer.spans:
        if s.emit == "BE":
            # Spans whose end was only learned at close time (e.g. a
            # cancelled hedge loser) export as a balanced begin/end pair
            # so viewers always see a terminated slice, never an
            # open-ended one.
            begin: Dict[str, object] = {
                "name": s.name, "cat": s.cat or "span", "ph": "B",
                "pid": s.track.pid, "tid": s.track.tid,
                "ts": s.start * 1e6,
            }
            if s.args:
                begin["args"] = dict(s.args)
            events.append(begin)
            events.append({
                "name": s.name, "cat": s.cat or "span", "ph": "E",
                "pid": s.track.pid, "tid": s.track.tid,
                "ts": s.end * 1e6,
            })
            continue
        event: Dict[str, object] = {
            "name": s.name, "cat": s.cat or "span", "ph": "X",
            "pid": s.track.pid, "tid": s.track.tid,
            "ts": s.start * 1e6, "dur": s.duration * 1e6,
        }
        if s.args:
            event["args"] = dict(s.args)
        events.append(event)
    for i in tracer.instants:
        event = {
            "name": i.name, "cat": i.cat or "instant", "ph": "i", "s": "t",
            "pid": i.track.pid, "tid": i.track.tid, "ts": i.time * 1e6,
        }
        if i.args:
            event["args"] = dict(i.args)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer), fh)
    return path


# ----------------------------------------------------------------------
# per-query latency breakdown
# ----------------------------------------------------------------------
@dataclass
class LatencyBreakdown:
    """End-to-end query latency split into serial components.

    The components are the query's actual serial structure — the
    overlapped flash+compute scan, then the engine's dispatch, top-K
    merge, and accelerator setup — so they **sum to the end-to-end
    latency exactly** (same floats the simulator added), which is the
    property the acceptance test checks.
    """

    total_seconds: float
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def component_sum(self) -> float:
        """Sum of all components, bit-identical to the simulator's total.

        The tail components are accumulated first and then added to the
        head — the same association order the simulator used
        (``scan + (dispatch + merge + setup)``) — so exact equality with
        ``total_seconds`` survives float non-associativity.
        """
        values = list(self.components.values())
        if not values:
            return 0.0
        tail = 0.0
        for value in values[1:]:
            tail += value
        return values[0] + tail

    def fraction(self, name: str) -> float:
        """Share of total latency spent in component ``name`` (0..1)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.components.get(name, 0.0) / self.total_seconds

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: totals, components, and their shares."""
        return {
            "total_seconds": self.total_seconds,
            "components": dict(self.components),
            "fractions": {
                name: self.fraction(name) for name in self.components
            },
        }

    def table(self, title: str = "Per-query latency breakdown"):
        """Render as an :class:`~repro.analysis.Table`."""
        from repro.analysis.reporting import Table, format_seconds

        table = Table(title, ["Component", "Time", "Share"])
        for name, seconds in self.components.items():
            table.add_row(name, format_seconds(seconds),
                          f"{self.fraction(name) * 100:5.1f}%")
        table.add_row("total", format_seconds(self.total_seconds), "100.0%")
        return table


def query_breakdown(result: "EventQueryResult") -> LatencyBreakdown:
    """Breakdown of one event-driven query's end-to-end latency."""
    return LatencyBreakdown(
        total_seconds=result.total_seconds,
        components={
            "flash scan (overlapped I/O+compute)": result.scan_seconds,
            "engine dispatch": result.dispatch_seconds,
            "top-K merge": result.merge_seconds,
            "accelerator setup": result.setup_seconds,
        },
    )


# ----------------------------------------------------------------------
# utilization timelines and resource profiles
# ----------------------------------------------------------------------
#: span categories that describe query phases, not physical resources;
#: resource profiles and utilization timelines skip them by default
PHASE_CATEGORIES = frozenset({"engine.query", "engine.phase"})


def _busy_by_track(
    tracer: Tracer, exclude_cats: frozenset = PHASE_CATEGORIES
) -> Dict[Tuple[int, int], List]:
    by_track: Dict[Tuple[int, int], List] = {}
    for span in tracer.spans:
        if span.cat in exclude_cats:
            continue
        by_track.setdefault(tuple(span.track), []).append(span)
    return by_track


def utilization_timelines(
    tracer: Tracer,
    bins: int = 48,
    end: Optional[float] = None,
) -> Dict[str, List[float]]:
    """Busy fraction per time bin for every resource track.

    Engine *phase* spans (:data:`PHASE_CATEGORIES`) are skipped — they
    narrate the query, they don't occupy hardware.

    Each track's spans are clipped into ``bins`` equal windows over
    ``[0, end]`` (default: the tracer's last record); a fraction of 1.0
    means the resource never went idle in that window.  Exclusive
    resources emit non-overlapping spans, so fractions land in [0, 1];
    they are clamped anyway so an overlapping track cannot exceed 1.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    end = tracer.end_time if end is None else end
    out: Dict[str, List[float]] = {}
    if end <= 0:
        return out
    bin_width = end / bins
    for track, spans in _busy_by_track(tracer).items():
        busy = [0.0] * bins
        for span in spans:
            lo = max(0.0, span.start)
            hi = min(end, span.end)
            if hi <= lo:
                continue
            first = min(bins - 1, int(lo / bin_width))
            last = min(bins - 1, int(hi / bin_width))
            for b in range(first, last + 1):
                b_lo = b * bin_width
                b_hi = b_lo + bin_width
                busy[b] += max(0.0, min(hi, b_hi) - max(lo, b_lo))
        name = tracer.track_name(spans[0].track)
        out[name] = [min(1.0, b / bin_width) for b in busy]
    return out


@dataclass
class ResourceUsage:
    """Aggregate occupancy of one track over a window."""

    name: str
    busy_seconds: float
    spans: int
    window_seconds: float
    longest_idle_gap_s: float
    idle_gaps: int

    @property
    def utilization(self) -> float:
        if self.window_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / self.window_seconds)

    @property
    def idle_seconds(self) -> float:
        return max(0.0, self.window_seconds - self.busy_seconds)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of this track's occupancy figures."""
        return {
            "name": self.name,
            "busy_seconds": self.busy_seconds,
            "spans": self.spans,
            "utilization": self.utilization,
            "idle_seconds": self.idle_seconds,
            "longest_idle_gap_s": self.longest_idle_gap_s,
            "idle_gaps": self.idle_gaps,
        }


def profile_resources(
    tracer: Tracer,
    end: Optional[float] = None,
    top: Optional[int] = None,
) -> List[ResourceUsage]:
    """Per-track occupancy profile, busiest first.

    Idle-gap analysis walks each track's spans in start order and
    counts the gaps where the resource sat unoccupied between 0 and
    ``end`` — the windows a scheduling optimisation could reclaim.
    """
    end = tracer.end_time if end is None else end
    usages: List[ResourceUsage] = []
    for track, spans in _busy_by_track(tracer).items():
        ordered = sorted(spans, key=lambda s: (s.start, s.end))
        busy = sum(s.duration for s in ordered)
        longest_gap = 0.0
        gaps = 0
        cursor = 0.0
        for span in ordered:
            if span.start > cursor:
                gaps += 1
                longest_gap = max(longest_gap, span.start - cursor)
            cursor = max(cursor, span.end)
        if end > cursor:
            gaps += 1
            longest_gap = max(longest_gap, end - cursor)
        usages.append(ResourceUsage(
            name=tracer.track_name(ordered[0].track),
            busy_seconds=busy,
            spans=len(ordered),
            window_seconds=end,
            longest_idle_gap_s=longest_gap,
            idle_gaps=gaps,
        ))
    usages.sort(key=lambda u: (-u.busy_seconds, u.name))
    return usages[:top] if top is not None else usages
