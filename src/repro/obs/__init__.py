"""Observability: span tracing, metrics, and trace/profile exporters.

The paper's argument is an attribution argument — Fig. 2 attributes
baseline time to I/O, Fig. 9 attributes insensitivity to bus-limited
steady state, Fig. 12 attributes energy to flash reads — so the
simulator must be able to say *where* simulated time went, not just how
much of it passed.  This package is that layer:

* :class:`Tracer` — span/instant recording with named process/thread
  tracks.  Components hold a track handle and emit **complete spans**
  (start + known duration) as they schedule work; with no tracer
  attached every hook is a single ``is None`` check, and tracing never
  schedules events of its own, so simulated timings are bit-identical
  with tracing on, off, or absent.
* :class:`MetricsRegistry` — named counters, gauges, and fixed-bucket
  histograms (nearest-rank p50/p99) that components register into.
  :class:`~repro.faults.ReliabilityCounters` is a view over the same
  primitive, so fault tallies and performance metrics land in one
  snapshot.
* Exporters — Chrome ``chrome://tracing``/Perfetto JSON (one *pid* per
  flash channel, one *tid* per chip/bus/accelerator), per-query latency
  breakdowns whose components sum to the end-to-end latency, busy-
  fraction utilization timelines, and a busiest-resource / idle-gap
  profile.  ``python -m repro trace`` and ``python -m repro profile``
  are the CLI front ends.
* :class:`TraceCollector` + :class:`CriticalPath` — distributed query
  tracing (one causal span tree per query, scatter attempts and hedge
  losers included, Chrome-flow export) and bit-exact critical-path
  attribution with :class:`FleetAttribution` tail analysis.
  ``python -m repro explain`` is the CLI front end.
* :class:`SloMonitor` — windowed SLO gauges over the DES timeline with
  declarative :class:`BurnRateRule` alerting; ``python -m repro slo``
  runs it over a chaos day and reports alert latency.
"""

from repro.obs.dtrace import (
    CriticalPath,
    FleetAttribution,
    QuerySpan,
    QueryTraceContext,
    Segment,
    TraceCollector,
    cache_hit_critical_path,
    cluster_critical_path,
    device_critical_path,
    dtrace_chrome,
    recovery_critical_path,
    write_dtrace,
)
from repro.obs.export import (
    LatencyBreakdown,
    ResourceUsage,
    chrome_trace,
    profile_resources,
    query_breakdown,
    utilization_timelines,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    percentile,
)
from repro.obs.slo import (
    Alert,
    BurnRateRule,
    SloMonitor,
    SloSpec,
    default_chaos_monitor,
)
from repro.obs.tracer import NULL_TRACER, Instant, NullTracer, Span, Tracer, TrackHandle

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Instant",
    "TrackHandle",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "percentile",
    "chrome_trace",
    "write_chrome_trace",
    "query_breakdown",
    "LatencyBreakdown",
    "utilization_timelines",
    "profile_resources",
    "ResourceUsage",
    "QueryTraceContext",
    "QuerySpan",
    "TraceCollector",
    "dtrace_chrome",
    "write_dtrace",
    "Segment",
    "CriticalPath",
    "cluster_critical_path",
    "device_critical_path",
    "cache_hit_critical_path",
    "recovery_critical_path",
    "FleetAttribution",
    "SloSpec",
    "BurnRateRule",
    "Alert",
    "SloMonitor",
    "default_chaos_monitor",
]
