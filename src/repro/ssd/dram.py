"""SSD-internal DRAM model.

Modern SSD controllers carry a few GB of DRAM at 15-26 GB/s (paper §4.5;
we use the paper's 20 GB/s working number).  DeepStore uses it for the
query cache, cached database metadata, staged model weights, and per-
accelerator result buffers.  The model tracks named allocations against
capacity and provides both an analytic transfer-time helper and an
event-driven port (a shared :class:`~repro.sim.Resource`).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim import Resource, Simulator


class DramError(RuntimeError):
    """Raised on over-allocation or unknown buffer names."""


class SsdDram:
    """Capacity + bandwidth model of the SSD's DRAM."""

    def __init__(
        self,
        capacity_bytes: int,
        bandwidth_bytes_per_s: float,
        sim: Optional[Simulator] = None,
    ):
        if capacity_bytes <= 0 or bandwidth_bytes_per_s <= 0:
            raise ValueError("DRAM capacity and bandwidth must be positive")
        self.capacity_bytes = capacity_bytes
        self.bandwidth = bandwidth_bytes_per_s
        self._allocations: Dict[str, int] = {}
        self._port = Resource(sim, name="dram-port") if sim is not None else None
        self.bytes_transferred = 0

    # ------------------------------------------------------------------
    # capacity accounting
    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, name: str, nbytes: int) -> None:
        """Reserve a named buffer (idempotent resize for the same name)."""
        if nbytes < 0:
            raise DramError(f"negative allocation for {name!r}")
        current = self._allocations.get(name, 0)
        if nbytes - current > self.free_bytes:
            raise DramError(
                f"DRAM exhausted: {name!r} needs {nbytes - current} more bytes, "
                f"{self.free_bytes} free of {self.capacity_bytes}"
            )
        self._allocations[name] = nbytes

    def free(self, name: str) -> None:
        """Release a named buffer."""
        if name not in self._allocations:
            raise DramError(f"no allocation named {name!r}")
        del self._allocations[name]

    def allocation(self, name: str) -> int:
        """Current size of a named buffer (0 when absent)."""
        return self._allocations.get(name, 0)

    # ------------------------------------------------------------------
    # bandwidth
    # ------------------------------------------------------------------
    def transfer_seconds(self, nbytes: int, sharers: int = 1) -> float:
        """Analytic time to move ``nbytes`` with ``sharers`` contenders."""
        if nbytes < 0:
            raise DramError("negative transfer")
        if sharers <= 0:
            raise DramError("sharers must be positive")
        self.bytes_transferred += nbytes
        return nbytes / (self.bandwidth / sharers)

    def transfer_event(self, nbytes: int, on_done: Callable[[], None]) -> None:
        """Event-driven transfer through the shared DRAM port."""
        if self._port is None:
            raise DramError("DRAM was constructed without a simulator")
        self.bytes_transferred += nbytes
        self._port.acquire(nbytes / self.bandwidth, on_done)
