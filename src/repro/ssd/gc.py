"""Page-mapped write path: garbage collection and wear leveling.

The paper's SSD background (§2.2) lists the FTL's jobs — "parsing block
I/O commands, garbage collection, and wear-leveling" — and DeepStore
§4.4 runs its feature databases over "a regular block-level FTL".
Feature databases themselves are write-once/append-only (handled by
:class:`repro.ssd.ftl.BlockFtl`), but the drive still serves regular
block I/O; this module implements that path so mixed-workload
experiments (queries + host writes) have a real substrate:

* a **page-mapping table** over a host LBA space;
* out-of-place writes into the active block, invalidating old versions;
* **greedy garbage collection** (min-valid-pages victim) triggered when
  free blocks fall below a watermark, with valid-page relocation counted
  toward write amplification;
* **wear leveling** — erase counts per block, with victim selection
  tie-breaking toward cold (low-erase) blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ssd.geometry import SsdGeometry


class GcError(RuntimeError):
    """Raised when the write path runs out of space."""


@dataclass
class _Block:
    """One erase block's state."""

    block_id: int
    pages: int
    valid: int = 0
    written: int = 0
    erase_count: int = 0
    #: lpn stored in each page slot (None = invalid/erased)
    slots: List[Optional[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.slots:
            self.slots = [None] * self.pages

    @property
    def full(self) -> bool:
        return self.written >= self.pages

    @property
    def invalid(self) -> int:
        return self.written - self.valid

    def erase(self) -> None:
        self.valid = 0
        self.written = 0
        self.erase_count += 1
        self.slots = [None] * self.pages


@dataclass
class GcStats:
    """Counters for write-amplification and wear analysis."""

    host_writes: int = 0
    relocations: int = 0
    erases: int = 0
    gc_invocations: int = 0

    @property
    def total_writes(self) -> int:
        return self.host_writes + self.relocations

    @property
    def write_amplification(self) -> float:
        if self.host_writes == 0:
            return 1.0
        return self.total_writes / self.host_writes


class PageMappedFtl:
    """Greedy-GC, wear-aware page-mapping FTL over a block pool.

    ``blocks`` x ``pages_per_block`` physical pages back a logical space
    of ``logical_pages`` (the difference is over-provisioning, which
    controls write amplification).
    """

    #: GC runs while free blocks are at or below this watermark (keep at
    #: least two blocks free: the next active block plus GC headroom)
    GC_WATERMARK = 1

    def __init__(
        self,
        blocks: int,
        pages_per_block: int,
        logical_pages: int,
        wear_weight: float = 0.1,
    ):
        if blocks < 4:
            raise ValueError("need at least 4 blocks (active + GC headroom)")
        if pages_per_block <= 0:
            raise ValueError("pages_per_block must be positive")
        capacity = blocks * pages_per_block
        if not 0 < logical_pages <= capacity - 2 * pages_per_block:
            raise ValueError(
                f"logical space {logical_pages} must leave at least two "
                f"blocks of over-provisioning in {capacity} pages"
            )
        if wear_weight < 0:
            raise ValueError("wear_weight cannot be negative")
        self.pages_per_block = pages_per_block
        self.logical_pages = logical_pages
        self.wear_weight = wear_weight
        self._blocks = [_Block(i, pages_per_block) for i in range(blocks)]
        self._free: List[int] = list(range(1, blocks))
        self._active = self._blocks[0]
        self._next_slot = 0
        #: lpn -> (block_id, slot) mapping table
        self._map: Dict[int, tuple] = {}
        self.stats = GcStats()

    @classmethod
    def for_geometry(cls, geometry: SsdGeometry, channel: int = 0,
                     op_fraction: float = 0.07) -> "PageMappedFtl":
        """An FTL sized like one channel of ``geometry``."""
        blocks = geometry.chips_per_channel * geometry.planes_per_chip \
            * geometry.blocks_per_plane
        capacity = blocks * geometry.pages_per_block
        logical = int(capacity * (1 - op_fraction))
        logical = min(logical, capacity - 2 * geometry.pages_per_block)
        return cls(blocks, geometry.pages_per_block, logical)

    # ------------------------------------------------------------------
    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def lookup(self, lpn: int) -> Optional[tuple]:
        """Physical (block, slot) for a logical page, if written."""
        self._check_lpn(lpn)
        return self._map.get(lpn)

    def write(self, lpn: int) -> None:
        """Host write of one logical page (out of place)."""
        self._check_lpn(lpn)
        self._invalidate(lpn)
        self._program(lpn, host=True)
        self._maybe_collect()

    def trim(self, lpn: int) -> None:
        """Host discard of a logical page."""
        self._check_lpn(lpn)
        self._invalidate(lpn)
        self._map.pop(lpn, None)

    # ------------------------------------------------------------------
    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise GcError(f"LPN {lpn} outside logical space {self.logical_pages}")

    def _invalidate(self, lpn: int) -> None:
        location = self._map.get(lpn)
        if location is None:
            return
        block = self._blocks[location[0]]
        block.valid -= 1
        block.slots[location[1]] = None

    def _program(self, lpn: int, host: bool) -> None:
        if self._active.full:
            self._advance_active()
        slot = self._active.written
        self._active.slots[slot] = lpn
        self._active.written += 1
        self._active.valid += 1
        self._map[lpn] = (self._active.block_id, slot)
        if host:
            self.stats.host_writes += 1
        else:
            self.stats.relocations += 1

    def _advance_active(self) -> None:
        if not self._free:
            raise GcError("no free blocks: GC failed to reclaim space")
        self._active = self._blocks[self._free.pop(0)]

    def _maybe_collect(self) -> None:
        while len(self._free) <= self.GC_WATERMARK:
            victim = self._pick_victim()
            if victim is None:
                return
            self._collect(victim)

    def _pick_victim(self) -> Optional[_Block]:
        """Greedy victim with a wear-leveling tie-break.

        Cost-benefit: prefer the block with the fewest valid pages
        (cheapest to reclaim); among similar candidates, prefer the one
        erased least so wear spreads.
        """
        candidates = [
            b for b in self._blocks
            if b.full and b is not self._active and b.block_id not in self._free
        ]
        if not candidates:
            return None
        max_erase = max(b.erase_count for b in candidates) or 1

        def score(b: _Block) -> float:
            return b.valid + self.wear_weight * self.pages_per_block * (
                b.erase_count / max_erase
            )

        victim = min(candidates, key=score)
        if victim.valid >= self.pages_per_block:
            return None  # nothing reclaimable
        return victim

    def _collect(self, victim: _Block) -> None:
        self.stats.gc_invocations += 1
        for slot, lpn in enumerate(victim.slots):
            if lpn is not None:
                self._program(lpn, host=False)
        victim.erase()
        self.stats.erases += 1
        self._free.append(victim.block_id)

    # ------------------------------------------------------------------
    def erase_counts(self) -> List[int]:
        """Per-block erase counters (wear analysis)."""
        return [b.erase_count for b in self._blocks]

    def wear_imbalance(self) -> float:
        """Max/mean erase-count ratio (1.0 = perfectly level)."""
        counts = self.erase_counts()
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean
