"""Event-driven SSD simulator (SSD-Sim substitute).

Models the internal organization of a modern NVMe SSD at the granularity
the paper's evaluation depends on: channels with a shared bus, flash chips
with independently operating planes and page buffers, a block-level FTL,
SSD DRAM, and the external host link.  Default parameters follow paper
§6.1: 32 channels x 4 chips x 8 planes, 512 blocks/plane, 128 pages/block,
16 KB pages, 53 us array read latency, 800 MB/s per channel, 3.2 GB/s
measured external bandwidth, 20 GB/s DRAM.
"""

from repro.ssd.geometry import PhysicalPageAddress, SsdGeometry
from repro.ssd.timing import FlashTiming, SsdConfig
from repro.ssd.flash import FlashChip
from repro.ssd.controller import ChannelController
from repro.ssd.ftl import BlockFtl, DatabaseMetadata, FtlError
from repro.ssd.dram import SsdDram
from repro.ssd.ssd import Ssd
from repro.ssd.trace import PageAccess, scan_trace
from repro.ssd.gc import GcStats, PageMappedFtl
from repro.ssd.host_io import HostIoWorkload, InterferenceModel

__all__ = [
    "SsdGeometry",
    "PhysicalPageAddress",
    "FlashTiming",
    "SsdConfig",
    "FlashChip",
    "ChannelController",
    "BlockFtl",
    "DatabaseMetadata",
    "FtlError",
    "SsdDram",
    "Ssd",
    "PageAccess",
    "scan_trace",
    "PageMappedFtl",
    "GcStats",
    "HostIoWorkload",
    "InterferenceModel",
]
