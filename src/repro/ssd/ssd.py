"""Whole-SSD composition.

:class:`Ssd` wires the pieces together: one :class:`ChannelController` per
channel, the block FTL, the DRAM, and the external host link.  It offers
two complementary interfaces:

* **event-driven** — ``read_pages`` replays a page trace through the flash
  timing model; used by the DeepStore system model's high-fidelity path
  and by the steady-state bandwidth probe;
* **analytic** — closed-form sequential-scan times for the host link and
  the internal stripes; used by parameter sweeps.  Tests assert the two
  agree in steady state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.sim import Simulator
from repro.ssd.controller import ChannelController
from repro.ssd.dram import SsdDram
from repro.ssd.ftl import BlockFtl, DatabaseMetadata
from repro.ssd.geometry import PhysicalPageAddress
from repro.ssd.timing import SsdConfig
from repro.ssd.trace import PageAccess, scan_trace


@dataclass
class ScanMeasurement:
    """Result of an event-driven scan (window) measurement."""

    pages: int
    bytes: int
    seconds: float

    @property
    def bandwidth(self) -> float:
        return self.bytes / self.seconds if self.seconds > 0 else 0.0


class Ssd:
    """An SSD instance: geometry + timing + FTL + DRAM + channels."""

    def __init__(self, config: Optional[SsdConfig] = None, sim: Optional[Simulator] = None):
        self.config = config or SsdConfig()
        self.sim = sim or Simulator()
        geo = self.config.geometry
        self.channels: List[ChannelController] = [
            ChannelController(self.sim, geo, self.config.timing, i)
            for i in range(geo.channels)
        ]
        self.ftl = BlockFtl(geo)
        self.dram = SsdDram(
            self.config.dram_bytes, self.config.dram_bandwidth, sim=self.sim
        )

    # ------------------------------------------------------------------
    # analytic interface
    # ------------------------------------------------------------------
    def host_read_seconds(self, nbytes: int) -> float:
        """Time for the host to read ``nbytes`` over the external link."""
        if nbytes < 0:
            raise ValueError("negative read size")
        return nbytes / self.config.external_bandwidth

    def database_write_seconds(self, meta: DatabaseMetadata) -> float:
        """Time to ingest a feature database (the ``writeDB`` path).

        The host streams the payload over the external link while all
        channels program pages in parallel; each plane pipelines
        programs, so the steady write rate per channel is one page per
        ``program_latency / planes`` (program-limited) or per bus
        transfer (bus-limited), whichever is slower — bounded overall by
        the external link.
        """
        timing = self.config.timing
        geo = self.config.geometry
        page_time = (
            timing.transfer_seconds(geo.page_bytes) + timing.command_overhead_s
        )
        program_limit = timing.program_latency_s / geo.planes_per_channel
        per_page_channel = max(page_time, program_limit)
        internal = meta.total_pages * per_page_channel / geo.channels
        external = meta.stored_bytes / self.config.external_bandwidth
        return max(internal, external) + timing.program_latency_s

    def gc_seconds(self, relocations: int, erases: int) -> float:
        """Time cost of background GC work (read + program per
        relocation, plus block erases), aggregated over channels."""
        if relocations < 0 or erases < 0:
            raise ValueError("negative GC work")
        timing = self.config.timing
        per_relocation = timing.array_read_latency_s + timing.program_latency_s
        busy = relocations * per_relocation + erases * timing.erase_latency_s
        return busy / self.config.geometry.channels

    def channel_scan_seconds(self, nbytes_on_channel: int) -> float:
        """Steady-state time for one channel to stream ``nbytes``.

        The channel bus is the sequential-scan bottleneck whenever
        ``planes_per_channel * page_time > array_latency``, which holds
        for every configuration in the paper; otherwise the array limits.
        """
        timing = self.config.timing
        geo = self.config.geometry
        page_time = (
            timing.transfer_seconds(geo.page_bytes) + timing.command_overhead_s
        )
        array_rate_limit = timing.array_read_latency_s / geo.planes_per_channel
        per_page = max(page_time, array_rate_limit)
        pages = geo.pages_for_bytes(nbytes_on_channel)
        # Fill the pipeline once with a single array read.
        return timing.array_read_latency_s + pages * per_page

    # ------------------------------------------------------------------
    # event-driven interface
    # ------------------------------------------------------------------
    def read_pages(
        self,
        accesses: Iterable[PageAccess],
        on_page: Optional[Callable[[PhysicalPageAddress], None]] = None,
        max_outstanding_per_channel: int = 64,
    ) -> ScanMeasurement:
        """Replay a page trace to completion and measure elapsed time.

        Requests are throttled to ``max_outstanding_per_channel`` in
        flight per channel, modelling the controller's bounded command
        queues.
        """
        pending = list(accesses)
        total_pages = len(pending)
        if total_pages == 0:
            return ScanMeasurement(0, 0, 0.0)
        per_channel: List[List[PageAccess]] = [[] for _ in self.channels]
        for access in pending:
            per_channel[access.address.channel].append(access)
        start = self.sim.now
        done_pages = 0

        def make_issuer(channel_idx: int):
            queue = per_channel[channel_idx]
            cursor = {"next": 0}

            def issue_one() -> None:
                i = cursor["next"]
                if i >= len(queue):
                    return
                cursor["next"] = i + 1
                access = queue[i]

                def delivered(addr: PhysicalPageAddress) -> None:
                    nonlocal done_pages
                    done_pages += 1
                    if on_page is not None:
                        on_page(addr)
                    issue_one()

                self.channels[channel_idx].read_page(access.address, delivered)

            return issue_one

        for idx, queue in enumerate(per_channel):
            issuer = make_issuer(idx)
            for _ in range(min(max_outstanding_per_channel, len(queue))):
                issuer()

        self.sim.run(stop_when=lambda: done_pages >= total_pages)
        seconds = self.sim.now - start
        nbytes = total_pages * self.config.geometry.page_bytes
        return ScanMeasurement(pages=total_pages, bytes=nbytes, seconds=seconds)

    def measure_scan_bandwidth(
        self, meta: DatabaseMetadata, window_pages: int = 512
    ) -> float:
        """Event-driven steady-state scan bandwidth over a page window."""
        trace = scan_trace(meta, self.config.geometry, max_pages=window_pages)
        measurement = self.read_pages(trace)
        return measurement.bandwidth
