"""Flash chip and plane timing model.

Each chip contains independently operating planes (paper §2.2).  A plane
services one array read at a time: it is busy for the array read latency,
after which the page sits in the plane's **page buffer** until the channel
bus drains it.  The plane cannot start the next read until its buffer is
free — this buffer hand-off is what couples array latency and channel
bandwidth, and is why Fig. 9 shows only ~10% slowdown at 4x latency: with
32 planes per channel the bus, not the array, is the steady-state limiter.

When a :class:`~repro.faults.FaultInjector` is attached, a page read may
need ECC **read-retry** passes: the plane re-arms and senses again with
shifted read-reference voltages, occupying the plane for one extra array
read latency per pass (the dominant real-world NAND tail-latency source).
Reads targeting a hard-failed chip/plane complete as *failures* instead
of deliveries.  Without an injector the timing path is bit-identical to
the original fault-free model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.sim import Simulator
from repro.ssd.geometry import PhysicalPageAddress
from repro.ssd.timing import FlashTiming

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector
    from repro.obs.tracer import TrackHandle


@dataclass
class _PlaneState:
    """Occupancy of one plane: idle -> reading -> buffered -> idle."""

    reading: bool = False
    buffered: bool = False
    queue: Deque["PageReadRequest"] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.queue is None:
            self.queue = deque()

    @property
    def can_start(self) -> bool:
        return not self.reading and not self.buffered


@dataclass
class PageReadRequest:
    """One page read against a specific plane.

    ``on_failed`` (optional) fires instead of ``on_buffered`` when the
    target chip/plane is hard-failed under the active fault plan.
    """

    address: PhysicalPageAddress
    on_buffered: Callable[["PageReadRequest"], None]
    issue_time: float = 0.0
    buffered_time: float = 0.0
    on_failed: Optional[Callable[["PageReadRequest"], None]] = None
    #: extra array-read passes this read cost (filled in by the chip)
    retry_passes: int = 0
    #: when the plane actually started sensing (queueing excluded)
    service_start: float = 0.0


class FlashChip:
    """Event-driven model of one flash chip (a set of planes)."""

    def __init__(
        self,
        sim: Simulator,
        timing: FlashTiming,
        planes: int,
        name: str = "chip",
        injector: Optional["FaultInjector"] = None,
    ):
        if planes <= 0:
            raise ValueError("chip needs at least one plane")
        self.sim = sim
        self.timing = timing
        self.name = name
        self.injector = injector
        self._planes = [_PlaneState() for _ in range(planes)]
        self.pages_read = 0
        self.reads_failed = 0
        self.retry_passes = 0
        #: trace lane for this chip's array reads (set by the channel
        #: controller when tracing; None keeps the hooks free)
        self.track: Optional["TrackHandle"] = None

    @property
    def plane_count(self) -> int:
        return len(self._planes)

    def plane_queue_depth(self, plane: int) -> int:
        """Pending reads queued behind one plane."""
        return len(self._planes[plane].queue)

    def read(self, request: PageReadRequest) -> None:
        """Queue an array read; ``on_buffered`` fires when the page lands
        in the plane's page buffer (channel transfer is the caller's job).
        """
        plane = self._planes[request.address.plane]
        request.issue_time = self.sim.now
        if self._read_fails(request):
            return
        if plane.can_start:
            self._start(plane, request)
        else:
            plane.queue.append(request)

    def _read_fails(self, request: PageReadRequest) -> bool:
        """Fail reads against hard-dead planes (fault plan only)."""
        inj = self.injector
        if inj is None or not inj.plan.injects_hard_failures:
            return False
        addr = request.address
        if not inj.plane_dead(addr.channel, addr.chip, addr.plane, self.sim.now):
            return False
        inj.note_failed_read()
        self.reads_failed += 1
        if self.track is not None and self.sim.tracer is not None:
            self.sim.tracer.instant(
                self.track, "read-failed", self.sim.now, cat="ssd.fault",
                args={"plane": request.address.plane},
            )
        if request.on_failed is not None:
            # the controller learns of the failure after the command
            # round-trip, not instantaneously
            self.sim.schedule_after(
                self.timing.command_overhead_s,
                lambda: request.on_failed(request),
                label=f"{self.name}-read-failed",
            )
        return True

    def release_buffer(self, plane_index: int) -> None:
        """Called by the channel controller once the bus drained the page."""
        plane = self._planes[plane_index]
        if not plane.buffered:
            raise RuntimeError(f"{self.name} plane {plane_index}: buffer not held")
        plane.buffered = False
        if plane.queue and plane.can_start:
            self._start(plane, plane.queue.popleft())

    # ------------------------------------------------------------------
    def _start(self, plane: _PlaneState, request: PageReadRequest) -> None:
        plane.reading = True
        request.service_start = self.sim.now
        retries = 0
        if self.injector is not None:
            retries = self.injector.page_read_retries(request.address)
            request.retry_passes = retries
            self.retry_passes += retries
        self._arm(plane, request, retries)

    def _arm(self, plane: _PlaneState, request: PageReadRequest, passes_left: int) -> None:
        """Schedule one array-read pass; re-arm while ECC retries remain."""
        self.sim.schedule_after(
            self.timing.array_read_latency_s,
            lambda: self._pass_done(plane, request, passes_left),
            label=f"{self.name}-read",
        )

    def _pass_done(self, plane: _PlaneState, request: PageReadRequest, passes_left: int) -> None:
        if passes_left > 0:
            # read-retry: shift reference voltages and sense again; the
            # plane stays busy for another full array read latency
            self._arm(plane, request, passes_left - 1)
            return
        self._finish_read(plane, request)

    def _finish_read(self, plane: _PlaneState, request: PageReadRequest) -> None:
        plane.reading = False
        plane.buffered = True
        self.pages_read += 1
        request.buffered_time = self.sim.now
        if self.track is not None and self.sim.tracer is not None:
            args = {"plane": request.address.plane}
            if request.retry_passes:
                # fault metadata: ECC read-retry passes stretched this span
                args["retry_passes"] = request.retry_passes
            self.sim.tracer.complete(
                self.track, "array-read", request.service_start,
                self.sim.now - request.service_start,
                cat="ssd.flash", args=args,
            )
        request.on_buffered(request)
