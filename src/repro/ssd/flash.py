"""Flash chip and plane timing model.

Each chip contains independently operating planes (paper §2.2).  A plane
services one array read at a time: it is busy for the array read latency,
after which the page sits in the plane's **page buffer** until the channel
bus drains it.  The plane cannot start the next read until its buffer is
free — this buffer hand-off is what couples array latency and channel
bandwidth, and is why Fig. 9 shows only ~10% slowdown at 4x latency: with
32 planes per channel the bus, not the array, is the steady-state limiter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.sim import Simulator
from repro.ssd.geometry import PhysicalPageAddress
from repro.ssd.timing import FlashTiming


@dataclass
class _PlaneState:
    """Occupancy of one plane: idle -> reading -> buffered -> idle."""

    reading: bool = False
    buffered: bool = False
    queue: Deque["PageReadRequest"] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.queue is None:
            self.queue = deque()

    @property
    def can_start(self) -> bool:
        return not self.reading and not self.buffered


@dataclass
class PageReadRequest:
    """One page read against a specific plane."""

    address: PhysicalPageAddress
    on_buffered: Callable[["PageReadRequest"], None]
    issue_time: float = 0.0
    buffered_time: float = 0.0


class FlashChip:
    """Event-driven model of one flash chip (a set of planes)."""

    def __init__(
        self,
        sim: Simulator,
        timing: FlashTiming,
        planes: int,
        name: str = "chip",
    ):
        if planes <= 0:
            raise ValueError("chip needs at least one plane")
        self.sim = sim
        self.timing = timing
        self.name = name
        self._planes = [_PlaneState() for _ in range(planes)]
        self.pages_read = 0

    @property
    def plane_count(self) -> int:
        return len(self._planes)

    def plane_queue_depth(self, plane: int) -> int:
        """Pending reads queued behind one plane."""
        return len(self._planes[plane].queue)

    def read(self, request: PageReadRequest) -> None:
        """Queue an array read; ``on_buffered`` fires when the page lands
        in the plane's page buffer (channel transfer is the caller's job).
        """
        plane = self._planes[request.address.plane]
        request.issue_time = self.sim.now
        if plane.can_start:
            self._start(plane, request)
        else:
            plane.queue.append(request)

    def release_buffer(self, plane_index: int) -> None:
        """Called by the channel controller once the bus drained the page."""
        plane = self._planes[plane_index]
        if not plane.buffered:
            raise RuntimeError(f"{self.name} plane {plane_index}: buffer not held")
        plane.buffered = False
        if plane.queue and plane.can_start:
            self._start(plane, plane.queue.popleft())

    # ------------------------------------------------------------------
    def _start(self, plane: _PlaneState, request: PageReadRequest) -> None:
        plane.reading = True
        self.sim.schedule_after(
            self.timing.array_read_latency_s,
            lambda: self._finish_read(plane, request),
            label=f"{self.name}-read",
        )

    def _finish_read(self, plane: _PlaneState, request: PageReadRequest) -> None:
        plane.reading = False
        plane.buffered = True
        self.pages_read += 1
        request.buffered_time = self.sim.now
        request.on_buffered(request)
