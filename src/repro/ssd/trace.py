"""Flash access trace generation.

The paper's methodology (§5) couples its two simulators through traces:
the modified SCALE-Sim emits the flash accesses needed to stream database
feature vectors, and SSD-Sim replays them to produce I/O timing.  We keep
the same interface: :func:`scan_trace` turns database metadata into the
ordered page accesses of a full scan, optionally restricted to one
channel's stripe (each channel-level accelerator scans only the pages that
live on its channel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.geometry import PhysicalPageAddress, SsdGeometry


@dataclass(frozen=True)
class PageAccess:
    """One page read in a trace."""

    ppn: int
    address: PhysicalPageAddress
    db_page_offset: int


def scan_trace(
    meta: DatabaseMetadata,
    geometry: SsdGeometry,
    channel: Optional[int] = None,
    start_page: int = 0,
    max_pages: Optional[int] = None,
) -> Iterator[PageAccess]:
    """Yield the page accesses of a sequential database scan.

    With ``channel`` set, only pages stored on that channel are yielded —
    the stripe a single channel-level (or chip-level, further filtered by
    the caller) accelerator consumes.  ``start_page``/``max_pages`` select
    a window, which the steady-state simulation mode uses.
    """
    if channel is not None and not 0 <= channel < geometry.channels:
        raise ValueError(f"channel {channel} out of range")
    if max_pages is not None and max_pages <= 0:
        return
    emitted = 0
    for offset, ppn in enumerate(meta.all_ppns()):
        if offset < start_page:
            continue
        address = geometry.ppn_to_address(ppn)
        if channel is not None and address.channel != channel:
            continue
        yield PageAccess(ppn=ppn, address=address, db_page_offset=offset)
        emitted += 1
        if max_pages is not None and emitted >= max_pages:
            return


def _scan_ppn_array(meta: DatabaseMetadata) -> "np.ndarray":
    """PPNs of the full scan, in scan order, as one int64 array.

    Mirrors :meth:`DatabaseMetadata.all_ppns` exactly, including the
    clamp to ``total_pages`` (the final extent may be oversized while a
    sub-page append tail is buffered).
    """
    remaining = meta.total_pages
    chunks = []
    for extent in meta.extents:
        if remaining <= 0:
            break
        count = min(extent.num_pages, remaining)
        chunks.append(
            np.arange(extent.start_ppn, extent.start_ppn + count, dtype=np.int64)
        )
        remaining -= count
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


def _decode_accesses(
    geometry: SsdGeometry, ppns: "np.ndarray", offsets: "np.ndarray"
) -> List[PageAccess]:
    """Vectorized :meth:`SsdGeometry.ppn_to_address` over an array.

    One modulo/divide per field over the whole array replaces one
    python-level decode per page; the resulting :class:`PageAccess`
    objects are field-for-field equal to the generator's.
    """
    if ppns.size == 0:
        return []
    if int(ppns[0]) < 0 or int(ppns[-1]) >= geometry.total_pages:
        # scan order is ascending, so the endpoints bound the range;
        # fall back to the scalar decode for its exact error message
        for ppn in (int(ppns[0]), int(ppns[-1])):
            geometry.ppn_to_address(ppn)
    channel = ppns % geometry.channels
    rest = ppns // geometry.channels
    chip = rest % geometry.chips_per_channel
    rest = rest // geometry.chips_per_channel
    plane = rest % geometry.planes_per_chip
    rest = rest // geometry.planes_per_chip
    page = rest % geometry.pages_per_block
    block = rest // geometry.pages_per_block
    return [
        PageAccess(
            ppn=pp,
            address=PhysicalPageAddress(ch, cp, pl, bl, pg),
            db_page_offset=off,
        )
        for pp, ch, cp, pl, bl, pg, off in zip(
            ppns.tolist(), channel.tolist(), chip.tolist(),
            plane.tolist(), block.tolist(), page.tolist(), offsets.tolist(),
        )
    ]


def scan_trace_bulk(
    meta: DatabaseMetadata,
    geometry: SsdGeometry,
    channel: Optional[int] = None,
    start_page: int = 0,
    max_pages: Optional[int] = None,
) -> List[PageAccess]:
    """Materialized :func:`scan_trace`, computed with numpy.

    Produces exactly ``list(scan_trace(...))`` — same pages, same order,
    same field values — but decodes addresses array-at-a-time instead of
    page-at-a-time.  The property suite in ``tests/test_sim_fastpath.py``
    asserts the equivalence for arbitrary extents/windows/channels.
    """
    if channel is not None and not 0 <= channel < geometry.channels:
        raise ValueError(f"channel {channel} out of range")
    ppns = _scan_ppn_array(meta)
    offsets = np.arange(ppns.size, dtype=np.int64)
    if start_page > 0:
        ppns = ppns[start_page:]
        offsets = offsets[start_page:]
    if channel is not None:
        mask = ppns % geometry.channels == channel
        ppns = ppns[mask]
        offsets = offsets[mask]
    if max_pages is not None:
        ppns = ppns[:max_pages]
        offsets = offsets[:max_pages]
    return _decode_accesses(geometry, ppns, offsets)


def scan_traces_by_channel(
    meta: DatabaseMetadata,
    geometry: SsdGeometry,
    start_page: int = 0,
    max_pages_per_channel: Optional[int] = None,
) -> Dict[int, List[PageAccess]]:
    """All per-channel stripe traces from **one** pass over the scan.

    Equivalent to ``{ch: list(scan_trace(meta, geo, channel=ch, ...))
    for ch in range(geo.channels)}`` — which re-enumerates and re-decodes
    the entire database once *per channel*.  The channel-level event
    simulation needs every stripe anyway, so a single enumeration plus a
    group-by on ``ppn % channels`` does the same work ``channels``×
    cheaper; this was ~80% of event-query wall time before.
    """
    ppns = _scan_ppn_array(meta)
    offsets = np.arange(ppns.size, dtype=np.int64)
    if start_page > 0:
        ppns = ppns[start_page:]
        offsets = offsets[start_page:]
    traces: Dict[int, List[PageAccess]] = {}
    channels = ppns % geometry.channels if ppns.size else ppns
    for ch in range(geometry.channels):
        mask = channels == ch
        ch_ppns = ppns[mask]
        ch_offsets = offsets[mask]
        if max_pages_per_channel is not None:
            ch_ppns = ch_ppns[:max_pages_per_channel]
            ch_offsets = ch_offsets[:max_pages_per_channel]
        traces[ch] = _decode_accesses(geometry, ch_ppns, ch_offsets)
    return traces


def stripe_page_count(
    meta: DatabaseMetadata, geometry: SsdGeometry, channel: int
) -> int:
    """Number of database pages stored on ``channel``.

    For the sequential allocator, PPNs are channel-major, so a database of
    ``P`` pages places ``ceil/floor(P / channels)`` pages per channel
    depending on the start offset; this computes the exact count without
    enumerating the trace.
    """
    if not 0 <= channel < geometry.channels:
        raise ValueError(f"channel {channel} out of range")
    total = 0
    for extent in meta.extents:
        # pages of this extent that land on `channel`
        first = extent.start_ppn
        count = extent.num_pages
        first_ch = first % geometry.channels
        delta = (channel - first_ch) % geometry.channels
        if delta < count:
            total += 1 + (count - delta - 1) // geometry.channels
    # Clamp to the logical page count (the final extent may be oversized
    # relative to `total_pages` only when appends buffered a tail).
    return min(total, meta.total_pages)


def stripe_feature_count(
    meta: DatabaseMetadata, geometry: SsdGeometry, channel: int
) -> float:
    """Approximate number of features a channel's stripe holds."""
    pages = stripe_page_count(meta, geometry, channel)
    if meta.page_aligned:
        return pages / meta.pages_per_feature
    return min(float(meta.feature_count), pages * meta.features_per_page)
