"""Flash access trace generation.

The paper's methodology (§5) couples its two simulators through traces:
the modified SCALE-Sim emits the flash accesses needed to stream database
feature vectors, and SSD-Sim replays them to produce I/O timing.  We keep
the same interface: :func:`scan_trace` turns database metadata into the
ordered page accesses of a full scan, optionally restricted to one
channel's stripe (each channel-level accelerator scans only the pages that
live on its channel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.geometry import PhysicalPageAddress, SsdGeometry


@dataclass(frozen=True)
class PageAccess:
    """One page read in a trace."""

    ppn: int
    address: PhysicalPageAddress
    db_page_offset: int


def scan_trace(
    meta: DatabaseMetadata,
    geometry: SsdGeometry,
    channel: Optional[int] = None,
    start_page: int = 0,
    max_pages: Optional[int] = None,
) -> Iterator[PageAccess]:
    """Yield the page accesses of a sequential database scan.

    With ``channel`` set, only pages stored on that channel are yielded —
    the stripe a single channel-level (or chip-level, further filtered by
    the caller) accelerator consumes.  ``start_page``/``max_pages`` select
    a window, which the steady-state simulation mode uses.
    """
    if channel is not None and not 0 <= channel < geometry.channels:
        raise ValueError(f"channel {channel} out of range")
    emitted = 0
    for offset, ppn in enumerate(meta.all_ppns()):
        if offset < start_page:
            continue
        address = geometry.ppn_to_address(ppn)
        if channel is not None and address.channel != channel:
            continue
        yield PageAccess(ppn=ppn, address=address, db_page_offset=offset)
        emitted += 1
        if max_pages is not None and emitted >= max_pages:
            return


def stripe_page_count(
    meta: DatabaseMetadata, geometry: SsdGeometry, channel: int
) -> int:
    """Number of database pages stored on ``channel``.

    For the sequential allocator, PPNs are channel-major, so a database of
    ``P`` pages places ``ceil/floor(P / channels)`` pages per channel
    depending on the start offset; this computes the exact count without
    enumerating the trace.
    """
    if not 0 <= channel < geometry.channels:
        raise ValueError(f"channel {channel} out of range")
    total = 0
    for extent in meta.extents:
        # pages of this extent that land on `channel`
        first = extent.start_ppn
        count = extent.num_pages
        first_ch = first % geometry.channels
        delta = (channel - first_ch) % geometry.channels
        if delta < count:
            total += 1 + (count - delta - 1) // geometry.channels
    # Clamp to the logical page count (the final extent may be oversized
    # relative to `total_pages` only when appends buffered a tail).
    return min(total, meta.total_pages)


def stripe_feature_count(
    meta: DatabaseMetadata, geometry: SsdGeometry, channel: int
) -> float:
    """Approximate number of features a channel's stripe holds."""
    pages = stripe_page_count(meta, geometry, channel)
    if meta.page_aligned:
        return pages / meta.pages_per_feature
    return min(float(meta.feature_count), pages * meta.features_per_page)
