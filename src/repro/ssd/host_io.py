"""Host I/O interference with in-storage queries.

DeepStore's accelerators sit only in the read path, and during query
operations "the SSD controller responds to regular read/write operations
with a busy signal" (paper §4.5) — queries preempt host I/O.  This module
models the policy space around that choice:

* ``"preempt"`` — the paper's design: queries own the channels, host I/O
  stalls until the scan finishes (query time unchanged, host I/O delayed);
* ``"share"`` — fair round-robin: host traffic takes its proportional
  slice of every channel bus, slowing I/O-bound scans;
* ``"host-priority"`` — host traffic is serviced first and the scan runs
  in the leftover bandwidth.

Both an analytic model and an event-driven injection (host page reads
competing with the accelerator's stripe scan on a real channel
controller) are provided; tests check they agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import Simulator
from repro.ssd.controller import ChannelController
from repro.ssd.geometry import PhysicalPageAddress
from repro.ssd.timing import SsdConfig

POLICIES = ("preempt", "share", "host-priority")


@dataclass(frozen=True)
class HostIoWorkload:
    """Background host traffic during a query."""

    #: fraction of each channel's bandwidth the host tries to consume
    offered_load: float
    #: read fraction of the host traffic (writes also occupy the bus)
    read_fraction: float = 0.8

    def __post_init__(self) -> None:
        if not 0 <= self.offered_load <= 1:
            raise ValueError("offered_load must be in [0, 1]")
        if not 0 <= self.read_fraction <= 1:
            raise ValueError("read_fraction must be in [0, 1]")


@dataclass
class InterferenceResult:
    """Outcome of running a scan against host traffic."""

    policy: str
    scan_slowdown: float  # scan time / isolated scan time
    host_throughput_fraction: float  # of offered load actually served


class InterferenceModel:
    """Analytic channel-sharing model."""

    def __init__(self, ssd: Optional[SsdConfig] = None):
        self.ssd = ssd or SsdConfig()

    def query_bandwidth_fraction(
        self, workload: HostIoWorkload, policy: str
    ) -> float:
        """Fraction of channel bandwidth left for the query scan."""
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        if policy == "preempt":
            return 1.0
        if policy == "share":
            # fair round-robin: the host gets at most half the bus, less
            # if it offers less
            return 1.0 - min(workload.offered_load, 0.5)
        return max(0.05, 1.0 - workload.offered_load)

    def evaluate(
        self,
        workload: HostIoWorkload,
        policy: str,
        scan_io_fraction: float = 1.0,
    ) -> InterferenceResult:
        """Slowdown of a scan whose I/O share is ``scan_io_fraction``.

        Compute-bound scans (``scan_io_fraction < 1``) hide part of the
        interference: only the I/O portion stretches.
        """
        if not 0 <= scan_io_fraction <= 1:
            raise ValueError("scan_io_fraction must be in [0, 1]")
        available = self.query_bandwidth_fraction(workload, policy)
        io_stretch = 1.0 / available
        slowdown = (1 - scan_io_fraction) + scan_io_fraction * io_stretch
        slowdown = max(1.0, slowdown)
        if policy == "preempt":
            served = 0.0
        else:
            served = min(1.0, (1.0 - 1.0 / io_stretch) / max(workload.offered_load, 1e-9))
            served = min(served, 1.0)
        return InterferenceResult(
            policy=policy,
            scan_slowdown=slowdown,
            host_throughput_fraction=served,
        )


def simulate_shared_channel(
    config: SsdConfig,
    scan_pages: int = 192,
    host_pages: int = 96,
    channel: int = 0,
) -> float:
    """Event-driven check: a stripe scan with interleaved host reads.

    Issues ``scan_pages`` query reads and ``host_pages`` host reads on
    one channel under FIFO arbitration (the "share" policy) and returns
    the scan's slowdown relative to running alone.
    """
    def run(with_host: bool) -> float:
        sim = Simulator()
        controller = ChannelController(sim, config.geometry, config.timing, channel)
        done = {"scan": 0}
        geo = config.geometry

        def address(i: int, block: int) -> PhysicalPageAddress:
            return PhysicalPageAddress(
                channel=channel,
                chip=i % geo.chips_per_channel,
                plane=(i // geo.chips_per_channel) % geo.planes_per_chip,
                block=block,
                page=i // geo.planes_per_channel % geo.pages_per_block,
            )

        scan_done_at = {"t": 0.0}

        def scan_delivered(_addr) -> None:
            done["scan"] += 1
            if done["scan"] == scan_pages:
                scan_done_at["t"] = sim.now

        # Interleave the two request streams so they contend under FIFO
        # arbitration the way concurrently-arriving traffic would.
        requests = [(i, 0, scan_delivered) for i in range(scan_pages)]
        if with_host:
            stride = max(1, scan_pages // max(1, host_pages))
            merged = []
            host_iter = iter(range(host_pages))
            for idx, req in enumerate(requests):
                merged.append(req)
                if idx % stride == stride - 1:
                    h = next(host_iter, None)
                    if h is not None:
                        merged.append((h, 1, lambda a: None))
            merged.extend((h, 1, lambda a: None) for h in host_iter)
            requests = merged
        for i, block, callback in requests:
            controller.read_page(address(i, block=block), callback)
        sim.run(stop_when=lambda: done["scan"] >= scan_pages)
        return scan_done_at["t"] or sim.now

    alone = run(with_host=False)
    shared = run(with_host=True)
    return shared / alone
