"""Block-level flash translation layer and database metadata.

DeepStore bypasses per-page FTL translation for query scans: a feature
database is written striped across channels/chips, its 32-byte metadata
record (db_id, starting physical address, feature size, feature count —
paper §4.7.2) is persisted in a reserved flash block and cached in SSD
DRAM, and accelerators compute each feature's physical address from the
metadata by offset arithmetic (paper §4.4).

This module implements:

* a sequential **extent allocator** over physical page numbers (dense PPNs
  are channel-major, so sequential allocation *is* channel/chip striping);
* :class:`DatabaseMetadata` with the address arithmetic accelerators use;
* append handling — appends allocate new extents and update metadata,
  with sub-page writes buffered until a full page exists (paper §4.7.2:
  "DeepStore buffers writes to ensure the alignment criteria are
  fulfilled").

Feature layout: vectors of at least one page are page-aligned, exactly as
the paper specifies.  Sub-page vectors are packed at a fixed stride with
no vector crossing a page boundary, keeping addresses computable by
offset; DESIGN.md records this as the one layout refinement (page-aligning
a 0.8 KB TextQA vector would waste 95% of every page on both the baseline
and DeepStore, changing no comparison).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.ssd.geometry import SsdGeometry


class FtlError(RuntimeError):
    """Raised for allocation failures and bad database handles."""


@dataclass(frozen=True)
class Extent:
    """A contiguous run of physical page numbers."""

    start_ppn: int
    num_pages: int

    @property
    def end_ppn(self) -> int:
        return self.start_ppn + self.num_pages

    def pages(self) -> Iterator[int]:
        """Iterate the extent's physical page numbers."""
        return iter(range(self.start_ppn, self.end_ppn))


@dataclass
class DatabaseMetadata:
    """The 32-byte per-database record (plus extent bookkeeping).

    ``metadata_bytes`` mirrors the paper's on-flash record size; extents
    beyond the first exist only after appends.
    """

    db_id: int
    feature_bytes: int
    feature_count: int
    extents: List[Extent] = field(default_factory=list)
    page_bytes: int = 16 * 1024

    METADATA_BYTES = 32

    def __post_init__(self) -> None:
        if self.feature_bytes <= 0:
            raise ValueError("feature_bytes must be positive")
        if self.feature_count < 0:
            raise ValueError("feature_count cannot be negative")

    # ------------------------------------------------------------------
    # layout arithmetic
    # ------------------------------------------------------------------
    @property
    def page_aligned(self) -> bool:
        """True when each feature occupies whole pages."""
        return self.feature_bytes >= self.page_bytes

    @property
    def pages_per_feature(self) -> int:
        if not self.page_aligned:
            return 1
        return -(-self.feature_bytes // self.page_bytes)

    @property
    def features_per_page(self) -> int:
        if self.page_aligned:
            return 1
        return self.page_bytes // self.feature_bytes

    @property
    def total_pages(self) -> int:
        if self.page_aligned:
            return self.feature_count * self.pages_per_feature
        return -(-self.feature_count // self.features_per_page)

    @property
    def stored_bytes(self) -> int:
        """Bytes of flash actually occupied (including alignment padding)."""
        return self.total_pages * self.page_bytes

    @property
    def start_ppn(self) -> int:
        if not self.extents:
            raise FtlError(f"database {self.db_id} has no extents")
        return self.extents[0].start_ppn

    def feature_page_span(self, feature_index: int) -> Tuple[int, int]:
        """(first page offset, page count) of one feature within the DB."""
        if not 0 <= feature_index < self.feature_count:
            raise FtlError(
                f"feature {feature_index} out of range [0, {self.feature_count})"
            )
        if self.page_aligned:
            first = feature_index * self.pages_per_feature
            return first, self.pages_per_feature
        return feature_index // self.features_per_page, 1

    def page_offset_to_ppn(self, page_offset: int) -> int:
        """Translate a DB-relative page offset through the extent list."""
        remaining = page_offset
        for extent in self.extents:
            if remaining < extent.num_pages:
                return extent.start_ppn + remaining
            remaining -= extent.num_pages
        raise FtlError(
            f"page offset {page_offset} beyond database {self.db_id} "
            f"({self.total_pages} pages)"
        )

    def all_ppns(self) -> Iterator[int]:
        """Every PPN of the database in scan order."""
        emitted = 0
        for extent in self.extents:
            for ppn in extent.pages():
                if emitted >= self.total_pages:
                    return
                emitted += 1
                yield ppn


class BlockFtl:
    """Sequential extent allocator + database catalog."""

    #: pages reserved at PPN 0 for the metadata block (paper §4.4: metadata
    #: "is persisted in a reserved flash block")
    RESERVED_PAGES = 128

    def __init__(self, geometry: SsdGeometry):
        self.geometry = geometry
        self._next_ppn = self.RESERVED_PAGES
        self._databases: Dict[int, DatabaseMetadata] = {}
        self._db_ids = itertools.count(1)
        self._append_buffers: Dict[int, int] = {}  # db_id -> buffered features

    # ------------------------------------------------------------------
    @property
    def free_pages(self) -> int:
        return self.geometry.total_pages - self._next_ppn

    def allocate(self, num_pages: int) -> Extent:
        """Reserve a contiguous run of physical pages."""
        if num_pages <= 0:
            raise FtlError("cannot allocate zero pages")
        if num_pages > self.free_pages:
            raise FtlError(
                f"out of space: need {num_pages} pages, {self.free_pages} free"
            )
        extent = Extent(self._next_ppn, num_pages)
        self._next_ppn += num_pages
        return extent

    # ------------------------------------------------------------------
    def create_database(self, feature_bytes: int, feature_count: int) -> DatabaseMetadata:
        """Write a new feature database (paper ``writeDB``)."""
        if feature_count <= 0:
            raise FtlError("a database needs at least one feature")
        db_id = next(self._db_ids)
        meta = DatabaseMetadata(
            db_id=db_id,
            feature_bytes=feature_bytes,
            feature_count=feature_count,
            page_bytes=self.geometry.page_bytes,
        )
        meta.extents.append(self.allocate(meta.total_pages))
        self._databases[db_id] = meta
        return meta

    def append(self, db_id: int, feature_count: int) -> DatabaseMetadata:
        """Append features (paper ``appendDB``), buffering partial pages."""
        meta = self.get(db_id)
        if feature_count <= 0:
            raise FtlError("append needs at least one feature")
        pages_before = meta.total_pages
        buffered = self._append_buffers.get(db_id, 0)
        meta.feature_count += feature_count
        pages_needed = meta.total_pages - pages_before
        if pages_needed > 0:
            meta.extents.append(self.allocate(pages_needed))
            self._append_buffers[db_id] = 0
        else:
            # Sub-page tail stays buffered in DRAM until a page fills.
            self._append_buffers[db_id] = buffered + feature_count
        return meta

    def buffered_features(self, db_id: int) -> int:
        """Features awaiting a full page before being flushed to flash."""
        self.get(db_id)
        return self._append_buffers.get(db_id, 0)

    def get(self, db_id: int) -> DatabaseMetadata:
        """Metadata for a database id; raises FtlError when unknown."""
        meta = self._databases.get(db_id)
        if meta is None:
            raise FtlError(f"unknown database id {db_id}")
        return meta

    def databases(self) -> List[DatabaseMetadata]:
        """All registered database metadata records."""
        return list(self._databases.values())

    @property
    def metadata_cache_bytes(self) -> int:
        """DRAM footprint of the cached metadata table."""
        return len(self._databases) * DatabaseMetadata.METADATA_BYTES
