"""Per-channel flash controller.

The channel controller owns the shared channel bus: it accepts page-read
commands, forwards them to the target chip/plane, and once a page is
buffered, schedules the bus transfer that delivers the page to the
consumer (the SSD DRAM for normal reads, or a DeepStore accelerator's
``FLASH_DFV`` queue for in-storage queries — paper Fig. 5).

Bus arbitration is FIFO over buffered pages, which models the
round-robin flash channel arbitration that limits external bandwidth in
commodity SSDs (paper §2.2).

With a :class:`~repro.faults.FaultInjector` attached, a buffered page
may fail its transfer CRC and be re-clocked over the bus (the bus stays
occupied for the extra transfer passes), and reads against hard-failed
chips complete through the ``on_failed`` path instead of delivering.
Without an injector, timing is bit-identical to the fault-free model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.sim import Resource, Simulator
from repro.ssd.flash import FlashChip, PageReadRequest
from repro.ssd.geometry import PhysicalPageAddress, SsdGeometry
from repro.ssd.timing import FlashTiming

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector
    from repro.obs.metrics import MetricsRegistry


class ChannelController:
    """One flash channel: chips + shared bus + command queue."""

    def __init__(
        self,
        sim: Simulator,
        geometry: SsdGeometry,
        timing: FlashTiming,
        channel_index: int,
        injector: Optional["FaultInjector"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        self.sim = sim
        self.geometry = geometry
        self.timing = timing
        self.channel_index = channel_index
        self.injector = injector
        self.bus = Resource(sim, name=f"ch{channel_index}-bus")
        self.chips: List[FlashChip] = [
            FlashChip(
                sim,
                timing,
                planes=geometry.planes_per_chip,
                name=f"ch{channel_index}-chip{i}",
                injector=injector,
            )
            for i in range(geometry.chips_per_channel)
        ]
        if sim.tracer is not None:
            # one trace pid per channel; bus and each chip get a tid
            process = f"channel {channel_index}"
            self.bus.track = sim.tracer.track(process, "bus")
            self.bus.trace_cat = "ssd.bus"
            for i, chip in enumerate(self.chips):
                chip.track = sim.tracer.track(process, f"chip {i}")
        self.pages_delivered = 0
        self.bytes_delivered = 0
        self.pages_failed = 0
        self.crc_retransfers = 0
        self._latency_sum = 0.0
        # shared instruments: every controller in a run feeds the same
        # registry entries, so device-wide totals need no re-aggregation
        # (`is not None`: an empty MetricsRegistry is falsy via __len__)
        metered = metrics is not None
        self._m_pages = metrics.counter("ssd.pages_delivered") if metered else None
        self._m_bytes = metrics.counter("ssd.bytes_delivered") if metered else None
        self._m_latency = (
            metrics.histogram("ssd.page_delivery_s") if metered else None
        )

    # ------------------------------------------------------------------
    def read_page(
        self,
        address: PhysicalPageAddress,
        on_delivered: Callable[[PhysicalPageAddress], None],
        on_failed: Optional[Callable[[PhysicalPageAddress], None]] = None,
    ) -> None:
        """Read one page and deliver it over the channel bus.

        ``on_failed`` (optional) fires instead of ``on_delivered`` when
        the page's chip/plane is hard-failed under the active fault
        plan; without a fault plan it is never called.
        """
        if address.channel != self.channel_index:
            raise ValueError(
                f"page {address} routed to channel {self.channel_index}"
            )
        chip = self.chips[address.chip]
        issue_time = self.sim.now

        def buffered(request: PageReadRequest) -> None:
            transfer = (
                self.timing.transfer_seconds(self.geometry.page_bytes)
                + self.timing.command_overhead_s
            )
            crc_extra = 0
            if self.injector is not None:
                # CRC failures re-clock the page over the bus; the bus
                # stays held for the extra passes
                crc_extra = self.injector.transfer_crc_retries(address)
                if crc_extra:
                    self.crc_retransfers += crc_extra
                    transfer += crc_extra * (
                        self.timing.transfer_seconds(self.geometry.page_bytes)
                        + self.timing.command_overhead_s
                    )

            def done() -> None:
                chip.release_buffer(address.plane)
                self.pages_delivered += 1
                self.bytes_delivered += self.geometry.page_bytes
                latency = self.sim.now - issue_time
                self._latency_sum += latency
                if self._m_pages is not None:
                    self._m_pages.inc()
                    self._m_bytes.inc(self.geometry.page_bytes)
                    self._m_latency.observe(latency)
                on_delivered(address)

            trace_args = None
            if self.bus.track is not None:
                trace_args = {"chip": address.chip, "plane": address.plane}
                if crc_extra:
                    # fault metadata: CRC re-transfers stretched this hold
                    trace_args["crc_retransfers"] = crc_extra
            self.bus.acquire(transfer, done, label="page-xfer",
                             trace_args=trace_args)

        def failed(request: PageReadRequest) -> None:
            self.pages_failed += 1
            if on_failed is not None:
                on_failed(address)

        chip.read(
            PageReadRequest(address=address, on_buffered=buffered, on_failed=failed)
        )

    def occupy_bus(
        self,
        nbytes: int,
        on_done: Callable[[], None],
        label: str = "bus-occupy",
    ) -> None:
        """Occupy the channel bus for non-page traffic.

        Used to model the weight broadcasts the channel-level accelerator
        schedules to its chip-level accelerators (paper §4.5: the chip
        accelerator "cannot be the master of the bus").
        """
        self.bus.acquire(
            self.timing.transfer_seconds(nbytes), on_done, label=label
        )

    # ------------------------------------------------------------------
    @property
    def mean_delivery_latency(self) -> float:
        """Mean issue-to-delivery latency over completed pages."""
        if self.pages_delivered == 0:
            return 0.0
        return self._latency_sum / self.pages_delivered

    def delivered_bandwidth(self, over_seconds: float) -> float:
        """Bytes/second delivered over the given window."""
        if over_seconds <= 0:
            return 0.0
        return self.bytes_delivered / over_seconds

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for reporting and tests."""
        return {
            "pages_delivered": float(self.pages_delivered),
            "bytes_delivered": float(self.bytes_delivered),
            "mean_delivery_latency_s": self.mean_delivery_latency,
            "bus_busy_seconds": self.bus.busy_seconds,
            "pages_failed": float(self.pages_failed),
            "crc_retransfers": float(self.crc_retransfers),
        }
