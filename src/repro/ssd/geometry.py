"""SSD physical geometry and addressing.

An SSD is a hierarchy ``channel -> chip -> plane -> block -> page`` (paper
§2.2).  :class:`SsdGeometry` captures the shape; pages are identified
either structurally (:class:`PhysicalPageAddress`) or by a dense linear
*physical page number* (PPN).  The PPN layout is **channel-major with
page-level striping**: consecutive PPNs land on consecutive channels, then
chips, then planes — so a sequential database write is automatically
striped across all channels and chips, which is how DeepStore lays out
feature databases for maximum internal parallelism (paper §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhysicalPageAddress:
    """Structural address of one flash page."""

    channel: int
    chip: int
    plane: int
    block: int
    page: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ch{self.channel}/chip{self.chip}/pl{self.plane}"
            f"/blk{self.block}/pg{self.page}"
        )


@dataclass(frozen=True)
class SsdGeometry:
    """Shape parameters of the flash array (paper §6.1 defaults)."""

    channels: int = 32
    chips_per_channel: int = 4
    planes_per_chip: int = 8
    blocks_per_plane: int = 512
    pages_per_block: int = 128
    page_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "chips_per_channel",
            "planes_per_chip",
            "blocks_per_plane",
            "pages_per_block",
            "page_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------------
    # capacities
    # ------------------------------------------------------------------
    @property
    def planes_per_channel(self) -> int:
        return self.chips_per_channel * self.planes_per_chip

    @property
    def total_planes(self) -> int:
        return self.channels * self.planes_per_channel

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.total_planes * self.pages_per_plane

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_bytes

    @property
    def block_bytes(self) -> int:
        return self.pages_per_block * self.page_bytes

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def ppn_to_address(self, ppn: int) -> PhysicalPageAddress:
        """Decode a dense physical page number (channel-major striping)."""
        if not 0 <= ppn < self.total_pages:
            raise ValueError(f"PPN {ppn} out of range [0, {self.total_pages})")
        channel = ppn % self.channels
        rest = ppn // self.channels
        chip = rest % self.chips_per_channel
        rest //= self.chips_per_channel
        plane = rest % self.planes_per_chip
        rest //= self.planes_per_chip
        page = rest % self.pages_per_block
        block = rest // self.pages_per_block
        return PhysicalPageAddress(channel, chip, plane, block, page)

    def address_to_ppn(self, addr: PhysicalPageAddress) -> int:
        """Inverse of :meth:`ppn_to_address`."""
        self._check_address(addr)
        rest = addr.block
        rest = rest * self.pages_per_block + addr.page
        rest = rest * self.planes_per_chip + addr.plane
        rest = rest * self.chips_per_channel + addr.chip
        return rest * self.channels + addr.channel

    def _check_address(self, addr: PhysicalPageAddress) -> None:
        bounds = (
            ("channel", addr.channel, self.channels),
            ("chip", addr.chip, self.chips_per_channel),
            ("plane", addr.plane, self.planes_per_chip),
            ("block", addr.block, self.blocks_per_plane),
            ("page", addr.page, self.pages_per_block),
        )
        for name, value, limit in bounds:
            if not 0 <= value < limit:
                raise ValueError(f"{name}={value} out of range [0, {limit})")

    def pages_for_bytes(self, nbytes: int) -> int:
        """Number of pages needed to hold ``nbytes``."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        return -(-nbytes // self.page_bytes)

    def scaled(self, channels: int) -> "SsdGeometry":
        """Same geometry with a different channel count (Fig. 10 sweeps)."""
        return SsdGeometry(
            channels=channels,
            chips_per_channel=self.chips_per_channel,
            planes_per_chip=self.planes_per_chip,
            blocks_per_plane=self.blocks_per_plane,
            pages_per_block=self.pages_per_block,
            page_bytes=self.page_bytes,
        )
