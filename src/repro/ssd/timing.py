"""Timing/bandwidth parameters of the simulated SSD.

Groups the paper's §6.1 numbers: 53 us flash array read latency, 800 MB/s
per-channel bus (ONFI 4.x), 3.2 GB/s measured external bandwidth (Intel DC
P4500 over PCIe), 20 GB/s SSD-internal DRAM.  :class:`SsdConfig` bundles
geometry + timing and is the single argument most higher-level models take.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ssd.geometry import SsdGeometry

MB = 1e6
GB = 1e9


@dataclass(frozen=True)
class FlashTiming:
    """Latency/bandwidth of the flash path."""

    #: time for a plane to move one page from the NAND array to its page
    #: buffer (paper §6.1: 53 us; Fig. 9 sweeps 7-212 us)
    array_read_latency_s: float = 53e-6
    #: per-channel bus bandwidth, bytes/s (ONFI: 800 MB/s)
    channel_bandwidth: float = 800 * MB
    #: command issue/decode overhead per page read on the channel bus
    command_overhead_s: float = 0.2e-6
    #: page program (write) latency — 3D TLC NAND typical (~600 us)
    program_latency_s: float = 600e-6
    #: block erase latency (~3 ms)
    erase_latency_s: float = 3e-3

    def __post_init__(self) -> None:
        if self.array_read_latency_s <= 0 or self.channel_bandwidth <= 0:
            raise ValueError("flash timing parameters must be positive")
        if self.command_overhead_s < 0:
            raise ValueError("command overhead cannot be negative")
        if self.program_latency_s <= 0 or self.erase_latency_s <= 0:
            raise ValueError("program/erase latencies must be positive")

    def transfer_seconds(self, nbytes: int) -> float:
        """Channel-bus occupancy for moving ``nbytes`` off a page buffer."""
        return nbytes / self.channel_bandwidth

    def with_latency(self, latency_s: float) -> "FlashTiming":
        """Copy with a different array read latency (Fig. 9 sweeps)."""
        return replace(self, array_read_latency_s=latency_s)


@dataclass(frozen=True)
class SsdConfig:
    """Full SSD parameterization (geometry + timing + interfaces)."""

    geometry: SsdGeometry = field(default_factory=SsdGeometry)
    timing: FlashTiming = field(default_factory=FlashTiming)
    #: measured external (host-visible) sequential read bandwidth, bytes/s
    external_bandwidth: float = 3.2 * GB
    #: SSD-internal DRAM bandwidth available to the controller, bytes/s
    dram_bandwidth: float = 20 * GB
    #: SSD-internal DRAM capacity, bytes
    dram_bytes: int = 4 * 1024**3
    #: power drawn by the stock SSD hardware at peak (paper: ~20 W)
    base_power_w: float = 20.0
    #: PCIe slot power limit; budget left for accelerators is the difference
    slot_power_w: float = 75.0

    def __post_init__(self) -> None:
        if self.external_bandwidth <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.dram_bytes <= 0:
            raise ValueError("dram_bytes must be positive")

    @property
    def accelerator_power_budget_w(self) -> float:
        """Power available to DeepStore accelerators (paper §4.5: ~55 W)."""
        return self.slot_power_w - self.base_power_w

    @property
    def internal_bandwidth(self) -> float:
        """Aggregate flash-side bandwidth across all channels."""
        return self.geometry.channels * self.timing.channel_bandwidth

    def with_channels(self, channels: int) -> "SsdConfig":
        """Copy with a different channel count (Fig. 10 sweeps)."""
        return replace(self, geometry=self.geometry.scaled(channels))

    def with_flash_latency(self, latency_s: float) -> "SsdConfig":
        """Copy with a different flash array read latency."""
        return replace(self, timing=self.timing.with_latency(latency_s))
