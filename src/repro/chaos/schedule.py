"""Scripted fault schedules on the simulated clock.

A :class:`ChaosSchedule` is a declarative, time-ordered list of
:class:`ChaosEvent` records — crash-restarts of the durable store,
replica kills/restarts (correlated or independent), and ingest bursts
that drive GC pressure.  Like :class:`~repro.faults.plan.FaultPlan` it
holds *no randomness*: :meth:`ChaosSchedule.generate` derives every
event time and target from :func:`repro.faults.crash_time_unit`, a
dedicated hash domain of the faults seed, so

* the same ``(seed, knobs)`` always produces the same production day,
  and
* merging a chaos schedule into a fault plan can never reshuffle the
  read-retry / CRC / program-fail draw streams (they live in domains
  1–8; chaos draws live in domain 10) — the byte-stability the
  satellite test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.faults.injector import crash_time_unit
from repro.faults.plan import FaultPlan

#: event kinds a schedule may carry
CHAOS_KINDS = ("crash", "kill", "restart", "burst")

#: sub-domain tags inside the crash-time hash domain, one per draw use
_DRAW_CRASH = 1
_DRAW_KILL_TIME = 2
_DRAW_KILL_SHARD = 3
_DRAW_KILL_REPLICA = 4
_DRAW_OUTAGE = 5
_DRAW_BURST = 6


class ChaosError(RuntimeError):
    """Raised for malformed chaos schedules."""


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted fault at one simulated time."""

    at_s: float
    #: ``crash`` | ``kill`` | ``restart`` | ``burst``
    kind: str
    shard: int = -1
    replica: int = -1
    #: rows to ingest for ``burst`` events
    rows: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ChaosError(f"unknown chaos kind {self.kind!r}")
        if self.at_s < 0:
            raise ChaosError("event time cannot be negative")
        if self.kind in ("kill", "restart") and (
            self.shard < 0 or self.replica < 0
        ):
            raise ChaosError(f"{self.kind} events need shard and replica")
        if self.kind == "burst" and self.rows <= 0:
            raise ChaosError("burst events need a positive row count")


@dataclass(frozen=True)
class ChaosSchedule:
    """A time-ordered fault script for one run."""

    events: Tuple[ChaosEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.at_s, CHAOS_KINDS.index(e.kind)))
        )
        object.__setattr__(self, "events", ordered)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> Tuple[ChaosEvent, ...]:
        """All events of one kind, in time order."""
        if kind not in CHAOS_KINDS:
            raise ChaosError(f"unknown chaos kind {kind!r}")
        return tuple(e for e in self.events if e.kind == kind)

    def due(self, after_s: float, through_s: float) -> Tuple[ChaosEvent, ...]:
        """Events with ``after_s < at_s <= through_s``, in order."""
        return tuple(
            e for e in self.events if after_s < e.at_s <= through_s
        )

    def counts(self) -> Dict[str, int]:
        """Event count per kind (zero entries included)."""
        return {kind: len(self.of_kind(kind)) for kind in CHAOS_KINDS}

    def describe(self) -> str:
        """Human-readable one-line summary of the day."""
        counts = self.counts()
        parts = [f"{n} {kind}(s)" for kind, n in counts.items() if n]
        return ", ".join(parts) if parts else "empty schedule"

    # ------------------------------------------------------------------
    def to_fault_plan(self, base: FaultPlan) -> FaultPlan:
        """Fold the schedule's *permanent* outages into a fault plan.

        A kill with no later restart of the same replica is a hard
        shard failure the static plan can carry; transient kills and
        crashes stay schedule-only (the harness drives them at
        runtime).  Crucially this only *appends failures* — it never
        touches the plan's rate fields, so the per-operation fault
        draws (domains 1–8) are byte-identical with or without chaos.
        """
        plan = base
        for event in self.of_kind("kill"):
            restarted = any(
                r.at_s > event.at_s
                and r.shard == event.shard
                and r.replica == event.replica
                for r in self.of_kind("restart")
            )
            if not restarted:
                plan = plan.fail_shard(
                    event.shard, replica=event.replica, at_s=event.at_s
                )
        return plan

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        duration_s: float,
        n_shards: int = 0,
        n_replicas: int = 1,
        crashes: int = 0,
        kills: int = 0,
        bursts: int = 0,
        outage_s: float = 0.0,
        burst_rows: int = 8,
        correlated: int = 1,
    ) -> "ChaosSchedule":
        """A deterministic production day.

        ``crashes`` crash-restarts of the durable store, ``kills``
        replica outages (each healing after ``outage_s`` when positive;
        permanent otherwise), and ``bursts`` ingest bursts of
        ``burst_rows`` rows.  ``correlated > 1`` makes each kill event
        take down that many replicas *at the same drawn instant* — the
        correlated-failure storms the scorecard measures MTTR under.
        Every draw comes from the dedicated crash-time hash domain.
        """
        if duration_s <= 0:
            raise ChaosError("duration_s must be positive")
        if correlated < 1:
            raise ChaosError("correlated must be at least 1")
        if (kills or correlated > 1) and kills and n_shards <= 0:
            raise ChaosError("kills need n_shards")
        events: List[ChaosEvent] = []
        for i in range(crashes):
            at = duration_s * crash_time_unit(seed, _DRAW_CRASH, i)
            events.append(ChaosEvent(at_s=at, kind="crash"))
        for i in range(kills):
            at = duration_s * crash_time_unit(seed, _DRAW_KILL_TIME, i)
            for j in range(correlated):
                shard = int(
                    n_shards * crash_time_unit(seed, _DRAW_KILL_SHARD, i, j)
                ) % n_shards
                replica = int(
                    n_replicas
                    * crash_time_unit(seed, _DRAW_KILL_REPLICA, i, j)
                ) % n_replicas
                if any(
                    e.kind == "kill"
                    and e.at_s == at
                    and e.shard == shard
                    and e.replica == replica
                    for e in events
                ):
                    continue  # same draw twice in one storm: keep one
                events.append(
                    ChaosEvent(
                        at_s=at, kind="kill", shard=shard, replica=replica
                    )
                )
                if outage_s > 0.0:
                    heal = outage_s * (
                        0.5 + crash_time_unit(seed, _DRAW_OUTAGE, i, j)
                    )
                    events.append(
                        ChaosEvent(
                            at_s=at + heal,
                            kind="restart",
                            shard=shard,
                            replica=replica,
                        )
                    )
        for i in range(bursts):
            at = duration_s * crash_time_unit(seed, _DRAW_BURST, i)
            events.append(
                ChaosEvent(at_s=at, kind="burst", rows=burst_rows)
            )
        return cls(events=tuple(events))
