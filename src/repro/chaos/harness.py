"""The chaos harness: a scripted production day, measured.

Two tracks, both driven by a deterministic
:class:`~repro.chaos.schedule.ChaosSchedule`:

* :func:`run_durability_chaos` — a :class:`~repro.recovery.DurableStore`
  ingests (bursts included) while crash events hit at arbitrary
  simulated times, possibly mid-mutation.  Every crash recovers by
  checkpoint + WAL replay and is verified **bit-exactly** against a
  shadow copy maintained at ack time: visible ids, row bytes, and
  canonical top-K must all match, so ``durability`` is a measured 1.0
  or the run fails loudly.  MTTR is the measured recovery time.
* :func:`run_cluster_chaos` — a hardened
  :class:`~repro.cluster.DeepStoreCluster` (retry ladder, breakers,
  brownout) serves a query train while correlated replica kills and
  restarts play out.  Restarted replicas pay a measured WAL resync
  (:func:`repro.recovery.plan_resync`); recall is scored against a
  healthy twin cluster answering the same queries.

The reports roll up into the recovery scorecard — the perf gate's
fifth leg.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.chaos.schedule import ChaosError, ChaosEvent, ChaosSchedule
from repro.cluster import (
    BreakerConfig,
    BrownoutConfig,
    ClusterConfig,
    ClusterError,
    DeepStoreCluster,
    RetryPolicy,
)
from repro.ingest.store import oracle_topk
from repro.obs.dtrace import TraceCollector
from repro.obs.slo import SloMonitor, default_chaos_monitor
from repro.recovery import (
    CheckpointPolicy,
    DurableStore,
    RecoveryError,
    plan_resync,
    recover,
)
from repro.workloads.apps import get_app


@dataclass(frozen=True)
class ChaosConfig:
    """One scripted production day (both tracks)."""

    seed: int = 0
    duration_s: float = 1.0
    k: int = 10
    # -- durability track ------------------------------------------------
    dim: int = 16
    n_base: int = 128
    mutations: int = 36
    rows_per_insert: int = 4
    delete_every: int = 3
    #: compaction points, as fractions of the day
    compact_at: Tuple[float, ...] = (0.45, 0.85)
    crashes: int = 3
    checkpoint_interval_s: float = 0.08
    checkpoint_min_epochs: int = 4
    probe_queries: int = 4
    # -- availability track ----------------------------------------------
    app: str = "tir"
    cluster_rows: int = 180
    n_shards: int = 3
    n_replicas: int = 2
    queries: int = 24
    kills: int = 4
    correlated: int = 2
    outage_s: float = 0.25
    bursts: int = 8
    burst_rows: int = 8

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ChaosError("duration_s must be positive")
        if self.mutations < 1 or self.queries < 1:
            raise ChaosError("mutations and queries must be positive")


# ======================================================================
# durability track
# ======================================================================
@dataclass
class CrashOutcome:
    """One crash-restart, measured and verified."""

    at_s: float
    recovered_epoch: int
    records_replayed: int
    mttr_s: float
    #: the in-flight mutation's WAL program had not completed — it was
    #: never acked, and correctly does not survive
    lost_inflight: bool
    bit_equal: bool


@dataclass
class DurabilityReport:
    """What the durability track measured."""

    crashes: List[CrashOutcome] = field(default_factory=list)
    mutations_acked: int = 0
    mutations_lost_unacked: int = 0
    checkpoints_taken: int = 0
    wal_records: int = 0
    wal_bytes_logged: int = 0
    wal_write_amplification: float = 1.0
    #: acked-mutation survival fraction across all crashes (must be 1.0)
    durability: float = 1.0
    #: every crash recovered bit-equal to the shadow (ids, rows, top-K)
    all_bit_equal: bool = True
    #: recall of clustered-only (delta-skipped) top-K vs the full top-K
    #: — the bounded recall loss brownout step 2 trades for load
    delta_skip_recall: float = 1.0

    @property
    def mttr_s(self) -> List[float]:
        return [c.mttr_s for c in self.crashes]

    def to_dict(self) -> Dict[str, object]:
        """Flat scorecard block (every leaf drift-gated by CI)."""
        mttrs = self.mttr_s
        return {
            "crashes": len(self.crashes),
            "mutations_acked": self.mutations_acked,
            "mutations_lost_unacked": self.mutations_lost_unacked,
            "checkpoints": self.checkpoints_taken,
            "wal_records": self.wal_records,
            "wal_bytes_logged": self.wal_bytes_logged,
            "wal_write_amplification": self.wal_write_amplification,
            "records_replayed": sum(c.records_replayed for c in self.crashes),
            "mttr_ms_mean": (
                1e3 * sum(mttrs) / len(mttrs) if mttrs else 0.0
            ),
            "mttr_ms_max": 1e3 * max(mttrs) if mttrs else 0.0,
            "durability": self.durability,
            "bit_equal": 1 if self.all_bit_equal else 0,
            "delta_skip_recall": self.delta_skip_recall,
        }


class _Shadow:
    """Independent copy of the acked state (dict-of-rows, set-of-dead).

    Deliberately nothing like the store's vectorized bookkeeping — the
    same role :func:`repro.ingest.store.oracle_replay` plays, but
    carrying row payloads so recovered *content* is checkable too.
    """

    def __init__(self, base: np.ndarray):
        self.rows: Dict[int, np.ndarray] = {
            i: np.array(r, dtype=np.float32) for i, r in enumerate(base)
        }
        self.dead: set = set()

    def insert(self, ids, payload: np.ndarray) -> None:
        for i, row in zip(ids, payload):
            self.rows[int(i)] = np.array(row, dtype=np.float32)

    def delete(self, ids) -> None:
        self.dead.update(int(i) for i in ids)

    def visible(self) -> List[int]:
        return sorted(i for i in self.rows if i not in self.dead)

    def dense(self, dim: int) -> np.ndarray:
        n = max(self.rows) + 1 if self.rows else 0
        arr = np.zeros((n, dim), dtype=np.float32)
        for i, row in self.rows.items():
            arr[i] = row
        return arr


def _store_matches_shadow(
    store, shadow: _Shadow, probes: np.ndarray, k: int
) -> bool:
    """Bit-exact: visible ids, row bytes, and canonical top-K."""
    visible = sorted(int(i) for i in store.visible_ids())
    if visible != shadow.visible():
        return False
    rows = store.features()
    dense = shadow.dense(rows.shape[1])
    if rows.shape != dense.shape:
        return False
    if not all(np.array_equal(rows[i], dense[i]) for i in visible):
        return False
    for q in probes:
        scores = rows @ q
        shadow_scores = dense @ q
        if oracle_topk(rows, visible, scores, k) != oracle_topk(
            dense, visible, shadow_scores, k
        ):
            return False
    return True


def run_durability_chaos(
    config: Optional[ChaosConfig] = None,
) -> DurabilityReport:
    """Ingest through crash events; verify every recovery bit-exactly."""
    cfg = config or ChaosConfig()
    rng = np.random.default_rng(cfg.seed)
    base = rng.standard_normal((cfg.n_base, cfg.dim)).astype(np.float32)
    probes = rng.standard_normal((cfg.probe_queries, cfg.dim)).astype(
        np.float32
    )
    store = DurableStore(
        base,
        policy=CheckpointPolicy(
            interval_s=cfg.checkpoint_interval_s,
            min_epochs=cfg.checkpoint_min_epochs,
        ),
    )
    shadow = _Shadow(base)
    report = DurabilityReport()

    # the day's script: evenly spaced mutations + compactions, with the
    # schedule's crash times merged in; payloads are drawn up front so
    # the stream is identical whatever the crash pattern does
    ops: List[Tuple[float, str, object]] = []
    for i in range(cfg.mutations):
        at = cfg.duration_s * (i + 1) / (cfg.mutations + 2)
        if cfg.delete_every and i % cfg.delete_every == cfg.delete_every - 1:
            ops.append((at, "delete", int(rng.integers(1 << 30))))
        else:
            payload = rng.standard_normal(
                (cfg.rows_per_insert, cfg.dim)
            ).astype(np.float32)
            ops.append((at, "insert", payload))
    for fraction in cfg.compact_at:
        ops.append((cfg.duration_s * fraction, "compact", None))
    schedule = ChaosSchedule.generate(
        cfg.seed, cfg.duration_s, crashes=cfg.crashes
    )
    for event in schedule.of_kind("crash"):
        ops.append((event.at_s, "crash", None))
    ops.sort(key=lambda op: op[0])

    checkpoints = 0
    wal_bytes = 0
    wal_records = 0

    def crash_now(at_s: float, image, lost_inflight: bool) -> DurableStore:
        nonlocal store, checkpoints, wal_bytes
        checkpoints += store.checkpoints_taken
        wal_bytes += store.wal.bytes_logged
        recovered, rec_report = recover(
            image, ssd=store.ssd, policy=store.policy
        )
        ok = _store_matches_shadow(recovered.store, shadow, probes, cfg.k)
        report.crashes.append(
            CrashOutcome(
                at_s=at_s,
                recovered_epoch=rec_report.recovered_epoch,
                records_replayed=rec_report.records_replayed,
                mttr_s=rec_report.seconds,
                lost_inflight=lost_inflight,
                bit_equal=ok,
            )
        )
        return recovered

    consumed_crashes: set = set()
    for at, kind, payload in ops:
        if kind == "crash":
            if at in consumed_crashes:
                continue  # this crash already landed mid-mutation
            store = crash_now(at, store.crash_image(), lost_inflight=False)
            continue
        if kind == "compact":
            store.mark_compacted(store.store.snapshot(), now_s=at)
            wal_records += 1
            continue
        image_before = store.crash_image()
        next_crash = next(
            (
                t
                for t, op_kind, _ in ops
                if op_kind == "crash" and t > at and t not in consumed_crashes
            ),
            None,
        )
        if kind == "insert":
            pending = store.begin_insert(payload)
        else:
            visible = sorted(int(i) for i in store.store.visible_ids())
            victim = visible[int(payload) % len(visible)]
            pending = store.begin_delete([victim])
        wal_records += 1
        done_at = at + pending.write.seconds
        if next_crash is not None and done_at > next_crash:
            # the crash lands inside this mutation's WAL program: the
            # record never became durable and the client got no ack
            report.mutations_lost_unacked += 1
            consumed_crashes.add(next_crash)
            store = crash_now(next_crash, image_before, lost_inflight=True)
            continue
        store.apply_pending(pending)
        if pending.record.op == "insert":
            shadow.insert(pending.record.ids, pending.record.payload)
        else:
            shadow.delete(pending.record.ids)
        report.mutations_acked += 1
        store.maybe_checkpoint(done_at)

    # final accounting over the last life
    checkpoints += store.checkpoints_taken
    wal_bytes += store.wal.bytes_logged
    report.checkpoints_taken = checkpoints
    report.wal_bytes_logged = wal_bytes
    report.wal_records = wal_records
    report.wal_write_amplification = store.wal.write_amplification
    report.all_bit_equal = all(c.bit_equal for c in report.crashes)
    report.durability = 1.0 if report.all_bit_equal else 0.0

    # brownout step 2's bounded recall loss: clustered-only vs full view
    rows = store.store.features()
    clustered = [int(i) for i in store.store.clustered_ids]
    visible = [int(i) for i in store.store.visible_ids()]
    if clustered and visible:
        hits = 0
        for q in probes:
            scores = rows @ q
            full = {fid for _s, fid in oracle_topk(rows, visible, scores, cfg.k)}
            skim = {
                fid for _s, fid in oracle_topk(rows, clustered, scores, cfg.k)
            }
            hits += len(full & skim)
        report.delta_skip_recall = hits / (len(probes) * cfg.k)
    return report


# ======================================================================
# availability track
# ======================================================================
@dataclass
class OutageOutcome:
    """One replica outage healed: kill → restart → resync."""

    shard: int
    replica: int
    killed_at_s: float
    restarted_at_s: float
    resync_records: int
    resync_seconds: float
    full_snapshot: bool

    @property
    def mttr_s(self) -> float:
        return (self.restarted_at_s - self.killed_at_s) + self.resync_seconds


@dataclass
class ClusterChaosReport:
    """What the availability track measured."""

    queries: int = 0
    served: int = 0
    shed: int = 0
    failed: int = 0
    partial: int = 0
    outages: List[OutageOutcome] = field(default_factory=list)
    #: mean |answered ∩ healthy-twin| / k over served queries
    recall_mean: float = 1.0
    retry_pause_s: float = 0.0
    failovers: int = 0
    breaker_transitions: int = 0
    max_brownout_level: int = 0
    brownout_transitions: List[Tuple[float, int, int]] = field(
        default_factory=list
    )
    # SLO telemetry — NOT in to_dict: the perf gate's scorecard leaves
    # must stay byte-identical whether or not monitoring is attached
    alerts: List[object] = field(default_factory=list)
    first_fault_s: Optional[float] = None
    first_alert_s: Optional[float] = None
    alert_latency_s: Optional[float] = None
    slo: Dict[str, object] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        """Fraction of offered queries that got an answer."""
        if self.queries == 0:
            return 1.0
        return self.served / self.queries

    def to_dict(self) -> Dict[str, object]:
        """Flat scorecard block (every leaf drift-gated by CI)."""
        mttrs = [o.mttr_s for o in self.outages]
        return {
            "queries": self.queries,
            "served": self.served,
            "shed": self.shed,
            "failed": self.failed,
            "partial": self.partial,
            "availability": self.availability,
            "recall_mean": self.recall_mean,
            "outages": len(self.outages),
            "mttr_ms_mean": (
                1e3 * sum(mttrs) / len(mttrs) if mttrs else 0.0
            ),
            "mttr_ms_max": 1e3 * max(mttrs) if mttrs else 0.0,
            "resync_records": sum(o.resync_records for o in self.outages),
            "retry_pause_ms": 1e3 * self.retry_pause_s,
            "failovers": self.failovers,
            "breaker_transitions": self.breaker_transitions,
            "max_brownout_level": self.max_brownout_level,
            "brownout_transitions": len(self.brownout_transitions),
        }


#: a served query is "slow" when it takes this many times the healthy
#: twin's latency for the same query — the latency SLO's bad threshold
SLOW_FACTOR = 3.0


def run_cluster_chaos(
    config: Optional[ChaosConfig] = None,
    monitor: Optional[SloMonitor] = None,
    dtrace: Optional[TraceCollector] = None,
) -> ClusterChaosReport:
    """Serve a query train through correlated kills and restarts.

    Every offered query feeds two SLOs on the attached ``monitor``
    (defaulting to :func:`~repro.obs.slo.default_chaos_monitor`):
    *availability* (bad = shed, failed, partial, or failed-over) and
    *latency* (bad = served slower than ``SLOW_FACTOR`` × the healthy
    twin's time for the same query).  The report's ``alert_latency_s``
    is how long after the first kill the first burn-rate alert fired —
    the chaos day's detection-time metric.  Monitoring and tracing read
    the run; they never schedule events or touch the RNG, so the
    scorecard block is byte-identical with or without them.
    """
    cfg = config or ChaosConfig()
    app = get_app(cfg.app)
    rng = np.random.default_rng(cfg.seed + 1)
    features = rng.normal(0, 1, (cfg.cluster_rows, app.feature_floats)).astype(
        np.float32
    )
    graph = app.build_scn(seed=cfg.seed)
    queries = rng.normal(0, 1, (cfg.queries, app.feature_floats)).astype(
        np.float32
    )

    hardened = ClusterConfig(
        n_shards=cfg.n_shards,
        n_replicas=cfg.n_replicas,
        seed=cfg.seed,
        retry_policy=RetryPolicy(),
        breaker=BreakerConfig(
            window=8, min_samples=2, failure_threshold=0.5,
            open_seconds=cfg.outage_s / 2,
        ),
        brownout=BrownoutConfig(
            window=4, dwell_s=cfg.duration_s / (4 * cfg.queries),
            step_up_pressure=0.3, step_down_pressure=0.1,
        ),
    )
    cluster = DeepStoreCluster(hardened)
    db = cluster.write_db(features)
    model = cluster.load_graph(graph)
    twin = DeepStoreCluster(
        ClusterConfig(
            n_shards=cfg.n_shards, n_replicas=cfg.n_replicas, seed=cfg.seed
        )
    )
    twin_db = twin.write_db(features)
    twin_model = twin.load_graph(graph)

    # the mutable side whose WAL restarted replicas resync from: ingest
    # bursts advance its epochs across the day
    side_store = DurableStore(
        rng.standard_normal((cfg.n_base, cfg.dim)).astype(np.float32),
        policy=CheckpointPolicy(
            interval_s=cfg.checkpoint_interval_s,
            min_epochs=cfg.checkpoint_min_epochs,
        ),
    )

    schedule = ChaosSchedule.generate(
        cfg.seed,
        cfg.duration_s,
        n_shards=cfg.n_shards,
        n_replicas=cfg.n_replicas,
        kills=cfg.kills,
        correlated=cfg.correlated,
        outage_s=cfg.outage_s,
        bursts=cfg.bursts,
        burst_rows=cfg.burst_rows,
    )
    report = ClusterChaosReport()
    down_epochs: Dict[Tuple[int, int], Tuple[float, int]] = {}
    recalls: List[float] = []
    slo = monitor if monitor is not None else default_chaos_monitor(
        cfg.duration_s
    )

    def play(event: ChaosEvent) -> None:
        if event.kind == "burst":
            side_store.insert(
                rng.standard_normal((event.rows, cfg.dim)).astype(np.float32),
                now_s=event.at_s,
            )
        elif event.kind == "kill":
            cluster.set_replica_down(event.shard, event.replica)
            down_epochs[(event.shard, event.replica)] = (
                event.at_s,
                side_store.store.epoch,
            )
        elif event.kind == "restart":
            cluster.set_replica_up(event.shard, event.replica)
            outage = down_epochs.pop((event.shard, event.replica), None)
            if outage is None:
                return  # overlapping storms: an earlier restart healed it
            killed_at, down_epoch = outage
            resync = plan_resync(
                side_store.wal,
                side_store.last_checkpoint,
                side_store.ssd,
                down_epoch=down_epoch,
                current_epoch=side_store.store.epoch,
            )
            report.outages.append(
                OutageOutcome(
                    shard=event.shard,
                    replica=event.replica,
                    killed_at_s=killed_at,
                    restarted_at_s=event.at_s,
                    resync_records=resync.records,
                    resync_seconds=resync.seconds,
                    full_snapshot=resync.full_snapshot,
                )
            )

    cursor = 0.0
    for i in range(cfg.queries):
        now = cfg.duration_s * (i + 1) / (cfg.queries + 1)
        for event in schedule.due(cursor, now):
            play(event)
        cursor = now
        report.queries += 1
        low_priority = i % 4 == 3
        brownout = cluster.brownout
        if (
            low_priority
            and brownout is not None
            and brownout.shed_low_priority
        ):
            report.shed += 1
            slo.record("availability", now, good=False)
            continue
        try:
            result = cluster.query(
                queries[i], k=cfg.k, model_id=model, db_id=db, now_s=now,
                dtrace=dtrace,
            )
        except ClusterError:
            report.failed += 1
            slo.record("availability", now, good=False)
            continue
        report.served += 1
        if result.partial:
            report.partial += 1
        report.retry_pause_s += sum(
            s.retry_pause_seconds for s in result.shards
        )
        report.failovers += result.failovers
        reference = twin.query(
            queries[i], k=cfg.k, model_id=twin_model, db_id=twin_db
        )
        slo.record(
            "availability", now,
            good=not (result.partial or result.failovers > 0),
        )
        slo.record(
            "latency", now,
            good=result.seconds <= SLOW_FACTOR * reference.seconds,
        )
        truth = set(int(x) for x in reference.feature_ids)
        got = set(int(x) for x in result.feature_ids)
        recalls.append(len(truth & got) / max(1, len(truth)))

    # heal anything still down after the last query (late restarts)
    for event in schedule.due(cursor, cfg.duration_s):
        play(event)

    report.recall_mean = (
        sum(recalls) / len(recalls) if recalls else 1.0
    )
    report.breaker_transitions = sum(
        len(b.transitions) for b in cluster.breakers.values()
    )
    if cluster.brownout is not None:
        report.brownout_transitions = list(cluster.brownout.transitions)
        report.max_brownout_level = max(
            [t[2] for t in cluster.brownout.transitions], default=0
        )

    # SLO rollup: detection time relative to the first injected kill
    slo.finish(cfg.duration_s)
    report.alerts = list(slo.alerts)
    report.slo = slo.report()
    kills = [e.at_s for e in schedule.of_kind("kill")]
    report.first_fault_s = min(kills) if kills else None
    if report.first_fault_s is not None:
        report.first_alert_s = slo.first_alert_at(report.first_fault_s)
    else:
        report.first_alert_s = slo.first_alert_at(0.0)
    if report.first_alert_s is not None and report.first_fault_s is not None:
        report.alert_latency_s = report.first_alert_s - report.first_fault_s
    return report
