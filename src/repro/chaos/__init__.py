"""Chaos engineering on the simulated clock.

Scripted fault schedules (:mod:`repro.chaos.schedule`) and the harness
that plays them against the durable store and the hardened cluster
(:mod:`repro.chaos.harness`), producing the MTTR / durability / recall
scorecard the perf gate tracks as its fifth leg.
"""

from repro.chaos.harness import (
    ChaosConfig,
    ClusterChaosReport,
    CrashOutcome,
    DurabilityReport,
    OutageOutcome,
    run_cluster_chaos,
    run_durability_chaos,
)
from repro.chaos.schedule import (
    CHAOS_KINDS,
    ChaosError,
    ChaosEvent,
    ChaosSchedule,
)

__all__ = [
    "CHAOS_KINDS",
    "ChaosConfig",
    "ChaosError",
    "ChaosEvent",
    "ChaosSchedule",
    "ClusterChaosReport",
    "CrashOutcome",
    "DurabilityReport",
    "OutageOutcome",
    "run_cluster_chaos",
    "run_durability_chaos",
]
