"""Replica resync: catch-up replay of missed epochs from the WAL.

When a replica restarts after an outage it is stale, not empty: it
holds the state as of the epoch it went down at.  The cheap path is to
replay only the mutating WAL records in ``(down_epoch, current_epoch]``
— :meth:`~repro.recovery.wal.WriteAheadLog.records_in_epochs`.  That
only works while the WAL still retains those epochs; once checkpoint
truncation has dropped them the replica must instead ship the latest
checkpoint image and replay the (short) suffix after it.

:func:`plan_resync` picks the path and prices it with the same measured
SSD models recovery uses, so the cluster harness can charge resync time
into MTTR honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.recovery.checkpoint import Checkpoint, checkpoint_read_seconds
from repro.recovery.durable import APPLY_SECONDS_PER_RECORD
from repro.recovery.wal import WriteAheadLog
from repro.ssd.ssd import Ssd


@dataclass(frozen=True)
class ResyncPlan:
    """One replica's priced catch-up plan."""

    from_epoch: int
    to_epoch: int
    #: True when the WAL no longer retains the missed epochs and the
    #: replica must ship the checkpoint image instead
    full_snapshot: bool
    records: int
    nbytes: int
    seconds: float


def plan_resync(
    wal: WriteAheadLog,
    checkpoint: Optional[Checkpoint],
    ssd: Ssd,
    down_epoch: int,
    current_epoch: int,
    apply_seconds_per_record: float = APPLY_SECONDS_PER_RECORD,
) -> ResyncPlan:
    """Price the catch-up replay for a replica stale at ``down_epoch``."""
    if current_epoch < down_epoch:
        raise ValueError("current_epoch must be >= down_epoch")
    records = wal.records_in_epochs(down_epoch, current_epoch)
    covered = {r.epoch for r in records}
    missing = [
        e for e in range(down_epoch + 1, current_epoch + 1) if e not in covered
    ]
    if missing and checkpoint is not None and checkpoint.epoch > down_epoch:
        # truncation dropped part of the gap: ship the checkpoint, then
        # replay only the records past it
        suffix = tuple(r for r in records if r.epoch > checkpoint.epoch)
        nbytes = checkpoint.nbytes + sum(r.nbytes for r in suffix)
        seconds = (
            checkpoint_read_seconds(ssd, checkpoint)
            + ssd.host_read_seconds(sum(r.nbytes for r in suffix))
            + len(suffix) * apply_seconds_per_record
        )
        return ResyncPlan(
            from_epoch=down_epoch,
            to_epoch=current_epoch,
            full_snapshot=True,
            records=len(suffix),
            nbytes=nbytes,
            seconds=seconds,
        )
    nbytes = sum(r.nbytes for r in records)
    return ResyncPlan(
        from_epoch=down_epoch,
        to_epoch=current_epoch,
        full_snapshot=False,
        records=len(records),
        nbytes=nbytes,
        seconds=ssd.host_read_seconds(nbytes)
        + len(records) * apply_seconds_per_record,
    )
