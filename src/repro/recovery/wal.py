"""Write-ahead log for mutable feature stores, on real flash.

A :class:`~repro.ingest.store.MutableFeatureStore` keeps epochs,
tombstones, and the delta region in memory only — a restart loses the
database.  :class:`WriteAheadLog` fixes that with the classic recipe:
every mutation is serialized into a :class:`WalRecord` and programmed to
flash **before** it is applied, so after a crash the durable prefix of
the log (plus the last checkpoint) reconstructs the store bit-exactly.

The flash is not assumed, it is *measured*: the log occupies its own
bounded region of a :class:`~repro.ingest.writepath.IngestWritePath`
(the page-mapped, GC-running FTL).  Records pack into fixed-size
**slots** (``record_bytes`` each; a record spans as many slots as its
header + ids + payload need), and every append re-programs the open
page — which is exactly where a synchronous WAL earns its write
amplification: small commits re-write the same flash page over and
over, and checkpoint truncation TRIMs dead log pages for GC to reclaim.
``WriteAheadLog.write_amplification`` is the FTL's own arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.ingest.store import IngestError, Mutation
from repro.ingest.writepath import IngestWritePath, WriteOp

#: WAL record kinds (the store's two mutation ops plus the compaction
#: marker, which moves the clustered boundary without advancing epochs)
WAL_OPS = ("insert", "delete", "compact")

#: fixed per-record header charge: lsn + epoch + op + id count (bytes)
_HEADER_BYTES = 28


class RecoveryError(RuntimeError):
    """Raised for invalid WAL/checkpoint/recovery operations."""


@dataclass(frozen=True)
class WalRecord:
    """One durable log entry.

    ``payload`` carries the inserted rows for ``insert`` records (the
    bytes a real WAL would write; deletes and compacts are metadata
    only).  ``compact_epoch`` names the snapshot a ``compact`` record
    re-clustered.  Records are immutable and totally ordered by
    ``lsn``.
    """

    lsn: int
    epoch: int
    op: str
    ids: Tuple[int, ...] = ()
    payload: Optional[np.ndarray] = None
    compact_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in WAL_OPS:
            raise RecoveryError(f"unknown WAL op {self.op!r}")
        if self.op == "insert" and self.payload is None:
            raise RecoveryError("insert records need a row payload")
        if self.op == "compact" and self.compact_epoch is None:
            raise RecoveryError("compact records need a snapshot epoch")

    @property
    def nbytes(self) -> int:
        """Serialized size the flash write path is charged for."""
        payload = 0 if self.payload is None else self.payload.nbytes
        return _HEADER_BYTES + 8 * len(self.ids) + payload

    def as_mutation(self) -> Mutation:
        """The store-log view of a mutating record."""
        if self.op == "compact":
            raise RecoveryError("compact records are not store mutations")
        return Mutation(epoch=self.epoch, op=self.op, ids=self.ids)


class WriteAheadLog:
    """An append-only record log over a bounded flash region.

    ``writepath`` is a dedicated :class:`IngestWritePath` whose
    ``feature_bytes`` is the slot size; the WAL never shares a region
    with the database (mirroring real deployments, where log and data
    placement are separated precisely so log churn cannot amplify data
    GC).
    """

    def __init__(self, writepath: IngestWritePath):
        self.writepath = writepath
        self.slot_bytes = writepath.feature_bytes
        self._records: List[WalRecord] = []
        #: lsn -> slot ids occupied (needed to TRIM at truncation)
        self._slots: List[Tuple[int, Tuple[int, ...]]] = []
        self._next_lsn = 1
        self._next_slot = 0
        #: records dropped by truncation (still counted in totals)
        self.truncated_records = 0
        self.append_seconds = 0.0
        self.truncate_seconds = 0.0
        self.bytes_logged = 0

    # ------------------------------------------------------------------
    @property
    def records(self) -> Tuple[WalRecord, ...]:
        """Durable records still in the log, lsn order."""
        return tuple(self._records)

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def write_amplification(self) -> float:
        """The log region FTL's own measured WA."""
        return self.writepath.write_amplification

    def slots_for(self, record: WalRecord) -> int:
        """Flash slots one record occupies (ceil of bytes / slot)."""
        return max(1, -(-record.nbytes // self.slot_bytes))

    # ------------------------------------------------------------------
    def append(
        self,
        op: str,
        epoch: int,
        ids: Tuple[int, ...] = (),
        payload: Optional[np.ndarray] = None,
        compact_epoch: Optional[int] = None,
    ) -> Tuple[WalRecord, WriteOp]:
        """Durably log one record; returns it plus the measured write.

        The program completes (synchronous commit) before the caller
        applies the mutation — the ordering every crash-recovery proof
        in the test suite leans on.
        """
        record = WalRecord(
            lsn=self._next_lsn,
            epoch=epoch,
            op=op,
            ids=tuple(int(i) for i in ids),
            payload=(
                None
                if payload is None
                else np.ascontiguousarray(payload, dtype=np.float32)
            ),
            compact_epoch=compact_epoch,
        )
        slots = tuple(
            range(self._next_slot, self._next_slot + self.slots_for(record))
        )
        try:
            write = self.writepath.append(slots)
        except IngestError as exc:
            raise RecoveryError(
                f"WAL region full at lsn {record.lsn} "
                f"(checkpoint more often or grow the region): {exc}"
            ) from exc
        self._next_slot += len(slots)
        self._next_lsn += 1
        self._records.append(record)
        self._slots.append((record.lsn, slots))
        self.append_seconds += write.seconds
        self.bytes_logged += record.nbytes
        return record, write

    def truncate_through(self, lsn: int) -> Optional[WriteOp]:
        """Drop records with ``record.lsn <= lsn`` (checkpoint covered).

        TRIMs their slots so the log region's GC reclaims the pages;
        returns the measured op (None when nothing was dropped).
        """
        doomed_slots: List[int] = []
        keep_records: List[WalRecord] = []
        keep_slots: List[Tuple[int, Tuple[int, ...]]] = []
        for record, (rec_lsn, slots) in zip(self._records, self._slots):
            if rec_lsn <= lsn:
                doomed_slots.extend(slots)
                self.truncated_records += 1
            else:
                keep_records.append(record)
                keep_slots.append((rec_lsn, slots))
        if not doomed_slots:
            return None
        self._records = keep_records
        self._slots = keep_slots
        op = self.writepath.delete(doomed_slots)
        self.truncate_seconds += op.seconds
        return op

    def records_after(self, lsn: int) -> Tuple[WalRecord, ...]:
        """Records strictly newer than ``lsn``, lsn order."""
        return tuple(r for r in self._records if r.lsn > lsn)

    def records_in_epochs(
        self, after_epoch: int, through_epoch: int
    ) -> Tuple[WalRecord, ...]:
        """Mutating records with ``after_epoch < epoch <= through_epoch``.

        The catch-up set a restarted replica replays to resync.
        """
        return tuple(
            r
            for r in self._records
            if r.op != "compact" and after_epoch < r.epoch <= through_epoch
        )
