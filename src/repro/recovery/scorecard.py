"""The recovery/chaos scorecard (the CI perf gate's fifth leg).

Same philosophy as the other four legs: every number is a deterministic
function of config + seed, so any drift is a code change.  Two canonical
scenarios, both played by :mod:`repro.chaos.harness`:

* **durability** — a crash-restart storm over the durable store:
  measured MTTR (checkpoint read + WAL replay + apply), WAL write
  amplification through the real FTL, checkpoint count, and the two
  hard invariants as gate leaves (``durability`` and ``bit_equal`` must
  stay exactly 1);
* **availability** — correlated replica kills over the hardened
  cluster: availability, recall vs a healthy twin, MTTR including the
  priced WAL resync, retry-pause tax, breaker and brownout activity.

``benchmarks/perf_gate.py`` embeds this dict under the ``recovery`` key
of the combined scorecard and diffs it leaf-by-leaf against the
checked-in baseline.
"""

from __future__ import annotations

from typing import Dict

from repro.chaos.harness import (
    ChaosConfig,
    run_cluster_chaos,
    run_durability_chaos,
)

SCORECARD_SEED = 7


def build_recovery_scorecard(seed: int = SCORECARD_SEED) -> Dict[str, object]:
    """Run the canonical chaos scenarios; return the perf scorecard."""
    config = ChaosConfig(seed=seed)
    durability = run_durability_chaos(config)
    cluster = run_cluster_chaos(config)
    return {
        "seed": seed,
        "durability": durability.to_dict(),
        "availability": cluster.to_dict(),
    }
