"""Crash-durable recovery for the mutable DeepStore database.

The ingest subsystem (:mod:`repro.ingest`) made the database mutable;
this package makes the mutations survive crashes.  Three pieces:

* :mod:`repro.recovery.wal` — a write-ahead log on its own bounded
  flash region, with write amplification measured by the FTL rather
  than assumed;
* :mod:`repro.recovery.checkpoint` — periodic frozen images of the
  store state that bound replay work and let the WAL truncate;
* :mod:`repro.recovery.durable` — :class:`DurableStore`, the WAL-first
  wrapper whose :func:`recover` path reconstructs epoch, tombstone,
  and delta state **bit-exactly** from the durable image alone (proved
  against the oracle replay by the hypothesis suite), plus
  :mod:`repro.recovery.resync` for replica catch-up after restarts.
"""

from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointPolicy,
    checkpoint_read_seconds,
    checkpoint_write_seconds,
    take_checkpoint,
)
from repro.recovery.durable import (
    APPLY_SECONDS_PER_RECORD,
    DurableImage,
    DurableStore,
    PendingMutation,
    RecoveryReport,
    WalConfig,
    apply_record,
    recover,
)
from repro.recovery.resync import ResyncPlan, plan_resync
from repro.recovery.wal import (
    WAL_OPS,
    RecoveryError,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "APPLY_SECONDS_PER_RECORD",
    "Checkpoint",
    "CheckpointPolicy",
    "DurableImage",
    "DurableStore",
    "PendingMutation",
    "RecoveryError",
    "RecoveryReport",
    "ResyncPlan",
    "WAL_OPS",
    "WalConfig",
    "WalRecord",
    "WriteAheadLog",
    "apply_record",
    "checkpoint_read_seconds",
    "checkpoint_write_seconds",
    "plan_resync",
    "recover",
    "take_checkpoint",
]
