"""Periodic checkpoints of the mutable store's logical state.

A checkpoint bounds recovery work: restart cost is *read one
checkpoint + replay the WAL suffix*, not *replay everything since
boot*.  :class:`Checkpoint` is a frozen, self-contained image of
:meth:`repro.ingest.store.MutableFeatureStore.state_tuple`;
:class:`CheckpointPolicy` decides cadence on the DES clock (seconds
between checkpoints, plus an epoch floor so idle periods don't
checkpoint no-ops); the write/read costs are charged through the SSD's
own models (:meth:`~repro.ssd.ssd.Ssd.database_write_seconds` /
:meth:`~repro.ssd.ssd.Ssd.host_read_seconds`) so checkpoint bandwidth
is as measured as everything else in the repo — SiM-style cheap
recovery metadata, priced honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.ingest.store import MutableFeatureStore, Mutation
from repro.recovery.wal import RecoveryError
from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.ssd import Ssd


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to take a checkpoint."""

    #: seconds of simulated time between checkpoint attempts
    interval_s: float = 0.005
    #: skip the attempt unless at least this many epochs are new
    min_epochs: int = 1

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise RecoveryError("interval_s must be positive")
        if self.min_epochs < 1:
            raise RecoveryError("min_epochs must be at least 1")


@dataclass(frozen=True)
class Checkpoint:
    """A frozen, durable image of one store state.

    ``wal_lsn`` is the high-water mark the image covers: recovery
    replays only records with a larger lsn, and the WAL may truncate
    everything at or below it.
    """

    checkpoint_id: int
    epoch: int
    wal_lsn: int
    taken_at_s: float
    rows: np.ndarray
    deleted_at: Tuple[Tuple[int, int], ...]
    boundaries: Tuple[Tuple[int, int], ...]
    clustered_ids: np.ndarray
    clustered_epoch: int
    physical_rows: int
    log: Tuple[Mutation, ...]

    @property
    def nbytes(self) -> int:
        """Serialized size the flash is charged for."""
        return (
            self.rows.nbytes
            + self.clustered_ids.nbytes
            + 16 * len(self.deleted_at)
            + 16 * len(self.boundaries)
            + 64  # header: ids, epochs, counts
        )

    def restore(self) -> MutableFeatureStore:
        """A fresh store holding exactly this image's state."""
        return MutableFeatureStore.from_state(
            rows=self.rows,
            epoch=self.epoch,
            deleted_at=self.deleted_at,
            boundaries=self.boundaries,
            clustered_ids=self.clustered_ids,
            clustered_epoch=self.clustered_epoch,
            physical_rows=self.physical_rows,
            log=self.log,
        )


def take_checkpoint(
    store: MutableFeatureStore,
    checkpoint_id: int,
    wal_lsn: int,
    now_s: float,
) -> Checkpoint:
    """Freeze the store's current state into a checkpoint image."""
    rows, epoch, deleted, boundaries, clustered, cepoch, physical, log = (
        store.state_tuple()
    )
    return Checkpoint(
        checkpoint_id=checkpoint_id,
        epoch=epoch,
        wal_lsn=wal_lsn,
        taken_at_s=now_s,
        rows=rows,
        deleted_at=deleted,
        boundaries=boundaries,
        clustered_ids=clustered,
        clustered_epoch=cepoch,
        physical_rows=physical,
        log=log,
    )


def checkpoint_write_seconds(ssd: Ssd, checkpoint: Checkpoint) -> float:
    """Measured time to program one checkpoint image to flash."""
    page_bytes = ssd.config.geometry.page_bytes
    meta = DatabaseMetadata(
        db_id=0,
        feature_bytes=page_bytes,
        feature_count=max(1, -(-checkpoint.nbytes // page_bytes)),
        page_bytes=page_bytes,
    )
    return ssd.database_write_seconds(meta)


def checkpoint_read_seconds(ssd: Ssd, checkpoint: Checkpoint) -> float:
    """Measured time to load one checkpoint image at recovery."""
    return ssd.host_read_seconds(checkpoint.nbytes)
