"""Crash-durable wrapper around the mutable feature store.

:class:`DurableStore` binds the three recovery mechanisms together:

* every mutation is **WAL-first** — the record's flash program
  (:class:`~repro.recovery.wal.WriteAheadLog`) completes before the
  in-memory store applies it, and the program's completion is the
  commit point (``acked_epoch`` advances exactly then);
* **checkpoints** (:class:`~repro.recovery.checkpoint.Checkpoint`)
  bound the replay suffix and let the WAL truncate;
* :func:`recover` rebuilds a store from the durable image alone
  (checkpoint + WAL suffix) — **bit-exactly**: epochs, tombstones,
  row data, and the clustered/delta boundary all round-trip, which the
  hypothesis suite proves against the independent oracle replay.

The split ``begin_* `` / ``apply_pending`` API exists for the DES crash
driver: logging and applying are separate simulated events, so a crash
can land *between* them — the recovered store must then contain the
logged-but-unapplied mutation (it was acked), which replay guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # tracing is optional — avoid an import at runtime
    from repro.obs.dtrace import TraceCollector

import numpy as np

from repro.ingest.store import MutableFeatureStore, Snapshot
from repro.ingest.writepath import IngestWritePath, WriteOp
from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointPolicy,
    checkpoint_read_seconds,
    checkpoint_write_seconds,
    take_checkpoint,
)
from repro.recovery.wal import RecoveryError, WalRecord, WriteAheadLog
from repro.ssd.ssd import Ssd

#: modelled CPU cost of applying one replayed record to the store
APPLY_SECONDS_PER_RECORD = 2e-6


@dataclass(frozen=True)
class WalConfig:
    """The WAL's flash region and slot packing."""

    slot_bytes: int = 64
    blocks: int = 32
    pages_per_block: int = 32
    op_fraction: float = 0.07


@dataclass
class PendingMutation:
    """A logged-but-not-yet-applied mutation (the commit already
    happened — the WAL program completed)."""

    record: WalRecord
    write: WriteOp
    applied: bool = False


@dataclass(frozen=True)
class DurableImage:
    """What survives a crash: flash contents only.

    The in-memory store is deliberately absent — recovery must work
    from the checkpoint and the WAL suffix alone.
    """

    base: np.ndarray
    checkpoint: Optional[Checkpoint]
    records: Tuple[WalRecord, ...]
    next_lsn: int
    wal_config: WalConfig

    def truncated(self, n_records: int) -> "DurableImage":
        """An image as if the crash hit after only ``n_records`` WAL
        programs had completed (test seam for crash-point sweeps)."""
        records = self.records[: max(0, n_records)]
        next_lsn = records[-1].lsn + 1 if records else (
            self.checkpoint.wal_lsn + 1 if self.checkpoint else 1
        )
        return DurableImage(
            base=self.base,
            checkpoint=self.checkpoint,
            records=records,
            next_lsn=next_lsn,
            wal_config=self.wal_config,
        )


@dataclass
class RecoveryReport:
    """What one replay-based restart did and what it cost."""

    checkpoint_epoch: int
    recovered_epoch: int
    records_replayed: int
    checkpoint_read_seconds: float
    wal_read_seconds: float
    apply_seconds: float

    @property
    def seconds(self) -> float:
        """Total restart time (the recovery share of MTTR)."""
        return (
            self.checkpoint_read_seconds
            + self.wal_read_seconds
            + self.apply_seconds
        )


def apply_record(store: MutableFeatureStore, record: WalRecord) -> None:
    """Apply one WAL record to a store, asserting log discipline.

    Inserts and deletes must land at exactly the next epoch with
    exactly the logged ids — any divergence means the log and the
    store disagree, which replay must refuse to paper over.
    """
    if record.op == "insert":
        if record.epoch != store.epoch + 1:
            raise RecoveryError(
                f"insert record epoch {record.epoch} != next epoch "
                f"{store.epoch + 1}"
            )
        assert record.payload is not None  # enforced at record creation
        ids = store.insert(record.payload)
        if tuple(int(i) for i in ids) != record.ids:
            raise RecoveryError(
                f"replayed insert assigned ids {tuple(ids)!r} != logged "
                f"{record.ids!r}"
            )
    elif record.op == "delete":
        if record.epoch != store.epoch + 1:
            raise RecoveryError(
                f"delete record epoch {record.epoch} != next epoch "
                f"{store.epoch + 1}"
            )
        store.delete(record.ids)
    elif record.op == "compact":
        assert record.compact_epoch is not None
        store.mark_compacted(store.snapshot_at(record.compact_epoch))
    else:  # pragma: no cover - WalRecord validates op
        raise RecoveryError(f"unknown WAL op {record.op!r}")


class DurableStore:
    """A :class:`MutableFeatureStore` that survives crashes."""

    def __init__(
        self,
        base: np.ndarray,
        ssd: Optional[Ssd] = None,
        policy: Optional[CheckpointPolicy] = None,
        wal_config: Optional[WalConfig] = None,
    ):
        base = np.asarray(base, dtype=np.float32)
        self.ssd = ssd if ssd is not None else Ssd()
        self.policy = policy or CheckpointPolicy()
        self.wal_config = wal_config or WalConfig()
        self.store = MutableFeatureStore(base)
        self._base = base.copy()
        self.wal = WriteAheadLog(self._make_writepath())
        self.last_checkpoint: Optional[Checkpoint] = None
        self._next_checkpoint_id = 1
        self._last_checkpoint_epoch = 0
        self.checkpoints_taken = 0
        self.checkpoint_seconds = 0.0
        #: highest epoch whose WAL program has completed (the commit
        #: high-water mark — everything at or below it must survive)
        self.acked_epoch = 0
        self._pending: List[PendingMutation] = []

    def _make_writepath(self) -> IngestWritePath:
        cfg = self.wal_config
        return IngestWritePath(
            self.ssd,
            cfg.slot_bytes,
            op_fraction=cfg.op_fraction,
            blocks=cfg.blocks,
            pages_per_block=cfg.pages_per_block,
        )

    # ------------------------------------------------------------------
    # two-phase mutations (log, then apply)
    # ------------------------------------------------------------------
    def _next_epoch(self) -> int:
        # acked_epoch leads store.epoch while mutations are pending, so
        # overlapping two-phase commits still get distinct epochs
        return max(self.store.epoch, self.acked_epoch) + 1

    def begin_insert(self, features: np.ndarray) -> PendingMutation:
        """Durably log an insert; the store applies it later."""
        features = np.asarray(features, dtype=np.float32)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        # pre-assign ids past every pending (acked, unapplied) insert
        first = self.store.n_rows + sum(
            len(p.record.ids)
            for p in self._pending
            if p.record.op == "insert"
        )
        ids = tuple(range(first, first + features.shape[0]))
        record, write = self.wal.append(
            "insert", self._next_epoch(), ids=ids, payload=features
        )
        return self._commit(record, write)

    def begin_delete(self, ids) -> PendingMutation:
        """Durably log a delete; the store applies it later."""
        record, write = self.wal.append(
            "delete", self._next_epoch(), ids=tuple(int(i) for i in ids)
        )
        return self._commit(record, write)

    def _commit(self, record: WalRecord, write: WriteOp) -> PendingMutation:
        pending = PendingMutation(record=record, write=write)
        self._pending.append(pending)
        self.acked_epoch = record.epoch
        return pending

    def apply_pending(self, pending: PendingMutation) -> Tuple[int, ...]:
        """Apply one committed mutation to the in-memory store."""
        if pending.applied:
            raise RecoveryError("mutation already applied")
        if self._pending and self._pending[0] is not pending:
            raise RecoveryError("mutations must apply in log order")
        apply_record(self.store, pending.record)
        pending.applied = True
        self._pending.pop(0)
        return pending.record.ids

    # ------------------------------------------------------------------
    # one-shot mutations (log + apply, the common path)
    # ------------------------------------------------------------------
    def insert(self, features: np.ndarray, now_s: float = 0.0) -> np.ndarray:
        """Log + apply an insert; returns the assigned ids."""
        pending = self.begin_insert(features)
        ids = self.apply_pending(pending)
        self.maybe_checkpoint(now_s)
        return np.asarray(ids, dtype=np.int64)

    def delete(self, ids, now_s: float = 0.0) -> None:
        """Log + apply a delete of currently visible ids."""
        pending = self.begin_delete(ids)
        self.apply_pending(pending)
        self.maybe_checkpoint(now_s)

    def mark_compacted(self, snapshot: Snapshot, now_s: float = 0.0) -> int:
        """Log the compaction marker, then move the clustered boundary.

        Logged *before* applying (like every mutation): a crash after
        the program replays the compaction; a crash before it loses
        only the marker, never data — compaction does not change
        visibility.
        """
        self.wal.append(
            "compact", self.store.epoch, compact_epoch=snapshot.epoch
        )
        reclaimed = self.store.mark_compacted(snapshot)
        self.maybe_checkpoint(now_s)
        return reclaimed

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def checkpoint_due(self, now_s: float) -> bool:
        """Whether the policy calls for a checkpoint right now."""
        last_s = (
            self.last_checkpoint.taken_at_s if self.last_checkpoint else 0.0
        )
        return (
            now_s - last_s >= self.policy.interval_s
            and self.store.epoch - self._last_checkpoint_epoch
            >= self.policy.min_epochs
        )

    def maybe_checkpoint(self, now_s: float) -> Optional[Checkpoint]:
        """Checkpoint if due (the mutation paths call this)."""
        if not self.checkpoint_due(now_s):
            return None
        return self.checkpoint(now_s)

    def checkpoint(self, now_s: float) -> Checkpoint:
        """Freeze the applied state; truncate the WAL behind it.

        Only fully-applied mutations are covered: the checkpoint's
        ``wal_lsn`` stops at the first still-pending record, so a crash
        mid-two-phase never loses the unapplied suffix.
        """
        covered_lsn = (
            self._pending[0].record.lsn - 1
            if self._pending
            else self.wal.last_lsn
        )
        checkpoint = take_checkpoint(
            self.store, self._next_checkpoint_id, covered_lsn, now_s
        )
        self._next_checkpoint_id += 1
        self.checkpoint_seconds += checkpoint_write_seconds(self.ssd, checkpoint)
        self.wal.truncate_through(covered_lsn)
        self.last_checkpoint = checkpoint
        self._last_checkpoint_epoch = checkpoint.epoch
        self.checkpoints_taken += 1
        return checkpoint

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def crash_image(self) -> DurableImage:
        """The durable state a crash right now would leave on flash."""
        return DurableImage(
            base=self._base,
            checkpoint=self.last_checkpoint,
            records=self.wal.records,
            next_lsn=self.wal.last_lsn + 1,
            wal_config=self.wal_config,
        )


def recover(
    image: DurableImage,
    ssd: Optional[Ssd] = None,
    policy: Optional[CheckpointPolicy] = None,
    apply_seconds_per_record: float = APPLY_SECONDS_PER_RECORD,
    dtrace: Optional["TraceCollector"] = None,
    at_s: float = 0.0,
) -> Tuple[DurableStore, RecoveryReport]:
    """Replay-based restart: durable image in, live store out.

    Restores the checkpoint (or the base database), replays the WAL
    suffix in lsn order, and returns a fully re-armed
    :class:`DurableStore` (fresh WAL region re-seeded with the
    surviving records at zero modelled cost — they are already on
    flash) plus the measured :class:`RecoveryReport`.

    With ``dtrace`` attached, the three replay stages (checkpoint
    read, WAL read, apply) land as consecutive spans on a
    ``recovery`` track starting at ``at_s``; recovery is not itself
    simulated, so the spans are laid out from the measured stage
    seconds and never perturb any timing.
    """
    ssd = ssd if ssd is not None else Ssd()
    checkpoint_read_s = 0.0
    if image.checkpoint is not None:
        store = image.checkpoint.restore()
        covered_lsn = image.checkpoint.wal_lsn
        checkpoint_read_s = checkpoint_read_seconds(ssd, image.checkpoint)
        checkpoint_epoch = image.checkpoint.epoch
    else:
        store = MutableFeatureStore(image.base)
        covered_lsn = 0
        checkpoint_epoch = 0

    replayed = 0
    replay_bytes = 0
    for record in image.records:
        if record.lsn <= covered_lsn:
            continue
        apply_record(store, record)
        replayed += 1
        replay_bytes += record.nbytes

    recovered = DurableStore(
        image.base, ssd=ssd, policy=policy, wal_config=image.wal_config
    )
    recovered.store = store
    recovered.last_checkpoint = image.checkpoint
    recovered._last_checkpoint_epoch = checkpoint_epoch
    recovered._next_checkpoint_id = (
        image.checkpoint.checkpoint_id + 1 if image.checkpoint else 1
    )
    recovered.acked_epoch = store.epoch
    # re-seed the WAL region with the surviving records (already on
    # flash — the re-programs model nothing, so the counters are zeroed)
    wal = recovered.wal
    for record in image.records:
        slots = tuple(
            range(wal._next_slot, wal._next_slot + wal.slots_for(record))
        )
        wal.writepath.append(slots)
        wal._next_slot += len(slots)
        wal._records.append(record)
        wal._slots.append((record.lsn, slots))
    wal.writepath.reset_stats()
    wal.append_seconds = 0.0
    wal._next_lsn = image.next_lsn

    report = RecoveryReport(
        checkpoint_epoch=checkpoint_epoch,
        recovered_epoch=store.epoch,
        records_replayed=replayed,
        checkpoint_read_seconds=checkpoint_read_s,
        wal_read_seconds=ssd.host_read_seconds(replay_bytes),
        apply_seconds=replayed * apply_seconds_per_record,
    )
    if dtrace is not None:
        root = dtrace.start_trace(
            "recovery", at_s, kind="recovery", track="recovery",
            records_replayed=replayed,
        )
        t = at_s
        for name, kind, seconds in (
            ("checkpoint read", "recovery.checkpoint",
             report.checkpoint_read_seconds),
            ("wal read", "recovery.wal", report.wal_read_seconds),
            ("apply replay", "recovery.apply", report.apply_seconds),
        ):
            dtrace.add_span(
                root, name, t, t + seconds, kind=kind, track="recovery"
            )
            t += seconds
        dtrace.end_span(root, at_s + report.seconds)
    return recovered, report
