"""Command-line interface: ``python -m repro <command>``.

Small, self-contained runners over the library for the common questions:

=============  ==========================================================
``info``       versions, SSD geometry, accelerator placements
``table1``     the five applications vs their published Table-1 rows
``breakdown``  GPU+SSD time breakdown at the evaluation batch (Fig. 2)
``speedup``    per-app, per-level speedup & energy efficiency (Table 4)
``dse``        PE scaling curves (Fig. 6)
``cache``      a query-cache simulation (Fig. 13-style point)
``faults``     fault-injected queries and a reliability report
``trace``      run one traced query; emit Chrome trace JSON + breakdown
``profile``    busiest-resource occupancy and idle-gap analysis
``serve``      open-loop serving: offered-load sweep or perf scorecard
``cluster``    sharded multi-SSD scatter-gather queries / perf scorecard
``ingest``     online ingest & data-lifecycle loop / perf scorecard
``index``      IVF ANN probes: recall/latency Pareto sweep / scorecard
``chaos``      scripted fault day: crash recovery + cluster hardening
``tenants``    multi-tenant production day: fairness, autoscaling, SLOs
``demo``       a real end-to-end query with planted neighbors
=============  ==========================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.core.placement import LEVELS
    from repro.ssd import SsdConfig

    config = SsdConfig()
    geo = config.geometry
    print(f"repro {repro.__version__} — DeepStore (MICRO-52 2019) reproduction")
    print(
        f"SSD: {geo.channels} channels x {geo.chips_per_channel} chips x "
        f"{geo.planes_per_chip} planes, {geo.page_bytes // 1024} KB pages, "
        f"{geo.capacity_bytes / 1024**4:.1f} TiB"
    )
    print(
        f"Bandwidth: {config.timing.channel_bandwidth / 1e6:.0f} MB/s per "
        f"channel ({config.internal_bandwidth / 1e9:.1f} GB/s internal), "
        f"{config.external_bandwidth / 1e9:.1f} GB/s external"
    )
    print(f"Accelerator power budget: {config.accelerator_power_budget_w:.0f} W")
    for name, p in LEVELS.items():
        print(
            f"  {name:8s} {p.systolic.rows}x{p.systolic.cols} "
            f"{p.systolic.dataflow} @ {p.systolic.frequency_hz / 1e6:.0f} MHz, "
            f"{p.scratchpad_bytes // 1024} KB scratchpad, "
            f"{p.area_mm2} mm^2, x{p.count(config)}"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis import Table, format_si
    from repro.workloads import ALL_APPS

    table = Table(
        "Table 1 (measured vs paper)",
        ["App", "Feature", "Layers c/f/e", "FLOPs", "Weights", "paper FLOPs"],
    )
    for name, app in ALL_APPS.items():
        graph = app.build_scn()
        counts = graph.count_layers()
        table.add_row(
            name,
            f"{app.feature_bytes / 1024:.1f}KB",
            f"{counts['conv']}/{counts['fc']}/{counts['elementwise']}",
            format_si(graph.total_flops()),
            f"{graph.weight_bytes() / 2**20:.2f}MiB",
            format_si(app.table1.total_flops),
        )
    table.print()
    return 0


def _cmd_breakdown(args: argparse.Namespace) -> int:
    from repro.analysis import Table, format_seconds
    from repro.baseline import GpuSsdSystem
    from repro.workloads import ALL_APPS

    system = GpuSsdSystem()
    table = Table(
        "Fig. 2: GPU+SSD breakdown at the evaluation batch",
        ["App", "Batch", "SSD read %", "Memcpy %", "Compute %", "Batch time"],
    )
    for name, app in ALL_APPS.items():
        bd = system.batch_breakdown(app)
        f = bd.fractions()
        table.add_row(
            name, bd.batch,
            f"{f['ssd_read'] * 100:5.1f}", f"{f['memcpy'] * 100:5.1f}",
            f"{f['compute'] * 100:5.1f}", format_seconds(bd.serial_total_s),
        )
    table.print()
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from repro.analysis import Table, compare_levels
    from repro.ssd import Ssd
    from repro.workloads import ALL_APPS, get_app

    ssd = Ssd()
    apps = [get_app(args.app)] if args.app else list(ALL_APPS.values())
    table = Table(
        f"Speedup / energy-efficiency vs GPU+SSD ({args.gigabytes:.0f} GB DBs)",
        ["App", "SSD-lvl", "Channel", "Chip", "EE channel"],
    )
    for app in apps:
        meta = ssd.ftl.create_database(
            app.feature_bytes, int(args.gigabytes * 1e9 / app.feature_bytes)
        )
        row = {c.level: c for c in compare_levels(app, meta)}

        def fmt(level, energy=False):
            cell = row[level]
            if not cell.supported:
                return "n/a"
            value = cell.energy_efficiency if energy else cell.speedup
            return f"{value:6.2f}x"

        table.add_row(app.name, fmt("ssd"), fmt("channel"), fmt("chip"),
                      fmt("channel", energy=True))
    table.print()
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.analysis import Table
    from repro.core.dse import explore_pe_scaling

    table = Table("Fig. 6: speedup vs #PEs", ["#PEs", "FC", "ConvD"])
    for pf, pc in zip(explore_pe_scaling("fc"), explore_pe_scaling("conv")):
        table.add_row(pf.num_pes, f"{pf.speedup:5.2f}x", f"{pc.speedup:5.2f}x")
    table.print()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.core.query_cache import (
        CacheTimingModel,
        EmbeddingComparator,
        QueryCache,
        QueryCacheSimulator,
    )
    from repro.workloads import QueryStream

    stream = QueryStream(
        dim=256, n_intents=args.intents, distribution=args.distribution,
        alpha=args.alpha, paraphrase_noise=0.15, noise_spread=0.85, seed=1,
    )
    cache = QueryCache(
        capacity=args.entries,
        comparator=EmbeddingComparator(),
        qcn_accuracy=0.98,
        threshold=args.threshold,
    )
    timing = CacheTimingModel(0.3e-6, 300e-6, args.scan_ms * 1e-3)
    report = QueryCacheSimulator(cache, timing).run(
        stream.generate(args.queries), warmup=args.queries // 4
    )
    print(
        f"{args.distribution} stream, {args.entries} entries, "
        f"threshold {args.threshold * 100:.0f}%:"
    )
    print(f"  miss rate     {report.miss_rate * 100:5.1f}%")
    print(f"  mean query    {report.mean_seconds * 1e3:.2f} ms "
          f"(scan {args.scan_ms:.1f} ms)")
    print(f"  speedup       {report.speedup_over(args.scan_ms * 1e-3):.2f}x "
          f"over no-cache")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.capacity import PlanningError, plan_deployment

    try:
        plans = plan_deployment(
            args.app, corpus_features=args.features, target_qps=args.qps,
        )
    except PlanningError as exc:
        print(f"infeasible: {exc}")
        return 1
    for plan in plans[:6]:
        print(plan.describe())
    return 0 if plans and plans[0].feasible else 1


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from repro.analysis.scorecard import build_scorecard

    card = build_scorecard(gigabytes=args.gigabytes)
    if args.json:
        print(card.to_json())
    else:
        print(card.render())
    return 0 if card.structural_ok else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    """Run fault-injected queries and print a reliability report.

    Deterministic in ``--seed`` and the plan flags: re-running the same
    command reproduces the report byte for byte.
    """
    from repro.analysis.reliability import run_reliability_trial
    from repro.faults import FaultPlan
    from repro.ssd import Ssd
    from repro.workloads import get_app

    app = get_app(args.app)
    ssd = Ssd()
    try:
        meta = ssd.ftl.create_database(app.feature_bytes, args.features)
        plan = FaultPlan(
            read_retry_rate=args.retry_rate,
            crc_error_rate=args.crc_rate,
            chip_failure_rate=args.chip_rate,
        )
        if args.fail_accels:
            for token in args.fail_accels.split(","):
                plan = plan.fail_accelerator(int(token.strip()))
        report = run_reliability_trial(
            app,
            meta,
            plan,
            queries=args.queries,
            seed=args.seed,
            max_pages_per_channel=args.max_pages,
        )
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0


def _run_traced_query(args: argparse.Namespace):
    """Shared runner for ``trace``/``profile``: one instrumented query."""
    from repro.core.event_query import EventQuerySimulator
    from repro.obs import MetricsRegistry, Tracer
    from repro.ssd import Ssd
    from repro.workloads import get_app

    app = get_app(args.app)
    ssd = Ssd()
    meta = ssd.ftl.create_database(app.feature_bytes, args.features)
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = EventQuerySimulator().run(
        app,
        meta,
        max_pages_per_channel=args.max_pages,
        tracer=tracer,
        metrics=metrics,
    )
    return app, result, tracer, metrics


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one event-driven query with tracing; export + explain it."""
    import json

    from repro.analysis.reporting import ascii_series
    from repro.obs import (
        profile_resources,
        query_breakdown,
        utilization_timelines,
        write_chrome_trace,
    )

    try:
        app, result, tracer, metrics = _run_traced_query(args)
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    write_chrome_trace(tracer, args.out)
    breakdown = query_breakdown(result)
    if args.json:
        print(json.dumps({
            "app": app.name,
            "features": args.features,
            "trace_file": args.out,
            "spans": tracer.span_count,
            "instants": len(tracer.instants),
            "sim_events": tracer.count("sim.event"),
            "breakdown": breakdown.as_dict(),
            "metrics": metrics.snapshot(),
        }, indent=2, sort_keys=True))
        return 0
    breakdown.table(
        f"Per-query latency breakdown ({app.name}, {result.pages} pages)"
    ).print()
    print(f"\ntrace: {args.out} ({tracer.span_count} spans, "
          f"{len(tracer.instants)} instants, "
          f"{tracer.count('sim.event')} sim events) — open in "
          f"chrome://tracing or https://ui.perfetto.dev")
    timelines = utilization_timelines(tracer, bins=args.bins)
    print("\n== Utilization (busy fraction vs sim time, busiest first) ==")
    for usage in profile_resources(tracer, end=result.scan_seconds, top=args.top):
        series = timelines.get(usage.name)
        if not series:
            continue
        bar = ascii_series(series, width=args.bins)
        print(f"{usage.name:24s} {bar} {usage.utilization * 100:5.1f}%")
    return 0


def _cmd_profile_hotspots(args: argparse.Namespace) -> int:
    """Host-CPU hotspots of one query: cProfile over the fast path.

    Unlike the resource profile (simulated time), this measures where
    the *simulator itself* burns wall-clock — the numbers the fastpath
    refactor optimizes.  Runs untraced so the inlined drain loop (the
    production configuration) is what gets measured.
    """
    import cProfile
    import json
    import pstats

    from repro.core.event_query import EventQuerySimulator
    from repro.sim import fastpath
    from repro.ssd import Ssd
    from repro.workloads import get_app

    app = get_app(args.app)
    ssd = Ssd()
    meta = ssd.ftl.create_database(app.feature_bytes, args.features)
    profiler = cProfile.Profile()
    profiler.enable()
    result = EventQuerySimulator().run(
        app, meta, max_pages_per_channel=args.max_pages
    )
    profiler.disable()
    if args.pstats_out:
        profiler.dump_stats(args.pstats_out)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    if args.json:
        rows = []
        for (filename, line, name), (cc, nc, tt, ct, _callers) in sorted(
            stats.stats.items(), key=lambda item: -item[1][3]
        )[: args.top]:
            rows.append({
                "function": name, "file": filename, "line": line,
                "ncalls": nc, "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            })
        print(json.dumps({
            "app": app.name,
            "fastpath": fastpath.enabled(),
            "fastpath_stats": dict(fastpath.stats),
            "scan_seconds": result.scan_seconds,
            "hotspots": rows,
        }, indent=2, sort_keys=True))
        return 0
    print(
        f"host-CPU hotspots ({app.name}, fastpath "
        f"{'on' if fastpath.enabled() else 'off'}, "
        f"simulated scan {result.scan_seconds:.6f}s)"
    )
    stats.print_stats(args.top)
    print(f"fastpath cache stats: {dict(fastpath.stats)}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Top-N busiest resources and idle-gap analysis of one query."""
    import json

    from repro.analysis import Table, format_seconds
    from repro.obs import profile_resources

    if args.hotspots:
        return _cmd_profile_hotspots(args)
    try:
        app, result, tracer, metrics = _run_traced_query(args)
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    usages = profile_resources(tracer, end=result.scan_seconds, top=args.top)
    if args.json:
        print(json.dumps({
            "app": app.name,
            "scan_seconds": result.scan_seconds,
            "total_seconds": result.total_seconds,
            "resources": [u.as_dict() for u in usages],
            "metrics": metrics.snapshot(),
        }, indent=2, sort_keys=True))
        return 0
    table = Table(
        f"Busiest resources ({app.name}, scan "
        f"{format_seconds(result.scan_seconds)})",
        ["Resource", "Busy", "Util", "Spans", "Idle gaps", "Longest gap"],
    )
    for usage in usages:
        table.add_row(
            usage.name,
            format_seconds(usage.busy_seconds),
            f"{usage.utilization * 100:5.1f}%",
            usage.spans,
            usage.idle_gaps,
            format_seconds(usage.longest_idle_gap_s),
        )
    table.print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve an open-loop query stream; print the load-latency curve.

    Deterministic in ``--seed`` and the config flags: the same command
    reproduces the same curve byte for byte.  ``--scorecard --json``
    emits the canonical machine-readable perf scorecard CI gates on.
    """
    import json

    from repro.analysis.reporting import ascii_series
    from repro.obs import MetricsRegistry, Tracer
    from repro.serving import (
        ServingConfig,
        build_serving_scorecard,
        curve_table,
        drop_timeline,
        queue_depth_timeline,
        serving_metrics_snapshot,
        sweep_offered_load,
    )
    from repro.workloads import QueryStream, get_app

    if args.scorecard:
        # always machine-readable: this is the artifact CI gates on
        print(json.dumps(build_serving_scorecard(), indent=2, sort_keys=True))
        return 0

    config = ServingConfig(
        app=args.app,
        features=args.features,
        queue_bound=args.queue_bound,
        policy=args.policy,
        deadline_s=args.deadline_ms * 1e-3 if args.deadline_ms else None,
        max_batch=args.max_batch,
        n_servers=args.servers,
        cache_entries=args.cache_entries,
        cache_threshold=args.threshold,
        failed_accels=tuple(
            int(token) for token in args.fail_accels.split(",") if token.strip()
        ),
        fidelity=args.fidelity,
    )
    stream = None
    if config.cache_entries > 0:
        app = get_app(args.app)
        stream = QueryStream(
            dim=min(256, app.feature_floats),
            n_intents=args.intents,
            distribution="zipf",
            alpha=0.8,
            paraphrase_noise=0.05,
            seed=args.seed,
        )
    qps_points = None
    if args.qps is not None:
        qps_points = [args.qps]
    elif not args.qps_sweep:
        qps_points = None  # defaults to the saturation-relative ladder
    metrics = MetricsRegistry()
    tracer = Tracer()
    try:
        curve = sweep_offered_load(
            config,
            n_queries=args.queries,
            seed=args.seed,
            qps_points=qps_points,
            stream=stream,
            metrics=metrics,
            tracer=tracer,
        )
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({
            "config": {
                "app": config.app,
                "features": config.features,
                "queue_bound": config.queue_bound,
                "policy": config.policy,
                "max_batch": config.max_batch,
                "n_servers": config.n_servers,
                "cache_entries": config.cache_entries,
                "failed_accels": list(config.failed_accels),
                "seed": args.seed,
                "queries": args.queries,
            },
            "curve": curve.as_dict(),
            "metrics": serving_metrics_snapshot(metrics),
        }, indent=2, sort_keys=True))
        return 0
    curve_table(curve).print()
    depth = queue_depth_timeline(tracer, bins=args.bins)
    drops = drop_timeline(tracer, bins=args.bins)
    if depth:
        print(f"\nqueue depth  {ascii_series(depth, width=args.bins)} "
              f"(top offered load; sweep peak "
              f"{max(p.queue_peak for p in curve.points)})")
    if any(drops):
        drop_bar = ascii_series([float(d) for d in drops], width=args.bins)
        print(f"drops/bin    {drop_bar} "
              f"(top offered load; {sum(drops)} drops)")
    knee = curve.knee_index()
    if knee < len(curve.points):
        print(f"\nknee: goodput first drops below 1.0 at "
              f"{curve.points[knee].offered_qps:.2f} offered qps "
              f"(saturation ~{curve.saturation_qps:.2f} qps)")
    else:
        print(f"\nno saturation within the sweep "
              f"(saturation ~{curve.saturation_qps:.2f} qps)")
    return 0


def _parse_fail_shards(text: str):
    """``"0,3:1"`` -> ((0, 0), (3, 1)): shard or shard:replica tokens."""
    specs = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if ":" in token:
            shard, replica = token.split(":", 1)
            specs.append((int(shard), int(replica)))
        else:
            specs.append(int(token))
    return tuple(specs)


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Scatter-gather queries over a sharded, replicated cluster.

    Deterministic in ``--seed`` and the config flags: the same command
    reproduces the same output byte for byte.  ``--scorecard`` emits
    the canonical machine-readable cluster scorecard CI gates on.
    """
    import json

    from repro.cluster import (
        ClusterConfig,
        ClusterError,
        DeepStoreCluster,
        build_cluster_scorecard,
        cluster_metrics_snapshot,
    )
    from repro.obs import MetricsRegistry
    from repro.workloads import get_app, plant_neighbors, train_scn

    if args.scorecard:
        # always machine-readable: this is the artifact CI gates on
        print(json.dumps(build_cluster_scorecard(), indent=2, sort_keys=True))
        return 0

    app = get_app(args.app)
    try:
        config = ClusterConfig(
            n_shards=args.shards,
            n_replicas=args.replicas,
            placement=args.placement,
            level=args.level,
            seed=args.seed,
            hedge_fraction=args.hedge if args.hedge > 0 else None,
            straggler_spread=args.straggler,
            fail_shards=_parse_fail_shards(args.fail_shards),
        )
    except (ClusterError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rng = np.random.default_rng(args.seed)
    features = rng.normal(0, 1, (args.features, app.feature_floats)).astype(
        np.float32
    )
    intent = rng.normal(0, 1, app.feature_floats).astype(np.float32)
    features, planted = plant_neighbors(
        features, intent, k=args.k // 2 or 1, noise=0.2, seed=args.seed + 1
    )
    metrics = MetricsRegistry()
    cluster = DeepStoreCluster(config, metrics=metrics)
    try:
        db = cluster.write_db(features)
        model = cluster.load_graph(train_scn(app, seed=args.seed))
        if args.cache_threshold > 0:
            cluster.set_qc(args.cache_threshold)
        results = []
        for q in range(args.queries):
            qfv = intent + rng.normal(0, 0.2, app.feature_floats).astype(
                np.float32
            )
            results.append(cluster.query(qfv, args.k, model, db))
    except ClusterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    placement = cluster.placement_of(db)
    if args.json:
        print(json.dumps({
            "config": {
                "app": args.app,
                "features": args.features,
                "k": args.k,
                "queries": args.queries,
                "seed": args.seed,
                "shards": config.n_shards,
                "replicas": config.n_replicas,
                "placement": config.placement,
                "level": config.level,
                "dead_replicas": [list(d) for d in config.dead_replicas()],
                "hedge_fraction": config.hedge_fraction,
                "straggler_spread": config.straggler_spread,
            },
            "shard_sizes": list(placement.shard_sizes),
            "queries": [r.to_dict() for r in results],
            "metrics": cluster_metrics_snapshot(metrics),
        }, indent=2, sort_keys=True))
        return 0

    print(f"cluster: {config.describe()}")
    print(f"placement: {placement.strategy}, shard sizes "
          f"{list(placement.shard_sizes)} "
          f"(imbalance {placement.imbalance:.2f}x)")
    recall_hits = 0
    for q, result in enumerate(results):
        recall_hits += len(
            set(result.feature_ids.tolist()) & set(planted.tolist())
        )
        flags = []
        if result.partial:
            flags.append(
                f"PARTIAL ({result.unavailable_shards} shard(s) unavailable)"
            )
        if result.failovers:
            flags.append(f"{result.failovers} failover(s)")
        if result.hedges_launched:
            flags.append(
                f"{result.hedges_launched} hedge(s), {result.hedge_wins} won"
            )
        if result.cache_hit:
            flags.append("cache hit")
        extra = f" [{', '.join(flags)}]" if flags else ""
        print(f"query {q}: {result.seconds * 1e3:8.3f} ms "
              f"(scatter {result.scatter_seconds * 1e6:6.2f} us, "
              f"slowest shard {result.makespan_seconds * 1e3:7.3f} ms, "
              f"gather {result.gather_seconds * 1e6:6.2f} us, "
              f"{result.merge.comparisons} cmp){extra}")
    total_planted = len(planted) * len(results)
    print(f"recall of planted neighbors: {recall_hits}/{total_planted}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    """IVF ANN probes over the accelerator hierarchy.

    Builds an inverted-file index over a clustered workload (build cost
    priced through the page-mapped FTL write path), then sweeps
    ``nprobe`` per accelerator level: recall@K against the exhaustive
    scan vs the modelled probe latency, with the operating point
    re-validated on the event-driven timeline.  ``--scorecard`` emits
    the index leg of the CI perf gate.
    """
    import json

    from repro.index.scorecard import (
        IndexGateConfig,
        RECALL_GATE,
        build_index_scorecard,
    )

    if args.scorecard:
        # always machine-readable: this is the artifact CI gates on
        print(json.dumps(build_index_scorecard(), indent=2, sort_keys=True))
        return 0

    try:
        config = IndexGateConfig(
            app=args.app,
            n_features=args.features,
            n_lists=args.lists,
            k=args.k,
            n_queries=args.queries,
            seed=args.seed,
        )
        card = build_index_scorecard(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(card, indent=2, sort_keys=True, default=float))
        return 0

    build = card["build"]
    print(f"IVF index: {args.app}, {args.features} rows, "
          f"{args.lists} lists, seed {args.seed}")
    print(f"build: {build['total_seconds'] * 1e3:.2f} ms modelled "
          f"({build['train_seconds'] * 1e3:.2f} train + "
          f"{build['layout_write_seconds'] * 1e3:.2f} layout, "
          f"WA {build['write_amplification']:.2f}, "
          f"{build['region_blocks']} region blocks)")
    print()
    print("recall/latency frontier (vs exhaustive scan at the same level):")
    print("  level    nprobe  recall@k   seconds    speedup")
    for level, points in card["pareto"].items():
        for key in sorted(points, key=lambda s: int(s.split("=")[1])):
            p = points[key]
            print(f"  {level:8s} {int(key.split('=')[1]):6d}"
                  f"  {p['recall_at_k']:8.3f}  {p['seconds']:.3e}"
                  f"  {p['speedup']:8.2f}x")
    op = card["operating_point"]
    des = card["des"]
    print()
    print(f"operating point (recall >= {RECALL_GATE}): nprobe={op['nprobe']} "
          f"at {op['level']} level, recall {op['recall_at_k']:.3f}, "
          f"{op['speedup']:.2f}x analytic")
    print(f"DES timeline: {des['probed_pages']}/{des['full_pages']} pages "
          f"scanned, {des['event_speedup']:.2f}x event-time speedup")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Online ingest & data lifecycle: mutate a database while querying.

    Runs the deterministic staleness → compaction → interference loop
    (:func:`repro.ingest.run_lifecycle`) and reports what mutating the
    database actually cost: clustered-layout recall drifting as the
    delta region grows, the preemptible compaction that restores it,
    and the measured write-amplification feeding query slowdown.
    ``--scorecard`` emits the ingest leg of the CI perf gate.
    """
    import json

    from repro.ingest import (
        IngestError,
        LifecycleConfig,
        build_ingest_scorecard,
        run_lifecycle,
    )

    if args.scorecard:
        # always machine-readable: this is the artifact CI gates on
        print(json.dumps(build_ingest_scorecard(), indent=2, sort_keys=True))
        return 0

    try:
        config = LifecycleConfig(
            app=args.app,
            n_base=args.base,
            rounds=args.rounds,
            probe_queries=args.queries,
            k=args.k,
            seed=args.seed,
        )
        report = run_lifecycle(config)
    except (IngestError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        payload = report.as_dict()
        payload["config"] = {
            "app": args.app,
            "base": args.base,
            "rounds": args.rounds,
            "queries": args.queries,
            "k": args.k,
            "seed": args.seed,
        }
        payload["metrics"] = {
            key: value
            for key, value in report.metrics.items()
            if key.startswith("ingest.")
        }
        print(json.dumps(payload, indent=2, sort_keys=True, default=float))
        return 0

    print(f"Ingest lifecycle: {args.app}, {config.n_base} base rows, "
          f"{config.rounds} mutation rounds, seed {config.seed}")
    print()
    print("staleness (clustered-scan recall vs exact snapshot top-K):")
    print("  round  delta%  stale recall  +delta recall")
    for point in report.staleness:
        print(f"  {point.round:5d}  {point.delta_fraction * 100:5.1f}"
              f"  {point.stale_recall:12.3f}"
              f"  {point.with_delta_recall:13.3f}")
    comp = report.compaction
    print()
    print(f"compaction: {comp.rows_rewritten} rows rewritten, "
          f"{comp.reclaimed_rows} tombstones reclaimed "
          f"({comp.chunks} chunks, {comp.preemptions} preempted by queries, "
          f"{comp.duration_s * 1e3:.2f} ms on the DES timeline)")
    print(f"  recall {report.staleness[-1].stale_recall:.3f} -> "
          f"{report.post_compaction_recall:.3f} "
          f"(fresh-layout baseline {report.fresh_baseline_recall:.3f})")
    print()
    print(f"write path: WA {report.write_amplification:.3f} "
          f"({report.host_writes} host pages, "
          f"{report.gc_relocations} GC relocations, "
          f"{report.gc_erases} erases, {report.mutations} mutations)")
    print("interference (query slowdown vs background ingest load):")
    for point in report.interference:
        print(f"  raw {point.raw_load:4.2f} -> "
              f"offered {point.offered_load:4.2f}: "
              f"{point.slowdown:6.3f}x")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """A scripted production day of correlated failures.

    Runs the durability track (crashes against the WAL + checkpoint
    recovery path, :func:`repro.chaos.run_durability_chaos`) and the
    availability track (replica kill storms, retry ladders, breakers,
    brownout, :func:`repro.chaos.run_cluster_chaos`) and reports the
    MTTR / durability / recall-under-chaos scorecard.  ``--scorecard``
    emits the recovery leg of the CI perf gate.
    """
    import json

    from repro.chaos import (
        ChaosConfig,
        ChaosError,
        run_cluster_chaos,
        run_durability_chaos,
    )

    if args.scorecard:
        from repro.recovery.scorecard import build_recovery_scorecard

        # always machine-readable: this is the artifact CI gates on
        print(json.dumps(
            build_recovery_scorecard(), indent=2, sort_keys=True
        ))
        return 0

    try:
        config = ChaosConfig(
            seed=args.seed,
            duration_s=args.duration,
            crashes=args.crashes,
            kills=args.kills,
            queries=args.queries,
        )
        durability = (
            run_durability_chaos(config)
            if args.track in ("durability", "both") else None
        )
        availability = (
            run_cluster_chaos(config)
            if args.track in ("cluster", "both") else None
        )
    except ChaosError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        payload = {"seed": config.seed, "duration_s": config.duration_s}
        if durability is not None:
            payload["durability"] = durability.to_dict()
        if availability is not None:
            payload["availability"] = availability.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"chaos day: seed {config.seed}, "
          f"{config.duration_s * 1e3:.0f} ms simulated")
    if durability is not None:
        d = durability
        print()
        print(f"durability ({config.crashes} crash(es), "
              f"{d.mutations_acked} acked mutations):")
        for c in d.crashes:
            print(f"  crash @ {c.at_s * 1e3:7.2f} ms: "
                  f"replayed {c.records_replayed} record(s), "
                  f"MTTR {c.mttr_s * 1e3:.3f} ms, "
                  f"{'bit-equal' if c.bit_equal else 'DIVERGED'}")
        print(f"  checkpoints {d.checkpoints_taken}, "
              f"WAL {d.wal_records} record(s) / {d.wal_bytes_logged} B, "
              f"write amplification {d.wal_write_amplification:.3f}")
        print(f"  durability {d.durability:.3f}, "
              f"lost unacked {d.mutations_lost_unacked}, "
              f"delta-skip recall {d.delta_skip_recall:.3f}")
    if availability is not None:
        a = availability
        print()
        print(f"availability ({config.kills} kill(s), "
              f"{a.queries} queries):")
        print(f"  served {a.served}, shed {a.shed}, failed {a.failed} "
              f"-> availability {a.availability:.3f}, "
              f"recall {a.recall_mean:.3f}")
        for o in a.outages:
            print(f"  outage shard {o.shard} replica {o.replica} "
                  f"@ {o.killed_at_s * 1e3:7.2f} ms: "
                  f"resync {o.resync_records} record(s)"
                  f"{' (full snapshot)' if o.full_snapshot else ''}, "
                  f"MTTR {o.mttr_s * 1e3:.3f} ms")
        print(f"  partial answers {a.partial}, failovers {a.failovers}, "
              f"breaker transitions {a.breaker_transitions}, "
              f"brownout peak L{a.max_brownout_level} "
              f"({len(a.brownout_transitions)} transition(s))")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Critical-path attribution for one clustered query.

    Runs a small hardened cluster (hedging, retries, one dead replica
    by default — the interesting regime), traces every query with the
    distributed-trace collector, and decomposes the chosen query's
    end-to-end latency into named segments that sum **bit-exactly**
    (IEEE-754 ``==``) to the reported total.  ``--out`` writes the
    whole day's causal span forest as Chrome trace-event JSON.
    """
    import json

    from repro.cluster import (
        ClusterConfig,
        ClusterError,
        DeepStoreCluster,
        RetryPolicy,
    )
    from repro.obs import (
        FleetAttribution,
        TraceCollector,
        cluster_critical_path,
        write_dtrace,
    )
    from repro.workloads import get_app, train_scn

    app = get_app(args.app)
    try:
        config = ClusterConfig(
            n_shards=args.shards,
            n_replicas=args.replicas,
            seed=args.seed,
            hedge_fraction=args.hedge if args.hedge > 0 else None,
            straggler_spread=args.straggler,
            fail_shards=_parse_fail_shards(args.fail_shards),
            retry_policy=RetryPolicy(),
        )
    except (ClusterError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not 0 <= args.query_id < args.queries:
        print(
            f"error: query id {args.query_id} out of range "
            f"(ran {args.queries} queries)",
            file=sys.stderr,
        )
        return 1

    rng = np.random.default_rng(args.seed)
    features = rng.normal(0, 1, (args.features, app.feature_floats)).astype(
        np.float32
    )
    dtrace = TraceCollector()
    cluster = DeepStoreCluster(config)
    try:
        db = cluster.write_db(features)
        model = cluster.load_graph(train_scn(app, seed=args.seed))
        results = []
        for q in range(args.queries):
            qfv = rng.normal(0, 1, app.feature_floats).astype(np.float32)
            results.append(
                cluster.query(qfv, args.k, model, db, dtrace=dtrace)
            )
    except ClusterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    paths = [cluster_critical_path(r) for r in results]
    fleet = FleetAttribution()
    for path in paths:
        fleet.add(path)
    path = paths[args.query_id]
    result = results[args.query_id]

    if args.out:
        write_dtrace(dtrace, args.out)
    if args.json:
        print(json.dumps({
            "query_id": args.query_id,
            "seconds": result.seconds,
            "bit_exact": path.bit_exact,
            "critical_path": path.as_dict(),
            "fleet": fleet.as_dict(),
            "trace": {
                "spans": dtrace.span_count,
                "traces": len(dtrace.trace_ids()),
            },
        }, indent=2, sort_keys=True))
        return 0

    print(f"query {args.query_id}: {result.seconds * 1e3:.3f} ms "
          f"end-to-end ({config.describe()})")
    print(path.table().render())
    check = "bit-exact" if path.bit_exact else "NOT bit-exact"
    print(f"segment sum: {path.component_sum() * 1e3:.6f} ms ({check})")
    dominant = fleet.dominant_at(99.0)
    print(f"fleet p99 dominant segment: {dominant['dominant']} "
          f"({dominant['share'] * 100:.1f}% of tail seconds, "
          f"{dominant['queries']} tail queries)")
    if args.out:
        print(f"wrote Chrome trace: {args.out}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """SLO burn-rate monitoring over a chaos day.

    Replays the availability chaos track with the stock monitor
    (availability + latency SLOs, fast-burn alert rules) and reports
    the windows, error budgets, every alert that fired, and the
    detection time: how long after the first injected kill the first
    alert fired.  ``--scorecard`` emits the machine-readable report CI
    archives.
    """
    import json

    from repro.chaos import ChaosConfig, ChaosError, run_cluster_chaos

    try:
        config = ChaosConfig(
            seed=args.seed,
            duration_s=args.duration,
            kills=args.kills,
            queries=args.queries,
        )
        report = run_cluster_chaos(config)
    except ChaosError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    payload = {
        "seed": config.seed,
        "duration_s": config.duration_s,
        "availability": report.availability,
        "served": report.served,
        "queries": report.queries,
        "first_fault_s": report.first_fault_s,
        "first_alert_s": report.first_alert_s,
        "alert_latency_s": report.alert_latency_s,
        "slo": report.slo,
    }
    if args.scorecard or args.json:
        # always machine-readable: this is the artifact CI archives
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"slo monitor: seed {config.seed}, "
          f"{config.duration_s * 1e3:.0f} ms chaos day, "
          f"{config.kills} kill(s), {report.queries} queries")
    slos = report.slo.get("slos", {})
    for name, block in sorted(slos.items()):
        print(f"  {name}: target {block['target']:.2f}, "
              f"{block['events']} event(s), {block['bad']} bad, "
              f"budget remaining {block['budget_remaining']:+.2f}"
              f"{' VIOLATED' if block['violated'] else ''}")
    alerts = report.alerts
    print(f"  alerts fired: {len(alerts)}")
    for alert in alerts:
        print(f"    {alert.rule} @ {alert.at_s * 1e3:7.2f} ms "
              f"(burn {alert.burn_rate:.2f}x, "
              f"{alert.bad}/{alert.total} bad)")
    if report.alert_latency_s is not None:
        print(f"  first kill @ {report.first_fault_s * 1e3:.2f} ms, "
              f"first alert @ {report.first_alert_s * 1e3:.2f} ms "
              f"-> detection in {report.alert_latency_s * 1e3:.2f} ms")
    elif report.first_fault_s is not None:
        print(f"  first kill @ {report.first_fault_s * 1e3:.2f} ms, "
              f"no alert fired after it")
    return 0


def _cmd_tenants(args: argparse.Namespace) -> int:
    """Multi-tenant production day on the shared serving plane.

    Plays the canonical three-tenant 24-hour diurnal trace — search
    flash crowd, scripted shard failure, skewed live ingest — through
    weighted-fair admission and the burn-rate autoscaler, and reports
    each tenant's day plus the noisy-neighbor isolation ratios.
    ``--trace`` summarizes the generated trace without running it;
    ``--scorecard`` emits the tenancy leg of the CI perf gate.
    """
    import json

    from repro.tenancy import (
        default_production_config,
        generate_day,
        offered_summary,
        run_production_day,
    )
    from repro.tenancy.scorecard import build_tenancy_scorecard
    from repro.tenancy.trace import peak_window_qps

    if args.scorecard:
        # always machine-readable: this is the artifact CI gates on
        print(json.dumps(build_tenancy_scorecard(), indent=2,
                         sort_keys=True))
        return 0

    try:
        config = default_production_config(
            seed=args.seed, day_s=args.day, features=args.features
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.trace:
        arrivals = generate_day(config)
        summary = offered_summary(arrivals)
        payload = {
            "day_s": config.day_s,
            "seed": config.seed,
            "arrivals": len(arrivals),
            "peak_window_qps": peak_window_qps(arrivals),
            "tenants": summary,
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"trace: {len(arrivals)} arrivals over "
              f"{config.day_s / 3600.0:.1f} h (seed {config.seed}), "
              f"peak {payload['peak_window_qps']:.3f} qps")
        for name, row in sorted(summary.items()):
            print(f"  {name}: {row['offered']} offered "
                  f"({row['queries']} queries, {row['writes']} writes, "
                  f"{row['burst']} burst)")
        return 0

    report = run_production_day(config, isolation=not args.no_isolation)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0

    day = report.result
    print(f"production day: {len(config.tenants)} tenants, "
          f"{config.day_s / 3600.0:.1f} h, seed {config.seed}, "
          f"{config.features:,} rows x {config.n_shards} shards")
    for name, t in sorted(day.tenants.items()):
        spec = config.tenant(name)
        print(f"  {name} ({spec.deadline_class}, weight {spec.weight:g}): "
              f"{t.offered} offered, {t.completed} completed, "
              f"{t.shed} shed, p99 {t.p99_s:.3f} s, "
              f"SLO attainment {t.slo_attainment:.4f}"
              f"{'' if t.conserved else ' LEDGER IMBALANCE'}")
    print(f"  autoscaler: peak {day.peak_backends} backend(s), "
          f"{sum(1 for a in day.actions if a.kind == 'scale_up')} up / "
          f"{sum(1 for a in day.actions if a.kind == 'scale_down')} down, "
          f"{day.alerts} alert(s)")
    for action in day.actions:
        trigger = (
            f" ({action.trigger_tenant}, burn {action.trigger_burn:.1f}x)"
            if action.kind == "scale_up" else ""
        )
        print(f"    {action.at_s / 3600.0:5.2f} h {action.kind} "
              f"{action.backends_before}->{action.backends_after}"
              f"{trigger}")
    print(f"  ingest: {day.rebalances} rebalance(s), "
          f"{day.rebalance_rows_moved} rows moved")
    ratios = report.isolation_ratios()
    if ratios:
        pairs = ", ".join(
            f"{name} {ratio:.2f}x" for name, ratio in sorted(ratios.items())
        )
        print(f"  isolation (victim p99 with/without {report.aggressor}): "
              f"{pairs}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import DeepStoreDevice
    from repro.analysis import format_seconds
    from repro.workloads import get_app, plant_neighbors, train_scn

    app = get_app(args.app)
    rng = np.random.default_rng(args.seed)
    print(f"Training {app.name} SCN...")
    scn = train_scn(app, seed=args.seed)
    features = rng.normal(0, 1, (args.features, app.feature_floats)).astype(
        np.float32
    )
    intent = rng.normal(0, 1, app.feature_floats).astype(np.float32)
    features, planted = plant_neighbors(features, intent, k=5, noise=0.2, seed=2)
    qfv = intent + rng.normal(0, 0.2, app.feature_floats).astype(np.float32)

    device = DeepStoreDevice(level=args.level)
    db = device.write_db(features)
    model = device.load_graph(scn)
    result = device.get_results(device.query(qfv, 10, model, db))
    recall = len(set(result.feature_ids.tolist()) & set(planted.tolist()))
    print(f"top-10: {result.feature_ids.tolist()}")
    print(f"recall of planted neighbors: {recall}/5")
    print(f"modelled latency: {format_seconds(result.seconds)} "
          f"({result.latency.bound}-bound, {result.latency.accel_count} accels)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepStore reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="versions, geometry, placements")
    sub.add_parser("table1", help="application characteristics")
    sub.add_parser("breakdown", help="GPU+SSD time breakdown (Fig. 2)")

    speedup = sub.add_parser("speedup", help="Table-4 speedups")
    speedup.add_argument("--app", choices=["reid", "mir", "estp", "tir", "textqa"])
    speedup.add_argument("--gigabytes", type=float, default=25.0)

    sub.add_parser("dse", help="PE scaling (Fig. 6)")

    cache = sub.add_parser("cache", help="query-cache simulation")
    cache.add_argument("--distribution", choices=["uniform", "zipf"], default="zipf")
    cache.add_argument("--alpha", type=float, default=0.7)
    cache.add_argument("--entries", type=int, default=512)
    cache.add_argument("--intents", type=int, default=2000)
    cache.add_argument("--queries", type=int, default=1200)
    cache.add_argument("--threshold", type=float, default=0.10)
    cache.add_argument("--scan-ms", type=float, default=30.0)

    plan = sub.add_parser("plan", help="deployment capacity planning")
    plan.add_argument("--app", default="tir",
                      choices=["reid", "mir", "estp", "tir", "textqa"])
    plan.add_argument("--features", type=int, default=10_000_000)
    plan.add_argument("--qps", type=float, default=1.0)

    scorecard = sub.add_parser(
        "scorecard", help="measured-vs-paper reproduction scorecard"
    )
    scorecard.add_argument("--gigabytes", type=float, default=25.0)
    scorecard.add_argument("--json", action="store_true")

    faults = sub.add_parser(
        "faults", help="fault-injected queries + reliability report"
    )
    faults.add_argument("--app", default="tir",
                        choices=["reid", "mir", "estp", "tir", "textqa"])
    faults.add_argument("--features", type=int, default=20_000,
                        help="database size in feature vectors")
    faults.add_argument("--queries", type=int, default=5)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--retry-rate", type=float, default=0.02,
                        help="NAND page read-retry probability")
    faults.add_argument("--crc-rate", type=float, default=0.0,
                        help="channel-bus CRC error probability")
    faults.add_argument("--chip-rate", type=float, default=0.0,
                        help="ambient chip hard-failure probability")
    faults.add_argument("--fail-accels", default="",
                        help="comma-separated accelerator indices to kill")
    faults.add_argument("--max-pages", type=int, default=None,
                        help="cap pages scanned per channel")
    faults.add_argument("--json", action="store_true")

    def add_obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--app", default="tir",
                       choices=["reid", "mir", "estp", "tir", "textqa"])
        p.add_argument("--features", type=int, default=20_000,
                       help="database size in feature vectors")
        p.add_argument("--max-pages", type=int, default=64,
                       help="cap pages scanned per channel")
        p.add_argument("--top", type=int, default=8,
                       help="resources to show, busiest first")
        p.add_argument("--json", action="store_true")

    trace = sub.add_parser(
        "trace", help="traced query: Chrome trace JSON + latency breakdown"
    )
    add_obs_args(trace)
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace-event JSON output path")
    trace.add_argument("--bins", type=int, default=40,
                       help="utilization timeline resolution")

    profile = sub.add_parser(
        "profile", help="busiest resources + idle-gap analysis"
    )
    add_obs_args(profile)
    profile.add_argument("--hotspots", action="store_true",
                         help="host-CPU cProfile of the query instead of "
                              "simulated-resource usage")
    profile.add_argument("--pstats-out", default="",
                         help="with --hotspots: dump raw pstats here "
                              "(CI uploads it as an artifact)")

    serve = sub.add_parser(
        "serve", help="open-loop serving sweep / perf scorecard"
    )
    serve.add_argument("--app", default="tir",
                       choices=["reid", "mir", "estp", "tir", "textqa"])
    serve.add_argument("--features", type=int, default=400_000,
                       help="database size in feature vectors")
    serve.add_argument("--queries", type=int, default=240,
                       help="queries per sweep point")
    serve.add_argument("--qps", type=float, default=None,
                       help="one offered load instead of a sweep")
    serve.add_argument("--qps-sweep", action="store_true",
                       help="sweep offered load around saturation (default)")
    serve.add_argument("--queue-bound", type=int, default=32,
                       help="admission queue bound")
    serve.add_argument("--policy", default="reject",
                       choices=["reject", "drop-oldest", "deadline"],
                       help="load-shedding policy")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="staleness bound for the deadline policy")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="largest shared-scan batch")
    serve.add_argument("--servers", type=int, default=1,
                       help="independent scan backends")
    serve.add_argument("--cache-entries", type=int, default=0,
                       help="query-cache entries (0 = no cache)")
    serve.add_argument("--threshold", type=float, default=0.10,
                       help="query-cache error threshold")
    serve.add_argument("--intents", type=int, default=200,
                       help="distinct query intents (cache streams)")
    serve.add_argument("--fail-accels", default="",
                       help="comma-separated accelerator indices to kill")
    serve.add_argument("--fidelity", default="analytic",
                       choices=["analytic", "event"],
                       help="batch cost model fidelity")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--bins", type=int, default=40,
                       help="timeline resolution")
    serve.add_argument("--scorecard", action="store_true",
                       help="emit the canonical CI perf scorecard (JSON)")
    serve.add_argument("--json", action="store_true")

    cluster = sub.add_parser(
        "cluster", help="sharded scatter-gather queries / perf scorecard"
    )
    cluster.add_argument("--app", default="tir",
                         choices=["reid", "mir", "estp", "tir", "textqa"])
    cluster.add_argument("--features", type=int, default=20_000,
                         help="total dataset size in feature vectors")
    cluster.add_argument("--shards", type=int, default=4,
                         help="dataset partitions (one SSD group each)")
    cluster.add_argument("--replicas", type=int, default=1,
                         help="replica SSDs per shard")
    cluster.add_argument("--placement", default="range",
                         choices=["range", "hash", "locality"],
                         help="shard placement strategy")
    cluster.add_argument("--level", default="channel",
                         choices=["ssd", "channel", "chip"],
                         help="accelerator level inside every shard SSD")
    cluster.add_argument("--k", type=int, default=10, help="global top-K")
    cluster.add_argument("--queries", type=int, default=3)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--fail-shards", default="",
                         help="dead replicas: comma-separated shard or "
                              "shard:replica tokens (e.g. '0,3:1')")
    cluster.add_argument("--hedge", type=float, default=0.0,
                         help="hedge fraction (>0 enables hedged requests)")
    cluster.add_argument("--straggler", type=float, default=0.0,
                         help="deterministic replica straggler spread")
    cluster.add_argument("--cache-threshold", type=float, default=0.0,
                         help="setQC threshold on every shard (0 = off)")
    cluster.add_argument("--scorecard", action="store_true",
                         help="emit the canonical CI perf scorecard (JSON)")
    cluster.add_argument("--json", action="store_true")

    ingest = sub.add_parser(
        "ingest", help="online ingest & data-lifecycle loop"
    )
    ingest.add_argument("--app", default="textqa",
                        choices=["reid", "mir", "estp", "tir", "textqa"])
    ingest.add_argument("--base", type=int, default=1024,
                        help="base rows written before mutation begins")
    ingest.add_argument("--rounds", type=int, default=3,
                        help="mutation rounds (insert/delete/update batches)")
    ingest.add_argument("--queries", type=int, default=6,
                        help="probe queries per staleness measurement")
    ingest.add_argument("--k", type=int, default=10)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--scorecard", action="store_true",
                        help="emit the canonical CI perf scorecard (JSON)")
    ingest.add_argument("--json", action="store_true")

    index = sub.add_parser(
        "index", help="IVF ANN probes: recall/latency Pareto sweep"
    )
    index.add_argument("--app", default="textqa",
                       choices=["reid", "mir", "estp", "tir", "textqa"])
    index.add_argument("--features", type=int, default=65536,
                       help="database rows in the clustered workload")
    index.add_argument("--lists", type=int, default=32,
                       help="inverted lists (k-means centroids)")
    index.add_argument("--k", type=int, default=10)
    index.add_argument("--queries", type=int, default=4,
                       help="probe queries averaged per sweep point")
    index.add_argument("--seed", type=int, default=7)
    index.add_argument("--scorecard", action="store_true",
                       help="emit the index leg of the CI perf gate (JSON)")
    index.add_argument("--json", action="store_true")

    chaos = sub.add_parser(
        "chaos", help="scripted fault day: crashes, kills, recovery"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--duration", type=float, default=1.0,
                       help="simulated day length in seconds")
    chaos.add_argument("--crashes", type=int, default=3,
                       help="whole-store crashes on the durability track")
    chaos.add_argument("--kills", type=int, default=4,
                       help="replica kills on the availability track")
    chaos.add_argument("--queries", type=int, default=24,
                       help="probe queries on the availability track")
    chaos.add_argument("--track", default="both",
                       choices=["durability", "cluster", "both"])
    chaos.add_argument("--scorecard", action="store_true",
                       help="emit the recovery leg of the CI perf gate")
    chaos.add_argument("--json", action="store_true")

    explain = sub.add_parser(
        "explain", help="critical-path attribution for one traced query"
    )
    explain.add_argument("query_id", type=int, nargs="?", default=0,
                         help="which query of the traced run to explain")
    explain.add_argument("--app", default="tir",
                         choices=["reid", "mir", "estp", "tir", "textqa"])
    explain.add_argument("--features", type=int, default=2_000,
                         help="total dataset size in feature vectors")
    explain.add_argument("--shards", type=int, default=3)
    explain.add_argument("--replicas", type=int, default=2)
    explain.add_argument("--k", type=int, default=5)
    explain.add_argument("--queries", type=int, default=8,
                         help="queries in the traced run")
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--hedge", type=float, default=0.3,
                         help="hedge fraction (>0 enables hedged requests)")
    explain.add_argument("--straggler", type=float, default=0.5,
                         help="deterministic replica straggler spread")
    explain.add_argument("--fail-shards", default="1:0",
                         help="dead replicas: comma-separated shard or "
                              "shard:replica tokens (e.g. '0,3:1')")
    explain.add_argument("--out", default="",
                         help="write the Chrome trace-event JSON here")
    explain.add_argument("--json", action="store_true")

    slo = sub.add_parser(
        "slo", help="SLO burn-rate monitoring over a chaos day"
    )
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument("--duration", type=float, default=1.0,
                     help="simulated day length in seconds")
    slo.add_argument("--kills", type=int, default=4,
                     help="replica kills on the availability track")
    slo.add_argument("--queries", type=int, default=24)
    slo.add_argument("--scorecard", action="store_true",
                     help="emit the machine-readable SLO report (JSON)")
    slo.add_argument("--json", action="store_true")

    tenants = sub.add_parser(
        "tenants", help="multi-tenant production day on the shared plane"
    )
    tenants.add_argument("--seed", type=int, default=0)
    tenants.add_argument("--day", type=float, default=86_400.0,
                         help="simulated day length in seconds")
    tenants.add_argument("--features", type=int, default=32_000_000,
                         help="database rows behind the shared plane")
    tenants.add_argument("--trace", action="store_true",
                         help="summarize the generated day trace only")
    tenants.add_argument("--no-isolation", action="store_true",
                         help="skip the paired noisy-neighbor runs")
    tenants.add_argument("--scorecard", action="store_true",
                         help="emit the tenancy leg of the CI perf gate")
    tenants.add_argument("--json", action="store_true")

    demo = sub.add_parser("demo", help="end-to-end functional query")
    demo.add_argument("--app", default="tir",
                      choices=["reid", "mir", "estp", "tir", "textqa"])
    demo.add_argument("--level", default="channel",
                      choices=["ssd", "channel", "chip"])
    demo.add_argument("--features", type=int, default=10_000)
    demo.add_argument("--seed", type=int, default=0)
    return parser


COMMANDS = {
    "info": _cmd_info,
    "table1": _cmd_table1,
    "breakdown": _cmd_breakdown,
    "speedup": _cmd_speedup,
    "dse": _cmd_dse,
    "cache": _cmd_cache,
    "plan": _cmd_plan,
    "scorecard": _cmd_scorecard,
    "faults": _cmd_faults,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "ingest": _cmd_ingest,
    "index": _cmd_index,
    "chaos": _cmd_chaos,
    "explain": _cmd_explain,
    "slo": _cmd_slo,
    "tenants": _cmd_tenants,
    "demo": _cmd_demo,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
