"""The discrete-event query server.

:class:`QueryServer` turns the per-query cost models into a *service*:
an open-loop arrival schedule plays against a bounded admission queue,
a batch former, and ``n_servers`` scan backends (one DeepStore device
each), all on one :class:`~repro.sim.Simulator` timeline.  The life of
a query:

1. **arrive** — the arrival event fires at its scheduled time;
2. **cache lookup** (when a query cache is configured and the arrival
   carries a QFV) — the similarity lookup costs
   ``entries × lookup_seconds_per_entry``; a hit re-ranks the cached
   top-K and completes **without ever touching the admission queue**
   (the paper's Algorithm-1 fast path, which is what makes the cache a
   capacity multiplier and not just a latency win);
3. **admission** — a miss is offered to the bounded queue; the
   configured policy decides who is shed under overload;
4. **batch + scan** — an idle backend pops the head-of-line batch
   (same-app prefix run, FIFO within priority class) and holds the
   device for the shared-scan service time;
5. **complete** — per-query latency is arrival-to-completion; the
   result is inserted into the cache so later similar queries hit.

Every step feeds :class:`~repro.obs.MetricsRegistry` instruments and
(optionally) :class:`~repro.obs.Tracer` timelines — queue depth and
sheds as instants, backend occupancy as complete spans — without
perturbing simulated time.  With the same config, arrivals, and seed
the result is bit-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.deepstore import DeepStoreSystem
from repro.core.engine import DispatchPolicy
from repro.core.query_cache import EmbeddingComparator, QueryCache
from repro.obs.dtrace import (
    CriticalPath,
    QueryTraceContext,
    Segment,
    TraceCollector,
    cache_hit_critical_path,
)
from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.slo import SloMonitor
from repro.obs.tracer import Tracer
from repro.serving.admission import POLICIES, AdmissionQueue, QueuedQuery
from repro.serving.arrivals import INGEST_COMPAT, ArrivalEvent, offered_qps_of
from repro.serving.batcher import BatchCostModel, BatchPolicy
from repro.sim import Simulator, fastpath
from repro.ssd import Ssd
from repro.workloads.apps import AppSpec, get_app

#: per-entry QCN lookup cost (paper §6.5: 0.3 ms for a 1 K-entry cache)
CACHE_LOOKUP_SECONDS_PER_ENTRY = 0.3e-6


@dataclass
class ServingConfig:
    """Everything that defines one serving scenario."""

    app: str = "tir"
    #: database size in feature vectors
    features: int = 1_000_000
    #: admission-queue bound (queries)
    queue_bound: int = 64
    #: shedding policy: ``reject`` / ``drop-oldest`` / ``deadline``
    policy: str = "reject"
    #: staleness bound for the ``deadline`` policy
    deadline_s: Optional[float] = None
    #: largest shared-scan batch
    max_batch: int = 8
    #: independent scan backends (devices)
    n_servers: int = 1
    #: query-cache entries; 0 disables the cache
    cache_entries: int = 0
    #: Algorithm-1 error threshold for the cache
    cache_threshold: float = 0.10
    #: dead channel accelerators (degraded-mode remapping)
    failed_accels: Tuple[int, ...] = ()
    #: batch cost fidelity: ``analytic`` or ``event``-calibrated
    fidelity: str = "analytic"
    #: cluster sharding: >1 prices each batch as one scatter-gather
    #: round over a sharded deployment (see repro.cluster.serving)
    n_shards: int = 1
    #: replicas per shard in the sharded deployment
    n_replicas: int = 1
    #: cluster placement strategy (range / hash / locality)
    shard_placement: str = "range"
    #: dead cluster replicas: shard ids or (shard, replica) pairs
    fail_shards: Tuple = ()
    #: rows one ingest arrival writes (sizes the write service time)
    ingest_rows_per_op: int = 32
    #: IVF index over the database: 0 disables (exhaustive scans, the
    #: pre-index behaviour, byte for byte); > 0 prices each scan over
    #: the probed fraction ``index_nprobe / index_lists`` of the rows
    #: plus a per-query SSD-level centroid-routing pass
    index_lists: int = 0
    index_nprobe: int = 0

    def __post_init__(self) -> None:
        # every knob combination is validated here, up front, so a bad
        # config fails at construction with a clear message instead of
        # deep inside a sweep (where the same ValueError used to
        # surface from AdmissionQueue or the batcher mid-run)
        if self.ingest_rows_per_op <= 0:
            raise ValueError("ingest_rows_per_op must be positive")
        if self.index_lists < 0:
            raise ValueError("index_lists cannot be negative")
        if self.index_lists > 0 and not 0 < self.index_nprobe <= self.index_lists:
            raise ValueError(
                "index_nprobe must be in [1, index_lists] when indexed"
            )
        if self.index_lists == 0 and self.index_nprobe != 0:
            raise ValueError("index_nprobe needs index_lists > 0")
        if self.features <= 0:
            raise ValueError("features must be positive")
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if self.cache_entries < 0:
            raise ValueError("cache_entries cannot be negative")
        if self.n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if self.n_replicas <= 0:
            raise ValueError("n_replicas must be positive")
        if self.queue_bound <= 0:
            raise ValueError("queue_bound must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.policy == "deadline" and (
            self.deadline_s is None or self.deadline_s <= 0
        ):
            raise ValueError("deadline policy needs a positive deadline_s")
        if self.policy != "deadline" and self.deadline_s is not None:
            raise ValueError("deadline_s only applies to the deadline policy")
        if self.cache_entries > 0 and not 0.0 < self.cache_threshold < 1.0:
            raise ValueError(
                "cache_threshold must be in (0, 1) when the cache is enabled"
            )
        if self.fidelity not in ("analytic", "event"):
            raise ValueError(
                f"unknown fidelity {self.fidelity!r}; "
                f"expected 'analytic' or 'event'"
            )
        if self.shard_placement not in ("range", "hash", "locality"):
            raise ValueError(
                f"unknown shard_placement {self.shard_placement!r}; "
                f"expected 'range', 'hash', or 'locality'"
            )

    @property
    def clustered(self) -> bool:
        """Whether batches are priced against a sharded deployment."""
        return self.n_shards > 1 or self.n_replicas > 1 or bool(self.fail_shards)

    @property
    def indexed(self) -> bool:
        """Whether scans are priced over an IVF probe."""
        return self.index_lists > 0


@dataclass
class ServingResult:
    """Measured outcome of one serving run at one offered load."""

    app: str
    offered_qps: float
    achieved_qps: float
    duration_s: float
    arrived: int
    admitted: int
    completed: int
    cache_hits: int
    rejected: int
    evicted: int
    expired: int
    mean_latency_s: float
    p50_s: float
    p99_s: float
    p999_s: float
    max_latency_s: float
    mean_wait_s: float
    mean_batch: float
    utilization: float
    queue_peak: int
    #: write-class traffic (mixed read/write workloads; zero otherwise).
    #: Deliberately absent from :meth:`as_dict` so read-only scorecards
    #: stay byte-stable.
    ingest_arrived: int = 0
    ingest_completed: int = 0
    ingest_mean_latency_s: float = 0.0
    #: per-query critical paths, populated only when the run carried a
    #: :class:`~repro.obs.TraceCollector` (also not in :meth:`as_dict`)
    critical_paths: List[CriticalPath] = field(default_factory=list)

    @property
    def shed(self) -> int:
        """Queries offered but never served."""
        return self.rejected + self.evicted + self.expired

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrived if self.arrived else 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.arrived if self.arrived else 0.0

    @property
    def goodput_fraction(self) -> float:
        """Completed / offered — 1.0 below saturation."""
        return self.completed / self.arrived if self.arrived else 0.0

    @property
    def conserved(self) -> bool:
        """Every arrival is accounted for exactly once."""
        return self.arrived == self.completed + self.shed

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (stable keys, scalar values)."""
        return {
            "app": self.app,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "duration_s": self.duration_s,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "mean_latency_s": self.mean_latency_s,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "p999_s": self.p999_s,
            "mean_wait_s": self.mean_wait_s,
            "mean_batch": self.mean_batch,
            "utilization": self.utilization,
            "queue_peak": self.queue_peak,
        }


class QueryServer:
    """Open-loop serving simulation over one device configuration."""

    def __init__(
        self,
        config: ServingConfig,
        system: Optional[DeepStoreSystem] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        dispatch_policy: Optional[DispatchPolicy] = None,
    ) -> None:
        self.config = config
        self.app: AppSpec = get_app(config.app)
        self.system = system or DeepStoreSystem.at_level("channel")
        self.metrics = metrics
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        ssd = Ssd(self.system.ssd)
        self.meta = ssd.ftl.create_database(
            self.app.feature_bytes, config.features
        )
        # IVF serving: scans are priced over the probed fraction of the
        # rows, and every query pays one SSD-level routing pass over the
        # centroid table before its batch is formed
        self.routing_seconds_per_query = 0.0
        scan_meta = self.meta
        if config.indexed:
            probed = max(
                1, -(-config.features * config.index_nprobe // config.index_lists)
            )
            scan_meta = ssd.ftl.create_database(self.app.feature_bytes, probed)
            ssd_system = DeepStoreSystem.at_level("ssd", ssd=self.system.ssd)
            centroid_meta = ssd.ftl.create_database(
                self.app.feature_bytes, config.index_lists
            )
            graph = fastpath.scn_graph(self.app)
            if config.index_nprobe < config.index_lists:
                self.routing_seconds_per_query = ssd_system.latency_for(
                    graph,
                    centroid_meta,
                    feature_bytes=self.app.feature_bytes,
                    name=graph.name,
                ).total_seconds
        # ingest service time: one write op streams ingest_rows_per_op
        # rows through the host-write path; writes never batch with
        # queries (INGEST_COMPAT) and serialize on a backend like a scan
        write_meta = ssd.ftl.create_database(
            self.app.feature_bytes, config.ingest_rows_per_op
        )
        self.ingest_op_seconds = ssd.database_write_seconds(write_meta)
        # sweeps construct one server per point; the SCN build (and the
        # graph-keyed accelerator profile) is identical every time
        self.graph = fastpath.scn_graph(self.app)
        if config.clustered:
            # lazy import: repro.cluster.serving itself imports the
            # batcher, so the edge must only exist at instance time
            from repro.cluster.config import ClusterConfig
            from repro.cluster.serving import ClusterBatchCostModel

            self.cost = ClusterBatchCostModel(
                self.app,
                scan_meta,
                cluster=ClusterConfig(
                    n_shards=config.n_shards,
                    n_replicas=config.n_replicas,
                    placement=config.shard_placement,
                    level=self.system.placement.level,
                    fail_shards=config.fail_shards,
                ),
                system=self.system,
                policy=BatchPolicy(config.max_batch),
                failed_accels=config.failed_accels,
                dispatch_policy=dispatch_policy,
                fidelity=config.fidelity,
            )
        else:
            self.cost = BatchCostModel(
                self.app,
                scan_meta,
                system=self.system,
                policy=BatchPolicy(config.max_batch),
                graph=self.graph,
                failed_accels=config.failed_accels,
                dispatch_policy=dispatch_policy,
                fidelity=config.fidelity,
            )
        # cache fast path: per-entry QCN lookup plus a top-K re-rank on
        # the SCN, all without occupying a scan backend
        self.cache: Optional[QueryCache] = None
        if config.cache_entries > 0:
            self.cache = QueryCache(
                capacity=config.cache_entries,
                comparator=EmbeddingComparator(),
                qcn_accuracy=self.app.qcn_accuracy,
                threshold=config.cache_threshold,
            )
        k = self.system.k
        accel = self.system.accelerator_for(self.graph)
        self.hit_seconds = (
            k * accel.compute_seconds_per_feature(max(1, k))
            + self.system.engine.query_overhead_seconds(1, k)
        )
        self.lookup_seconds_per_entry = CACHE_LOOKUP_SECONDS_PER_ENTRY

    # ------------------------------------------------------------------
    def saturation_qps(self) -> float:
        """Peak sustainable scan throughput (cache hits excluded)."""
        return self.cost.saturation_qps(self.config.n_servers)

    # ------------------------------------------------------------------
    def run(
        self,
        arrivals: Sequence[ArrivalEvent],
        tracer: Optional[Tracer] = None,
        dtrace: Optional[TraceCollector] = None,
        slo: Optional[SloMonitor] = None,
    ) -> ServingResult:
        """Play an arrival schedule to completion; return the measures.

        ``tracer`` overrides the server's tracer for this run (each run
        restarts simulated time at zero, so timelines from separate
        runs should not share one tracer).

        ``dtrace`` mints one trace per arrival and propagates it
        through cache lookup, admission, batch formation, and backend
        service; sheds close the trace with ``shed_<reason>`` status.
        ``slo`` receives one event per completion (class ``read`` or
        ``ingest``, with latency) and one bad event per shed.  Both are
        pure bookkeeping: simulated timings and every
        :class:`ServingResult` figure are identical with them on or
        off.
        """
        if not arrivals:
            raise ValueError("empty arrival schedule")
        config = self.config
        if tracer is None:
            tracer = self.tracer
        elif not tracer.enabled:
            tracer = None
        sim = Simulator(tracer=tracer)
        queue = AdmissionQueue(
            config.queue_bound, config.policy, config.deadline_s
        )
        metrics = self.metrics
        queue_track = (
            tracer.track("serving", "queue") if tracer is not None else None
        )
        shed_track = (
            tracer.track("serving", "sheds") if tracer is not None else None
        )
        server_tracks = (
            [
                tracer.track("serving", f"server {i}")
                for i in range(config.n_servers)
            ]
            if tracer is not None
            else None
        )

        idle: List[int] = list(range(config.n_servers))
        latencies: List[float] = []
        ingest_latencies: List[float] = []
        waits: List[float] = []
        batch_sizes: List[int] = []
        class _RunState:
            cache_hits = 0
            completed = 0
            busy_s = 0.0
            queue_peak = 0
            last_completion = 0.0
            ingest_arrived = 0
            ingest_completed = 0

        state = _RunState()

        #: qid -> open root span / open admission-wait span (dtrace only)
        roots: Dict[int, QueryTraceContext] = {}
        admissions: Dict[int, QueryTraceContext] = {}
        critical_paths: List[CriticalPath] = []

        def slo_class(query: QueuedQuery) -> str:
            return "ingest" if query.compat == INGEST_COMPAT else "read"

        def note_depth() -> None:
            depth = queue.depth
            if depth > state.queue_peak:
                state.queue_peak = depth
            if metrics is not None:
                metrics.gauge("serving.queue_depth").set(float(depth))
            if tracer is not None:
                tracer.instant(
                    queue_track, "depth", sim.now,
                    cat="serving.queue", args={"depth": depth},
                )

        def note_shed() -> None:
            for query, reason in queue.take_shed():
                if metrics is not None:
                    metrics.counter("serving.shed").inc()
                    metrics.counter(f"serving.shed_{reason}").inc()
                if tracer is not None:
                    tracer.instant(
                        shed_track, reason, sim.now,
                        cat="serving.shed", args={"qid": query.qid},
                    )
                if slo is not None:
                    slo.record(slo_class(query), sim.now, good=False)
                if dtrace is not None:
                    status = f"shed_{reason}"
                    ctx = admissions.pop(query.qid, None)
                    if ctx is not None:
                        dtrace.end_span(ctx, sim.now, status=status)
                    root = roots.pop(query.qid, None)
                    if root is not None:
                        dtrace.end_span(root, sim.now, status=status)

        def complete_query(
            query: QueuedQuery,
            now: float,
            batch_start: Optional[float] = None,
            service: float = 0.0,
        ) -> None:
            latency = now - query.arrival_s + query.penalty_s
            state.completed += 1
            state.last_completion = max(state.last_completion, now)
            if slo is not None:
                slo.record(slo_class(query), now, latency_s=latency)
            if dtrace is not None:
                root = roots.pop(query.qid, None)
                if root is not None:
                    dtrace.end_span(root, now, latency_s=latency)
                if batch_start is not None:
                    # the queued path subtracts the arrival time, so the
                    # decomposition is honest but not bit-exact
                    critical_paths.append(CriticalPath(
                        total_seconds=latency,
                        groups=[[
                            Segment("admission wait (incl. lookup)",
                                    "admission",
                                    batch_start - query.arrival_s),
                            Segment("batch service", "service", service),
                        ]],
                        info={"qid": query.qid, "class": slo_class(query)},
                        exact=False,
                    ))
            if query.compat == INGEST_COMPAT:
                # write class: tracked apart so read latency stays pure
                ingest_latencies.append(latency)
                state.ingest_completed += 1
                if metrics is not None:
                    metrics.counter("serving.ingest_completed").inc()
                    metrics.histogram(
                        "serving.ingest_latency_s"
                    ).observe(latency)
                return
            latencies.append(latency)
            if metrics is not None:
                metrics.counter("serving.completed").inc()
                metrics.histogram("serving.latency_s").observe(latency)
            if self.cache is not None and query.qfv is not None:
                ids = np.arange(self.system.k, dtype=np.int64)
                self.cache.insert(
                    query.qfv,
                    np.zeros(self.system.k, dtype=np.float32),
                    ids,
                )

        def dispatch() -> None:
            while idle and queue.depth > 0:
                batch = queue.pop_batch(sim.now, self.cost.max_batch)
                note_shed()
                note_depth()
                if not batch:
                    return
                server = idle.pop(0)
                if batch[0].compat == INGEST_COMPAT:
                    # a write batch occupies a backend for the measured
                    # host-write time of each op, serially
                    service = self.ingest_op_seconds * len(batch)
                else:
                    service = self.cost.service_seconds(len(batch))
                    if self.routing_seconds_per_query > 0.0:
                        # each member routed independently before the
                        # shared probe scan
                        service += self.routing_seconds_per_query * len(batch)
                start = sim.now
                batch_sizes.append(len(batch))
                state.busy_s += service
                for query in batch:
                    wait = start - query.arrival_s
                    waits.append(wait)
                    if metrics is not None:
                        metrics.histogram("serving.wait_s").observe(wait)
                if metrics is not None:
                    metrics.histogram(
                        "serving.batch_size",
                        bounds=list(range(1, self.cost.max_batch + 1)),
                    ).observe(len(batch))
                if tracer is not None and server_tracks is not None:
                    tracer.complete(
                        server_tracks[server],
                        f"batch x{len(batch)}",
                        start,
                        service,
                        cat="serving.batch",
                        args={"n": len(batch)},
                    )
                if dtrace is not None:
                    # one batch-service span per member, linked from its
                    # admission wait by a flow arrow — the viewer sees
                    # the queries converge onto one backend slice
                    for query in batch:
                        root = roots.get(query.qid)
                        if root is None:
                            continue
                        bctx = dtrace.add_span(
                            root, f"batch x{len(batch)} service",
                            start, start + service,
                            kind="serving.batch",
                            track=f"serving/server {server}",
                            n=len(batch),
                        )
                        actx = admissions.pop(query.qid, None)
                        if actx is not None:
                            dtrace.end_span(actx, start)
                            dtrace.flow(actx, bctx)

                def finish(
                    server: int = server,
                    batch: List[QueuedQuery] = batch,
                    start: float = start,
                    service: float = service,
                ) -> None:
                    for query in batch:
                        complete_query(
                            query, sim.now,
                            batch_start=start, service=service,
                        )
                    idle.append(server)
                    idle.sort()
                    dispatch()

                sim.schedule_after(service, finish, label="batch-done")

        def admit(event: ArrivalEvent, qid: int, penalty_s: float) -> None:
            query = QueuedQuery(
                qid=qid,
                arrival_s=sim.now - penalty_s,
                priority=event.priority,
                compat=event.compat,
                penalty_s=0.0,
                intent=event.intent,
                qfv=event.qfv,
            )
            admitted = queue.offer(query, sim.now)
            if admitted and dtrace is not None:
                root = roots.get(qid)
                if root is not None:
                    admissions[qid] = dtrace.start_span(
                        root, "admission wait", sim.now,
                        kind="serving.admission", track="serving",
                    )
            note_shed()
            note_depth()
            if admitted:
                if metrics is not None:
                    metrics.counter("serving.admitted").inc()
                dispatch()

        def arrive(event: ArrivalEvent, qid: int) -> None:
            if metrics is not None:
                metrics.counter("serving.arrived").inc()
            if dtrace is not None:
                kind = (
                    "serving.ingest" if event.kind == "ingest"
                    else "serving.query"
                )
                roots[qid] = dtrace.start_trace(
                    f"{event.kind} {qid}", sim.now, kind=kind,
                    track="serving", app=self.app.name,
                    priority=event.priority,
                )
            if event.kind == "ingest":
                # write class: never consults the query cache
                state.ingest_arrived += 1
                if metrics is not None:
                    metrics.counter("serving.ingest_arrived").inc()
                admit(event, qid, 0.0)
                return
            if self.cache is not None and event.qfv is not None:
                lookup = self.cache.lookup(event.qfv)
                lookup_s = (
                    lookup.entries_scanned * self.lookup_seconds_per_entry
                )
                if dtrace is not None:
                    dtrace.add_span(
                        roots[qid], "cache lookup",
                        sim.now, sim.now + lookup_s,
                        kind="serving.cache", track="serving",
                        hit=lookup.hit,
                        entries=lookup.entries_scanned,
                    )
                if lookup.hit:
                    # Algorithm-1 fast path: re-rank the cached top-K,
                    # never touching the admission queue or a backend
                    def hit_done() -> None:
                        latency = lookup_s + self.hit_seconds
                        latencies.append(latency)
                        state.cache_hits += 1
                        state.completed += 1
                        state.last_completion = max(
                            state.last_completion, sim.now
                        )
                        if metrics is not None:
                            metrics.counter("serving.cache_hits").inc()
                            metrics.counter("serving.completed").inc()
                            metrics.histogram(
                                "serving.latency_s"
                            ).observe(latency)
                        if slo is not None:
                            slo.record("read", sim.now, latency_s=latency)
                        if dtrace is not None:
                            root = roots.pop(qid, None)
                            if root is not None:
                                dtrace.end_span(
                                    root, sim.now,
                                    cache_hit=True, latency_s=latency,
                                )
                            path = cache_hit_critical_path(
                                lookup_s, self.hit_seconds
                            )
                            path.info["qid"] = qid
                            path.info["class"] = "read"
                            critical_paths.append(path)

                    sim.schedule_after(
                        lookup_s + self.hit_seconds, hit_done,
                        label="cache-hit",
                    )
                    return
                # the miss pays the lookup before it can join the queue
                sim.schedule_after(
                    lookup_s,
                    lambda: admit(event, qid, lookup_s),
                    label="admit",
                )
                return
            admit(event, qid, 0.0)

        # bulk-schedule the whole (already time-sorted) arrival schedule:
        # identical events and sequence numbers to N schedule() calls,
        # but one heap build instead of N sifts
        sim.schedule_bulk(
            [event.time_s for event in arrivals],
            [
                (lambda event=event, qid=qid: arrive(event, qid))
                for qid, event in enumerate(arrivals)
            ],
            label="arrival",
        )
        sim.run()
        if slo is not None:
            slo.finish(state.last_completion)

        first_arrival = arrivals[0].time_s
        span = max(state.last_completion - first_arrival, 0.0)
        counters = queue.counters
        n_served = len(latencies)
        return ServingResult(
            app=self.app.name,
            offered_qps=offered_qps_of(list(arrivals)),
            achieved_qps=state.completed / span if span > 0 else 0.0,
            duration_s=span,
            arrived=len(arrivals),
            admitted=counters.admitted,
            completed=state.completed,
            cache_hits=state.cache_hits,
            rejected=counters.rejected,
            evicted=counters.evicted,
            expired=counters.expired,
            mean_latency_s=(
                sum(latencies) / n_served if n_served else 0.0
            ),
            p50_s=percentile(latencies, 50) if latencies else 0.0,
            p99_s=percentile(latencies, 99) if latencies else 0.0,
            p999_s=percentile(latencies, 99.9) if latencies else 0.0,
            max_latency_s=max(latencies) if latencies else 0.0,
            mean_wait_s=sum(waits) / len(waits) if waits else 0.0,
            mean_batch=(
                sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
            ),
            utilization=(
                state.busy_s / (config.n_servers * span)
                if span > 0
                else 0.0
            ),
            queue_peak=state.queue_peak,
            ingest_arrived=state.ingest_arrived,
            ingest_completed=state.ingest_completed,
            ingest_mean_latency_s=(
                sum(ingest_latencies) / len(ingest_latencies)
                if ingest_latencies
                else 0.0
            ),
            critical_paths=critical_paths,
        )
