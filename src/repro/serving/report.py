"""Timelines and tables for serving runs.

The server emits queue-depth instants, shed instants, and backend
occupancy spans onto an :class:`~repro.obs.Tracer`; this module turns
those raw records into the two timelines the ISSUE's operators read —
queue depth over time and drops per interval — plus the rendered
throughput-latency table for the CLI.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.reporting import Table
from repro.obs.tracer import Tracer
from repro.serving.sweep import ServingCurve


def queue_depth_timeline(
    tracer: Tracer, bins: int = 40
) -> List[float]:
    """Mean queue depth per time bin, from ``serving.queue`` instants.

    Each instant carries the post-operation depth; bins average the
    samples that land in them (empty bins inherit the previous bin's
    last value, so the series reads as a step function).
    """
    samples: List[Tuple[float, int]] = [
        (i.time, int((i.args or {}).get("depth", 0)))
        for i in tracer.instants
        if i.cat == "serving.queue"
    ]
    if not samples or bins <= 0:
        return []
    end = max(t for t, _ in samples)
    if end <= 0:
        return [float(samples[-1][1])] * bins
    width = end / bins
    series: List[float] = []
    last = 0.0
    for b in range(bins):
        lo, hi = b * width, (b + 1) * width
        in_bin = [
            d for t, d in samples
            if lo <= t < hi or (b == bins - 1 and t == end)
        ]
        if in_bin:
            last = sum(in_bin) / len(in_bin)
        series.append(last)
    return series


def drop_timeline(tracer: Tracer, bins: int = 40) -> List[int]:
    """Shed queries per time bin, from ``serving.shed`` instants."""
    times = [i.time for i in tracer.instants if i.cat == "serving.shed"]
    if bins <= 0:
        return []
    if not times:
        return [0] * bins
    end = max(max(times), 1e-12)
    counts = [0] * bins
    for t in times:
        index = min(int(t / end * bins), bins - 1)
        counts[index] += 1
    return counts


def curve_table(curve: ServingCurve) -> Table:
    """Render a sweep as the CLI's throughput-latency table."""
    table = Table(
        f"Serving curve: {curve.app} "
        f"(saturation ~{curve.saturation_qps:.2f} qps)",
        [
            "offered", "achieved", "goodput", "shed%", "hit%",
            "batch", "p50", "p99", "p999", "util%",
        ],
    )
    for p in curve.points:
        table.add_row(
            f"{p.offered_qps:7.2f}",
            f"{p.achieved_qps:7.2f}",
            f"{p.goodput_fraction:6.3f}",
            f"{p.shed_rate * 100:5.1f}",
            f"{p.hit_rate * 100:5.1f}",
            f"{p.mean_batch:5.2f}",
            f"{p.p50_s * 1e3:8.2f}ms",
            f"{p.p99_s * 1e3:8.2f}ms",
            f"{p.p999_s * 1e3:8.2f}ms",
            f"{p.utilization * 100:5.1f}",
        )
    return table
