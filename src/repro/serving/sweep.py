"""Offered-load sweeps: the throughput-latency curve of a config.

The single number a capacity planner wants from a serving model is the
*knee*: the offered load where achieved throughput stops tracking
offered load and tail latency takes off.  :func:`sweep_offered_load`
replays the same seeded workload at a ladder of offered rates and
returns a :class:`ServingCurve` — one :class:`~repro.serving.server.
ServingResult` per point, plus the shape checks the CI gate and the
acceptance tests assert (achieved QPS non-decreasing, p99 non-
decreasing, goodput ~1 below the knee).

Default load points are fractions of the config's analytic saturation
throughput, so the sweep brackets the knee for any app/database size
without hand tuning.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serving.arrivals import poisson_arrivals
from repro.serving.server import QueryServer, ServingConfig, ServingResult
from repro.sim import fastpath, forkmap
from repro.workloads.queries import QueryStream

#: default sweep ladder, as fractions of saturation throughput —
#: three points below the knee, one at it, two past it
DEFAULT_LOAD_FRACTIONS = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5)

#: worker count for the fork-parallel sweep: unset ⇒ CPU count,
#: ``0``/``1`` ⇒ sequential
ENV_PARALLEL = "REPRO_PARALLEL_SWEEP"


def _sweep_workers(n_points: int) -> int:
    """Concurrent sweep workers (capped at the point count)."""
    raw = os.environ.get(ENV_PARALLEL, "").strip()
    if raw:
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    else:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_points))


@dataclass
class ServingCurve:
    """Throughput-latency curve: one serving run per offered load."""

    app: str
    saturation_qps: float
    points: List[ServingResult] = field(default_factory=list)

    @property
    def offered(self) -> List[float]:
        return [p.offered_qps for p in self.points]

    @property
    def achieved(self) -> List[float]:
        return [p.achieved_qps for p in self.points]

    def achieved_monotone(self, slack: float = 1e-9) -> bool:
        """Achieved QPS never decreases as offered load rises."""
        a = self.achieved
        return all(a[i + 1] >= a[i] - slack for i in range(len(a) - 1))

    def p99_monotone(self, slack: float = 1e-9) -> bool:
        """p99 latency never decreases as offered load rises."""
        p = [pt.p99_s for pt in self.points]
        return all(p[i + 1] >= p[i] - slack for i in range(len(p) - 1))

    def knee_index(self, goodput_floor: float = 0.999) -> int:
        """First sweep point whose goodput drops below the floor
        (``len(points)`` when the service never saturates)."""
        for i, point in enumerate(self.points):
            if point.goodput_fraction < goodput_floor:
                return i
        return len(self.points)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready curve (stable keys)."""
        return {
            "app": self.app,
            "saturation_qps": self.saturation_qps,
            "points": [p.as_dict() for p in self.points],
        }


def sweep_offered_load(
    config: ServingConfig,
    n_queries: int = 400,
    seed: int = 0,
    qps_points: Optional[Sequence[float]] = None,
    load_fractions: Sequence[float] = DEFAULT_LOAD_FRACTIONS,
    stream: Optional[QueryStream] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> ServingCurve:
    """Run the same seeded workload at each offered load.

    ``qps_points`` overrides the default saturation-relative ladder.
    The *same* ``seed`` (and the same query stream, when given) is used
    at every point, so adjacent points differ only in arrival spacing —
    the cleanest way to see the queueing effect.  One server/cost-model
    is reused across points (the cache, when configured, is rebuilt per
    point so hit rates do not leak across loads).  ``metrics``
    aggregates over the whole sweep; the ``tracer``, whose records are
    timestamped in per-run simulated time, is attached only to the
    **last** (highest-load) point so its timelines stay coherent.
    """
    if n_queries <= 0:
        raise ValueError("n_queries must be positive")
    if qps_points is not None and any(q <= 0 for q in qps_points):
        raise ValueError("qps_points must all be positive")
    if any(f <= 0 for f in load_fractions):
        raise ValueError("load_fractions must all be positive")
    server = QueryServer(config, metrics=metrics)
    saturation = server.saturation_qps()
    if qps_points is None:
        qps_points = [saturation * f for f in load_fractions]
    if not qps_points:
        raise ValueError("empty qps sweep")
    curve = ServingCurve(app=config.app, saturation_qps=saturation)
    workers = (
        _sweep_workers(len(qps_points))
        if (
            fastpath.enabled()
            and metrics is None
            and tracer is None
            and forkmap.available()
        )
        else 1
    )
    if workers > 1:
        # every point is a pure function of (config, n_queries, qps,
        # seed, stream): arrivals are rebuilt from the seed, and each
        # forked child inherits a copy-on-write clone of the pristine
        # never-run server (empty cache, deterministic cost model) —
        # exactly what the sequential loop's per-point rebuild
        # produces.  Results come back in point order, bit-identical;
        # only host wall-clock differs.
        def run_point(i: int) -> ServingResult:
            return server.run(
                poisson_arrivals(
                    n_queries,
                    qps_points[i],
                    seed=seed,
                    stream=stream,
                    compat=config.app,
                )
            )

        curve.points.extend(
            forkmap.fork_map(run_point, len(qps_points), workers)
        )
        return curve
    for i, qps in enumerate(qps_points):
        if config.cache_entries > 0:
            # fresh cache per point: hit rate must reflect this load's
            # stream alone, not queries replayed at earlier loads
            server = QueryServer(config, metrics=metrics)
        arrivals = poisson_arrivals(
            n_queries, qps, seed=seed, stream=stream, compat=config.app
        )
        last = i == len(qps_points) - 1
        curve.points.append(
            server.run(arrivals, tracer=tracer if last else None)
        )
    return curve
