"""Batch formation policy and the shared-scan batch cost model.

Compatible queries (same app, hence same SCN weights) coalesce into one
flash pass: each DFV page streams off flash once and is scored against
every query in the batch (:mod:`repro.core.scheduler`'s shared-scan
model).  I/O-bound apps get near-free batching; compute-bound apps pay
linearly but still amortize dispatch/setup.  The server asks this
module two questions: *which queued queries may share a scan* (policy)
and *how long will that scan take* (cost model).

The cost table is precomputed once per server — ``service_seconds(n)``
for every batch size up to the cap — because every batch against one
database has the same cost structure.  Fault integration happens here
too: with dead channel accelerators, the surviving channels adopt the
orphaned stripes (:func:`~repro.core.scheduler.plan_degraded_scan`), so
every batch slows by the plan's load factor plus the engine's one-time
timeout ladder for declaring the dead accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.deepstore import DeepStoreSystem
from repro.core.engine import DispatchPolicy
from repro.core.scheduler import MultiQueryScheduler, plan_degraded_scan
from repro.nn.graph import Graph
from repro.ssd.ftl import DatabaseMetadata
from repro.workloads.apps import AppSpec


@dataclass(frozen=True)
class BatchPolicy:
    """How many compatible queries one scan may serve."""

    max_batch: int = 8

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")


class BatchCostModel:
    """Precomputed service times for batches of 1..max_batch queries.

    ``fidelity="event"`` calibrates the analytic table against the
    event-driven stripe execution
    (:meth:`~repro.core.deepstore.DeepStoreSystem.query_latency` with
    ``fidelity="event"``): the single-query event/analytic ratio scales
    the whole table, so queueing behaviour reflects the measured flash
    feed rate rather than the closed-form one.
    """

    def __init__(
        self,
        app: AppSpec,
        meta: DatabaseMetadata,
        system: Optional[DeepStoreSystem] = None,
        policy: Optional[BatchPolicy] = None,
        graph: Optional[Graph] = None,
        failed_accels: Sequence[int] = (),
        dispatch_policy: Optional[DispatchPolicy] = None,
        fidelity: str = "analytic",
    ) -> None:
        if fidelity not in ("analytic", "event"):
            raise ValueError(f"unknown fidelity {fidelity!r}")
        self.app = app
        self.meta = meta
        self.system = system or DeepStoreSystem.at_level("channel")
        self.policy = policy or BatchPolicy()
        self.graph = graph or app.build_scn()
        self.failed_accels = tuple(sorted(set(failed_accels)))
        scheduler = MultiQueryScheduler(self.system)

        calibration = 1.0
        if fidelity == "event":
            analytic = self.system.query_latency(app, meta, graph=self.graph)
            event = self.system.query_latency(
                app, meta, graph=self.graph, fidelity="event"
            )
            if analytic.total_seconds > 0:
                calibration = event.total_seconds / analytic.total_seconds
        self.calibration = calibration

        # degraded mode: survivors adopt the dead accelerators' stripes,
        # stretching every scan by the load factor; the engine also pays
        # one timeout/backoff ladder per dead accelerator to detect them
        load_factor = 1.0
        ladder_s = 0.0
        if self.failed_accels:
            count = self.system.placement.count(self.system.ssd)
            plan = plan_degraded_scan(
                meta.feature_count, count, self.failed_accels
            )
            load_factor = plan.load_factor
            dispatch_policy = dispatch_policy or DispatchPolicy()
            ladder_s = self.system.engine.degraded_dispatch_seconds(
                count, len(self.failed_accels), dispatch_policy
            ) - self.system.engine.dispatch_seconds(
                count - len(self.failed_accels)
            )
        self.load_factor = load_factor
        self.degraded_ladder_s = ladder_s

        self._table: List[float] = []
        for n in range(1, self.policy.max_batch + 1):
            report = scheduler.shared_scan(app, meta, n, graph=self.graph)
            self._table.append(
                report.scan_seconds * calibration * load_factor + ladder_s
            )

    # ------------------------------------------------------------------
    @property
    def max_batch(self) -> int:
        return self.policy.max_batch

    def service_seconds(self, batch_size: int) -> float:
        """Scan time of one batch (sizes above the cap are an error)."""
        if not 1 <= batch_size <= self.max_batch:
            raise ValueError(
                f"batch_size {batch_size} outside 1..{self.max_batch}"
            )
        return self._table[batch_size - 1]

    def best_batch(self) -> Tuple[int, float]:
        """The batch size with the highest queries-per-second, and that
        throughput (per server)."""
        best_n, best_qps = 1, 1.0 / self._table[0]
        for n in range(2, self.max_batch + 1):
            qps = n / self._table[n - 1]
            if qps > best_qps:
                best_n, best_qps = n, qps
        return best_n, best_qps

    def saturation_qps(self, n_servers: int = 1) -> float:
        """Peak sustainable throughput with perfect batching."""
        if n_servers <= 0:
            raise ValueError("n_servers must be positive")
        return n_servers * self.best_batch()[1]
