"""Open-loop arrival processes for the query-serving layer.

A serving simulation is only as honest as its arrival model.  This
module generates **open-loop** arrivals — queries arrive on their own
schedule regardless of whether the service keeps up, which is what
exposes queueing delay and forces load shedding (a closed loop would
politely self-throttle and hide both):

* :func:`poisson_arrivals` — deterministic seeded Poisson process at a
  chosen offered rate, with query content drawn from a
  :class:`~repro.workloads.queries.QueryStream` so the query cache sees
  realistic semantic locality;
* :func:`trace_arrivals` — interarrival times lifted from a captured
  :class:`~repro.workloads.traces.QueryTrace` (paper §5's trace-driven
  methodology), optionally rescaled to a target offered rate so one
  trace sweeps a whole load axis.

Both return plain :class:`ArrivalEvent` lists: timestamp, query vector,
ground-truth intent, and a priority class for the admission queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.workloads.queries import QueryStream
from repro.workloads.traces import QueryTrace

#: batch-compatibility key reserved for ingest operations — writes never
#: share a scan batch with queries
INGEST_COMPAT = "__ingest__"


@dataclass(frozen=True)
class ArrivalEvent:
    """One request arriving at the device, with its admission priority.

    ``priority`` is an integer class: **0 is the most important**;
    larger numbers are served after smaller ones.  ``compat`` is the
    batch-compatibility key (app/SCN identity) — only queries with equal
    keys may share a scan.  ``kind`` separates read traffic
    (``"query"``) from write traffic (``"ingest"``); ingest arrivals
    bypass the query cache and are serviced by the write path.
    """

    time_s: float
    qfv: Optional[np.ndarray] = None
    intent: int = -1
    priority: int = 0
    compat: str = ""
    kind: str = "query"


def poisson_arrivals(
    n_queries: int,
    offered_qps: float,
    seed: int = 0,
    stream: Optional[QueryStream] = None,
    compat: str = "",
    priority_of: Optional[Callable[[int], int]] = None,
) -> List[ArrivalEvent]:
    """A seeded Poisson arrival process at ``offered_qps``.

    Interarrival gaps are exponential draws from
    ``np.random.default_rng(seed)``, so the schedule is bit-identical
    for a given ``(n_queries, offered_qps, seed)``.  With a ``stream``,
    each arrival carries a generated query (QFV + intent); without one,
    arrivals are timing-only (the server then skips the query cache).
    ``priority_of`` maps the arrival index to a priority class
    (default: everything class 0).
    """
    if n_queries <= 0:
        raise ValueError("n_queries must be positive")
    if offered_qps <= 0:
        raise ValueError("offered_qps must be positive")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / offered_qps, n_queries))
    records = stream.generate(n_queries) if stream is not None else None
    events: List[ArrivalEvent] = []
    for i, t in enumerate(arrivals):
        record = records[i] if records is not None else None
        events.append(
            ArrivalEvent(
                time_s=float(t),
                qfv=record.qfv if record is not None else None,
                intent=record.intent if record is not None else -1,
                priority=priority_of(i) if priority_of is not None else 0,
                compat=compat,
            )
        )
    return events


def trace_arrivals(
    trace: QueryTrace,
    target_qps: Optional[float] = None,
    compat: str = "",
    priority_of: Optional[Callable[[int], int]] = None,
) -> List[ArrivalEvent]:
    """Arrivals from a captured trace, optionally rescaled.

    With ``target_qps`` set, every interarrival gap is scaled by
    ``trace.offered_qps / target_qps`` — burstiness (the *shape* of the
    gaps) is preserved while the mean rate moves, which is how one
    captured trace drives a whole offered-load sweep.
    """
    if not trace.queries:
        return []
    scale = 1.0
    if target_qps is not None:
        if target_qps <= 0:
            raise ValueError("target_qps must be positive")
        observed = trace.offered_qps
        if observed > 0:
            scale = observed / target_qps
    events: List[ArrivalEvent] = []
    for i, q in enumerate(trace.queries):
        events.append(
            ArrivalEvent(
                time_s=q.arrival_s * scale,
                qfv=q.qfv,
                intent=q.intent,
                priority=priority_of(i) if priority_of is not None else 0,
                compat=compat or trace.app,
            )
        )
    return events


def mixed_arrivals(
    n_events: int,
    offered_qps: float,
    write_fraction: float,
    seed: int = 0,
    stream: Optional[QueryStream] = None,
    compat: str = "",
    write_priority: int = 1,
) -> List[ArrivalEvent]:
    """A merged open-loop read/write arrival process.

    One Poisson process at ``offered_qps`` carries both classes; each
    arrival is independently a write with probability
    ``write_fraction`` (a thinned Poisson split, so each class is
    itself Poisson at its share of the rate).  Writes arrive with
    ``kind="ingest"``, the reserved :data:`INGEST_COMPAT` batch key
    (they never share a scan with queries), no QFV (they skip the query
    cache), and ``write_priority`` — default 1, i.e. admitted behind
    class-0 queries, the paper's query-first admission split.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be in [0, 1]")
    events = poisson_arrivals(
        n_events, offered_qps, seed=seed, stream=stream, compat=compat
    )
    rng = np.random.default_rng([seed, 7919])
    is_write = rng.random(n_events) < write_fraction
    out: List[ArrivalEvent] = []
    for event, write in zip(events, is_write):
        if write:
            out.append(
                ArrivalEvent(
                    time_s=event.time_s,
                    qfv=None,
                    intent=-1,
                    priority=write_priority,
                    compat=INGEST_COMPAT,
                    kind="ingest",
                )
            )
        else:
            out.append(event)
    return out


def offered_qps_of(events: List[ArrivalEvent]) -> float:
    """Mean offered rate of an arrival schedule (0.0 when degenerate)."""
    if len(events) < 2:
        return 0.0
    span = events[-1].time_s - events[0].time_s
    return (len(events) - 1) / span if span > 0 else 0.0
