"""Bounded admission queue with priority classes and shedding policies.

The device's embedded cores can hold only so many parsed-but-unserved
queries; past that bound something must give.  :class:`AdmissionQueue`
models that bound explicitly and makes the "something" a policy choice:

``reject``
    drop the **newcomer** when the queue is full (classic tail drop —
    the default, and the only policy that never revokes an admission);
``drop-oldest``
    evict the longest-waiting query of the least-important class to
    admit the newcomer, but never evict a class more important than the
    newcomer's (head drop with priority protection);
``deadline``
    admit freely up to the bound, but expire queries whose sojourn
    exceeds ``deadline_s`` before they reach a server (staleness
    shedding — a query answered too late is a query wasted).

The queue is a pure data structure over caller-supplied clocks — no
simulator dependency — so property tests can drive it with arbitrary
operation sequences.  Invariants it maintains (and tests assert):

* **bound**: live depth never exceeds ``bound``;
* **priority**: ``pop`` returns the lowest-numbered nonempty class;
* **FIFO**: within one priority class, pops happen in offer order;
* **conservation**: ``offered == admitted + rejected`` and
  ``admitted == popped + evicted + expired + depth`` at every step.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

#: recognized shedding policies
POLICIES = ("reject", "drop-oldest", "deadline")


@dataclass(frozen=True)
class QueuedQuery:
    """One admitted query waiting for a scan slot."""

    qid: int
    arrival_s: float
    priority: int = 0
    #: batch-compatibility key (same app/SCN ⇒ may share a scan)
    compat: str = ""
    #: latency already accrued before admission (e.g. cache lookup)
    penalty_s: float = 0.0
    intent: int = -1
    qfv: Any = None


@dataclass
class AdmissionCounters:
    """Conservation ledger; every query lands in exactly one bucket."""

    offered: int = 0
    admitted: int = 0
    #: newcomers turned away at the door (``reject``, or ``drop-oldest``
    #: finding nothing less important to evict)
    rejected: int = 0
    #: admitted queries revoked to make room (``drop-oldest``)
    evicted: int = 0
    #: admitted queries shed for exceeding the deadline (``deadline``)
    expired: int = 0
    popped: int = 0

    @property
    def shed(self) -> int:
        """Everything that was offered but will never be served."""
        return self.rejected + self.evicted + self.expired

    def conserved(self, depth: int) -> bool:
        """The two conservation identities (see module docstring)."""
        return (
            self.offered == self.admitted + self.rejected
            and self.admitted == self.popped + self.evicted
            + self.expired + depth
        )


class AdmissionQueue:
    """Bounded multi-class FIFO with a load-shedding policy."""

    def __init__(
        self,
        bound: int,
        policy: str = "reject",
        deadline_s: Optional[float] = None,
    ) -> None:
        if bound <= 0:
            raise ValueError("queue bound must be positive")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        if policy == "deadline" and (deadline_s is None or deadline_s <= 0):
            raise ValueError("deadline policy needs a positive deadline_s")
        if policy != "deadline" and deadline_s is not None:
            raise ValueError("deadline_s only applies to the deadline policy")
        self.bound = bound
        self.policy = policy
        self.deadline_s = deadline_s
        self.counters = AdmissionCounters()
        self._classes: Dict[int, Deque[QueuedQuery]] = {}
        #: live depth, maintained incrementally — ``offer`` is called
        #: once per arrival and ``len(self)`` guards every admission, so
        #: a sum over class deques would make admission O(classes) per
        #: query (visible in serving-sweep profiles)
        self._depth = 0
        #: shed queries this step, surfaced so the server can record
        #: their latency/timeline events; drained by :meth:`take_shed`
        self._shed_log: List[Tuple[QueuedQuery, str]] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._depth

    @property
    def depth(self) -> int:
        """Live queued queries (expired-but-unswept ones included)."""
        return len(self)

    def take_shed(self) -> List[Tuple[QueuedQuery, str]]:
        """Drain and return ``(query, reason)`` pairs shed since last call."""
        out = self._shed_log
        self._shed_log = []
        return out

    # ------------------------------------------------------------------
    def _expire(self, now: float) -> None:
        """Deadline policy: lazily drop over-age queries (any position)."""
        if self.policy != "deadline":
            return
        assert self.deadline_s is not None
        for queue in self._classes.values():
            survivors = deque(
                q for q in queue if now - q.arrival_s <= self.deadline_s
            )
            if len(survivors) != len(queue):
                for q in queue:
                    if now - q.arrival_s > self.deadline_s:
                        self.counters.expired += 1
                        self._shed_log.append((q, "expired"))
                self._depth -= len(queue) - len(survivors)
                queue.clear()
                queue.extend(survivors)

    def _evict_for(self, newcomer: QueuedQuery) -> bool:
        """``drop-oldest``: shed the oldest query of the least-important
        class that is no more important than the newcomer."""
        candidates = [
            p for p, queue in self._classes.items()
            if queue and p >= newcomer.priority
        ]
        if not candidates:
            return False
        victim_class = max(candidates)
        victim = self._classes[victim_class].popleft()
        self._depth -= 1
        self.counters.evicted += 1
        self._shed_log.append((victim, "evicted"))
        return True

    # ------------------------------------------------------------------
    def offer(self, query: QueuedQuery, now: float) -> bool:
        """Try to admit ``query`` at time ``now``; True iff admitted."""
        self.counters.offered += 1
        self._expire(now)
        if len(self) >= self.bound:
            if self.policy == "drop-oldest" and self._evict_for(query):
                pass  # room was made
            else:
                self.counters.rejected += 1
                self._shed_log.append((query, "rejected"))
                return False
        self.counters.admitted += 1
        self._classes.setdefault(query.priority, deque()).append(query)
        self._depth += 1
        return True

    def pop(self, now: float) -> Optional[QueuedQuery]:
        """Dequeue the FIFO head of the most important nonempty class."""
        self._expire(now)
        for priority in sorted(self._classes):
            queue = self._classes[priority]
            if queue:
                self.counters.popped += 1
                self._depth -= 1
                return queue.popleft()
        return None

    def pop_batch(self, now: float, max_batch: int) -> List[QueuedQuery]:
        """Dequeue the head plus its batchable followers.

        Pops the FIFO head, then keeps popping while the **next head of
        the same priority class** shares the head's ``compat`` key, up
        to ``max_batch`` queries.  Only contiguous prefix runs coalesce,
        so service order within a class stays exactly FIFO — a
        compatible query never jumps an incompatible one.
        """
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        head = self.pop(now)
        if head is None:
            return []
        batch = [head]
        queue = self._classes.get(head.priority)
        while (
            queue is not None
            and len(batch) < max_batch
            and queue
            and queue[0].compat == head.compat
        ):
            batch.append(queue.popleft())
            self.counters.popped += 1
            self._depth -= 1
        return batch
