"""Concurrent query serving: arrivals, admission, batching, sweeps.

The paper evaluates one query at a time; the north star is a device
serving heavy traffic.  This package is the layer between: an open-loop
discrete-event serving model on top of :mod:`repro.sim` and the
per-query cost models, with the three mechanisms a loaded service
actually stands on —

* **arrival processes** (:mod:`repro.serving.arrivals`) — seeded
  Poisson and trace-driven open-loop schedules;
* **admission control** (:mod:`repro.serving.admission`) — a bounded
  queue with priority classes and ``reject`` / ``drop-oldest`` /
  ``deadline`` shedding policies;
* **batch formation** (:mod:`repro.serving.batcher`) — compatible
  (same-app/SCN) queries coalesced FIFO into shared flash scans, costed
  by the multi-query scheduler and degradable under injected
  accelerator failures.

:class:`QueryServer` composes them into one simulated service;
:func:`sweep_offered_load` produces the throughput-latency curve; and
:func:`build_serving_scorecard` / :func:`compare_scorecards` are the
machine-readable perf scorecard CI gates on (``repro serve`` is the
CLI front end).
"""

from repro.serving.admission import (
    POLICIES,
    AdmissionCounters,
    AdmissionQueue,
    QueuedQuery,
)
from repro.serving.arrivals import (
    INGEST_COMPAT,
    ArrivalEvent,
    mixed_arrivals,
    offered_qps_of,
    poisson_arrivals,
    trace_arrivals,
)
from repro.serving.batcher import BatchCostModel, BatchPolicy
from repro.serving.report import curve_table, drop_timeline, queue_depth_timeline
from repro.serving.scorecard import (
    Drift,
    build_serving_scorecard,
    compare_scorecards,
    flatten,
    serving_metrics_snapshot,
)
from repro.serving.server import QueryServer, ServingConfig, ServingResult
from repro.serving.sweep import (
    DEFAULT_LOAD_FRACTIONS,
    ServingCurve,
    sweep_offered_load,
)

__all__ = [
    "ArrivalEvent",
    "INGEST_COMPAT",
    "poisson_arrivals",
    "mixed_arrivals",
    "trace_arrivals",
    "offered_qps_of",
    "AdmissionQueue",
    "AdmissionCounters",
    "QueuedQuery",
    "POLICIES",
    "BatchPolicy",
    "BatchCostModel",
    "QueryServer",
    "ServingConfig",
    "ServingResult",
    "ServingCurve",
    "sweep_offered_load",
    "DEFAULT_LOAD_FRACTIONS",
    "build_serving_scorecard",
    "compare_scorecards",
    "serving_metrics_snapshot",
    "Drift",
    "flatten",
    "curve_table",
    "queue_depth_timeline",
    "drop_timeline",
]
