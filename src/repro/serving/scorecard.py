"""The serving performance scorecard and the CI perf gate's comparator.

Because every number the simulator produces is a deterministic function
of config + seed, performance regressions are *code* regressions: if a
refactor changes the achieved QPS at 0.75x saturation by 30%, either
the model changed on purpose (update the baseline) or something broke.
:func:`build_serving_scorecard` runs a small canonical scenario matrix
— a load sweep, a cache-fronted point, a degraded-mode point — and
returns a nested JSON-ready dict; :func:`compare_scorecards` diffs two
such dicts leaf by leaf within a relative tolerance, which is exactly
what ``benchmarks/perf_gate.py`` gates CI on against the checked-in
``benchmarks/results/baseline_scorecard.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.serving.arrivals import poisson_arrivals
from repro.serving.server import QueryServer, ServingConfig
from repro.serving.sweep import sweep_offered_load
from repro.workloads.queries import QueryStream

#: canonical scenario: small enough for CI seconds, large enough that
#: batching and queueing dynamics are visible
SCORECARD_APP = "tir"
SCORECARD_FEATURES = 400_000
SCORECARD_QUERIES = 240
SCORECARD_SEED = 7
SCORECARD_FRACTIONS = (0.25, 0.5, 0.75, 1.0, 1.5)


def build_serving_scorecard(
    app: str = SCORECARD_APP,
    features: int = SCORECARD_FEATURES,
    n_queries: int = SCORECARD_QUERIES,
    seed: int = SCORECARD_SEED,
) -> Dict[str, object]:
    """Run the canonical serving scenarios; return the perf scorecard.

    Everything in the result is simulated time or counts — no wall
    clock — so re-running with the same arguments is bit-identical.
    """
    config = ServingConfig(
        app=app, features=features, queue_bound=32, max_batch=8
    )
    curve = sweep_offered_load(
        config,
        n_queries=n_queries,
        seed=seed,
        load_fractions=SCORECARD_FRACTIONS,
    )
    points = [
        {
            "load_fraction": frac,
            "offered_qps": p.offered_qps,
            "achieved_qps": p.achieved_qps,
            "goodput": p.goodput_fraction,
            "shed_rate": p.shed_rate,
            "p50_ms": p.p50_s * 1e3,
            "p99_ms": p.p99_s * 1e3,
            "mean_batch": p.mean_batch,
            "utilization": p.utilization,
        }
        for frac, p in zip(SCORECARD_FRACTIONS, curve.points)
    ]

    # cache-fronted point at the knee: a Zipf stream with semantic
    # locality, so the hit path's queue bypass shows up as capacity
    cached_config = ServingConfig(
        app=app, features=features, queue_bound=32, max_batch=8,
        cache_entries=256, cache_threshold=0.10,
    )
    stream = QueryStream(
        dim=64, n_intents=40, distribution="zipf", alpha=0.8,
        paraphrase_noise=0.05, seed=seed,
    )
    cached_server = QueryServer(cached_config)
    cached = cached_server.run(
        poisson_arrivals(
            n_queries,
            curve.saturation_qps,
            seed=seed,
            stream=stream,
            compat=app,
        )
    )

    # degraded-mode point: two dead channel accelerators, remapped
    degraded_config = ServingConfig(
        app=app, features=features, queue_bound=32, max_batch=8,
        failed_accels=(0, 1),
    )
    degraded_server = QueryServer(degraded_config)
    degraded = degraded_server.run(
        poisson_arrivals(
            n_queries, curve.saturation_qps * 0.5, seed=seed, compat=app
        )
    )

    return {
        "app": app,
        "features": features,
        "queries": n_queries,
        "seed": seed,
        "saturation_qps": curve.saturation_qps,
        "points": points,
        "cached": {
            "hit_rate": cached.hit_rate,
            "achieved_qps": cached.achieved_qps,
            "p50_ms": cached.p50_s * 1e3,
            "p99_ms": cached.p99_s * 1e3,
            "shed_rate": cached.shed_rate,
        },
        "degraded": {
            "failed_accels": len(degraded_config.failed_accels),
            "achieved_qps": degraded.achieved_qps,
            "p99_ms": degraded.p99_s * 1e3,
            "load_factor": degraded_server.cost.load_factor,
        },
    }


def serving_metrics_snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """The ``serving.*`` slice of a metrics snapshot (for --json)."""
    return {
        name: value
        for name, value in registry.snapshot().items()
        if name.startswith("serving.")
    }


# ----------------------------------------------------------------------
# the perf-gate comparator
# ----------------------------------------------------------------------
Leaf = Union[int, float, bool, str, None]


@dataclass(frozen=True)
class Drift:
    """One leaf that moved outside tolerance (or went missing)."""

    key: str
    baseline: Leaf
    current: Leaf
    status: str  # "regressed" | "missing" | "unexpected" | "changed"

    @property
    def ratio(self) -> Optional[float]:
        if (
            isinstance(self.baseline, (int, float))
            and isinstance(self.current, (int, float))
            and not isinstance(self.baseline, bool)
            and self.baseline != 0
        ):
            return self.current / self.baseline
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record for the diff artifact."""
        return {
            "key": self.key,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "status": self.status,
        }


def flatten(value: object, prefix: str = "") -> Dict[str, Leaf]:
    """Nested dicts/lists -> dotted-key scalar leaves."""
    out: Dict[str, Leaf] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            out.update(flatten(value[key], f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            out.update(flatten(item, f"{prefix}[{i}]"))
    else:
        out[prefix] = value  # type: ignore[assignment]
    return out


def compare_scorecards(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerance: float = 0.10,
    atol: float = 1e-9,
) -> List[Drift]:
    """Leaf-by-leaf diff of two scorecards.

    Numeric leaves must satisfy ``|cur - base| <= atol`` **or**
    ``|cur - base| <= tolerance * |base|`` (the +/-10% CI band);
    non-numeric leaves must match exactly; keys must be identical in
    both directions.  Returns the drifted leaves, worst first.
    """
    if tolerance < 0:
        raise ValueError("tolerance cannot be negative")
    base_flat = flatten(baseline)
    cur_flat = flatten(current)
    drifts: List[Drift] = []
    for key in sorted(base_flat):
        if key not in cur_flat:
            drifts.append(Drift(key, base_flat[key], None, "missing"))
            continue
        b, c = base_flat[key], cur_flat[key]
        numeric = (
            isinstance(b, (int, float)) and not isinstance(b, bool)
            and isinstance(c, (int, float)) and not isinstance(c, bool)
        )
        if numeric:
            assert isinstance(b, (int, float)) and isinstance(c, (int, float))
            if not (math.isfinite(b) and math.isfinite(c)):
                if repr(b) != repr(c):
                    drifts.append(Drift(key, b, c, "regressed"))
                continue
            delta = abs(c - b)
            if delta > atol and delta > tolerance * abs(b):
                drifts.append(Drift(key, b, c, "regressed"))
        elif b != c:
            drifts.append(Drift(key, b, c, "changed"))
    for key in sorted(cur_flat):
        if key not in base_flat:
            drifts.append(Drift(key, None, cur_flat[key], "unexpected"))

    def severity(d: Drift) -> Tuple[int, float, str]:
        ratio = d.ratio
        spread = abs(math.log(ratio)) if ratio and ratio > 0 else math.inf
        order = {"regressed": 0, "changed": 1, "missing": 2, "unexpected": 3}
        return (order[d.status], -spread, d.key)

    return sorted(drifts, key=severity)
