"""The reproduction scorecard.

One call that re-runs every headline comparison of the paper's evaluation
and reports measured-vs-published, cell by cell, with a tolerance verdict
— the artifact a reviewer (or CI) checks instead of reading benchmark
logs.  ``python -m repro scorecard`` prints it; the benchmark harness
writes it as JSON next to the rendered tables.

Published values are transcribed from paper Table 4 (speedup and energy
columns); shape checks encode the prose claims (I/O fraction band,
Volta/Pascal compute gap, latency insensitivity, cache benefit ratio).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.metrics import compare_levels
from repro.baseline import GpuSsdSystem, PASCAL_TITAN_XP, VOLTA_TITAN_V
from repro.ssd import Ssd, SsdConfig
from repro.workloads import ALL_APPS

#: paper Table 4, speedup columns (None = unsupported)
PAPER_SPEEDUP: Dict[str, Dict[str, Optional[float]]] = {
    "reid": {"ssd": 0.09, "channel": 3.92, "chip": None},
    "mir": {"ssd": 0.32, "channel": 8.26, "chip": 1.01},
    "estp": {"ssd": 0.59, "channel": 13.16, "chip": 1.9},
    "tir": {"ssd": 0.44, "channel": 10.68, "chip": 1.47},
    "textqa": {"ssd": 0.4, "channel": 17.74, "chip": 4.62},
}

#: paper Table 4, energy-efficiency columns
PAPER_ENERGY: Dict[str, Dict[str, Optional[float]]] = {
    "reid": {"ssd": 0.7, "channel": 17.1, "chip": None},
    "mir": {"ssd": 1.6, "channel": 28.0, "chip": 2.6},
    "estp": {"ssd": 2.8, "channel": 38.6, "chip": 3.2},
    "tir": {"ssd": 2.1, "channel": 35.6, "chip": 3.7},
    "textqa": {"ssd": 2.2, "channel": 78.6, "chip": 13.7},
}


@dataclass
class ScorecardCell:
    """One measured-vs-published comparison."""

    experiment: str
    app: str
    level: str
    paper: Optional[float]
    measured: Optional[float]
    tolerance: float  # accepted ratio band (measured within paper */ tol)

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0) or self.measured is None:
            return None
        return self.measured / self.paper

    @property
    def verdict(self) -> str:
        if self.paper is None and self.measured is None:
            return "match"  # both agree the cell is infeasible
        if self.paper is None or self.measured is None:
            return "mismatch"
        ratio = self.ratio
        if 1 / self.tolerance <= ratio <= self.tolerance:
            return "within" if ratio < 1.25 and ratio > 0.8 else "shape"
        return "off"

    def to_dict(self) -> dict:
        """JSON-serializable form of this comparison."""
        return {
            "experiment": self.experiment,
            "app": self.app,
            "level": self.level,
            "paper": self.paper,
            "measured": self.measured,
            "ratio": self.ratio,
            "verdict": self.verdict,
        }


@dataclass
class Scorecard:
    """All cells plus the structural (prose) checks."""

    cells: List[ScorecardCell] = field(default_factory=list)
    structural: Dict[str, bool] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        out = {"within": 0, "shape": 0, "off": 0, "match": 0, "mismatch": 0}
        for cell in self.cells:
            out[cell.verdict] += 1
        return out

    @property
    def structural_ok(self) -> bool:
        return all(self.structural.values())

    def to_json(self, indent: int = 2) -> str:
        """Serialize cells, structural checks and counts to JSON."""
        return json.dumps(
            {
                "cells": [c.to_dict() for c in self.cells],
                "structural": self.structural,
                "counts": self.counts,
            },
            indent=indent,
        )

    def render(self) -> str:
        """Render the scorecard as an aligned text report."""
        lines = ["== Reproduction scorecard =="]
        lines.append(f"{'exp':10s} {'app':8s} {'level':8s} "
                     f"{'paper':>8s} {'measured':>9s} {'ratio':>6s}  verdict")
        for c in self.cells:
            paper = "n/a" if c.paper is None else f"{c.paper:.2f}"
            measured = "n/a" if c.measured is None else f"{c.measured:.2f}"
            ratio = "-" if c.ratio is None else f"{c.ratio:.2f}"
            lines.append(
                f"{c.experiment:10s} {c.app:8s} {c.level:8s} "
                f"{paper:>8s} {measured:>9s} {ratio:>6s}  {c.verdict}"
            )
        lines.append("structural claims: " + ", ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            for name, ok in self.structural.items()
        ))
        counts = self.counts
        lines.append(
            f"totals: {counts['within']} within 25%, {counts['shape']} "
            f"shape-only, {counts['off']} off, "
            f"{counts['match']} n/a-matches, {counts['mismatch']} mismatches"
        )
        return "\n".join(lines)


def build_scorecard(
    gigabytes: float = 25.0,
    tolerance: float = 2.5,
    ssd_config: Optional[SsdConfig] = None,
) -> Scorecard:
    """Run the Table-4 comparisons and the structural checks."""
    if tolerance < 1.0:
        raise ValueError("tolerance must be >= 1.0")
    ssd = Ssd(ssd_config)
    baseline = GpuSsdSystem()
    card = Scorecard()
    channel_speedups: Dict[str, float] = {}
    for name, app in ALL_APPS.items():
        meta = ssd.ftl.create_database(
            app.feature_bytes, int(gigabytes * 1e9 / app.feature_bytes)
        )
        for cell in compare_levels(app, meta, baseline=baseline):
            measured_speedup = cell.speedup if cell.supported else None
            measured_energy = cell.energy_efficiency if cell.supported else None
            card.cells.append(ScorecardCell(
                "speedup", name, cell.level,
                PAPER_SPEEDUP[name][cell.level], measured_speedup, tolerance,
            ))
            card.cells.append(ScorecardCell(
                "perf/W", name, cell.level,
                PAPER_ENERGY[name][cell.level], measured_energy,
                tolerance * 1.6,  # energy carries both models' error
            ))
            if cell.level == "channel" and cell.supported:
                channel_speedups[name] = cell.speedup

    # structural claims from the prose
    io_fractions = [
        baseline.batch_breakdown(app).io_fraction for app in ALL_APPS.values()
    ]
    pascal = GpuSsdSystem(PASCAL_TITAN_XP)
    volta = GpuSsdSystem(VOLTA_TITAN_V)
    tir = ALL_APPS["tir"]
    compute_gap = (
        pascal.batch_breakdown(tir).compute_s / volta.batch_breakdown(tir).compute_s
    )
    card.structural = {
        "io_fraction_band": min(io_fractions) > 0.5 and max(io_fractions) < 0.95,
        "volta_compute_faster": 1.1 < compute_gap < 1.5,
        "channel_always_best": all(
            c.verdict != "mismatch" for c in card.cells
            if c.level == "channel" and c.experiment == "speedup"
        ) and all(v > 1.0 for v in channel_speedups.values()),
        "reid_worst_channel": min(channel_speedups, key=channel_speedups.get)
        == "reid",
        "textqa_best_channel": max(channel_speedups, key=channel_speedups.get)
        == "textqa",
        "ssd_level_below_1x": all(
            c.measured is not None and c.measured < 1.0
            for c in card.cells
            if c.level == "ssd" and c.experiment == "speedup"
        ),
    }
    return card
