"""Metrics and reporting helpers for the benchmark harness."""

from repro.analysis.metrics import (
    EvaluationCell,
    compare_levels,
    energy_efficiency,
    evaluate_level,
    speedup,
)
from repro.analysis.reliability import (
    ReliabilityReport,
    percentile,
    run_reliability_trial,
)
from repro.analysis.reporting import Table, format_seconds, format_si

__all__ = [
    "speedup",
    "energy_efficiency",
    "evaluate_level",
    "compare_levels",
    "EvaluationCell",
    "ReliabilityReport",
    "percentile",
    "run_reliability_trial",
    "Table",
    "format_si",
    "format_seconds",
]
