"""Headline metrics: speedup and energy efficiency vs the GPU+SSD system.

These are the quantities of paper Table 4 / Fig. 8 / Fig. 11:

* ``speedup = T_baseline / T_deepstore`` for one full-database query;
* ``energy efficiency = (perf/W)_deepstore / (perf/W)_gpu``, where the
  GPU side uses the measured GPU power (nvidia-smi methodology) and the
  DeepStore side uses modelled dynamic energy plus the SSD's base power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.baseline.system import GpuSsdSystem, QueryCost
from repro.core.deepstore import DeepStoreSystem, QueryLatency
from repro.ssd.ftl import DatabaseMetadata
from repro.workloads.apps import AppSpec


def speedup(baseline_seconds: float, deepstore_seconds: float) -> float:
    """Baseline-over-DeepStore time ratio (>1 means DeepStore wins)."""
    if baseline_seconds < 0 or deepstore_seconds <= 0:
        raise ValueError("times must be positive")
    return baseline_seconds / deepstore_seconds


def energy_efficiency(
    baseline_seconds: float,
    baseline_power_w: float,
    deepstore_seconds: float,
    deepstore_power_w: float,
) -> float:
    """Perf-per-watt ratio vs the baseline (Fig. 11's y-axis)."""
    if min(baseline_seconds, baseline_power_w, deepstore_seconds, deepstore_power_w) <= 0:
        raise ValueError("times and powers must be positive")
    baseline_ppw = 1.0 / (baseline_seconds * baseline_power_w)
    deepstore_ppw = 1.0 / (deepstore_seconds * deepstore_power_w)
    return deepstore_ppw / baseline_ppw


@dataclass
class EvaluationCell:
    """One (application, level) cell of Table 4."""

    app: str
    level: str
    supported: bool
    speedup: float = 0.0
    energy_efficiency: float = 0.0
    deepstore: Optional[QueryLatency] = None
    baseline: Optional[QueryCost] = None

    @property
    def bound(self) -> str:
        return self.deepstore.bound if self.deepstore else "n/a"


def evaluate_level(
    app: AppSpec,
    meta: DatabaseMetadata,
    level: str,
    baseline: Optional[GpuSsdSystem] = None,
    deepstore: Optional[DeepStoreSystem] = None,
) -> EvaluationCell:
    """Compute one Table-4 cell."""
    baseline = baseline or GpuSsdSystem()
    deepstore = deepstore or DeepStoreSystem.at_level(level)
    graph = app.build_scn()
    cost = baseline.query_cost(app, meta.feature_count)
    if not deepstore.supports(graph):
        return EvaluationCell(app=app.name, level=level, supported=False,
                              baseline=cost)
    latency = deepstore.query_latency(app, meta, graph=graph)
    return EvaluationCell(
        app=app.name,
        level=level,
        supported=True,
        speedup=speedup(cost.seconds, latency.total_seconds),
        energy_efficiency=energy_efficiency(
            cost.seconds,
            baseline.gpu_only_power_w(),
            latency.total_seconds,
            latency.power_w,
        ),
        deepstore=latency,
        baseline=cost,
    )


def compare_levels(
    app: AppSpec,
    meta: DatabaseMetadata,
    levels: Iterable[str] = ("ssd", "channel", "chip"),
    baseline: Optional[GpuSsdSystem] = None,
) -> List[EvaluationCell]:
    """All Table-4 cells for one application."""
    return [evaluate_level(app, meta, level, baseline=baseline) for level in levels]
