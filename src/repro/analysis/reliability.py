"""Reliability reporting for fault-injection runs.

Runs a batch of whole-device event-driven queries under a
:class:`~repro.faults.FaultPlan` and condenses the outcome into a
:class:`ReliabilityReport`: retry/CRC counters, latency percentiles and
their inflation over the fault-free baseline, availability (fraction of
database pages actually scanned), and the degraded-mode slowdown when
accelerators are hard-failed.  Everything is deterministic in
``(seed, plan)`` — two runs of :func:`run_reliability_trial` with the
same arguments produce byte-identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_seconds
from repro.core.engine import DispatchPolicy
from repro.core.event_query import EventQuerySimulator
from repro.faults import FaultInjector, FaultPlan
from repro.nn.graph import Graph

# the nearest-rank percentile moved into the shared metrics layer
# (repro.obs); re-exported here because reports and tests import it from
# repro.analysis
from repro.obs.metrics import percentile
from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.timing import SsdConfig
from repro.workloads.apps import AppSpec

__all__ = ["ReliabilityReport", "percentile", "run_reliability_trial"]


@dataclass
class ReliabilityReport:
    """Condensed outcome of one fault-injection trial.

    ``healthy_seconds`` is the fault-free baseline latency of the same
    query on the same database; every inflation/slowdown figure is
    relative to it.
    """

    plan: FaultPlan
    seed: int
    queries: int
    healthy_seconds: float
    latencies_s: Tuple[float, ...]
    availabilities: Tuple[float, ...]
    counters: Dict[str, int] = field(default_factory=dict)
    failed_channels: Tuple[int, ...] = ()
    remapped_pages: int = 0

    # ------------------------------------------------------------------
    @property
    def mean_seconds(self) -> float:
        """Mean query latency under injection."""
        return sum(self.latencies_s) / len(self.latencies_s)

    @property
    def p50_seconds(self) -> float:
        """Median (nearest-rank) query latency under injection."""
        return percentile(self.latencies_s, 50.0)

    @property
    def p99_seconds(self) -> float:
        """99th-percentile (nearest-rank) query latency under injection."""
        return percentile(self.latencies_s, 99.0)

    @property
    def p50_inflation(self) -> float:
        """p50 latency relative to the fault-free baseline (1.0 = none)."""
        return self.p50_seconds / self.healthy_seconds

    @property
    def p99_inflation(self) -> float:
        """p99 latency relative to the fault-free baseline (1.0 = none)."""
        return self.p99_seconds / self.healthy_seconds

    @property
    def slowdown(self) -> float:
        """Mean latency relative to the fault-free baseline."""
        return self.mean_seconds / self.healthy_seconds

    @property
    def availability(self) -> float:
        """Worst-case fraction of database pages delivered to compute."""
        return min(self.availabilities)

    @property
    def mean_availability(self) -> float:
        """Mean fraction of database pages delivered across queries."""
        return sum(self.availabilities) / len(self.availabilities)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of the report."""
        return {
            "plan": self.plan.describe(),
            "seed": self.seed,
            "queries": self.queries,
            "healthy_seconds": self.healthy_seconds,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "p50_inflation": self.p50_inflation,
            "p99_inflation": self.p99_inflation,
            "slowdown": self.slowdown,
            "availability": self.availability,
            "mean_availability": self.mean_availability,
            "failed_channels": list(self.failed_channels),
            "remapped_pages": self.remapped_pages,
            "counters": dict(self.counters),
        }

    def to_json(self) -> str:
        """Render the report as pretty-printed JSON."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Render the report as human-readable text."""
        c = self.counters
        lines = [
            f"== Reliability report ({self.queries} queries, seed {self.seed}) ==",
            f"plan            {self.plan.describe()}",
            f"healthy         {format_seconds(self.healthy_seconds)}",
            f"mean            {format_seconds(self.mean_seconds)} "
            f"({self.slowdown:.3f}x)",
            f"p50 / p99       {format_seconds(self.p50_seconds)} / "
            f"{format_seconds(self.p99_seconds)} "
            f"({self.p50_inflation:.3f}x / {self.p99_inflation:.3f}x)",
            f"availability    {self.availability * 100:.4f}% worst, "
            f"{self.mean_availability * 100:.4f}% mean",
        ]
        if self.failed_channels:
            lines.append(
                f"failed accels   {list(self.failed_channels)} "
                f"({self.remapped_pages} pages remapped to survivors)"
            )
        if c:
            lines.append(
                f"read retries    {c.get('pages_with_retry', 0)} pages / "
                f"{c.get('retry_passes', 0)} extra passes "
                f"({c.get('page_reads', 0)} reads)"
            )
            lines.append(
                f"CRC errors      {c.get('transfers_with_crc_error', 0)} "
                f"transfers / {c.get('crc_retransfers', 0)} re-transfers"
            )
            lines.append(
                f"failed reads    {c.get('failed_reads', 0)} "
                f"(dead chips/planes)"
            )
        return "\n".join(lines)


def run_reliability_trial(
    app: AppSpec,
    meta: DatabaseMetadata,
    plan: FaultPlan,
    queries: int = 5,
    seed: int = 0,
    ssd: Optional[SsdConfig] = None,
    graph: Optional[Graph] = None,
    policy: Optional[DispatchPolicy] = None,
    max_pages_per_channel: Optional[int] = None,
    metrics=None,
) -> ReliabilityReport:
    """Run ``queries`` event-driven queries under ``plan`` and report.

    The fault-free baseline runs first with no injector, so a zero plan
    reports exactly 1.0x inflation by construction.  Each injected query
    advances the injector epoch, modelling independent trials on a
    database whose marginal pages stay marginal within a query but are
    re-drawn between queries.

    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) collects the
    injected queries' SSD/engine/fault instruments in one place; the
    healthy baseline run is kept out of it so tallies describe the
    faulted executions only.
    """
    if queries <= 0:
        raise ValueError("queries must be positive")
    graph = graph or app.build_scn()
    simulator = EventQuerySimulator(ssd=ssd)
    healthy = simulator.run(
        app, meta, graph=graph, max_pages_per_channel=max_pages_per_channel
    )
    injector: Optional[FaultInjector] = None
    if not plan.is_zero:
        injector = FaultInjector(plan=plan, seed=seed, metrics=metrics)

    latencies: List[float] = []
    availabilities: List[float] = []
    failed_channels: Tuple[int, ...] = ()
    remapped_pages = 0
    if injector is None:
        # a zero plan cannot perturb anything: every query is the baseline
        latencies = [healthy.total_seconds] * queries
        availabilities = [1.0] * queries
    else:
        for q in range(queries):
            injector.begin_epoch(q)
            result = simulator.run(
                app,
                meta,
                graph=graph,
                max_pages_per_channel=max_pages_per_channel,
                injector=injector,
                policy=policy,
                metrics=metrics,
            )
            latencies.append(result.total_seconds)
            availabilities.append(result.availability)
            failed_channels = tuple(result.failed_channels)
            remapped_pages = result.remapped_pages

    return ReliabilityReport(
        plan=plan,
        seed=seed,
        queries=queries,
        healthy_seconds=healthy.total_seconds,
        latencies_s=tuple(latencies),
        availabilities=tuple(availabilities),
        counters=injector.counts.as_dict() if injector is not None else {},
        failed_channels=failed_channels,
        remapped_pages=remapped_pages,
    )
