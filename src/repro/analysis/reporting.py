"""Plain-text table/series rendering for benchmark output.

The benchmark harness prints the same rows and series the paper's tables
and figures report; :class:`Table` keeps the formatting consistent.
"""

from __future__ import annotations

from typing import List, Sequence


def format_si(value: float, unit: str = "", precision: int = 2) -> str:
    """Human-scale formatting: 1.05e6 -> '1.05M'."""
    if value == 0:
        return f"0{unit}"
    magnitude = abs(value)
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if magnitude >= threshold:
            return f"{value / threshold:.{precision}f}{suffix}{unit}"
    return f"{value:.{precision}f}{unit}"


def format_seconds(seconds: float) -> str:
    """Adaptive time formatting (us/ms/s)."""
    if seconds < 0:
        raise ValueError("negative time")
    if seconds == 0:
        return "0s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


class Table:
    """Fixed-width text table with a title and aligned columns."""

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row; cell count must match the columns."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """Render the table as aligned fixed-width text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [f"== {self.title} ==", header, sep]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console side effect
        """Print the rendered table to stdout with a leading blank line."""
        print()
        print(self.render())


def ascii_series(
    values: Sequence[float],
    width: int = 40,
    label: str = "",
) -> str:
    """A one-line bar rendering of a numeric series.

    Benchmarks use this to sketch figure *shapes* (saturation curves,
    miss-rate declines) directly in text output.

    Series longer than ``width`` are downsampled by bucket-averaging —
    each output character covers a near-equal slice of the input — so a
    long series renders its full shape instead of being truncated at
    ``width`` samples.

    >>> ascii_series([1, 2, 4, 8], width=8)
    '▁▂▄█'
    >>> ascii_series([0, 0, 0, 0, 8, 8, 8, 8], width=2)
    '▁█'
    """
    if not values:
        raise ValueError("empty series")
    width = max(1, width)
    samples = [float(v) for v in values]
    if len(samples) > width:
        n = len(samples)
        buckets = []
        for i in range(width):
            # slice bounds chosen so every sample lands in exactly one
            # bucket and bucket sizes differ by at most one
            start = i * n // width
            end = (i + 1) * n // width
            chunk = samples[start:end]
            buckets.append(sum(chunk) / len(chunk))
        samples = buckets
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(samples), max(samples)
    span = hi - lo
    chars = []
    for v in samples:
        if span == 0:
            chars.append(blocks[0])
        else:
            idx = int((v - lo) / span * (len(blocks) - 1))
            chars.append(blocks[idx])
    bar = "".join(chars)
    return f"{label} {bar}" if label else bar
