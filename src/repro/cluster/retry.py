"""The coordinator's retry ladder: capped backoff, seeded jitter, budgets.

The ad-hoc failover walk ("pay one detection ladder per corpse, keep
going forever") becomes a proper retry discipline:

* **capped exponential backoff** — the pause before rung ``n`` is
  ``base_delay_s * multiplier**n``, clamped to ``max_delay_s``; the
  pre-jitter sequence is non-decreasing by construction (the property
  suite proves it);
* **deterministic jitter** — each pause is scaled into
  ``[(1 - jitter) * raw, raw]`` by
  :func:`repro.faults.retry_jitter_unit`, a dedicated hash domain, so
  retry timing is bit-stable run to run and cannot reshuffle any other
  fault draw;
* **a per-query budget** — pauses are charged to the query's latency;
  once ``budget_s`` (or ``max_attempts``) is spent the ladder gives up
  and the shard resolves *unavailable* instead of stalling the gather
  barrier forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.config import ClusterError
from repro.faults.injector import retry_jitter_unit


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of the per-query retry ladder."""

    #: pause before the first retry
    base_delay_s: float = 1e-4
    #: exponential growth per rung
    multiplier: float = 2.0
    #: pause cap (the "capped" in capped exponential backoff)
    max_delay_s: float = 2e-3
    #: rungs per query (retries after the initial attempt)
    max_attempts: int = 4
    #: total pause seconds one query may charge to its latency
    budget_s: float = 5e-3
    #: jitter depth: each pause lands in ``[(1-jitter)*raw, raw]``
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_delay_s < 0:
            raise ClusterError("base_delay_s cannot be negative")
        if self.multiplier < 1.0:
            raise ClusterError("multiplier must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ClusterError("max_delay_s must be >= base_delay_s")
        if self.max_attempts < 1:
            raise ClusterError("max_attempts must be at least 1")
        if self.budget_s < 0:
            raise ClusterError("budget_s cannot be negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ClusterError("jitter must be in [0, 1]")

    def raw_delay(self, attempt: int) -> float:
        """Pre-jitter pause before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ClusterError("attempt cannot be negative")
        return min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)


class RetryLadder:
    """One query's walk up the ladder (stateful, per shard leg).

    ``key`` scopes the jitter draws — typically ``(seq, shard)`` — so
    every query/shard pair jitters independently but reproducibly.
    """

    def __init__(self, policy: RetryPolicy, seed: int, *key: int):
        self.policy = policy
        self.seed = seed
        self.key = key
        self.attempts = 0
        #: pause seconds already charged to the query's latency
        self.charged_s = 0.0
        #: why the ladder stopped (``None`` while it can still climb)
        self.exhausted: Optional[str] = None

    def next_delay(self) -> Optional[float]:
        """The next pause, charged to the budget; ``None`` = give up."""
        policy = self.policy
        if self.attempts >= policy.max_attempts:
            self.exhausted = "attempts"
            return None
        raw = policy.raw_delay(self.attempts)
        u = retry_jitter_unit(self.seed, *self.key, self.attempts)
        delay = raw * (1.0 - policy.jitter * u)
        if self.charged_s + delay > policy.budget_s:
            self.exhausted = "budget"
            return None
        self.attempts += 1
        self.charged_s += delay
        return delay

    def all_delays(self) -> List[float]:
        """Every pause this ladder will grant, in order (drains it)."""
        delays: List[float] = []
        while True:
            delay = self.next_delay()
            if delay is None:
                return delays
            delays.append(delay)
