"""Analytic cluster model: scaling curves without feature arrays.

The functional :class:`~repro.cluster.coordinator.DeepStoreCluster`
really stores and scans data — exactly right for correctness tests,
too heavy for an 8-point shard-scaling sweep over 10M-feature
databases.  :class:`ClusterModel` keeps the *timing* half only: the
per-shard latency comes from the closed-form
:meth:`~repro.core.deepstore.DeepStoreSystem.latency_for` over each
shard's slice size, and the scatter leg reuses the same hedged
scatter DES as the functional path (:func:`repro.cluster.scatter.run_scatter`),
so failover ladders, stragglers, hedge wins, and cancellation behave
identically in both.

The gather charge uses the steady-state merge shape: ``L``-way heapify
plus K pops each refilled by a push (every per-shard list holds K
candidates, so refills only run dry on the last entries — the exact
functional stats differ by at most ``L`` heap ops, inside the CI
drift gate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.config import ClusterConfig, ClusterError
from repro.cluster.placement import make_placement, range_shard_sizes
from repro.cluster.scatter import (
    ReplicaAttempt,
    ScatterResult,
    ShardJob,
    run_scatter,
)
from repro.core.deepstore import DeepStoreSystem
from repro.core.topk import KWayMergeStats
from repro.sim import fastpath
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.ssd.ftl import DatabaseMetadata
from repro.ssd.timing import SsdConfig
from repro.workloads.apps import AppSpec


@dataclass
class ClusterEstimate:
    """One modelled cluster query: cost breakdown + event counters."""

    app: str
    n_features: int
    k: int
    #: end-to-end: scatter + slowest shard + gather
    seconds: float
    scatter_seconds: float
    gather_seconds: float
    makespan_seconds: float
    #: what one unsharded SSD would take over the same dataset
    single_ssd_seconds: float
    n_contacted: int
    merge: KWayMergeStats
    failovers: int
    hedges_launched: int
    hedge_wins: int
    #: per-shard completion seconds, shard-ordered
    shard_seconds: List[float]

    @property
    def speedup_vs_single(self) -> float:
        """Scaling headline: one SSD over the sharded deployment."""
        if self.seconds <= 0:
            return 1.0
        return self.single_ssd_seconds / self.seconds

    @property
    def utilization(self) -> float:
        """Mean shard busy time over the gather barrier (<= 1.0)."""
        if not self.shard_seconds or self.makespan_seconds <= 0:
            return 1.0
        mean = sum(self.shard_seconds) / len(self.shard_seconds)
        return mean / self.makespan_seconds


class ClusterModel:
    """Timing-only cluster over one application's SCN."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        ssd: Optional[SsdConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ClusterConfig()
        self.ssd = ssd or SsdConfig()
        self.tracer = tracer
        self.metrics = metrics
        self._systems: Dict[str, DeepStoreSystem] = {}

    def _system(self, k: int) -> DeepStoreSystem:
        key = f"{self.config.level}-k{k}"
        system = self._systems.get(key)
        if system is None:
            system = DeepStoreSystem.at_level(
                self.config.level, ssd=self.ssd, k=k
            )
            self._systems[key] = system
        return system

    # ------------------------------------------------------------------
    def shard_seconds(self, app: AppSpec, shard_features: int, k: int) -> float:
        """Healthy host-visible latency of one shard over its slice."""
        if shard_features <= 0:
            raise ClusterError("shard_features must be positive")
        system = self._system(k)
        meta = DatabaseMetadata(
            db_id=0,
            feature_bytes=app.feature_bytes,
            feature_count=shard_features,
            page_bytes=self.ssd.geometry.page_bytes,
        )
        # one estimate calls this per shard plus once for the
        # single-SSD anchor; rebuilding + re-initializing the graph
        # each time both costs the init and defeats the profile memo
        graph = fastpath.scn_graph(app, seed=self.config.seed)
        latency = system.latency_for(
            graph, meta, feature_bytes=app.feature_bytes, name=app.name
        )
        transfer = system.engine.result_transfer_seconds(k, app.feature_bytes)
        return latency.total_seconds + transfer

    def estimate(
        self, app: AppSpec, n_features: int, k: int = 10
    ) -> ClusterEstimate:
        """Model one query over ``n_features`` spread across the cluster."""
        if n_features <= 0:
            raise ClusterError("n_features must be positive")
        if k <= 0:
            raise ClusterError("K must be positive")
        cfg = self.config
        if fastpath.enabled() and cfg.placement == "range":
            # the analytic model consumes only shard *sizes*; skip
            # materializing one arange of ids per shard (hundreds of MB
            # at sweep scale) and take the counts straight off the cuts
            sizes = range_shard_sizes(n_features, cfg.n_shards)
            shards = [s for s, size in enumerate(sizes) if size > 0]
        else:
            placement = make_placement(
                cfg.placement, n_features, cfg.n_shards, seed=cfg.seed
            )
            sizes = [len(ids) for ids in placement.owners]
            shards = placement.non_empty_shards()
        dead = set(cfg.dead_replicas())
        detect = cfg.dispatch_policy.give_up_seconds()

        jobs: List[ShardJob] = []
        for shard in shards:
            healthy = self.shard_seconds(app, sizes[shard], k)
            primary = shard % cfg.n_replicas  # single-query read spread
            attempts = []
            for j in range(cfg.n_replicas):
                replica = (primary + j) % cfg.n_replicas
                seconds = healthy * cfg.replica_slowdown(shard, replica)
                attempts.append(
                    ReplicaAttempt(
                        replica=replica,
                        alive=(shard, replica) not in dead,
                        run=(lambda s=seconds: (s, None)),
                    )
                )
            hedge_delay = (
                cfg.hedge_fraction * healthy
                if cfg.hedge_fraction is not None and cfg.n_replicas > 1
                else None
            )
            jobs.append(
                ShardJob(
                    shard=shard,
                    attempts=tuple(attempts),
                    detect_seconds=detect,
                    hedge_delay=hedge_delay,
                )
            )
        scatter: ScatterResult = run_scatter(
            jobs, tracer=self.tracer, metrics=self.metrics
        )

        merge = self._merge_stats(len(shards), k)
        scatter_s = cfg.costs.scatter_seconds(len(shards))
        gather_s = cfg.costs.gather_seconds(merge.comparisons)
        single = self.shard_seconds(app, n_features, k)
        return ClusterEstimate(
            app=app.name,
            n_features=n_features,
            k=k,
            seconds=scatter_s + scatter.makespan_s + gather_s,
            scatter_seconds=scatter_s,
            gather_seconds=gather_s,
            makespan_seconds=scatter.makespan_s,
            single_ssd_seconds=single,
            n_contacted=len(shards),
            merge=merge,
            failovers=scatter.failovers,
            hedges_launched=scatter.hedges_launched,
            hedge_wins=scatter.hedge_wins,
            shard_seconds=[o.done_s for o in scatter.outcomes],
        )

    @staticmethod
    def _merge_stats(lists: int, k: int) -> KWayMergeStats:
        """Steady-state K-way merge shape over full K-entry partials."""
        offered = lists * k
        popped = min(k, offered)
        if lists <= 1:
            # heapify of one head + k pops, no cross-list comparisons
            heap_ops = min(1, lists) + popped
        else:
            # heapify + each pop refilled by a push from the same list
            heap_ops = lists + 2 * popped
        return KWayMergeStats(
            lists=lists,
            entries_offered=offered,
            entries_popped=popped,
            heap_ops=heap_ops,
        )
