"""Per-shard ingest routing and skew-triggered rebalancing.

A sharded deployment mutating online has a placement-decay problem of
its own: whatever :mod:`repro.cluster.placement` strategy laid out the
base rows, *new* rows arrive on the shard the router picks, and a
skewed ingest stream (hot tenants, hot key ranges) concentrates both
the write bandwidth and the growing delta region on a few shards —
exactly the shards whose scans then slow down.

:class:`ShardIngestTracker` is the bookkeeping half of the fix: it
routes inserts deterministically (multiplicative hash, matching the
``hash`` placement strategy), tallies per-shard ingest load, and when
the observed skew (max shard load over mean) crosses a threshold emits
a :class:`RebalancePlan` — the move list that would level the shards.
Executing the plan is the coordinator's business (it owns the devices);
the ``on_rebalance`` hook is where it subscribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

#: 2**64 / golden ratio (same constant as repro.cluster.placement)
_KNUTH_64 = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1


@dataclass(frozen=True)
class RebalanceMove:
    """Move ``rows`` ingested rows from ``src`` shard to ``dst``."""

    src: int
    dst: int
    rows: int


@dataclass(frozen=True)
class RebalancePlan:
    """A proposed leveling of skewed per-shard ingest load."""

    #: observed skew (max/mean) that triggered the plan
    skew: float
    #: per-shard ingested-row counts at trigger time
    loads: Tuple[int, ...]
    moves: Tuple[RebalanceMove, ...]

    @property
    def rows_moved(self) -> int:
        return sum(m.rows for m in self.moves)


class ShardIngestTracker:
    """Routes and tallies per-shard ingest; flags skew for rebalancing.

    ``skew_threshold`` is the max/mean load ratio past which a
    :class:`RebalancePlan` is emitted (must be > 1); ``min_inserts``
    suppresses plans until enough rows have arrived for the ratio to
    mean anything.  After a plan fires the tallies are reset to the
    leveled state, so one burst of skew yields one plan, not a plan per
    subsequent insert.
    """

    def __init__(
        self,
        n_shards: int,
        skew_threshold: float = 2.0,
        min_inserts: int = 64,
        seed: int = 0,
        on_rebalance: Optional[Callable[[RebalancePlan], None]] = None,
    ):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if skew_threshold <= 1.0:
            raise ValueError("skew_threshold must exceed 1.0")
        if min_inserts < 1:
            raise ValueError("min_inserts must be positive")
        self.n_shards = n_shards
        self.skew_threshold = skew_threshold
        self.min_inserts = min_inserts
        self.seed = seed
        self.on_rebalance = on_rebalance
        self._loads = [0] * n_shards
        self.total_inserts = 0
        self.rebalances = 0

    # ------------------------------------------------------------------
    @property
    def loads(self) -> Tuple[int, ...]:
        """Per-shard ingested-row tallies since the last rebalance."""
        return tuple(self._loads)

    @property
    def skew(self) -> float:
        """Max shard load over mean load (1.0 when idle or level)."""
        total = sum(self._loads)
        if total == 0:
            return 1.0
        mean = total / self.n_shards
        return max(self._loads) / mean

    def route(self, fid: int) -> int:
        """The shard a new feature id lands on (hash placement rule)."""
        mixed = ((int(fid) + ((self.seed * 2 + 1) & _MASK_64)) * _KNUTH_64) & _MASK_64
        return mixed % self.n_shards

    def record(self, shard: int, rows: int = 1) -> Optional[RebalancePlan]:
        """Tally ``rows`` ingested on ``shard``; maybe emit a plan."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range")
        if rows <= 0:
            raise ValueError("rows must be positive")
        self._loads[shard] += rows
        self.total_inserts += rows
        return self.check()

    def record_routed(self, fid: int, rows: int = 1) -> int:
        """Route ``fid``, tally it, and return the chosen shard."""
        shard = self.route(fid)
        self.record(shard, rows)
        return shard

    # ------------------------------------------------------------------
    def check(self) -> Optional[RebalancePlan]:
        """Emit (and apply internally) a plan when skew is past bounds."""
        if sum(self._loads) < self.min_inserts:
            return None
        skew = self.skew
        if skew <= self.skew_threshold:
            return None
        plan = RebalancePlan(
            skew=skew, loads=self.loads, moves=self._level_moves()
        )
        # the tracker's view becomes the leveled state: tallies restart
        # so one skew burst yields one plan
        total = sum(self._loads)
        base, extra = divmod(total, self.n_shards)
        self._loads = [
            base + (1 if s < extra else 0) for s in range(self.n_shards)
        ]
        self.rebalances += 1
        if self.on_rebalance is not None:
            self.on_rebalance(plan)
        return plan

    def _level_moves(self) -> Tuple[RebalanceMove, ...]:
        """Greedy donor→recipient moves that level the current loads."""
        total = sum(self._loads)
        base, extra = divmod(total, self.n_shards)
        target = [
            base + (1 if s < extra else 0) for s in range(self.n_shards)
        ]
        surplus = [
            (s, self._loads[s] - target[s])
            for s in range(self.n_shards)
            if self._loads[s] > target[s]
        ]
        deficit = [
            (s, target[s] - self._loads[s])
            for s in range(self.n_shards)
            if self._loads[s] < target[s]
        ]
        moves: List[RebalanceMove] = []
        di = 0
        for src, give in surplus:
            while give > 0 and di < len(deficit):
                dst, need = deficit[di]
                take = min(give, need)
                moves.append(RebalanceMove(src=src, dst=dst, rows=take))
                give -= take
                need -= take
                if need == 0:
                    di += 1
                else:
                    deficit[di] = (dst, need)
        return tuple(moves)
