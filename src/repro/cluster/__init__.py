"""Sharded multi-SSD cluster layer: scatter-gather top-K over
replicated DeepStore devices.

One query against a cluster fans out to every populated shard, runs
each shard's existing SCN pipeline on one replica SSD (with read-spread
replica rotation, failover past dead replicas, and optional hedged
requests against stragglers), and folds the per-shard top-K lists into
the exact global top-K with a streaming K-way merge.  A 1-shard,
1-replica cluster is bit-identical to a single device — the
differential test suite's anchor.

Entry points:

* :class:`DeepStoreCluster` — functional: real partitioned data, exact
  answers, full cost breakdown per query.
* :class:`ClusterModel` — analytic: the same scatter DES over
  closed-form shard latencies, for scaling sweeps and the scorecard.
* :func:`build_cluster_scorecard` — the CI perf gate's cluster leg.
"""

from repro.cluster.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.cluster.brownout import (
    BROWNOUT_STEPS,
    BrownoutConfig,
    BrownoutController,
)
from repro.cluster.config import (
    PLACEMENT_STRATEGIES,
    ClusterConfig,
    ClusterError,
    CoordinatorCosts,
    normalize_fail_shards,
)
from repro.cluster.coordinator import (
    ClusterQueryResult,
    DeepStoreCluster,
    ShardReport,
)
from repro.cluster.ingest import (
    RebalanceMove,
    RebalancePlan,
    ShardIngestTracker,
)
from repro.cluster.model import ClusterEstimate, ClusterModel
from repro.cluster.parallel import (
    ParallelGatherResult,
    scatter_gather_topk,
)
from repro.cluster.placement import (
    ShardPlacement,
    hash_placement,
    locality_placement,
    make_placement,
    range_placement,
)
from repro.cluster.retry import RetryLadder, RetryPolicy
from repro.cluster.scatter import (
    ReplicaAttempt,
    ScatterResult,
    ShardJob,
    ShardOutcome,
    run_scatter,
)
from repro.cluster.scorecard import (
    build_cluster_scorecard,
    cluster_metrics_snapshot,
)
from repro.cluster.serving import ClusterBatchCostModel

__all__ = [
    "BROWNOUT_STEPS",
    "BreakerConfig",
    "BreakerState",
    "BrownoutConfig",
    "BrownoutController",
    "CircuitBreaker",
    "PLACEMENT_STRATEGIES",
    "ParallelGatherResult",
    "ClusterBatchCostModel",
    "ClusterConfig",
    "ClusterError",
    "ClusterEstimate",
    "ClusterModel",
    "ClusterQueryResult",
    "CoordinatorCosts",
    "DeepStoreCluster",
    "RebalanceMove",
    "RebalancePlan",
    "ReplicaAttempt",
    "RetryLadder",
    "RetryPolicy",
    "ShardIngestTracker",
    "ScatterResult",
    "ShardJob",
    "ShardOutcome",
    "ShardPlacement",
    "ShardReport",
    "build_cluster_scorecard",
    "cluster_metrics_snapshot",
    "hash_placement",
    "locality_placement",
    "make_placement",
    "normalize_fail_shards",
    "range_placement",
    "run_scatter",
    "scatter_gather_topk",
]
