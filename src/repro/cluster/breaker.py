"""Per-replica circuit breakers.

A dead replica costs the coordinator one full detection ladder *every
query* — the scatter path cannot tell "dead" from "slow" until the
timeouts run out.  A breaker remembers: after enough failures in the
recent window it **opens** and the replica is skipped at zero detection
cost; after ``open_seconds`` it goes **half-open** and admits exactly
``half_open_probes`` probe requests; all probes succeeding closes it,
any probe failing re-opens it.

The state machine is deliberately classic (closed → open → half-open)
and its invariants are enforced by the hypothesis suite: an open
breaker never admits before its cool-down, and a half-open breaker
admits exactly its probe budget — no more, regardless of traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from collections import deque

from repro.cluster.config import ClusterError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Windowed failure-rate breaker parameters."""

    #: outcomes remembered for the failure-rate window
    window: int = 16
    #: open when the windowed failure rate reaches this
    failure_threshold: float = 0.5
    #: ... but only once the window holds at least this many outcomes
    min_samples: int = 4
    #: cool-down before an open breaker goes half-open
    open_seconds: float = 0.05
    #: probe requests a half-open breaker admits
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ClusterError("window must be at least 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ClusterError("failure_threshold must be in (0, 1]")
        if self.min_samples < 1:
            raise ClusterError("min_samples must be at least 1")
        if self.min_samples > self.window:
            # the window can never hold that many outcomes: the breaker
            # would be permanently unable to open
            raise ClusterError("min_samples cannot exceed window")
        if self.open_seconds < 0:
            raise ClusterError("open_seconds cannot be negative")
        if self.half_open_probes < 1:
            raise ClusterError("half_open_probes must be at least 1")


class CircuitBreaker:
    """One replica's breaker, clocked by the simulated time it is fed."""

    def __init__(self, config: Optional[BreakerConfig] = None):
        self.config = config or BreakerConfig()
        self._outcomes: Deque[bool] = deque(maxlen=self.config.window)
        self._state = BreakerState.CLOSED
        self._opened_at: Optional[float] = None
        self._probes_admitted = 0
        self._probe_successes = 0
        #: (now_s, from, to) — every transition, in order
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []

    # ------------------------------------------------------------------
    @property
    def failure_rate(self) -> float:
        """Failure fraction over the remembered window (0 when empty)."""
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def state(self, now_s: float) -> BreakerState:
        """Current state, resolving an elapsed open cool-down."""
        self._maybe_half_open(now_s)
        return self._state

    # ------------------------------------------------------------------
    def allow(self, now_s: float) -> bool:
        """May a request go to this replica right now?

        Open: never (that is the whole point).  Half-open: yes, for
        exactly the probe budget.  Closed: always.
        """
        self._maybe_half_open(now_s)
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            return False
        if self._probes_admitted >= self.config.half_open_probes:
            return False
        self._probes_admitted += 1
        return True

    def record_success(self, now_s: float) -> None:
        """Feed one success into the window (may close a half-open)."""
        self._maybe_half_open(now_s)
        self._outcomes.append(True)
        if self._state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self._transition(now_s, BreakerState.CLOSED)
                self._outcomes.clear()

    def record_failure(self, now_s: float) -> None:
        """Feed one failure (may open, or re-open a half-open)."""
        self._maybe_half_open(now_s)
        self._outcomes.append(False)
        if self._state is BreakerState.HALF_OPEN:
            # a failed probe re-opens immediately (fresh cool-down)
            self._transition(now_s, BreakerState.OPEN)
            return
        if (
            self._state is BreakerState.CLOSED
            and len(self._outcomes) >= self.config.min_samples
            and self.failure_rate >= self.config.failure_threshold
        ):
            self._transition(now_s, BreakerState.OPEN)

    # ------------------------------------------------------------------
    def _maybe_half_open(self, now_s: float) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and now_s - self._opened_at >= self.config.open_seconds
        ):
            self._transition(now_s, BreakerState.HALF_OPEN)

    def _transition(self, now_s: float, to: BreakerState) -> None:
        if to is self._state:  # pragma: no cover - callers guard this
            return
        self.transitions.append((now_s, self._state, to))
        self._state = to
        if to is BreakerState.OPEN:
            self._opened_at = now_s
        elif to is BreakerState.HALF_OPEN:
            self._probes_admitted = 0
            self._probe_successes = 0
        elif to is BreakerState.CLOSED:
            self._opened_at = None
