"""Brownout: degrade in observable steps instead of falling over.

Under sustained pressure (replica outages, retry storms, GC
interference) the right move is rarely "keep serving at full fidelity
until the latency SLO dies".  :class:`BrownoutController` walks a
fixed, observable ladder one step at a time:

====  =================  =============================================
step  name               what the serving path gives up
====  =================  =============================================
0     ``normal``         nothing
1     ``no_hedge``       hedged requests (halves replica fan-out)
2     ``skip_delta``     the unclustered delta region (bounded recall
                         loss, measured by the chaos harness)
3     ``shed_low``       low-priority query classes (load shedding)
====  =================  =============================================

Escalation and recovery are hysteretic: pressure (any [0, 1] signal —
the chaos harness feeds windowed shard-unavailability) must sit above
``step_up_pressure`` to climb and below ``step_down_pressure`` to
descend, and each change must wait out ``dwell_s`` so the controller
cannot flap.  Every transition is recorded for the scorecard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List, Tuple

from collections import deque

from repro.cluster.config import ClusterError

#: step names, index == brownout level
BROWNOUT_STEPS = ("normal", "no_hedge", "skip_delta", "shed_low")


@dataclass(frozen=True)
class BrownoutConfig:
    """Hysteresis shape of the brownout ladder."""

    #: climb one step when windowed pressure reaches this
    step_up_pressure: float = 0.5
    #: descend one step when windowed pressure falls to this or below
    step_down_pressure: float = 0.2
    #: pressure samples in the smoothing window
    window: int = 8
    #: minimum seconds between level changes (anti-flap dwell)
    dwell_s: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.step_up_pressure <= 1.0:
            raise ClusterError("step_up_pressure must be in (0, 1]")
        if not 0.0 <= self.step_down_pressure < self.step_up_pressure:
            raise ClusterError(
                "step_down_pressure must be in [0, step_up_pressure)"
            )
        if self.window < 1:
            raise ClusterError("window must be at least 1")
        if self.dwell_s < 0:
            raise ClusterError("dwell_s cannot be negative")


class BrownoutController:
    """The stepped degradation state machine."""

    def __init__(self, config: BrownoutConfig | None = None):
        self.config = config or BrownoutConfig()
        self.level = 0
        self._window: Deque[float] = deque(maxlen=self.config.window)
        self._last_change_s: float | None = None
        #: (now_s, from_level, to_level) — every step, in order
        self.transitions: List[Tuple[float, int, int]] = []

    # ------------------------------------------------------------------
    @property
    def step(self) -> str:
        return BROWNOUT_STEPS[self.level]

    @property
    def hedging_disabled(self) -> bool:
        return self.level >= 1

    @property
    def skip_delta(self) -> bool:
        return self.level >= 2

    @property
    def shed_low_priority(self) -> bool:
        return self.level >= 3

    @property
    def pressure(self) -> float:
        """Windowed mean of the observed pressure signal."""
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    # ------------------------------------------------------------------
    def observe(self, now_s: float, pressure: float) -> int:
        """Feed one pressure sample; returns the (possibly new) level."""
        if not 0.0 <= pressure <= 1.0:
            raise ClusterError("pressure must be in [0, 1]")
        self._window.append(pressure)
        smoothed = self.pressure
        if self._last_change_s is not None and (
            now_s - self._last_change_s < self.config.dwell_s
        ):
            return self.level
        if (
            smoothed >= self.config.step_up_pressure
            and self.level < len(BROWNOUT_STEPS) - 1
        ):
            self._step_to(now_s, self.level + 1)
        elif smoothed <= self.config.step_down_pressure and self.level > 0:
            self._step_to(now_s, self.level - 1)
        return self.level

    def _step_to(self, now_s: float, level: int) -> None:
        self.transitions.append((now_s, self.level, level))
        self.level = level
        self._last_change_s = now_s
