"""The sharded cluster: N partitions x R replica SSDs + a coordinator.

:class:`DeepStoreCluster` is the multi-device analogue of
:class:`~repro.core.api.DeepStoreDevice`: functional (real numpy
retrieval over partitioned feature arrays) *and* timed (every query
carries the modelled scatter/compute/gather cost).  Each (shard,
replica) pair is a full simulated DeepStore SSD running its existing
SCN pipeline; the coordinator:

1. **scatters** the query to every non-empty shard, picking each
   shard's primary replica by read-spread rotation and failing over
   (one detection ladder per corpse) when replicas are dead;
2. optionally **hedges**: a backup replica launches when the primary
   has been outstanding ``hedge_fraction`` x its healthy latency, and
   the first completion wins (the loser is cancelled, never merged);
3. **gathers** the per-shard top-K lists into the exact global top-K
   with the streaming K-way merge of :mod:`repro.core.topk`.

**Parity contract**: a 1-shard, 1-replica cluster returns bit-identical
ids/scores to a standalone device over the same features, and its
end-to-end seconds equal the device's ``seconds_to_host`` exactly —
the scatter charge (per shard beyond the first), the gather charge
(per heap comparison), and the straggler factor all degenerate to
zero/identity.  The differential suite enforces this per accelerator
level, with and without the query cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.breaker import BreakerState, CircuitBreaker
from repro.cluster.brownout import BrownoutController
from repro.cluster.config import ClusterConfig, ClusterError
from repro.cluster.placement import ShardPlacement, make_placement
from repro.cluster.retry import RetryLadder
from repro.cluster.scatter import ReplicaAttempt, ShardJob, run_scatter
from repro.core.api import DeepStoreDevice, QueryResult
from repro.core.topk import KWayMergeStats, kway_merge_topk, topk_select
from repro.nn import Graph
from repro.obs.dtrace import QueryTraceContext, TraceCollector
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.ssd.timing import SsdConfig


@dataclass(frozen=True)
class ShardReport:
    """One shard's share of a cluster query."""

    shard: int
    #: replica whose result was merged (``-1`` when unavailable)
    replica: int
    #: completion time of this shard's leg (detection + compute + DMA)
    seconds: float
    detect_seconds: float
    failovers: int
    hedged: bool
    hedge_won: bool
    cache_hit: bool
    k_returned: int
    #: retry-ladder pause seconds charged to this leg
    retry_pause_seconds: float = 0.0
    #: no live replica answered within the retry budget — the global
    #: top-K is partial and this shard contributed nothing
    unavailable: bool = False
    # -- critical-path attribution inputs (NOT in to_dict: the perf
    # gate's scorecard leaves must stay byte-identical) ---------------
    #: the winning replica's own run time (the exact float it returned)
    service_seconds: float = 0.0
    #: hedge delay on the latency path (nonzero only when hedge won)
    hedge_wait_seconds: float = 0.0
    #: time the winning hedge saved vs the primary's planned finish
    hedge_saved_seconds: float = 0.0
    #: replicas the circuit breakers refused at dispatch time
    breaker_rejections: int = 0


@dataclass
class ClusterQueryResult:
    """Global top-K plus the full scatter-gather cost breakdown."""

    feature_ids: np.ndarray  # global ids into the cluster dataset
    scores: np.ndarray  # best first
    #: end-to-end: scatter + slowest shard + gather
    seconds: float
    scatter_seconds: float
    gather_seconds: float
    #: completion time of the slowest shard leg
    makespan_seconds: float
    n_contacted: int
    merge: KWayMergeStats
    shards: List[ShardReport]

    @property
    def k(self) -> int:
        return len(self.feature_ids)

    @property
    def cache_hit(self) -> bool:
        """True when every contacted shard answered from its cache."""
        return bool(self.shards) and all(s.cache_hit for s in self.shards)

    @property
    def hedges_launched(self) -> int:
        return sum(1 for s in self.shards if s.hedged)

    @property
    def hedge_wins(self) -> int:
        return sum(1 for s in self.shards if s.hedge_won)

    @property
    def failovers(self) -> int:
        return sum(s.failovers for s in self.shards)

    @property
    def unavailable_shards(self) -> int:
        """Shards that answered with *unavailable* instead of a list."""
        return sum(1 for s in self.shards if s.unavailable)

    @property
    def partial(self) -> bool:
        """True when at least one shard could not be served — the
        top-K covers only the shards that answered."""
        return self.unavailable_shards > 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (stable key order via sort_keys dumps)."""
        return {
            "feature_ids": [int(i) for i in self.feature_ids],
            "scores": [round(float(s), 6) for s in self.scores],
            "seconds": self.seconds,
            "scatter_seconds": self.scatter_seconds,
            "gather_seconds": self.gather_seconds,
            "makespan_seconds": self.makespan_seconds,
            "n_contacted": self.n_contacted,
            "merge_comparisons": self.merge.comparisons,
            "failovers": self.failovers,
            "hedges_launched": self.hedges_launched,
            "hedge_wins": self.hedge_wins,
            "cache_hit": self.cache_hit,
            "partial": self.partial,
            "unavailable_shards": self.unavailable_shards,
            "shards": [
                {
                    "shard": s.shard,
                    "replica": s.replica,
                    "seconds": s.seconds,
                    "failovers": s.failovers,
                    "hedged": s.hedged,
                    "hedge_won": s.hedge_won,
                    "cache_hit": s.cache_hit,
                    "unavailable": s.unavailable,
                }
                for s in self.shards
            ],
        }


class DeepStoreCluster:
    """N shards x R replicas of simulated DeepStore SSDs, coordinated."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        ssd: Optional[SsdConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ClusterConfig()
        self.tracer = (
            tracer if tracer is not None and tracer.enabled else None
        )
        self.metrics = metrics
        cfg = self.config
        self.devices: Dict[Tuple[int, int], DeepStoreDevice] = {
            (shard, replica): DeepStoreDevice(
                ssd=ssd, level=cfg.level, seed=cfg.seed
            )
            for shard in range(cfg.n_shards)
            for replica in range(cfg.n_replicas)
        }
        #: cluster db id -> placement
        self._placements: Dict[int, ShardPlacement] = {}
        #: cluster db id -> {(shard, replica): device db id}
        self._db_map: Dict[int, Dict[Tuple[int, int], int]] = {}
        #: cluster model id -> {(shard, replica): device model id}
        self._model_map: Dict[int, Dict[Tuple[int, int], int]] = {}
        self._next_db_id = 1
        self._next_model_id = 1
        self._query_seq = 0
        #: runtime outages (chaos kills/restarts), on top of the
        #: config's static ``fail_shards``
        self._down: set = set()
        #: per-replica circuit breakers (only when configured)
        self.breakers: Dict[Tuple[int, int], CircuitBreaker] = {}
        if cfg.breaker is not None:
            self.breakers = {
                key: CircuitBreaker(cfg.breaker) for key in self.devices
            }
        #: stepped brownout controller (only when configured)
        self.brownout: Optional[BrownoutController] = (
            BrownoutController(cfg.brownout)
            if cfg.brownout is not None
            else None
        )
        self._coord_track = (
            self.tracer.track("cluster", "coordinator")
            if self.tracer is not None
            else None
        )

    # ------------------------------------------------------------------
    # runtime outages (the chaos harness's kill/restart surface)
    # ------------------------------------------------------------------
    def set_replica_down(self, shard: int, replica: int) -> None:
        """Take one replica out of service at runtime."""
        if (shard, replica) not in self.devices:
            raise ClusterError(f"unknown replica ({shard}, {replica})")
        self._down.add((shard, replica))

    def set_replica_up(self, shard: int, replica: int) -> None:
        """Return one replica to service (restart complete)."""
        self._down.discard((shard, replica))

    def down_replicas(self) -> Tuple[Tuple[int, int], ...]:
        """All currently-dead (shard, replica) pairs: config + runtime."""
        dead = set(self.config.dead_replicas())
        dead.update(self._down)
        return tuple(sorted(dead))

    # ------------------------------------------------------------------
    # ingest / models / cache
    # ------------------------------------------------------------------
    def write_db(self, features: np.ndarray) -> int:
        """Partition an (N, dim) feature array across the shards.

        Every replica of a shard stores an identical copy of that
        shard's slice; empty shards (more shards than features) simply
        hold no database and are never contacted.
        """
        features = np.asarray(features, dtype=np.float32)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ClusterError("features must be a non-empty (N, dim) array")
        placement = make_placement(
            self.config.placement,
            features.shape[0],
            self.config.n_shards,
            features=features if self.config.placement == "locality" else None,
            seed=self.config.seed,
        )
        db_id = self._next_db_id
        self._next_db_id += 1
        per_device: Dict[Tuple[int, int], int] = {}
        for shard, owners in enumerate(placement.owners):
            if len(owners) == 0:
                continue
            slice_ = np.ascontiguousarray(features[owners])
            for replica in range(self.config.n_replicas):
                per_device[(shard, replica)] = self.devices[
                    (shard, replica)
                ].write_db(slice_)
        self._placements[db_id] = placement
        self._db_map[db_id] = per_device
        return db_id

    def placement_of(self, db_id: int) -> ShardPlacement:
        """The shard placement of one cluster database."""
        placement = self._placements.get(db_id)
        if placement is None:
            raise ClusterError(f"unknown cluster database id {db_id}")
        return placement

    def load_graph(self, graph: Graph) -> int:
        """Register a model on every replica SSD."""
        model_id = self._next_model_id
        self._next_model_id += 1
        self._model_map[model_id] = {
            key: device.load_graph(graph)
            for key, device in self.devices.items()
        }
        return model_id

    def set_qc(self, threshold: float, **kwargs: Any) -> None:
        """``setQC`` on every replica SSD (per-device caches)."""
        for device in self.devices.values():
            device.set_qc(threshold, **kwargs)

    def fail_accelerator(self, index: int, shard: Optional[int] = None) -> None:
        """Hard-fail one in-SSD accelerator (all shards, or just one)."""
        for (s, _r), device in self.devices.items():
            if shard is None or s == shard:
                device.fail_accelerator(index)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def query(
        self,
        qfv: np.ndarray,
        k: int,
        model_id: int,
        db_id: int,
        now_s: float = 0.0,
        dtrace: Optional[TraceCollector] = None,
        parent_ctx: Optional[QueryTraceContext] = None,
    ) -> ClusterQueryResult:
        """Scatter one query, gather the exact global top-K.

        ``now_s`` is the wall-clock of the surrounding simulation; it
        clocks the circuit breakers and the brownout controller.  With
        neither configured it is inert and the legacy path is
        bit-identical.

        ``dtrace`` records the query's causal span tree (root, fan-out,
        per-shard legs with every attempt, gather) as a child of
        ``parent_ctx`` — or as a fresh trace when the cluster is the
        entry point.  Recording is pure bookkeeping: results and
        timings are bit-identical with it on or off.

        A shard whose replicas are all dead (or retry-budget-exhausted)
        resolves as a structured *unavailable* leg: the returned top-K
        is flagged ``partial`` and covers the shards that answered.
        Only when *no* shard answers does the query raise
        :class:`ClusterError`.
        """
        if k <= 0:
            raise ClusterError("K must be positive")
        placement = self.placement_of(db_id)
        models = self._model_map.get(model_id)
        if models is None:
            raise ClusterError(f"unknown cluster model id {model_id}")
        dbs = self._db_map[db_id]
        shards = placement.non_empty_shards()
        seq = self._query_seq
        self._query_seq += 1

        costs = self.config.costs
        scatter_s = costs.scatter_seconds(len(shards))
        root_ctx: Optional[QueryTraceContext] = None
        shard_ctxs: Optional[Dict[int, QueryTraceContext]] = None
        if dtrace is not None:
            if parent_ctx is not None:
                root_ctx = dtrace.start_span(
                    parent_ctx, f"cluster query {seq}", now_s,
                    kind="cluster.query", track="cluster/coordinator", k=k,
                )
            else:
                root_ctx = dtrace.start_trace(
                    f"cluster query {seq}", now_s,
                    kind="cluster.query", track="cluster/coordinator", k=k,
                )
            dtrace.add_span(
                root_ctx, f"scatter fan-out x{len(shards)}",
                now_s, now_s + scatter_s,
                kind="cluster.scatter", track="cluster/coordinator",
            )
            shard_ctxs = {}
            for shard in shards:
                ctx = dtrace.start_span(
                    root_ctx, f"shard {shard} leg", now_s + scatter_s,
                    kind="cluster.shard", track=f"cluster/shard {shard}",
                )
                shard_ctxs[shard] = ctx
                dtrace.flow(root_ctx, ctx)

        jobs: List[ShardJob] = []
        for shard in shards:
            jobs.append(
                self._shard_job(shard, seq, qfv, k, models, dbs, now_s)
            )
        scatter = run_scatter(
            jobs, tracer=self.tracer, metrics=self.metrics,
            dtrace=dtrace, shard_ctxs=shard_ctxs,
            base_s=now_s + scatter_s,
        )
        job_by_shard = {job.shard: job for job in jobs}

        partials: List[List[Tuple[float, int]]] = []
        reports: List[ShardReport] = []
        for outcome in scatter.outcomes:
            job = job_by_shard[outcome.shard]
            self._record_breakers(job, outcome, now_s)
            shard_ctx = (
                shard_ctxs.get(outcome.shard)
                if shard_ctxs is not None else None
            )
            if outcome.unavailable:
                if dtrace is not None and shard_ctx is not None:
                    dtrace.end_span(
                        shard_ctx, now_s + scatter_s + outcome.done_s,
                        status="unavailable",
                        failovers=outcome.failovers,
                    )
                reports.append(
                    ShardReport(
                        shard=outcome.shard,
                        replica=-1,
                        seconds=outcome.done_s,
                        detect_seconds=outcome.detect_s,
                        failovers=outcome.failovers,
                        hedged=False,
                        hedge_won=False,
                        cache_hit=False,
                        k_returned=0,
                        retry_pause_seconds=outcome.retry_pause_s,
                        unavailable=True,
                        breaker_rejections=len(job.breaker_rejected),
                    )
                )
                continue
            result: QueryResult = outcome.payload
            owners = placement.owners[outcome.shard]
            pairs = [
                (float(score), int(owners[int(local)]))
                for score, local in zip(result.scores, result.feature_ids)
            ]
            partials.append(pairs)
            if dtrace is not None and shard_ctx is not None:
                # device execution as a leaf of the shard leg: the
                # winning replica's simulated SSD run (or cache hit)
                base = now_s + scatter_s
                dtrace.add_span(
                    shard_ctx,
                    f"device s{outcome.shard}r{outcome.replica}",
                    base + outcome.start_s, base + outcome.done_s,
                    kind="device.query", track="device",
                    **result.span_args(),
                )
                dtrace.end_span(
                    shard_ctx, base + outcome.done_s,
                    replica=outcome.replica,
                    failovers=outcome.failovers,
                    hedged=outcome.hedged,
                    hedge_won=outcome.hedge_won,
                )
            reports.append(
                ShardReport(
                    shard=outcome.shard,
                    replica=outcome.replica,
                    seconds=outcome.done_s,
                    detect_seconds=outcome.detect_s,
                    failovers=outcome.failovers,
                    hedged=outcome.hedged,
                    hedge_won=outcome.hedge_won,
                    cache_hit=result.cache_hit,
                    k_returned=len(pairs),
                    retry_pause_seconds=outcome.retry_pause_s,
                    service_seconds=outcome.service_s,
                    hedge_wait_seconds=outcome.hedge_wait_s,
                    hedge_saved_seconds=outcome.hedge_saved_s,
                    breaker_rejections=len(job.breaker_rejected),
                )
            )
        if len(partials) > 1:
            # the K-way merge needs canonically ordered partials; for a
            # single shard the device's own order *is* the answer (the
            # parity contract), so it passes through untouched
            partials = [topk_select(p, k) for p in partials]
        merged, stats = kway_merge_topk(partials, k)

        gather_s = costs.gather_seconds(stats.comparisons)
        total = scatter_s + scatter.makespan_s + gather_s
        if self.tracer is not None:
            self.tracer.complete(
                self._coord_track, "scatter", 0.0, scatter_s,
                cat="cluster.coordinator",
            )
            self.tracer.complete(
                self._coord_track, "gather",
                scatter_s + scatter.makespan_s, gather_s,
                cat="cluster.coordinator",
                args={"comparisons": stats.comparisons},
            )
        if self.metrics is not None:
            self.metrics.histogram("cluster.query_seconds").observe(total)
            self.metrics.histogram("cluster.scatter_overhead_s").observe(
                scatter_s
            )
            self.metrics.histogram("cluster.gather_overhead_s").observe(
                gather_s
            )
            for report in reports:
                self.metrics.counter(
                    f"cluster.shard{report.shard}.queries"
                ).inc()
                self.metrics.histogram("cluster.shard_busy_s").observe(
                    report.seconds
                )
        if self.brownout is not None:
            # pressure = fraction of shard legs that struggled (failed
            # over or went unavailable) — fed back so the controller
            # can degrade the *next* query's fidelity
            stressed = sum(
                1 for r in reports if r.unavailable or r.failovers > 0
            )
            self.brownout.observe(now_s, stressed / len(reports))
        if dtrace is not None and root_ctx is not None:
            dtrace.add_span(
                root_ctx, f"K-way gather ({stats.comparisons} cmp)",
                now_s + scatter_s + scatter.makespan_s, now_s + total,
                kind="cluster.gather", track="cluster/coordinator",
                comparisons=stats.comparisons,
            )
            unavailable = sum(1 for r in reports if r.unavailable)
            dtrace.end_span(
                root_ctx, now_s + total,
                status="partial" if unavailable else "ok",
                hedges_launched=scatter.hedges_launched,
                hedge_wins=scatter.hedge_wins,
                failovers=scatter.failovers,
                unavailable_shards=unavailable,
                brownout_level=(
                    self.brownout.level if self.brownout is not None else 0
                ),
            )
        return ClusterQueryResult(
            feature_ids=np.asarray([fid for _s, fid in merged], dtype=np.int64),
            scores=np.asarray([s for s, _fid in merged], dtype=np.float32),
            seconds=total,
            scatter_seconds=scatter_s,
            gather_seconds=gather_s,
            makespan_seconds=scatter.makespan_s,
            n_contacted=len(shards),
            merge=stats,
            shards=reports,
        )

    # ------------------------------------------------------------------
    def _record_breakers(self, job: ShardJob, outcome, now_s: float) -> None:
        """Feed one scatter leg's attempt outcomes into the breakers."""
        if not self.breakers:
            return
        # the first ``failovers`` attempts are exactly the dead replicas
        # the coordinator paid a detection ladder for, in walk order
        for attempt in job.attempts[: outcome.failovers]:
            self.breakers[(job.shard, attempt.replica)].record_failure(now_s)
        if not outcome.unavailable:
            self.breakers[(job.shard, outcome.replica)].record_success(now_s)

    def _shard_job(
        self,
        shard: int,
        seq: int,
        qfv: np.ndarray,
        k: int,
        models: Dict[Tuple[int, int], int],
        dbs: Dict[Tuple[int, int], int],
        now_s: float = 0.0,
    ) -> ShardJob:
        cfg = self.config
        #: read-spread: rotate the primary replica per query *and* per
        #: shard, so replicas share load instead of replica 0 taking all
        primary = (seq + shard) % cfg.n_replicas
        order = [
            (primary + j) % cfg.n_replicas for j in range(cfg.n_replicas)
        ]
        dead = set(cfg.dead_replicas())
        dead.update(self._down)
        rejected: List[Tuple[int, str]] = []
        if self.breakers:
            # an open breaker is skipped at zero detection cost — that
            # is the entire point of remembering failures.  A half-open
            # one spends its probe budget here (at dispatch time), but
            # only while no live replica precedes it in the walk: a
            # probe the failover walk would never reach must not burn
            # budget it cannot resolve.
            admitted = []
            seen_live = False
            for r in order:
                breaker = self.breakers[(shard, r)]
                state = breaker.state(now_s)
                if seen_live and state is not BreakerState.CLOSED:
                    rejected.append((r, state.name.lower()))
                    continue
                if not breaker.allow(now_s):
                    rejected.append((r, state.name.lower()))
                    continue
                admitted.append(r)
                if (shard, r) not in dead:
                    seen_live = True
            order = admitted

        def runner(replica: int):
            def run() -> Tuple[float, QueryResult]:
                device = self.devices[(shard, replica)]
                handle = device.query(
                    qfv,
                    k=k,
                    model_id=models[(shard, replica)],
                    db_id=dbs[(shard, replica)],
                )
                result = device.get_results(handle)
                seconds = result.seconds_to_host * cfg.replica_slowdown(
                    shard, replica
                )
                return seconds, result

            return run

        attempts: List[ReplicaAttempt] = []
        hedge_delay: Optional[float] = None
        first_live: Optional[int] = None
        for replica in order:
            alive = (shard, replica) not in dead
            if alive and first_live is None:
                first_live = replica
            attempts.append(
                ReplicaAttempt(replica=replica, alive=alive, run=runner(replica))
            )
        backoff_delays: Optional[Tuple[float, ...]] = None
        if cfg.retry_policy is not None:
            backoff_delays = tuple(
                RetryLadder(
                    cfg.retry_policy, cfg.seed, seq, shard
                ).all_delays()
            )
        hedging_on = (
            cfg.hedge_fraction is not None
            and cfg.n_replicas > 1
            and not (
                self.brownout is not None and self.brownout.hedging_disabled
            )
        )
        if first_live is None:
            # no live (or breaker-admitted) replica: the scatter leg
            # resolves as a structured unavailable outcome
            return ShardJob(
                shard=shard,
                attempts=tuple(attempts),
                detect_seconds=cfg.dispatch_policy.give_up_seconds(),
                hedge_delay=None,
                backoff_delays=backoff_delays,
                breaker_rejected=tuple(rejected),
            )
        if hedging_on:
            # the hedge deadline keys off the shard's *healthy* latency,
            # so a replica straggling beyond hedge_fraction x healthy
            # gets hedged and a healthy one never does.  The primary's
            # query runs eagerly here (it runs unconditionally anyway)
            # to learn that healthy figure; the result is memoized so
            # the scatter leg charges it exactly once.
            seconds, result = runner(first_live)()
            healthy = seconds / cfg.replica_slowdown(shard, first_live)
            hedge_delay = cfg.hedge_fraction * healthy
            memoized = (seconds, result)
            attempts = [
                ReplicaAttempt(
                    replica=a.replica,
                    alive=a.alive,
                    run=(lambda m=memoized: m)
                    if a.replica == first_live
                    else a.run,
                )
                for a in attempts
            ]
        return ShardJob(
            shard=shard,
            attempts=tuple(attempts),
            detect_seconds=cfg.dispatch_policy.give_up_seconds(),
            hedge_delay=hedge_delay,
            backoff_delays=backoff_delays,
            breaker_rejected=tuple(rejected),
        )
