"""Cluster configuration and the coordinator's cost constants.

A cluster is ``n_shards`` dataset partitions, each stored on
``n_replicas`` independent simulated DeepStore SSDs, fronted by a
host-side coordinator that scatters queries and gathers per-shard
top-K lists.  :class:`ClusterConfig` is everything that defines one
such deployment; :class:`CoordinatorCosts` is the host-side analogue of
:class:`~repro.core.engine.EngineCosts` — the (small, explicit) serial
costs the coordinator itself adds.

**Degenerate-case invariant.**  A 1-shard, 1-replica cluster must cost
*exactly* what the single SSD costs: the scatter charge is per shard
*beyond the first* and the gather charge is per heap comparison of the
K-way merge (zero comparisons for one list), so both vanish when the
cluster degenerates to one device.  The differential parity suite
holds the layer to this bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple, Union

from repro.core.engine import DispatchPolicy
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # imported lazily to avoid a module cycle
    from repro.cluster.breaker import BreakerConfig
    from repro.cluster.brownout import BrownoutConfig
    from repro.cluster.retry import RetryPolicy

#: placement strategies :func:`repro.cluster.placement.make_placement` knows
PLACEMENT_STRATEGIES = ("range", "hash", "locality")


class ClusterError(RuntimeError):
    """Raised for unservable cluster states (e.g. a shard with no live
    replica) and malformed requests."""


def normalize_fail_shards(
    fail_shards: Tuple[Union[int, Tuple[int, int]], ...],
) -> Tuple[Tuple[int, int], ...]:
    """Normalize dead-replica specs to sorted (shard, replica) pairs.

    A bare shard id kills that shard's replica 0 (its primary copy);
    an explicit pair kills one specific replica.
    """
    dead = set()
    for spec in fail_shards:
        if isinstance(spec, tuple):
            shard, replica = spec
        else:
            shard, replica = spec, 0
        if shard < 0 or replica < 0:
            raise ClusterError(f"negative fail-shard spec {spec!r}")
        dead.add((int(shard), int(replica)))
    return tuple(sorted(dead))


@dataclass(frozen=True)
class CoordinatorCosts:
    """Host-side serial costs of one scatter-gather round."""

    #: issuing one shard request beyond the first (NVMe submission +
    #: host driver work); the first shard rides the query's own setup
    scatter_per_shard_seconds: float = 5e-6
    #: one heap comparison of the streaming K-way merge on the host
    merge_per_comparison_seconds: float = 0.05e-6

    def __post_init__(self) -> None:
        if self.scatter_per_shard_seconds < 0:
            raise ValueError("scatter_per_shard_seconds cannot be negative")
        if self.merge_per_comparison_seconds < 0:
            raise ValueError("merge_per_comparison_seconds cannot be negative")

    def scatter_seconds(self, n_contacted: int) -> float:
        """Serial fan-out cost of contacting ``n_contacted`` shards."""
        if n_contacted <= 0:
            raise ValueError("n_contacted must be positive")
        return self.scatter_per_shard_seconds * (n_contacted - 1)

    def gather_seconds(self, comparisons: int) -> float:
        """Host merge cost for ``comparisons`` heap comparisons."""
        if comparisons < 0:
            raise ValueError("comparisons cannot be negative")
        return self.merge_per_comparison_seconds * comparisons


@dataclass(frozen=True)
class ClusterConfig:
    """One sharded, replicated DeepStore deployment."""

    #: dataset partitions (each a full simulated SSD per replica)
    n_shards: int = 4
    #: copies of every shard (R-way replication)
    n_replicas: int = 1
    #: partition strategy: ``range`` / ``hash`` / ``locality``
    placement: str = "range"
    #: accelerator placement level inside every shard SSD
    level: str = "channel"
    #: deterministic seed (read spread, stragglers, locality centroids)
    seed: int = 0
    #: hedge a shard request onto the next replica once the primary has
    #: been outstanding ``hedge_fraction`` x the expected shard latency;
    #: ``None`` disables hedging
    hedge_fraction: Optional[float] = None
    #: spread of the deterministic per-replica straggler factors: each
    #: replica runs at ``1 + straggler_spread * u(seed, shard, replica)``
    #: times its healthy latency (0 = every replica healthy)
    straggler_spread: float = 0.0
    #: dead replicas: bare shard ids (replica 0) or (shard, replica)
    fail_shards: Tuple = ()
    #: detection ladder paid per dead replica before failing over
    dispatch_policy: DispatchPolicy = field(default_factory=DispatchPolicy)
    #: host-side serial costs
    costs: CoordinatorCosts = field(default_factory=CoordinatorCosts)
    #: device-level fault plan; ``kind="shard"`` failures add to
    #: ``fail_shards``, the rest apply inside every shard SSD
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    #: failover retry ladder (capped backoff + seeded jitter + per-query
    #: budget); ``None`` keeps the legacy unlimited zero-pause walk
    #: bit-identical
    retry_policy: Optional["RetryPolicy"] = None
    #: per-replica circuit breakers; ``None`` disables them (legacy)
    breaker: Optional["BreakerConfig"] = None
    #: stepped brownout degradation; ``None`` disables it (legacy)
    brownout: Optional["BrownoutConfig"] = None

    def __post_init__(self) -> None:
        if self.n_shards <= 0:
            raise ClusterError("n_shards must be positive")
        if self.n_replicas <= 0:
            raise ClusterError("n_replicas must be positive")
        if self.placement not in PLACEMENT_STRATEGIES:
            raise ClusterError(
                f"unknown placement {self.placement!r}; "
                f"choose from {PLACEMENT_STRATEGIES}"
            )
        if self.hedge_fraction is not None and self.hedge_fraction <= 0:
            raise ClusterError("hedge_fraction must be positive (or None)")
        if self.straggler_spread < 0:
            raise ClusterError("straggler_spread cannot be negative")
        object.__setattr__(
            self, "fail_shards", normalize_fail_shards(tuple(self.fail_shards))
        )

    # ------------------------------------------------------------------
    def dead_replicas(self) -> Tuple[Tuple[int, int], ...]:
        """All dead (shard, replica) pairs: config + fault plan."""
        dead = set(self.fail_shards)
        dead.update(self.fault_plan.dead_shard_replicas())
        return tuple(sorted(dead))

    def is_dead(self, shard: int, replica: int) -> bool:
        """Whether one replica SSD is out of service."""
        return (shard, replica) in set(self.dead_replicas())

    def live_replicas(self, shard: int) -> Tuple[int, ...]:
        """Replica indices of ``shard`` still in service."""
        dead = set(self.dead_replicas())
        return tuple(
            r for r in range(self.n_replicas) if (shard, r) not in dead
        )

    def replica_slowdown(self, shard: int, replica: int) -> float:
        """Deterministic straggler factor of one replica (>= 1.0).

        Drawn from ``(seed, shard, replica)`` so the same deployment
        always stutters in the same places — which is what lets the
        hedge-win counters be drift-gated like every other number.
        """
        if self.straggler_spread == 0.0:
            return 1.0
        import numpy as np

        rng = np.random.default_rng([self.seed, 7919, shard, replica])
        return 1.0 + self.straggler_spread * float(rng.random())

    def describe(self) -> str:
        """One-line human summary used by reports and the CLI."""
        parts = [
            f"{self.n_shards} shard(s) x {self.n_replicas} replica(s)",
            f"{self.placement} placement",
            f"{self.level}-level accelerators",
        ]
        dead = self.dead_replicas()
        if dead:
            parts.append(f"{len(dead)} dead replica(s)")
        if self.hedge_fraction is not None:
            parts.append(f"hedge @ {self.hedge_fraction:g}x")
        if self.straggler_spread:
            parts.append(f"stragglers <= {1 + self.straggler_spread:g}x")
        return ", ".join(parts)
